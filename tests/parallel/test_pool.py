"""Tests for the persistent worker pool and its planner integration.

The differential suite proves parallel ≡ sequential end to end; this
module pins the pool-specific machinery: route selection
(``result.parallel_decision``), warm-substrate reuse with bit-identical
counters, worker-crash recovery, dataset staleness, start-method
resolution, and leak-free shutdown.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.config import SystemConfig
from repro.errors import ParallelError, StaleDatasetError, WorkerCrashError
from repro.join import spatial_join
from repro.parallel import (
    GridIndexDescriptor,
    SharedIntsDescriptor,
    TileJob,
    TileRunner,
    WorkerPool,
    get_default_pool,
    resolve_start_method,
    shutdown_default_pools,
)
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

CFG = SystemConfig(page_size=104, buffer_pages=64)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_default_pools()


def _env(n_r: int = 420, n_s: int = 280, seed: int = 11):
    ws = Workspace(CFG)
    d_r = generate_clustered(ClusteredConfig(
        n_r, cover_quotient=2.0, objects_per_cluster=10, seed=seed,
    ))
    d_s = generate_clustered(ClusteredConfig(
        n_s, cover_quotient=2.0, objects_per_cluster=10, seed=seed + 1,
        oid_start=10**6,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    ws.start_measurement()
    return ws, tree_r, file_s


def _join(ws, tree_r, file_s, **kw):
    return spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, **kw,
    )


# --------------------------------------------------------------------- #
# Route selection
# --------------------------------------------------------------------- #


def test_pooled_route_parity_and_decision():
    ws, tree_r, file_s = _env()
    sequential = _join(ws, tree_r, file_s, method="STJ1-2N")
    ws.start_measurement()
    pooled = _join(
        ws, tree_r, file_s, method="STJ1-2N",
        workers=2, partitions=4, parallel_guard=False,
    )
    assert pooled.pair_set() == sequential.pair_set()
    decision = pooled.parallel_decision
    assert decision is not None
    assert decision.pooled
    assert decision.effective_workers == 2
    assert decision.reason == "persistent worker pool"


def test_guard_runs_tiny_join_in_process():
    ws, tree_r, file_s = _env(n_r=80, n_s=60, seed=21)
    sequential = _join(ws, tree_r, file_s, method="STJ1-2N")
    ws.start_measurement()
    guarded = _join(
        ws, tree_r, file_s, method="STJ1-2N",
        workers=2, partitions=4, parallel_guard=True,
    )
    assert guarded.pair_set() == sequential.pair_set()
    decision = guarded.parallel_decision
    assert decision.effective_workers == 1
    assert decision.requested_workers == 2
    assert not decision.pooled
    assert "guard" in decision.reason or "tile" in decision.reason
    # In-process fallback still produces full per-partition stats.
    assert guarded.partitions


def test_workers_one_never_pools():
    ws, tree_r, file_s = _env(seed=31)
    result = _join(ws, tree_r, file_s, method="BFJ", workers=1, partitions=4)
    decision = result.parallel_decision
    assert decision.effective_workers == 1
    assert not decision.pooled
    assert decision.reason == "single worker requested"


def test_legacy_mode_env_switch(monkeypatch):
    monkeypatch.setenv("REPRO_POOL", "0")
    ws, tree_r, file_s = _env(seed=41)
    sequential = _join(ws, tree_r, file_s, method="STJ1-2N")
    ws.start_measurement()
    legacy = _join(
        ws, tree_r, file_s, method="STJ1-2N",
        workers=2, partitions=4, parallel_guard=False,
    )
    assert legacy.pair_set() == sequential.pair_set()
    decision = legacy.parallel_decision
    assert not decision.pooled
    assert decision.effective_workers == 2
    assert decision.reason == "legacy per-join pool"


# --------------------------------------------------------------------- #
# Warm reuse
# --------------------------------------------------------------------- #


def test_warm_rerun_is_bit_identical():
    """A second pooled join on the same inputs hits the dataset cache
    and every worker's warm substrates — and must still report exactly
    the counters of the cold run."""
    ws, tree_r, file_s = _env(seed=51)
    kw = dict(method="STJ1-2N", workers=2, partitions=4,
              parallel_guard=False, parallel_seed=7)
    cold = _join(ws, tree_r, file_s, **kw)
    cold_summary = ws.metrics.summary()
    ws.start_measurement()
    warm = _join(ws, tree_r, file_s, **kw)
    warm_summary = ws.metrics.summary()

    assert warm.pairs == cold.pairs
    for field in ("match_read", "match_write", "construct_read",
                  "construct_write", "bbox_tests", "xy_tests"):
        assert getattr(warm_summary, field) == getattr(cold_summary, field)
    cold_stats = sorted(cold.partitions, key=lambda s: s.index)
    warm_stats = sorted(warm.partitions, key=lambda s: s.index)
    assert len(cold_stats) == len(warm_stats)
    for c, w in zip(cold_stats, warm_stats):
        assert c.snapshot == w.snapshot, f"partition {c.index} drifted"
        assert w.setup_s == 0.0, "warm substrate still reports setup time"


def test_tree_mutation_republishes_dataset():
    """Mutating the R-tree between joins must invalidate the cached
    published dataset (stamp change), not silently reuse stale
    columns."""
    from repro.geometry import Rect

    ws, tree_r, file_s = _env(seed=61)
    kw = dict(method="STJ1-2N", workers=2, partitions=4,
              parallel_guard=False)
    first = _join(ws, tree_r, file_s, **kw)
    assert first.parallel_decision.pooled

    tree_r.insert(Rect(0.41, 0.41, 0.44, 0.44), oid=999_999)
    ws.start_measurement()
    sequential = _join(ws, tree_r, file_s, method="STJ1-2N")
    ws.start_measurement()
    second = _join(ws, tree_r, file_s, **kw)
    assert second.pair_set() == sequential.pair_set()


# --------------------------------------------------------------------- #
# Failure model
# --------------------------------------------------------------------- #


def test_worker_crash_raises_typed_error_and_pool_recovers():
    ws, tree_r, file_s = _env(seed=71)
    kw = dict(method="STJ1-2N", workers=2, partitions=4,
              parallel_guard=False)
    sequential = _join(ws, tree_r, file_s, method="STJ1-2N")

    pool = get_default_pool(2)
    victim = pool._workers[0].process
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=30)

    ws.start_measurement()
    with pytest.raises(WorkerCrashError):
        _join(ws, tree_r, file_s, **kw)

    # The crash respawned a replacement: the *same* pool serves the
    # retry, and the answer is still exact.
    assert get_default_pool(2) is pool
    assert all(w.process.is_alive() for w in pool._workers)
    ws.start_measurement()
    retry = _join(ws, tree_r, file_s, **kw)
    assert retry.pair_set() == sequential.pair_set()
    assert retry.parallel_decision.pooled


def test_unpublished_dataset_is_a_stale_dataset_error():
    empty = SharedIntsDescriptor(name=None, n=0)
    job = TileJob(
        dataset_key="never-published", version=1,
        grid=GridIndexDescriptor(
            rows=1, cols=1, universe=(0.0, 0.0, 1.0, 1.0),
            num_tiles=1, csr_r=empty, csr_s=empty,
        ),
        tile=0, n_r=0, n_s=0, method="BFJ", config=CFG,
        options={}, seed=0, want_trace=False,
    )
    runner = TileRunner()
    with pytest.raises(StaleDatasetError):
        runner.run(job)
    runner.close()


def test_closed_pool_rejects_joins():
    pool = WorkerPool(1)
    pool.close()
    with pytest.raises(ParallelError):
        pool.run_join(None, [])
    pool.close()  # idempotent


# --------------------------------------------------------------------- #
# Start methods
# --------------------------------------------------------------------- #


def test_resolve_start_method_rejects_unknown():
    with pytest.raises(ParallelError):
        resolve_start_method("not-a-method")


def test_resolve_start_method_env(monkeypatch):
    import multiprocessing

    available = multiprocessing.get_all_start_methods()
    monkeypatch.setenv("REPRO_POOL_START_METHOD", available[0])
    assert resolve_start_method() == available[0]
    # Explicit argument wins over the environment.
    assert resolve_start_method(available[-1]) == available[-1]


@pytest.mark.skipif(
    "spawn" not in __import__("multiprocessing").get_all_start_methods(),
    reason="spawn start method unavailable",
)
def test_spawn_start_method_joins_correctly():
    ws, tree_r, file_s = _env(n_r=200, n_s=140, seed=81)
    sequential = _join(ws, tree_r, file_s, method="BFJ")
    ws.start_measurement()
    spawned = _join(
        ws, tree_r, file_s, method="BFJ",
        workers=2, partitions=4, parallel_guard=False,
        parallel_start_method="spawn",
    )
    assert spawned.pair_set() == sequential.pair_set()
    assert spawned.parallel_decision.pooled


# --------------------------------------------------------------------- #
# Shutdown hygiene
# --------------------------------------------------------------------- #


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="POSIX shm only")
def test_shutdown_unlinks_every_segment():
    before = set(os.listdir("/dev/shm"))
    ws, tree_r, file_s = _env(seed=91)
    result = _join(
        ws, tree_r, file_s, method="STJ1-2N",
        workers=2, partitions=4, parallel_guard=False,
    )
    assert result.parallel_decision.pooled
    shutdown_default_pools()
    after = set(os.listdir("/dev/shm"))
    assert after - before == set(), f"leaked segments: {after - before}"
