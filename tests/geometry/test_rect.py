"""Unit and property tests for the rectangle algebra."""

import pytest
from hypothesis import given

from repro.errors import GeometryError
from repro.geometry import Rect, union_all

from ..strategies import rects


class TestConstruction:
    def test_basic_fields(self):
        r = Rect(0.0, 1.0, 2.0, 3.0)
        assert (r.xlo, r.ylo, r.xhi, r.yhi) == (0.0, 1.0, 2.0, 3.0)

    def test_rejects_inverted_x(self):
        with pytest.raises(GeometryError):
            Rect(2.0, 0.0, 1.0, 1.0)

    def test_rejects_inverted_y(self):
        with pytest.raises(GeometryError):
            Rect(0.0, 2.0, 1.0, 1.0)

    def test_from_center(self):
        r = Rect.from_center(0.5, 0.5, 0.2, 0.4)
        assert r.xlo == pytest.approx(0.4)
        assert r.xhi == pytest.approx(0.6)
        assert r.ylo == pytest.approx(0.3)
        assert r.yhi == pytest.approx(0.7)

    def test_from_center_rejects_negative_extent(self):
        with pytest.raises(GeometryError):
            Rect.from_center(0.5, 0.5, -0.1, 0.1)

    def test_point_is_degenerate(self):
        p = Rect.point(0.3, 0.7)
        assert p.is_point()
        assert p.area() == 0.0

    def test_zero_width_rect_is_legal(self):
        r = Rect(0.5, 0.0, 0.5, 1.0)
        assert r.area() == 0.0
        assert not r.is_point()


class TestMeasures:
    def test_area(self):
        assert Rect(0, 0, 2, 3).area() == 6.0

    def test_margin(self):
        assert Rect(0, 0, 2, 3).margin() == 5.0

    def test_center(self):
        assert Rect(0, 0, 2, 4).center() == (1.0, 2.0)

    def test_center_rect_is_point_at_center(self):
        c = Rect(0, 0, 2, 4).center_rect()
        assert c.is_point()
        assert c.center() == (1.0, 2.0)

    def test_width_height(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3.0
        assert r.height == 6.0


class TestPredicates:
    def test_disjoint_do_not_intersect(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_touching_edges_intersect(self):
        # Closed-rectangle convention: sharing an edge counts.
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_touching_corner_intersects(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_containment(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(2, 2, 3, 3)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_self(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains(r)

    def test_contains_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(1.0, 1.0)  # boundary
        assert not r.contains_point(1.1, 0.5)

    def test_disjoint_in_y_only(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(0, 2, 1, 3))


class TestCombination:
    def test_union_encloses_both(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert u == Rect(0, 0, 3, 3)

    def test_intersection_of_overlapping(self):
        i = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert i == Rect(1, 1, 2, 2)

    def test_intersection_of_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_of_touching_is_degenerate(self):
        i = Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1))
        assert i == Rect(1, 0, 1, 1)

    def test_enlargement_zero_for_contained(self):
        assert Rect(0, 0, 10, 10).enlargement(Rect(1, 1, 2, 2)) == 0.0

    def test_enlargement_positive_for_outside(self):
        assert Rect(0, 0, 1, 1).enlargement(Rect(2, 0, 3, 1)) == 2.0

    def test_center_distance_sq(self):
        a = Rect.point(0.0, 0.0)
        b = Rect.point(3.0, 4.0)
        assert a.center_distance_sq(b) == 25.0

    def test_clipped_to_inside_window(self):
        r = Rect(-1, -1, 0.5, 0.5)
        clipped = r.clipped_to(Rect(0, 0, 1, 1))
        assert clipped == Rect(0, 0, 0.5, 0.5)

    def test_clipped_to_outside_window_is_none(self):
        assert Rect(2, 2, 3, 3).clipped_to(Rect(0, 0, 1, 1)) is None


class TestUnionAll:
    def test_single(self):
        r = Rect(0, 0, 1, 1)
        assert union_all([r]) == r

    def test_many(self):
        rs = [Rect(0, 0, 1, 1), Rect(5, 5, 6, 6), Rect(-1, 2, 0, 3)]
        assert union_all(rs) == Rect(-1, 0, 6, 6)

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            union_all([])


class TestDunder:
    def test_equality_and_hash(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(0, 0, 1, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rect(0, 0, 1, 2)

    def test_equality_against_other_type(self):
        assert Rect(0, 0, 1, 1) != "rect"

    def test_iteration_and_tuple(self):
        r = Rect(0, 1, 2, 3)
        assert tuple(r) == (0, 1, 2, 3)
        assert r.as_tuple() == (0, 1, 2, 3)

    def test_repr_round_trips(self):
        r = Rect(0.25, 0.5, 0.75, 1.0)
        assert eval(repr(r)) == r


# --------------------------------------------------------------------- #
# Property-based laws
# --------------------------------------------------------------------- #


@given(rects(), rects())
def test_intersects_is_symmetric(a, b):
    assert a.intersects(b) == b.intersects(a)


@given(rects(), rects())
def test_intersects_iff_intersection_exists(a, b):
    assert a.intersects(b) == (a.intersection(b) is not None)


@given(rects(), rects())
def test_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains(a)
    assert u.contains(b)


@given(rects(), rects())
def test_union_is_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(rects())
def test_union_is_idempotent(a):
    assert a.union(a) == a


@given(rects(), rects())
def test_intersection_contained_in_both(a, b):
    i = a.intersection(b)
    if i is not None:
        assert a.contains(i)
        assert b.contains(i)


@given(rects(), rects())
def test_enlargement_matches_union_area(a, b):
    assert a.enlargement(b) == a.union(b).area() - a.area()


@given(rects(), rects())
def test_enlargement_non_negative(a, b):
    assert a.enlargement(b) >= 0.0


@given(rects(), rects(), rects())
def test_union_is_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(rects(), rects())
def test_containment_implies_intersection(a, b):
    if a.contains(b):
        assert a.intersects(b)


@given(rects())
def test_center_inside_rect(a):
    cx, cy = a.center()
    assert a.contains_point(cx, cy)
