"""Tests for the plane-sweep pair enumeration."""

from hypothesis import given

from repro.geometry import Rect, sweep_pairs
from repro.geometry.sweep import brute_force_pairs
from repro.metrics.counters import CpuCounters

from ..conftest import random_rects
from ..strategies import rect_lists


def pair_key(pairs):
    return sorted((id(a), id(b)) for a, b in pairs)


class TestSweepBasics:
    def test_empty_left(self):
        assert sweep_pairs([], [Rect(0, 0, 1, 1)]) == []

    def test_empty_right(self):
        assert sweep_pairs([Rect(0, 0, 1, 1)], []) == []

    def test_single_overlap(self):
        a, b = Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)
        assert sweep_pairs([a], [b]) == [(a, b)]

    def test_single_disjoint(self):
        assert sweep_pairs([Rect(0, 0, 1, 1)], [Rect(5, 5, 6, 6)]) == []

    def test_x_overlap_but_y_disjoint(self):
        a, b = Rect(0, 0, 2, 1), Rect(1, 5, 3, 6)
        assert sweep_pairs([a], [b]) == []

    def test_orientation_preserved(self):
        """Pairs are always (a_element, b_element) regardless of sweep
        interleaving."""
        a = [Rect(1, 0, 2, 1)]
        b = [Rect(0, 0, 3, 1)]  # b starts left of a
        [(pa, pb)] = sweep_pairs(a, b)
        assert pa is a[0]
        assert pb is b[0]

    def test_duplicates_counted_separately(self):
        r = Rect(0, 0, 1, 1)
        a = [r, Rect(0, 0, 1, 1)]
        b = [Rect(0.5, 0.5, 2, 2)]
        assert len(sweep_pairs(a, b)) == 2

    def test_rect_of_adapter(self):
        wrapped_a = [("x", Rect(0, 0, 2, 2))]
        wrapped_b = [("y", Rect(1, 1, 3, 3))]
        pairs = sweep_pairs(wrapped_a, wrapped_b, rect_of=lambda e: e[1])
        assert pairs == [(wrapped_a[0], wrapped_b[0])]

    def test_matches_brute_force_on_random_data(self):
        a = random_rects(120, seed=1)
        b = random_rects(150, seed=2)
        assert pair_key(sweep_pairs(a, b)) == pair_key(brute_force_pairs(a, b))

    def test_identical_lists(self):
        a = random_rects(60, seed=3)
        assert pair_key(sweep_pairs(a, a)) == pair_key(brute_force_pairs(a, a))


class TestSweepCounters:
    def test_counts_are_recorded(self):
        counters = CpuCounters()
        a = random_rects(50, seed=4)
        b = random_rects(50, seed=5)
        sweep_pairs(a, b, counters=counters)
        assert counters.xy_tests > 0
        assert counters.bbox_tests == 0

    def test_sweep_cheaper_than_nested_loop(self):
        """The whole point of the sweep: far fewer than n*m tests."""
        counters = CpuCounters()
        a = random_rects(200, seed=6, side=0.01)
        b = random_rects(200, seed=7, side=0.01)
        sweep_pairs(a, b, counters=counters)
        assert counters.xy_tests < 200 * 200 / 2

    def test_no_counts_without_counters(self):
        # Smoke: counters=None must not raise.
        sweep_pairs(random_rects(10), random_rects(10), counters=None)

    def test_counter_accumulates_across_calls(self):
        counters = CpuCounters()
        a, b = random_rects(20, seed=8), random_rects(20, seed=9)
        sweep_pairs(a, b, counters=counters)
        first = counters.xy_tests
        sweep_pairs(a, b, counters=counters)
        assert counters.xy_tests == 2 * first


# --------------------------------------------------------------------- #
# Property: sweep result == brute-force result, always
# --------------------------------------------------------------------- #


@given(rect_lists(max_size=30), rect_lists(max_size=30))
def test_sweep_equals_brute_force(a, b):
    assert pair_key(sweep_pairs(a, b)) == pair_key(brute_force_pairs(a, b))


@given(rect_lists(max_size=25))
def test_self_join_includes_diagonal(a):
    pairs = sweep_pairs(a, a)
    keys = {(id(x), id(y)) for x, y in pairs}
    for r in a:
        assert (id(r), id(r)) in keys  # every rect overlaps itself
