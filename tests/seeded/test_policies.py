"""Tests for copy strategies and update policies."""

import pytest

from repro.geometry import Rect
from repro.rtree.node import Entry
from repro.seeded.policies import CopyStrategy, UpdatePolicy, apply_update


class TestParsing:
    @pytest.mark.parametrize("text,member", [
        ("C1", CopyStrategy.MBR),
        ("c2", CopyStrategy.CENTER),
        ("C3", CopyStrategy.CENTER_AT_SLOTS),
        ("CENTER", CopyStrategy.CENTER),
    ])
    def test_copy_parse(self, text, member):
        assert CopyStrategy.parse(text) is member

    @pytest.mark.parametrize("text,member", [
        ("U1", UpdatePolicy.NONE),
        ("u2", UpdatePolicy.ENCLOSE_WITH_SEED),
        ("U3", UpdatePolicy.ENCLOSE_DATA_ONLY),
        ("U4", UpdatePolicy.SLOT_WITH_SEED),
        ("U5", UpdatePolicy.SLOT_DATA_ONLY),
    ])
    def test_update_parse(self, text, member):
        assert UpdatePolicy.parse(text) is member

    def test_bad_names_raise(self):
        with pytest.raises(ValueError):
            CopyStrategy.parse("C9")
        with pytest.raises(ValueError):
            UpdatePolicy.parse("U0")


class TestPolicyFlags:
    def test_levels_updated(self):
        assert UpdatePolicy.ENCLOSE_WITH_SEED.updates_all_levels
        assert UpdatePolicy.ENCLOSE_DATA_ONLY.updates_all_levels
        assert not UpdatePolicy.SLOT_WITH_SEED.updates_all_levels
        assert not UpdatePolicy.NONE.updates_all_levels

    def test_slot_updated(self):
        assert not UpdatePolicy.NONE.updates_slot_level
        for p in (UpdatePolicy.ENCLOSE_WITH_SEED, UpdatePolicy.SLOT_DATA_ONLY):
            assert p.updates_slot_level

    def test_seed_box_retention(self):
        assert UpdatePolicy.ENCLOSE_WITH_SEED.encloses_seed_box
        assert UpdatePolicy.SLOT_WITH_SEED.encloses_seed_box
        assert not UpdatePolicy.ENCLOSE_DATA_ONLY.encloses_seed_box
        assert not UpdatePolicy.SLOT_DATA_ONLY.encloses_seed_box


SEED_BOX = Rect(0.0, 0.0, 0.2, 0.2)
DATA = Rect(0.5, 0.5, 0.6, 0.6)
DATA2 = Rect(0.8, 0.8, 0.9, 0.9)


def fresh_entry():
    return Entry(Rect(*SEED_BOX.as_tuple()), -1)


class TestApplyUpdate:
    def test_u1_never_changes(self):
        e = fresh_entry()
        assert not apply_update(UpdatePolicy.NONE, e, DATA, at_slot_level=True)
        assert e.mbr == SEED_BOX
        assert not e.touched

    def test_u2_unions_with_seed(self):
        e = fresh_entry()
        assert apply_update(UpdatePolicy.ENCLOSE_WITH_SEED, e, DATA, False)
        assert e.mbr == SEED_BOX.union(DATA)

    def test_u3_replaces_then_unions(self):
        e = fresh_entry()
        apply_update(UpdatePolicy.ENCLOSE_DATA_ONLY, e, DATA, True)
        assert e.mbr == DATA  # seed value dropped
        apply_update(UpdatePolicy.ENCLOSE_DATA_ONLY, e, DATA2, True)
        assert e.mbr == DATA.union(DATA2)

    def test_u4_only_at_slot_level(self):
        e = fresh_entry()
        assert not apply_update(UpdatePolicy.SLOT_WITH_SEED, e, DATA, False)
        assert e.mbr == SEED_BOX
        assert apply_update(UpdatePolicy.SLOT_WITH_SEED, e, DATA, True)
        assert e.mbr == SEED_BOX.union(DATA)

    def test_u5_only_at_slot_level_data_only(self):
        e = fresh_entry()
        assert not apply_update(UpdatePolicy.SLOT_DATA_ONLY, e, DATA, False)
        assert apply_update(UpdatePolicy.SLOT_DATA_ONLY, e, DATA, True)
        assert e.mbr == DATA

    def test_touched_flag_tracks_updates(self):
        e = fresh_entry()
        apply_update(UpdatePolicy.SLOT_DATA_ONLY, e, DATA, False)
        assert not e.touched  # nothing happened off the slot level
        apply_update(UpdatePolicy.SLOT_DATA_ONLY, e, DATA, True)
        assert e.touched
