"""Tests for the seeded tree's retained-index after-life (Section 5)."""

import pytest

from repro.config import SystemConfig
from repro.errors import TreePhaseError
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.seeded import SeededTree
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries


def finished_tree(n_r=150, n_s=120, seed=40):
    cfg = SystemConfig(page_size=104, buffer_pages=256)
    m = MetricsCollector(cfg)
    buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
    t_r = RTree.build(buf, cfg, random_entries(n_r, seed=seed), metrics=m)
    tree = SeededTree(buf, cfg, m)
    tree.seed(t_r)
    entries = random_entries(n_s, seed=seed + 1, oid_start=1000)
    tree.grow_from(entries)
    tree.cleanup()
    return tree, entries


class TestInsertRetained:
    def test_rejected_before_ready(self):
        cfg = SystemConfig(page_size=104, buffer_pages=64)
        m = MetricsCollector(cfg)
        buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
        tree = SeededTree(buf, cfg, m)
        with pytest.raises(TreePhaseError):
            tree.insert_retained(Rect(0, 0, 1, 1), 1)

    def test_inserted_objects_queryable(self):
        tree, entries = finished_tree()
        new = Rect(0.33, 0.33, 0.34, 0.34)
        tree.insert_retained(new, 9999)
        assert 9999 in tree.window_query(Rect(0.3, 0.3, 0.4, 0.4))
        assert len(tree) == len(entries) + 1

    def test_original_objects_survive(self):
        tree, entries = finished_tree()
        for i, (rect, _) in enumerate(random_entries(80, seed=99,
                                                     oid_start=50_000)):
            tree.insert_retained(rect, 50_000 + i)
        got = {oid for _, oid in tree.all_objects()}
        assert {oid for _, oid in entries} <= got
        assert len(got) == len(entries) + 80

    def test_invariants_hold_after_many_inserts(self):
        tree, _ = finished_tree()
        for rect, oid in random_entries(200, seed=41, oid_start=70_000):
            tree.insert_retained(rect, oid)
        tree.validate()

    def test_query_matches_linear_scan_after_growth(self):
        tree, entries = finished_tree()
        extra = random_entries(150, seed=42, oid_start=80_000)
        for rect, oid in extra:
            tree.insert_retained(rect, oid)
        window = Rect(0.2, 0.2, 0.7, 0.7)
        expected = sorted(
            oid for rect, oid in entries + extra if rect.intersects(window)
        )
        assert sorted(tree.window_query(window)) == expected

    def test_root_may_grow(self):
        """Massive retained growth may split the old root: the tree is an
        ordinary index now and must keep working."""
        tree, _ = finished_tree(n_s=20)
        before = tree.height
        for rect, oid in random_entries(600, seed=43, oid_start=90_000):
            tree.insert_retained(rect, oid)
        tree.validate()
        assert tree.height >= before

    def test_empty_tree_accepts_retained_inserts(self):
        cfg = SystemConfig(page_size=104, buffer_pages=64)
        m = MetricsCollector(cfg)
        buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
        t_r = RTree.build(buf, cfg, random_entries(80, seed=44), metrics=m)
        tree = SeededTree(buf, cfg, m)
        tree.seed(t_r)
        tree.grow_from([])
        tree.cleanup()  # collapses to an empty leaf
        tree.insert_retained(Rect(0.5, 0.5, 0.6, 0.6), 1)
        assert tree.window_query(Rect(0, 0, 1, 1)) == [1]
        tree.validate()
