"""Tests for the seeded tree's cost accounting, phase by phase.

These pin down *where* the costs land — the property the whole
reproduction rests on: construction charges construction, matching
charges matching, sequential mechanisms actually produce sequential
accesses.
"""

import pytest

from repro.config import SystemConfig
from repro.join import match_trees
from repro.metrics import MetricsCollector, Phase
from repro.rtree import RTree
from repro.seeded import SeededTree
from repro.storage import BufferPool, DataFile, DiskSimulator

from ..conftest import random_entries


def build_env(buffer_pages=64, page_size=224, n_r=1500):
    cfg = SystemConfig(page_size=page_size, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    disk = DiskSimulator(m)
    buf = BufferPool(cfg.buffer_pages, disk)
    with m.phase(Phase.SETUP):
        t_r = RTree.build(buf, cfg, random_entries(n_r, seed=61),
                          metrics=None)
        t_r.metrics = m
        buf.purge()
    disk.reset_arm()
    return cfg, m, disk, buf, t_r


def build_datafile(disk, cfg, m, n=1000, seed=62):
    with m.phase(Phase.SETUP):
        return DataFile.create(
            disk, cfg, random_entries(n, seed=seed, oid_start=10_000)
        )


class TestConstructionAccounting:
    def test_grow_from_datafile_charges_sequential_scan(self):
        cfg, m, disk, buf, t_r = build_env()
        file_s = build_datafile(disk, cfg, m)
        tree = SeededTree(buf, cfg, m, use_linked_lists=False)
        with m.phase(Phase.CONSTRUCT):
            tree.seed(t_r)
            tree.grow_from(file_s)
            tree.cleanup()
        io = m.io_for(Phase.CONSTRUCT)
        # The D_S scan contributes its pages as one sequential sweep.
        assert io.sequential_reads >= file_s.num_pages - 1

    def test_seeding_reads_charged(self):
        cfg, m, disk, buf, t_r = build_env()
        tree = SeededTree(buf, cfg, m, seed_levels=2)
        with m.phase(Phase.CONSTRUCT):
            tree.seed(t_r)
        io = m.io_for(Phase.CONSTRUCT)
        # Root + its children of T_R were read (cold cache after setup).
        root_arity = len(t_r._node_unaccounted(t_r.root_id).entries)
        assert io.random_reads >= 1 + root_arity

    def test_linked_lists_shift_io_to_sequential(self):
        cfg, m, disk, buf, t_r = build_env(buffer_pages=32)
        file_s = build_datafile(disk, cfg, m, n=2000)

        def construct(use_lists):
            m.reset()
            buf.purge()
            disk.reset_arm()
            tree = SeededTree(buf, cfg, m, use_linked_lists=use_lists)
            with m.phase(Phase.CONSTRUCT):
                tree.seed(t_r)
                tree.grow_from(file_s)
                tree.cleanup()
            return m.io_for(Phase.CONSTRUCT)

        direct = construct(False)
        lists = construct(True)
        # With lists, random reads shrink dramatically...
        assert lists.random_reads < direct.random_reads / 2
        # ...bought with extra *sequential* traffic (batches + regroup).
        assert lists.sequential_reads > direct.sequential_reads
        assert lists.sequential_writes > direct.sequential_writes

    def test_filtering_adds_cpu_not_io(self):
        cfg, m, disk, buf, t_r = build_env()
        file_s = build_datafile(disk, cfg, m)

        costs = {}
        for filtering in (False, True):
            m.reset()
            buf.purge()
            disk.reset_arm()
            tree = SeededTree(buf, cfg, m, filtering=filtering)
            with m.phase(Phase.CONSTRUCT):
                tree.seed(t_r)
                tree.grow_from(file_s)
                tree.cleanup()
            costs[filtering] = (m.cpu.bbox_tests, m.summary().construct_io)

        assert costs[True][0] > 2 * costs[False][0]       # CPU up
        assert costs[True][1] <= costs[False][1] * 1.1    # I/O not worse


class TestMatchAccounting:
    def test_match_reads_charged_to_match_phase(self):
        cfg, m, disk, buf, t_r = build_env(buffer_pages=32)
        file_s = build_datafile(disk, cfg, m)
        tree = SeededTree(buf, cfg, m)
        with m.phase(Phase.CONSTRUCT):
            tree.seed(t_r)
            tree.grow_from(file_s)
            tree.cleanup()
        construct_before = m.io_for(Phase.CONSTRUCT).total_accesses
        with m.phase(Phase.MATCH):
            match_trees(tree, t_r, m)
        assert m.io_for(Phase.MATCH).random_reads > 0
        assert m.io_for(Phase.CONSTRUCT).total_accesses == construct_before

    def test_warm_buffer_matching_writes_dirty_pages(self):
        """Dirty T_S pages evicted during matching land in the match
        write column — the effect the paper explicitly calls out."""
        cfg, m, disk, buf, t_r = build_env(buffer_pages=32)
        file_s = build_datafile(disk, cfg, m, n=2000)
        tree = SeededTree(buf, cfg, m)
        with m.phase(Phase.CONSTRUCT):
            tree.seed(t_r)
            tree.grow_from(file_s)
            tree.cleanup()
        with m.phase(Phase.MATCH):
            match_trees(tree, t_r, m)
        assert m.io_for(Phase.MATCH).random_writes > 0

    def test_summary_charges_match_writes_to_construction(self):
        cfg, m, disk, buf, t_r = build_env(buffer_pages=32)
        file_s = build_datafile(disk, cfg, m, n=2000)
        tree = SeededTree(buf, cfg, m)
        with m.phase(Phase.CONSTRUCT):
            tree.seed(t_r)
            tree.grow_from(file_s)
            tree.cleanup()
        with m.phase(Phase.MATCH):
            match_trees(tree, t_r, m)
        s = m.summary()
        assert s.construct_io == pytest.approx(
            s.construct_read + s.construct_write + s.match_write
        )
        assert s.match_io == pytest.approx(s.match_read)
