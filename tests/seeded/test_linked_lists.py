"""Tests for the intermediate linked-list manager (Section 3.1)."""

import pytest

from repro.config import SystemConfig
from repro.errors import StorageError
from repro.geometry import Rect
from repro.metrics import MetricsCollector, Phase
from repro.seeded.linked_lists import LinkedListManager
from repro.storage import DiskSimulator

from ..conftest import random_entries


def make_manager(num_slots=4, budget=8, page_size=104):
    cfg = SystemConfig(page_size=page_size)  # data capacity 4
    metrics = MetricsCollector(cfg)
    disk = DiskSimulator(metrics)
    return LinkedListManager(disk, cfg, num_slots, budget), metrics, cfg


def drain_all(manager):
    out = {}
    for slot, entries in manager.regroup_and_drain():
        out.setdefault(slot, []).extend(entries)
    return out


class TestAppend:
    def test_entries_accumulate(self):
        mgr, _, _ = make_manager()
        entries = random_entries(10)
        for rect, oid in entries:
            mgr.append(oid % 4, (rect, oid))
        assert mgr.total_entries == 10
        assert mgr.entries_in_slot(0) == 3  # oids 0, 4, 8

    def test_page_budget_rejected_if_zero(self):
        cfg = SystemConfig(page_size=104)
        disk = DiskSimulator(MetricsCollector(cfg))
        with pytest.raises(StorageError):
            LinkedListManager(disk, cfg, 2, 0)

    def test_resident_pages_grow_with_capacity(self):
        mgr, _, cfg = make_manager()
        for rect, oid in random_entries(cfg.data_page_capacity + 1):
            mgr.append(0, (rect, oid))
        assert mgr.resident_pages == 2


class TestFlushing:
    def test_no_flush_under_budget(self):
        mgr, metrics, _ = make_manager(budget=50)
        for rect, oid in random_entries(40):
            mgr.append(oid % 4, (rect, oid))
        assert mgr.batches_flushed == 0
        assert metrics.io_for(Phase.SETUP).total_accesses == 0

    def test_flush_triggers_at_budget(self):
        mgr, metrics, _ = make_manager(num_slots=2, budget=4)
        with metrics.phase(Phase.CONSTRUCT):
            for rect, oid in random_entries(60):
                mgr.append(oid % 2, (rect, oid))
        assert mgr.batches_flushed >= 1
        io = metrics.io_for(Phase.CONSTRUCT)
        # Batch writes are sequential sweeps, not random scatter.
        assert io.sequential_writes > io.random_writes

    def test_flush_prefers_long_lists(self):
        mgr, metrics, _ = make_manager(num_slots=2, budget=6)
        with metrics.phase(Phase.CONSTRUCT):
            # Slot 0 gets a long list, slot 1 a single short page.
            for rect, oid in random_entries(21):
                mgr.append(0, (rect, oid))
            mgr.append(1, (Rect(0, 0, 1, 1), 99))
            # Trigger pressure
            for rect, oid in random_entries(8, oid_start=200):
                mgr.append(0, (rect, oid))
        # The short slot-1 list (1 page <= threshold 2) stayed resident.
        assert mgr.slots[1].resident_pages == 1

    def test_flush_all_fallback_with_tiny_lists(self):
        """Many slots with 1-page lists: the threshold frees nothing, so
        everything must be flushed instead of deadlocking."""
        mgr, metrics, _ = make_manager(num_slots=16, budget=4)
        with metrics.phase(Phase.CONSTRUCT):
            for slot in range(16):
                mgr.append(slot, (Rect(0, 0, 1, 1), slot))
        assert mgr.batches_flushed >= 1


class TestRegroupAndDrain:
    def test_round_trip_without_flushes(self):
        mgr, metrics, _ = make_manager(budget=100)
        entries = random_entries(30)
        for rect, oid in entries:
            mgr.append(oid % 4, (rect, oid))
        grouped = drain_all(mgr)
        flat = sorted(
            (oid for es in grouped.values() for _, oid in es)
        )
        assert flat == [oid for _, oid in entries]
        assert metrics.io_for(Phase.SETUP).total_accesses == 0  # all resident

    def test_round_trip_with_flushes(self):
        mgr, metrics, _ = make_manager(num_slots=3, budget=4)
        entries = random_entries(100)
        with metrics.phase(Phase.CONSTRUCT):
            for rect, oid in entries:
                mgr.append(oid % 3, (rect, oid))
            grouped = drain_all(mgr)
        for slot, slot_entries in grouped.items():
            assert sorted(o for _, o in slot_entries) == [
                o for _, o in entries if o % 3 == slot
            ]

    def test_groups_are_slot_ordered(self):
        mgr, _, _ = make_manager(num_slots=5, budget=100)
        for rect, oid in random_entries(25):
            mgr.append(oid % 5, (rect, oid))
        order = [slot for slot, _ in mgr.regroup_and_drain()]
        assert order == sorted(order)

    def test_regroup_io_is_sequential(self):
        mgr, metrics, _ = make_manager(num_slots=8, budget=4)
        with metrics.phase(Phase.CONSTRUCT):
            for rect, oid in random_entries(120):
                mgr.append(oid % 8, (rect, oid))
            drain_all(mgr)
        io = metrics.io_for(Phase.CONSTRUCT)
        # The whole point of Section 3.1: sequential dwarfs random.
        assert io.sequential_reads > 5 * io.random_reads
        assert io.sequential_writes > 5 * io.random_writes

    def test_drain_clears_state(self):
        mgr, _, _ = make_manager(budget=100)
        for rect, oid in random_entries(10):
            mgr.append(oid % 4, (rect, oid))
        drain_all(mgr)
        assert mgr.resident_pages == 0
        assert not mgr.batches

    def test_empty_manager_drains_nothing(self):
        mgr, _, _ = make_manager()
        assert drain_all(mgr) == {}
