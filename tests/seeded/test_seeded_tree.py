"""Tests for the seeded tree lifecycle: seeding, growing, clean-up."""

import pytest

from repro.config import SystemConfig
from repro.errors import SeedingError, TreePhaseError
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.seeded import CopyStrategy, SeededTree, UpdatePolicy
from repro.seeded.tree import TreePhase
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries


class Env:
    def __init__(self, buffer_pages=512, page_size=104):
        self.config = SystemConfig(page_size=page_size,
                                   buffer_pages=buffer_pages)
        self.metrics = MetricsCollector(self.config)
        self.disk = DiskSimulator(self.metrics)
        self.buffer = BufferPool(self.config.buffer_pages, self.disk)

    def seeding_tree(self, n=150, seed=0) -> RTree:
        return RTree.build(
            self.buffer, self.config, random_entries(n, seed=seed),
            metrics=self.metrics, name="T_R",
        )

    def seeded(self, **kwargs) -> SeededTree:
        return SeededTree(self.buffer, self.config, self.metrics, **kwargs)


def grow_and_finish(tree: SeededTree, entries) -> SeededTree:
    tree.grow_from(entries)
    tree.cleanup()
    return tree


class TestSeeding:
    def test_copies_root_arity(self):
        env = Env()
        t_r = env.seeding_tree()
        tree = env.seeded(seed_levels=2)
        tree.seed(t_r)
        seed_root = tree.read_node(tree.root_id)
        source_root = t_r.read_node(t_r.root_id)
        assert len(seed_root.entries) == len(source_root.entries)

    def test_slot_count_matches_level_entries(self):
        env = Env()
        t_r = env.seeding_tree()
        tree = env.seeded(seed_levels=2)
        tree.seed(t_r)
        source_root = t_r.read_node(t_r.root_id)
        expected_slots = sum(
            len(t_r.read_node(e.ref).entries) for e in source_root.entries
        )
        assert tree.num_slots == expected_slots

    def test_too_many_seed_levels_rejected(self):
        env = Env()
        t_r = env.seeding_tree(n=10)  # shallow tree
        tree = env.seeded(seed_levels=t_r.height)
        with pytest.raises(SeedingError):
            tree.seed(t_r)

    def test_zero_seed_levels_rejected(self):
        env = Env()
        with pytest.raises(SeedingError):
            env.seeded(seed_levels=0)

    def test_double_seed_rejected(self):
        env = Env()
        t_r = env.seeding_tree()
        tree = env.seeded()
        tree.seed(t_r)
        with pytest.raises(TreePhaseError):
            tree.seed(t_r)

    def test_no_pins_left_after_lifecycle(self):
        env = Env()
        t_r = env.seeding_tree()
        tree = env.seeded()
        tree.seed(t_r)
        grow_and_finish(tree, random_entries(30, seed=5, oid_start=1000))
        for page_id in list(env.buffer.resident_ids()):
            assert env.buffer.pin_count(page_id) == 0

    def test_survives_seed_levels_larger_than_buffer(self):
        """Seed pages are not pinned, so a buffer smaller than the seed
        levels pages them in and out instead of deadlocking."""
        env = Env(buffer_pages=12)
        t_r = env.seeding_tree(n=400)
        tree = env.seeded(seed_levels=3)
        tree.seed(t_r)
        entries = random_entries(100, seed=55, oid_start=1000)
        grow_and_finish(tree, entries)
        tree.validate()
        assert sorted(tree.all_objects(), key=lambda e: e[1]) == entries


class TestCopyStrategies:
    def seed_with(self, strategy, seed_levels=2):
        env = Env()
        t_r = env.seeding_tree()
        tree = env.seeded(copy_strategy=strategy, seed_levels=seed_levels)
        tree.seed(t_r)
        return env, t_r, tree

    def test_c1_copies_exact_boxes(self):
        env, t_r, tree = self.seed_with(CopyStrategy.MBR)
        seed_root = tree.read_node(tree.root_id)
        source_root = t_r.read_node(t_r.root_id)
        for copy, orig in zip(seed_root.entries, source_root.entries):
            assert copy.mbr == orig.mbr

    def test_c2_stores_center_points_everywhere(self):
        env, t_r, tree = self.seed_with(CopyStrategy.CENTER)
        for nodes in tree._seed_nodes_by_depth():
            for node in nodes:
                assert all(e.mbr.is_point() for e in node.entries)

    def test_c2_points_are_source_centers(self):
        env, t_r, tree = self.seed_with(CopyStrategy.CENTER)
        seed_root = tree.read_node(tree.root_id)
        source_root = t_r.read_node(t_r.root_id)
        for copy, orig in zip(seed_root.entries, source_root.entries):
            assert copy.mbr.center() == orig.mbr.center()

    def test_c3_slot_level_is_points(self):
        env, t_r, tree = self.seed_with(CopyStrategy.CENTER_AT_SLOTS)
        slot_nodes = tree._seed_nodes_by_depth()[-1]
        for node in slot_nodes:
            assert all(e.mbr.is_point() for e in node.entries)

    def test_c3_upper_levels_bound_children(self):
        env, t_r, tree = self.seed_with(CopyStrategy.CENTER_AT_SLOTS)
        by_depth = tree._seed_nodes_by_depth()
        for node in by_depth[0]:
            for e in node.entries:
                child = tree._node_unaccounted(e.ref)
                from repro.rtree.node import node_mbr
                assert e.mbr == node_mbr(child)


class TestGrowing:
    def test_phase_guards(self):
        env = Env()
        tree = env.seeded()
        with pytest.raises(TreePhaseError):
            tree.insert(Rect(0, 0, 1, 1), 1)
        with pytest.raises(TreePhaseError):
            tree.grow_from([])
        with pytest.raises(TreePhaseError):
            tree.cleanup()
        with pytest.raises(TreePhaseError):
            tree.window_query(Rect(0, 0, 1, 1))

    def test_insert_after_cleanup_rejected(self):
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        grow_and_finish(tree, [])
        with pytest.raises(TreePhaseError):
            tree.insert(Rect(0, 0, 1, 1), 1)

    def test_count_tracks_inserts(self):
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        entries = random_entries(40, seed=6, oid_start=1000)
        tree.grow_from(entries)
        assert len(tree) == 40

    def test_seed_structure_never_changes(self):
        """Splits must not propagate into the seed levels."""
        env = Env()
        tree = env.seeded(seed_levels=2)
        tree.seed(env.seeding_tree())
        arities = [
            [len(n.entries) for n in nodes]
            for nodes in tree._seed_nodes_by_depth()
        ]
        tree.grow_from(random_entries(300, seed=7, oid_start=1000))
        after = [
            [len(n.entries) for n in nodes]
            for nodes in tree._seed_nodes_by_depth()
        ]
        assert arities == after

    def test_u1_leaves_seed_boxes_untouched_while_growing(self):
        env = Env()
        tree = env.seeded(update_policy=UpdatePolicy.NONE,
                          copy_strategy=CopyStrategy.MBR)
        tree.seed(env.seeding_tree())
        before = [
            e.mbr for n in tree._seed_nodes_by_depth()[-1] for e in n.entries
        ]
        tree.grow_from(random_entries(100, seed=8, oid_start=1000))
        after = [
            e.mbr for n in tree._seed_nodes_by_depth()[-1] for e in n.entries
        ]
        assert before == after

    def test_u2_extends_seed_boxes(self):
        env = Env()
        tree = env.seeded(update_policy=UpdatePolicy.ENCLOSE_WITH_SEED,
                          copy_strategy=CopyStrategy.MBR)
        tree.seed(env.seeding_tree())
        root = tree.read_node(tree.root_id)
        originals = [e.mbr for e in root.entries]
        tree.grow_from(random_entries(100, seed=9, oid_start=1000))
        updated = [e.mbr for e in root.entries]
        # U2 keeps enclosing the seed box.
        assert all(u.contains(o) for u, o in zip(updated, originals))
        assert any(u != o for u, o in zip(updated, originals))


class TestCleanup:
    @pytest.mark.parametrize("policy", list(UpdatePolicy))
    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_all_policy_combinations_validate(self, policy, strategy):
        env = Env()
        tree = env.seeded(update_policy=policy, copy_strategy=strategy)
        tree.seed(env.seeding_tree())
        entries = random_entries(120, seed=10, oid_start=1000)
        grow_and_finish(tree, entries)
        tree.validate()
        got = sorted(tree.all_objects(), key=lambda e: e[1])
        assert got == entries

    def test_empty_growth_collapses_to_empty_leaf(self):
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        grow_and_finish(tree, [])
        assert tree.window_query(Rect(0, 0, 1, 1)) == []
        assert tree.num_nodes() == 1
        tree.validate()

    def test_empty_slots_pruned(self):
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        # A single object uses exactly one slot.
        grow_and_finish(tree, [(Rect(0.5, 0.5, 0.55, 0.55), 1)])
        tree.validate()
        stats = tree.stats()
        assert stats.used_slots == 1
        # Every surviving path leads to data.
        assert tree.all_objects() == [(Rect(0.5, 0.5, 0.55, 0.55), 1)]

    def test_window_query_matches_linear_scan(self):
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        entries = random_entries(250, seed=11, oid_start=1000)
        grow_and_finish(tree, entries)
        window = Rect(0.2, 0.2, 0.6, 0.6)
        expected = sorted(o for r, o in entries if r.intersects(window))
        assert sorted(tree.window_query(window)) == expected

    def test_point_query(self):
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        grow_and_finish(tree, [(Rect(0.4, 0.4, 0.6, 0.6), 77)])
        assert tree.point_query(0.5, 0.5) == [77]
        assert tree.point_query(0.9, 0.9) == []

    def test_double_cleanup_rejected(self):
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        grow_and_finish(tree, [])
        with pytest.raises(TreePhaseError):
            tree.cleanup()

    def test_unbalance_is_possible(self):
        """Grown subtrees may end at different heights; the tree still
        validates (the matcher never requires balance)."""
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        # Skew: many objects in one corner, one object elsewhere.
        skewed = [
            (Rect(0.01 * i / 100, 0.01, 0.01 * i / 100 + 0.005, 0.015), i)
            for i in range(100)
        ] + [(Rect(0.9, 0.9, 0.95, 0.95), 100)]
        grow_and_finish(tree, skewed)
        tree.validate()
        levels = {
            tree._node_unaccounted(e.ref).level
            for n in tree.iter_nodes() if not n.is_leaf
            for e in n.entries
        }
        assert len(levels) > 1


class TestLinkedListsIntegration:
    def test_forced_lists_equal_direct_growth(self):
        entries = random_entries(200, seed=12, oid_start=1000)
        results = []
        for use_lists in (False, True):
            env = Env()
            tree = env.seeded(use_linked_lists=use_lists)
            tree.seed(env.seeding_tree())
            grow_and_finish(tree, entries)
            tree.validate()
            results.append(sorted(tree.all_objects(), key=lambda e: e[1]))
        assert results[0] == results[1] == entries

    def test_auto_decision_small_input_is_direct(self):
        env = Env()
        tree = env.seeded()  # buffer 512 pages >> tiny tree
        tree.seed(env.seeding_tree())
        tree.grow_from(random_entries(20, seed=13, oid_start=1000))
        assert tree._lists is None
        tree.cleanup()

    def test_auto_decision_large_input_uses_lists(self):
        env = Env(buffer_pages=32)
        tree = env.seeded()
        tree.seed(env.seeding_tree(n=60))
        tree.grow_from(random_entries(400, seed=14, oid_start=1000))
        # grow_from defers subtree building; lists still active
        assert tree._lists is not None
        tree.cleanup()
        tree.validate()
        assert len(tree) == 400

    def test_stats_capture_batches(self):
        env = Env(buffer_pages=32)
        tree = env.seeded(use_linked_lists=True)
        tree.seed(env.seeding_tree(n=60))
        grow_and_finish(tree, random_entries(500, seed=15, oid_start=1000))
        stats = tree.stats()
        assert stats.list_batches > 0
        assert stats.list_pages_flushed > 0


class TestArtificialSeeding:
    def test_grid_boxes_become_slots(self):
        env = Env()
        boxes = [
            Rect(i / 4, j / 4, (i + 1) / 4, (j + 1) / 4)
            for i in range(4) for j in range(4)
        ]
        tree = env.seeded()
        tree.seed_from_boxes(boxes)
        assert tree.num_slots == 16
        entries = random_entries(150, seed=16, oid_start=1000)
        grow_and_finish(tree, entries)
        tree.validate()
        assert sorted(tree.all_objects(), key=lambda e: e[1]) == entries

    def test_many_boxes_build_multiple_levels(self):
        env = Env()  # capacity 4
        boxes = [
            Rect(i / 10, j / 10, (i + 1) / 10, (j + 1) / 10)
            for i in range(10) for j in range(10)
        ]
        tree = env.seeded()
        tree.seed_from_boxes(boxes)
        assert tree.seed_levels >= 3  # 100 boxes at fan-out 4
        assert tree.num_slots == 100
        grow_and_finish(tree, random_entries(80, seed=17, oid_start=1000))
        tree.validate()

    def test_filtering_with_artificial_seeds_rejected(self):
        env = Env()
        tree = env.seeded(filtering=True)
        with pytest.raises(SeedingError):
            tree.seed_from_boxes([Rect(0, 0, 1, 1)])

    def test_empty_boxes_rejected(self):
        env = Env()
        with pytest.raises(SeedingError):
            env.seeded().seed_from_boxes([])

    def test_after_seed_rejected(self):
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        with pytest.raises(TreePhaseError):
            tree.seed_from_boxes([Rect(0, 0, 1, 1)])


class TestStatsAndRepr:
    def test_stats_fields(self):
        env = Env()
        tree = env.seeded()
        tree.seed(env.seeding_tree())
        entries = random_entries(60, seed=18, oid_start=1000)
        grow_and_finish(tree, entries)
        stats = tree.stats()
        assert stats.inserted == 60
        assert stats.filtered == 0
        assert 0 < stats.used_slots <= stats.num_slots
        assert stats.seed_levels == 2

    def test_repr_shows_phase(self):
        env = Env()
        tree = env.seeded()
        assert "created" in repr(tree)
        assert tree.phase is TreePhase.CREATED

    def test_height_upper_bound(self):
        env = Env()
        tree = env.seeded(seed_levels=2)
        tree.seed(env.seeding_tree())
        grow_and_finish(tree, random_entries(100, seed=19, oid_start=1000))
        assert tree.height >= 3  # 2 seed levels + at least a leaf level
