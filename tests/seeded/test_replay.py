"""Construction replay cache mechanics (see :mod:`repro.seeded.replay`).

Bit-identity of replayed runs is proven end-to-end by the differential
suite (``test_batch_repeat_runs_bit_identical``); these tests pin the
mechanics — when the cache records, when it replays, when it stands
down, when it invalidates, and that the allocation-drift invariant
fails loudly instead of degrading.
"""

from __future__ import annotations

import pytest

import repro.seeded.replay as replay_mod
from repro.config import SystemConfig
from repro.geometry import Rect
from repro.join import spatial_join
from repro.rtree.node import Node
from repro.storage import PageKind
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

CFG = SystemConfig(page_size=104, buffer_pages=64)

SUMMARY_FIELDS = (
    "match_read", "match_write", "construct_read", "construct_write",
    "bbox_tests", "xy_tests",
)


def _workload():
    d_r = generate_clustered(ClusteredConfig(
        220, cover_quotient=2.0, objects_per_cluster=11,
        data_side_bound=0.06, seed=977,
    ))
    d_s = generate_clustered(ClusteredConfig(
        140, cover_quotient=2.0, objects_per_cluster=7,
        data_side_bound=0.06, seed=978, oid_start=10**6,
    ))
    return d_r, d_s


@pytest.fixture
def env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "1")
    monkeypatch.setenv("REPRO_BATCH", "1")
    d_r, d_s = _workload()
    ws = Workspace(CFG)
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    return ws, tree_r, file_s


@pytest.fixture
def spies(monkeypatch):
    """Count _record/_replay invocations without changing behaviour."""
    counts = {"record": 0, "replay": 0}
    orig_record, orig_replay = replay_mod._record, replay_mod._replay

    def record(ctx, build, key):
        counts["record"] += 1
        return orig_record(ctx, build, key)

    def replay(rec, ctx):
        counts["replay"] += 1
        return orig_replay(rec, ctx)

    monkeypatch.setattr(replay_mod, "_record", record)
    monkeypatch.setattr(replay_mod, "_replay", replay)
    return counts


def _join(ws, tree_r, file_s):
    ws.start_measurement()
    return spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method="STJ",
    )


def test_first_run_records_then_replays(env, spies):
    ws, tree_r, file_s = env
    first = _join(ws, tree_r, file_s)
    assert spies == {"record": 1, "replay": 0}
    rec = tree_r._construct_recording
    assert rec is not None

    second = _join(ws, tree_r, file_s)
    assert spies == {"record": 1, "replay": 1}
    assert tree_r._construct_recording is rec, "hit must not re-record"
    assert second.pairs == first.pairs
    # The replayed tree is a fresh finished instance, not the recording's.
    assert second.index is not first.index
    assert second.index.mutations == 1
    assert len(second.index) == len(first.index)


def test_batch_kill_switch_stands_down(env, spies, monkeypatch):
    ws, tree_r, file_s = env
    monkeypatch.setenv("REPRO_BATCH", "0")
    _join(ws, tree_r, file_s)
    _join(ws, tree_r, file_s)
    assert spies == {"record": 0, "replay": 0}
    assert getattr(tree_r, "_construct_recording", None) is None


def test_sanitizer_stands_down(env, spies, monkeypatch):
    ws, tree_r, file_s = env
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    _join(ws, tree_r, file_s)
    _join(ws, tree_r, file_s)
    assert spies == {"record": 0, "replay": 0}


def test_seeding_tree_mutation_invalidates(env, spies):
    ws, tree_r, file_s = env
    first = _join(ws, tree_r, file_s)
    rec = tree_r._construct_recording

    tree_r.insert(Rect(0.4, 0.4, 0.46, 0.46), 424242)
    second = _join(ws, tree_r, file_s)
    # The stale recording was replaced by a fresh one, never replayed.
    assert spies == {"record": 2, "replay": 0}
    assert tree_r._construct_recording is not rec
    third = _join(ws, tree_r, file_s)
    assert spies == {"record": 2, "replay": 1}
    assert third.pairs == second.pairs
    assert first.pairs  # the pre-mutation run was non-vacuous


def test_replay_costs_match_a_scalar_rerun(monkeypatch):
    """Twin workspaces, three runs each: every replayed run's counters
    and cumulative buffer stats equal the scalar path's run for run."""
    d_r, d_s = _workload()

    def runs(kernels, batch):
        monkeypatch.setenv("REPRO_KERNELS", kernels)
        monkeypatch.setenv("REPRO_BATCH", batch)
        ws = Workspace(CFG)
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        out = []
        for _ in range(3):
            result = _join(ws, tree_r, file_s)
            out.append((result.pairs, ws.metrics.summary(),
                        ws.buffer.stats.hits, ws.buffer.stats.misses))
        return out

    for (pb, sb, hb, mb), (ps, ss, hs, ms) in zip(
        runs("1", "1"), runs("0", "0")
    ):
        assert pb == ps
        for field in SUMMARY_FIELDS:
            assert getattr(sb, field) == getattr(ss, field)
        assert (hb, mb) == (hs, ms)


def test_allocation_drift_raises_runtime_error():
    """A replay whose allocations do not land exactly delta past the
    recorded ids must fail loudly — RuntimeError, not StorageError, so
    the engine's degradation path cannot mask it."""
    ws = Workspace(CFG)
    buffer, disk = ws.buffer, ws.disk
    # Claim the recorded page 5 will land at 5 + delta, but pick a delta
    # that disagrees with where the allocator actually is.
    delta = (disk._next_id - 5) + 7
    ops = [(2, 5, PageKind.TREE_NODE)]
    with pytest.raises(RuntimeError, match="drifted"):
        buffer.replay_ops(ops, 0, delta, [Node(0, [])], ws.metrics, None)
