"""Configuration fuzzing: every seeded-tree knob combination is correct.

Hypothesis draws arbitrary combinations of copy strategy, update policy,
seed levels, filtering, linked lists, split algorithm and buffer size,
runs the full seed → grow → cleanup → match pipeline, and compares
against the quadratic oracle. The parametrised unit tests cover the
named variants; this covers the cross-product they skip.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.join import match_trees, naive_join
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.rtree.rstar import rstar_split
from repro.rtree.split import linear_split, quadratic_split
from repro.seeded import CopyStrategy, SeededTree, UpdatePolicy
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries

SPLITS = (quadratic_split, linear_split, rstar_split)


@settings(max_examples=30, deadline=None)
@given(
    copy_strategy=st.sampled_from(list(CopyStrategy)),
    update_policy=st.sampled_from(list(UpdatePolicy)),
    seed_levels=st.integers(1, 2),
    filtering=st.booleans(),
    use_lists=st.sampled_from([None, True, False]),
    split_idx=st.integers(0, len(SPLITS) - 1),
    buffer_pages=st.sampled_from([24, 48, 200]),
    n_s=st.integers(10, 160),
    data_seed=st.integers(0, 5),
)
def test_any_configuration_matches_oracle(
    copy_strategy, update_policy, seed_levels, filtering, use_lists,
    split_idx, buffer_pages, n_s, data_seed,
):
    cfg = SystemConfig(page_size=104, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))

    r_entries = random_entries(200, seed=100 + data_seed)
    s_entries = random_entries(n_s, seed=200 + data_seed, oid_start=10_000)
    t_r = RTree.build(buf, cfg, r_entries, metrics=m)

    tree = SeededTree(
        buf, cfg, m,
        copy_strategy=copy_strategy,
        update_policy=update_policy,
        seed_levels=seed_levels,
        filtering=filtering,
        use_linked_lists=use_lists,
        split=SPLITS[split_idx],
    )
    tree.seed(t_r)
    tree.grow_from(s_entries)
    tree.cleanup()
    tree.validate()

    got = set(match_trees(tree, t_r, m))
    assert got == naive_join(s_entries, r_entries).pair_set()
