"""Tests for seed-level filtering (Section 3.2)."""

from hypothesis import given, settings

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.seeded import SeededTree
from repro.seeded.filtering import passes_filter
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries
from ..strategies import small_rects
from hypothesis import strategies as st


def make_env(buffer_pages=512):
    cfg = SystemConfig(page_size=104, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
    return cfg, m, buf


def seeded_with_filter(seed_levels=2, n_r=150, seed=0):
    cfg, m, buf = make_env()
    t_r = RTree.build(buf, cfg, random_entries(n_r, seed=seed), metrics=m)
    tree = SeededTree(buf, cfg, m, filtering=True, seed_levels=seed_levels)
    tree.seed(t_r)
    return tree, t_r, m


class TestPassesFilter:
    def test_far_away_object_filtered(self):
        tree, t_r, m = seeded_with_filter()
        # Everything in T_R lives in the unit square.
        far = Rect(10, 10, 11, 11)
        root = tree.read_node(tree.root_id)
        assert not passes_filter(root, tree.seed_levels, far,
                                 tree.read_node, m)

    def test_overlapping_object_passes(self):
        tree, t_r, m = seeded_with_filter()
        # An object covering the whole map must overlap some shadow.
        root = tree.read_node(tree.root_id)
        assert passes_filter(root, tree.seed_levels, Rect(0, 0, 1, 1),
                             tree.read_node, m)

    def test_counts_bbox_tests(self):
        tree, t_r, m = seeded_with_filter()
        root = tree.read_node(tree.root_id)
        before = m.cpu.bbox_tests
        passes_filter(root, tree.seed_levels, Rect(0.5, 0.5, 0.6, 0.6),
                      tree.read_node, m)
        assert m.cpu.bbox_tests > before

    def test_deeper_levels_test_more(self):
        """Three seed levels probe more shadows than two (the paper's
        CPU-for-I/O trade)."""
        results = []
        for k in (2, 3):
            tree, _, m = seeded_with_filter(seed_levels=k, n_r=400)
            root = tree.read_node(tree.root_id)
            before = m.cpu.bbox_tests
            for rect, _ in random_entries(50, seed=3, oid_start=5000):
                passes_filter(root, tree.seed_levels, rect,
                              tree.read_node, m)
            results.append(m.cpu.bbox_tests - before)
        assert results[1] > results[0]


class TestFilteredInsertion:
    def test_insert_skips_filtered(self):
        tree, t_r, _ = seeded_with_filter()
        tree.insert(Rect(5, 5, 6, 6), 1000)  # disjoint from T_R
        assert len(tree) == 0
        assert tree.filtered_count == 1

    def test_insert_keeps_overlapping(self):
        tree, t_r, _ = seeded_with_filter()
        tree.insert(Rect(0.4, 0.4, 0.6, 0.6), 1000)
        assert len(tree) == 1
        assert tree.filtered_count == 0

    def test_filter_is_conservative(self):
        """Filtering must never drop an object that actually joins —
        the fundamental safety property of Section 3.2."""
        cfg, m, buf = make_env()
        r_entries = random_entries(150, seed=4)
        t_r = RTree.build(buf, cfg, r_entries, metrics=m)
        tree = SeededTree(buf, cfg, m, filtering=True)
        tree.seed(t_r)
        s_entries = random_entries(200, seed=5, oid_start=1000)
        tree.grow_from(s_entries)
        tree.cleanup()
        kept = {oid for _, oid in tree.all_objects()}
        for rect, oid in s_entries:
            joins = any(rect.intersects(r) for r, _ in r_entries)
            if joins:
                assert oid in kept, f"filter dropped joining object {oid}"

    def test_filtered_objects_truly_nonjoining(self):
        cfg, m, buf = make_env()
        r_entries = random_entries(120, seed=6)
        t_r = RTree.build(buf, cfg, r_entries, metrics=m)
        tree = SeededTree(buf, cfg, m, filtering=True)
        tree.seed(t_r)
        s_entries = random_entries(200, seed=7, oid_start=1000)
        tree.grow_from(s_entries)
        tree.cleanup()
        kept = {oid for _, oid in tree.all_objects()}
        dropped = [(r, o) for r, o in s_entries if o not in kept]
        assert len(dropped) == tree.filtered_count
        for rect, oid in dropped:
            assert not any(rect.intersects(r) for r, _ in r_entries)

    def test_filtering_reduces_tree_size(self):
        """With spatially separated inputs, filtering shrinks the tree."""
        cfg, m, buf = make_env()
        # D_R in the left half, D_S spread over the whole map.
        left = [
            (Rect(x / 200, y / 20, x / 200 + 0.002, y / 20 + 0.002),
             x * 20 + y)
            for x in range(50) for y in range(4)
        ]
        t_r = RTree.build(buf, cfg, left, metrics=m)
        s_entries = random_entries(200, seed=8, oid_start=10_000, side=0.01)

        sizes = {}
        for filtering in (False, True):
            tree = SeededTree(buf, cfg, m, filtering=filtering)
            tree.seed(t_r)
            tree.grow_from(s_entries)
            tree.cleanup()
            sizes[filtering] = tree.num_nodes()
        assert sizes[True] < sizes[False]

    def test_shadows_cleared_after_cleanup(self):
        tree, t_r, _ = seeded_with_filter()
        tree.grow_from(random_entries(50, seed=9, oid_start=1000))
        tree.cleanup()
        for node in tree.iter_nodes():
            assert all(e.shadow is None for e in node.entries)


@settings(max_examples=20, deadline=None)
@given(st.lists(small_rects(), min_size=1, max_size=30),
       st.lists(small_rects(), min_size=1, max_size=30))
def test_filter_decision_matches_ground_truth_overlap(r_rects, s_rects):
    """passes_filter == "overlaps the MBR hierarchy" which must be implied
    by actual overlap with any indexed object."""
    cfg, m, buf = make_env()
    t_r = RTree.build(buf, cfg, [(r, i) for i, r in enumerate(r_rects)],
                      metrics=m)
    if t_r.height < 2:
        return
    tree = SeededTree(buf, cfg, m, filtering=True, seed_levels=1)
    tree.seed(t_r)
    root = tree.read_node(tree.root_id)
    for s in s_rects:
        joins = any(s.intersects(r) for r in r_rects)
        passed = passes_filter(root, tree.seed_levels, s, tree.read_node, m)
        if joins:
            assert passed
