"""Tests for JoinResult and the naive oracle itself."""

from repro.geometry import Rect
from repro.join import JoinResult, naive_join


class TestJoinResult:
    def test_len_and_pair_set(self):
        r = JoinResult(pairs=[(1, 2), (1, 2), (3, 4)], algorithm="X")
        assert len(r) == 3
        assert r.pair_set() == {(1, 2), (3, 4)}

    def test_repr(self):
        r = JoinResult(pairs=[(1, 2)], algorithm="STJ")
        assert "STJ" in repr(r)
        assert "1 pairs" in repr(r)

    def test_defaults(self):
        r = JoinResult()
        assert r.pairs == []
        assert r.index is None


class TestNaiveJoin:
    def test_basic(self):
        a = [(Rect(0, 0, 1, 1), 1), (Rect(5, 5, 6, 6), 2)]
        b = [(Rect(0.5, 0.5, 2, 2), 10)]
        assert naive_join(a, b).pairs == [(1, 10)]

    def test_empty_sides(self):
        assert naive_join([], [(Rect(0, 0, 1, 1), 1)]).pairs == []
        assert naive_join([(Rect(0, 0, 1, 1), 1)], []).pairs == []

    def test_orientation(self):
        a = [(Rect(0, 0, 1, 1), 7)]
        b = [(Rect(0, 0, 1, 1), 8)]
        assert naive_join(a, b).pairs == [(7, 8)]

    def test_cartesian_when_all_overlap(self):
        a = [(Rect(0, 0, 1, 1), i) for i in range(3)]
        b = [(Rect(0, 0, 1, 1), 10 + i) for i in range(4)]
        assert len(naive_join(a, b).pairs) == 12

    def test_touching_counts(self):
        a = [(Rect(0, 0, 1, 1), 1)]
        b = [(Rect(1, 1, 2, 2), 2)]
        assert naive_join(a, b).pairs == [(1, 2)]

    def test_consumes_iterators(self):
        a = iter([(Rect(0, 0, 1, 1), 1)])
        b = iter([(Rect(0, 0, 1, 1), 2)])
        assert naive_join(a, b).pairs == [(1, 2)]
