"""Cross-checks of the facade's extended methods against BFJ.

``spatial_join`` dispatches ``"NAIVE"``, ``"ZJOIN"`` and ``"2STJ"``
through the execution engine alongside the paper's three methods. On a
small clustered workload every method must produce the same pair set —
the answers are method-independent; only the cost profiles differ.
"""

import pytest

from repro.config import SystemConfig
from repro.join import spatial_join
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

CFG = SystemConfig(page_size=512, buffer_pages=64)

EXTENDED = ("NAIVE", "ZJOIN", "2STJ")


@pytest.fixture(scope="module")
def env():
    ws = Workspace(CFG)
    d_r = generate_clustered(ClusteredConfig(
        1_200, cover_quotient=2.0, objects_per_cluster=20, seed=81,
    ))
    d_s = generate_clustered(ClusteredConfig(
        500, cover_quotient=2.0, objects_per_cluster=20, seed=82,
        oid_start=10**6,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    file_r = ws.install_datafile(d_r, name="D_R(raw)")
    ws.start_measurement()
    reference = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method="BFJ",
    ).pair_set()
    return ws, tree_r, file_s, file_r, reference


@pytest.mark.parametrize("method", EXTENDED)
def test_matches_bfj_with_lifted_indexed_side(env, method):
    """Without ``data_r`` the facade lifts the indexed side from T_R."""
    ws, tree_r, file_s, _file_r, reference = env
    ws.start_measurement()
    result = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
    )
    assert result.pair_set() == reference
    assert result.algorithm == method


@pytest.mark.parametrize("method", EXTENDED)
def test_matches_bfj_with_explicit_data_r(env, method):
    ws, tree_r, file_s, file_r, reference = env
    ws.start_measurement()
    result = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
        data_r=file_r,
    )
    assert result.pair_set() == reference


@pytest.mark.parametrize("method", EXTENDED)
def test_traced_run_same_answer(env, method):
    ws, tree_r, file_s, _file_r, reference = env
    ws.start_measurement()
    result = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
        trace=True,
    )
    assert result.pair_set() == reference
    (root,) = result.trace.roots
    assert root.name == method


def test_two_seeded_sampled_seeds_match_bfj(env):
    ws, tree_r, file_s, file_r, reference = env
    ws.start_measurement()
    result = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method="2STJ",
        data_r=file_r, seeds="sample", sample_size=64,
    )
    assert result.pair_set() == reference


def test_construction_methods_charge_io(env):
    """ZJOIN and 2STJ derive join-time structures: construction I/O must
    be charged (NAIVE is the uncharged oracle)."""
    ws, tree_r, file_s, _file_r, _reference = env
    for method, charged in (("NAIVE", False), ("ZJOIN", True),
                            ("2STJ", True)):
        ws.start_measurement()
        spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                     method=method)
        construct = ws.metrics.summary().construct_read + \
            ws.metrics.summary().construct_write
        assert (construct > 0) == charged, method
