"""Tests for the breadth-first matcher and its spilling queue."""

from hypothesis import given, settings

from repro.config import SystemConfig
from repro.join import match_trees, naive_join
from repro.join.bfs_matching import _PairQueue, match_trees_bfs
from repro.metrics import MetricsCollector, Phase
from repro.rtree import RTree
from repro.seeded import SeededTree
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries
from ..strategies import entry_lists


def make_env(buffer_pages=256, page_size=224):
    cfg = SystemConfig(page_size=page_size, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
    return cfg, m, buf


class TestPairQueue:
    def make(self, budget):
        cfg = SystemConfig(page_size=224)
        m = MetricsCollector(cfg)
        return _PairQueue(DiskSimulator(m), cfg, budget), m

    def test_fifo_without_budget(self):
        q, _ = self.make(None)
        for i in range(100):
            q.append((i, i + 1))
        assert len(q) == 100
        assert list(q.drain()) == [(i, i + 1) for i in range(100)]
        assert len(q) == 0

    def test_spills_beyond_budget(self):
        q, m = self.make(10)
        with m.phase(Phase.MATCH):
            for i in range(45):
                q.append((i, i))
        assert q.spilled_pairs > 0
        assert len(q) == 45
        io = m.io_for(Phase.MATCH)
        assert io.random_writes + io.sequential_writes > 0

    def test_drain_replays_spills_in_order(self):
        q, m = self.make(7)
        with m.phase(Phase.MATCH):
            for i in range(30):
                q.append((i, 0))
            drained = [a for a, _ in q.drain()]
        assert drained == list(range(30))

    def test_spill_io_is_sequential(self):
        q, m = self.make(5)
        with m.phase(Phase.MATCH):
            for i in range(200):
                q.append((i, i))
            list(q.drain())
        io = m.io_for(Phase.MATCH)
        assert io.sequential_writes + io.sequential_reads >= 0
        # Each spill run costs one seek; the page bodies are sequential.
        assert io.random_writes <= q.pairs_per_page and io.random_writes >= 1


class TestBfsMatching:
    def build_pair(self, n_a=300, n_b=300, env=None):
        cfg, m, buf = env or make_env()
        tree_a = RTree.build(buf, cfg, random_entries(n_a, seed=81),
                             metrics=m)
        tree_b = RTree.build(
            buf, cfg, random_entries(n_b, seed=82, oid_start=10_000),
            metrics=m,
        )
        return tree_a, tree_b, m

    def test_equals_dfs_matcher(self):
        tree_a, tree_b, m = self.build_pair()
        bfs = set(match_trees_bfs(tree_a, tree_b, m))
        dfs = set(match_trees(tree_a, tree_b, m))
        assert bfs == dfs

    def test_equals_naive(self):
        tree_a, tree_b, m = self.build_pair()
        got = set(match_trees_bfs(tree_a, tree_b, m))
        want = naive_join(
            random_entries(300, seed=81),
            random_entries(300, seed=82, oid_start=10_000),
        ).pair_set()
        assert got == want

    def test_budgeted_queue_same_answer(self):
        tree_a, tree_b, m = self.build_pair()
        unbounded = set(match_trees_bfs(tree_a, tree_b, m))
        tight = set(match_trees_bfs(tree_a, tree_b, m,
                                    queue_budget_pairs=8))
        assert tight == unbounded

    def test_tight_budget_pays_spill_io(self):
        env = make_env()
        tree_a, tree_b, m = self.build_pair(env=env)
        with m.phase(Phase.MATCH):
            match_trees_bfs(tree_a, tree_b, m)
        free = m.io_for(Phase.MATCH).total_accesses
        m.reset()
        with m.phase(Phase.MATCH):
            match_trees_bfs(tree_a, tree_b, m, queue_budget_pairs=4)
        tight = m.io_for(Phase.MATCH).total_accesses
        assert tight > free

    def test_empty_trees(self):
        env = make_env()
        cfg, m, buf = env
        empty = RTree(buf, cfg, metrics=m)
        other = RTree.build(buf, cfg, random_entries(20, seed=83),
                            metrics=m)
        assert match_trees_bfs(empty, other, m) == []
        assert match_trees_bfs(other, empty, m) == []

    def test_works_on_seeded_trees(self):
        cfg, m, buf = make_env()
        r_entries = random_entries(250, seed=84)
        s_entries = random_entries(200, seed=85, oid_start=10_000)
        t_r = RTree.build(buf, cfg, r_entries, metrics=m)
        tree = SeededTree(buf, cfg, m)
        tree.seed(t_r)
        tree.grow_from(s_entries)
        tree.cleanup()
        got = set(match_trees_bfs(tree, t_r, m))
        assert got == naive_join(s_entries, r_entries).pair_set()

    def test_no_pins_leak(self):
        env = make_env()
        cfg, m, buf = env
        tree_a, tree_b, m = self.build_pair(env=env)
        match_trees_bfs(tree_a, tree_b, m, queue_budget_pairs=16)
        for page_id in list(buf.resident_ids()):
            assert buf.pin_count(page_id) == 0


@settings(max_examples=15, deadline=None)
@given(entry_lists(min_size=1, max_size=30),
       entry_lists(min_size=1, max_size=30))
def test_bfs_always_equals_naive(a_entries, b_entries):
    b_entries = [(r, o + 10_000) for r, o in b_entries]
    cfg, m, buf = make_env(page_size=104)
    tree_a = RTree.build(buf, cfg, a_entries, metrics=m)
    tree_b = RTree.build(buf, cfg, b_entries, metrics=m)
    got = set(match_trees_bfs(tree_a, tree_b, m, queue_budget_pairs=6))
    assert got == naive_join(a_entries, b_entries).pair_set()


class TestBfsPinSafetyUnderFaults:
    """Regression twin of the TM matcher's double-pin fix: a fault on
    the B-side read inside the BFS drain loop must not leak the A-side
    pin taken just before it."""

    def test_fault_on_second_read_leaks_no_pins(self):
        cfg, m, buf = make_env()
        tree_a = RTree.build(buf, cfg, random_entries(200, seed=1),
                             metrics=m)
        tree_b = RTree.build(
            buf, cfg, random_entries(200, seed=2, oid_start=1000),
            metrics=m,
        )
        original = tree_b.read_node

        def faulting_read(page_id, pin=False):
            if pin:
                raise RuntimeError("injected fault on the B-side read")
            return original(page_id, pin=pin)

        tree_b.read_node = faulting_read
        try:
            try:
                match_trees_bfs(tree_a, tree_b, m)
            except RuntimeError:
                pass
            leaked = [
                (page_id, pins)
                for _key, page_id, pins, _dirty in buf.audit_frames()
                if pins
            ]
            assert leaked == []
        finally:
            tree_b.read_node = original
