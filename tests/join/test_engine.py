"""Tests for the phase-based join execution engine."""

import pytest

from repro.config import SystemConfig
from repro.errors import CorruptPageError, RecoveryError, SimulatedCrashError
from repro.join.engine import (
    PHASE_ORDER,
    ExecutionContext,
    JoinPhase,
    JoinPipeline,
)
from repro.metrics import JoinTrace, MetricsCollector, Phase
from repro.storage import BufferPool, DiskSimulator, RecoveryPolicy


def _ctx(**kwargs) -> ExecutionContext:
    config = kwargs.pop("config", SystemConfig(page_size=512, buffer_pages=8))
    metrics = kwargs.pop("metrics", None) or MetricsCollector(config)
    if "buffer" not in kwargs:
        kwargs["buffer"] = BufferPool(
            config.buffer_pages, DiskSimulator(metrics)
        )
    return ExecutionContext(
        data_s=None, metrics=metrics, config=config, **kwargs
    )


class TestPipelineShape:
    def test_unknown_phase_name_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline phase"):
            JoinPipeline("X", [JoinPhase("mystery", lambda ctx: None)])

    def test_out_of_order_phases_rejected(self):
        with pytest.raises(ValueError, match="out of order"):
            JoinPipeline("X", [
                JoinPhase("match", lambda ctx: None),
                JoinPhase("construct", lambda ctx: None),
            ])

    def test_repeated_phase_name_allowed(self):
        """Composed pipelines may run two construct steps back to back."""
        JoinPipeline("X", [
            JoinPhase("construct", lambda ctx: None),
            JoinPhase("construct", lambda ctx: None),
            JoinPhase("match", lambda ctx: None),
        ])

    def test_canonical_order_is_complete(self):
        JoinPipeline("X", [
            JoinPhase(name, lambda ctx: None) for name in PHASE_ORDER
        ])


class TestExecution:
    def test_phases_run_in_order_and_result_assembled(self):
        calls = []

        def prepare(ctx):
            calls.append("prepare")
            ctx.state["seen"] = 1

        def match(ctx):
            calls.append("match")
            assert ctx.state["seen"] == 1
            ctx.state["pairs"] = [(1, 2)]
            ctx.state["index"] = "idx"

        pipeline = JoinPipeline("TOY", [
            JoinPhase("prepare", prepare),
            JoinPhase("match", match),
        ])
        result = pipeline.execute(_ctx())
        assert calls == ["prepare", "match"]
        assert result.algorithm == "TOY"
        assert result.pairs == [(1, 2)]
        assert result.index == "idx"
        assert not result.degraded

    def test_engine_owns_accounting_phase_transitions(self):
        observed = []

        def body(ctx):
            observed.append(ctx.metrics.current_phase)

        pipeline = JoinPipeline("TOY", [
            JoinPhase("construct", body, metrics_phase=Phase.CONSTRUCT),
            JoinPhase("match", body, metrics_phase=Phase.MATCH),
        ])
        ctx = _ctx()
        pipeline.execute(ctx)
        assert observed == [Phase.CONSTRUCT, Phase.MATCH]
        assert ctx.metrics.current_phase == Phase.SETUP

    def test_none_metrics_phase_leaves_collector_alone(self):
        observed = []
        pipeline = JoinPipeline("TOY", [
            JoinPhase("match", lambda c: observed.append(
                c.metrics.current_phase)),
        ])
        pipeline.execute(_ctx())
        assert observed == [Phase.SETUP]

    def test_trace_attached_with_root_and_phase_spans(self):
        pipeline = JoinPipeline("TOY", [
            JoinPhase("construct", lambda c: None,
                      metrics_phase=Phase.CONSTRUCT),
            JoinPhase("match", lambda c: c.state.update(pairs=[]),
                      metrics_phase=Phase.MATCH),
        ])
        metrics = MetricsCollector(SystemConfig(512, 8))
        ctx = _ctx(metrics=metrics, trace=JoinTrace(metrics))
        result = pipeline.execute(ctx)
        assert result.trace is ctx.trace
        (root,) = result.trace.roots
        assert root.name == "TOY" and root.kind == "join"
        assert [c.name for c in root.children] == ["construct", "match"]
        assert [c.kind for c in root.children] == ["phase", "phase"]


class TestRecoveryLoop:
    def _crashing_phase(self, crashes: int, log: list) -> JoinPhase:
        state = {"left": crashes}

        def recoverable(ctx, checkpointer, resume):
            log.append(("attempt", resume))
            if state["left"] > 0:
                state["left"] -= 1
                raise SimulatedCrashError("boom")
            ctx.state["pairs"] = []

        return JoinPhase(
            "construct", lambda ctx: pytest.fail("body must not run"),
            metrics_phase=Phase.CONSTRUCT,
            recoverable_body=recoverable,
            make_checkpointer=lambda ctx: "ckpt",
            load_resume=lambda ctx, ckpt: f"resume-from-{ckpt}",
            recovery_label="toy construction",
        )

    def test_without_policy_plain_body_runs(self):
        ran = []
        phase = JoinPhase(
            "construct", lambda ctx: ran.append("body"),
            recoverable_body=lambda ctx, c, r: pytest.fail("needs policy"),
        )
        JoinPipeline("TOY", [phase]).execute(_ctx())
        assert ran == ["body"]

    def test_crashes_within_budget_are_recovered(self):
        log = []
        phase = self._crashing_phase(crashes=2, log=log)
        ctx = _ctx(recovery=RecoveryPolicy(max_crash_recoveries=2))
        result = JoinPipeline("TOY", [phase]).execute(ctx)
        assert not result.degraded
        assert log == [
            ("attempt", None),
            ("attempt", "resume-from-ckpt"),
            ("attempt", "resume-from-ckpt"),
        ]
        assert ctx.metrics.fault_totals().crash_recoveries == 2

    def test_exhausted_budget_raises_recovery_error_with_label(self):
        log = []
        phase = self._crashing_phase(crashes=99, log=log)
        ctx = _ctx(recovery=RecoveryPolicy(
            max_crash_recoveries=1, fallback_to_bfj=False,
        ))
        with pytest.raises(RecoveryError, match="toy construction crashed"):
            JoinPipeline("TOY", [phase]).execute(ctx)
        assert len(log) == 2

    def test_checkpointing_disabled_skips_checkpointer(self):
        log = []
        phase = self._crashing_phase(crashes=1, log=log)
        ctx = _ctx(recovery=RecoveryPolicy(
            checkpoint_every=0, max_crash_recoveries=2,
        ))
        JoinPipeline("TOY", [phase]).execute(ctx)
        # No checkpointer, so the retry restarts from scratch.
        assert log == [("attempt", None), ("attempt", None)]


class TestDegradation:
    def _failing_pipeline(self, allow_fallback: bool) -> JoinPipeline:
        def explode(ctx):
            raise CorruptPageError("page 7 corrupt")

        def fallback() -> JoinPipeline:
            return JoinPipeline("FB", [
                JoinPhase("match", lambda c: c.state.update(pairs=[(0, 0)]),
                          metrics_phase=Phase.MATCH),
            ])

        return JoinPipeline("MAIN", [
            JoinPhase("construct", explode, metrics_phase=Phase.CONSTRUCT,
                      allow_fallback=allow_fallback),
            JoinPhase("match", lambda c: pytest.fail("must not match"),
                      metrics_phase=Phase.MATCH),
        ], fallback=fallback)

    def test_degrades_only_under_armed_policy(self):
        ctx = _ctx(recovery=RecoveryPolicy(fallback_to_bfj=True))
        result = self._failing_pipeline(allow_fallback=True).execute(ctx)
        assert result.degraded
        assert result.fallback_from == "MAIN"
        assert result.algorithm == "FB"
        assert "CorruptPageError" in result.degraded_reason
        assert result.pairs == [(0, 0)]
        assert ctx.metrics.fault_totals().fallbacks == 1

    def test_no_policy_means_no_degradation(self):
        with pytest.raises(CorruptPageError):
            self._failing_pipeline(allow_fallback=True).execute(_ctx())

    def test_policy_with_fallback_disabled_propagates(self):
        ctx = _ctx(recovery=RecoveryPolicy(fallback_to_bfj=False))
        with pytest.raises(CorruptPageError):
            self._failing_pipeline(allow_fallback=True).execute(ctx)

    def test_phase_without_allow_fallback_propagates(self):
        ctx = _ctx(recovery=RecoveryPolicy(fallback_to_bfj=True))
        with pytest.raises(CorruptPageError):
            self._failing_pipeline(allow_fallback=False).execute(ctx)

    def test_degraded_run_traces_both_pipelines(self):
        metrics = MetricsCollector(SystemConfig(512, 8))
        ctx = _ctx(metrics=metrics, trace=JoinTrace(metrics),
                   recovery=RecoveryPolicy(fallback_to_bfj=True))
        result = self._failing_pipeline(allow_fallback=True).execute(ctx)
        (root,) = result.trace.roots
        names = [s.name for s in root.walk()]
        assert root.name == "MAIN"
        assert "join:FB" in names  # degradation re-enters under the root
        construct = root.children[0]
        assert construct.error is not None
        assert "CorruptPageError" in construct.error
