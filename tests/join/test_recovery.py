"""STJ under faults: crash resume from flushed batches, BFJ fallback."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import RecoveryError
from repro.geometry import Rect
from repro.join import naive_join, seeded_tree_join, spatial_join
from repro.metrics import MetricsCollector, Phase
from repro.rtree import RTree
from repro.storage import (
    BufferPool,
    DiskSimulator,
    FaultInjector,
    FaultPlan,
    RecoveryPolicy,
)
from repro.storage.datafile import DataFile

from ..conftest import random_entries


def _grid_entries(n: int, seed: int) -> list[tuple[Rect, int]]:
    """Entries on the 1/1024 grid: exact under float32 snapshots."""
    return [
        (
            Rect(
                round(r.xlo * 1024) / 1024, round(r.ylo * 1024) / 1024,
                round(r.xhi * 1024) / 1024, round(r.yhi * 1024) / 1024,
            ),
            oid,
        )
        for r, oid in random_entries(n, seed=seed)
    ]


def _world(plan: FaultPlan | None, *, buffer_pages: int = 16,
           n_r: int = 700, n_s: int = 400, seed: int = 0):
    """T_R durable on disk, D_S as a data file, injector not yet armed.

    ``n_r`` is sized so T_R reaches height 3: the default two seed
    levels need a seeding tree of at least three levels.
    """
    config = SystemConfig(page_size=512, buffer_pages=buffer_pages)
    metrics = MetricsCollector(config)
    injector = FaultInjector(plan, seed=seed) if plan is not None else None
    disk = DiskSimulator(metrics, injector=injector)
    buffer = BufferPool(buffer_pages, disk)
    d_r = _grid_entries(n_r, seed=31)
    d_s = _grid_entries(n_s, seed=32)
    tree_r = RTree.build(buffer, config, d_r, name="T_R")
    data_s = DataFile.create(disk, config, d_s, name="D_S")
    buffer.purge()
    disk.reset_arm()
    return config, metrics, injector, disk, buffer, tree_r, data_s, d_r, d_s


class TestStjCrashRecovery:
    def test_crash_resumes_from_flushed_batches(self):
        plan = FaultPlan(crash_after_ops=80)
        (config, metrics, injector, _, buffer, tree_r, data_s, d_r, d_s) = (
            _world(plan)
        )
        injector.arm()
        result = seeded_tree_join(
            data_s, tree_r, buffer, config, metrics,
            use_linked_lists=True,
            recovery=RecoveryPolicy(checkpoint_every=32),
        )
        assert not result.degraded
        assert result.pair_set() == naive_join(d_s, d_r).pair_set()
        result.index.validate()
        faults = metrics.fault_totals()
        assert faults.crashes == 1
        assert faults.crash_recoveries == 1
        assert faults.checkpoints >= 1

    def test_crash_budget_exhaustion_without_fallback(self):
        plan = FaultPlan(crash_every_ops=30)
        (config, metrics, injector, _, buffer, tree_r, data_s, _, _) = (
            _world(plan)
        )
        injector.arm()
        with pytest.raises(RecoveryError):
            seeded_tree_join(
                data_s, tree_r, buffer, config, metrics,
                use_linked_lists=True,
                recovery=RecoveryPolicy(
                    checkpoint_every=0,
                    max_crash_recoveries=1,
                    fallback_to_bfj=False,
                ),
            )
        assert metrics.fault_totals().crash_recoveries == 1

    def test_legacy_path_without_policy_is_unchanged(self):
        (config, metrics, _, _, buffer, tree_r, data_s, d_r, d_s) = (
            _world(None)
        )
        result = seeded_tree_join(data_s, tree_r, buffer, config, metrics)
        assert result.pair_set() == naive_join(d_s, d_r).pair_set()
        assert metrics.fault_totals().is_zero


class TestStjFallback:
    def test_torn_writes_degrade_to_bfj(self):
        # Every write is torn; the tiny buffer forces T_S pages out and
        # back in, so construction hits CorruptPageError and the join
        # degrades to BFJ against the durable T_R. Answers stay exact.
        plan = FaultPlan(torn_write_rate=1.0)
        (config, metrics, injector, _, buffer, tree_r, data_s, d_r, d_s) = (
            _world(plan, buffer_pages=8)
        )
        injector.arm()
        result = seeded_tree_join(
            data_s, tree_r, buffer, config, metrics,
            use_linked_lists=False,
            recovery=RecoveryPolicy(checkpoint_every=32),
        )
        assert result.degraded
        assert result.algorithm == "BFJ"
        assert result.fallback_from == "STJ"
        assert "CorruptPageError" in result.degraded_reason
        assert result.index is None
        assert result.pair_set() == naive_join(d_s, d_r).pair_set()
        faults = metrics.fault_totals()
        assert faults.fallbacks == 1
        assert faults.torn_writes > 0
        assert metrics.faults_for(Phase.CONSTRUCT).fallbacks == 1

    def test_crash_budget_exhaustion_degrades_when_allowed(self):
        plan = FaultPlan(crash_after_ops=60)
        (config, metrics, injector, _, buffer, tree_r, data_s, d_r, d_s) = (
            _world(plan)
        )
        injector.arm()
        result = seeded_tree_join(
            data_s, tree_r, buffer, config, metrics,
            use_linked_lists=True,
            recovery=RecoveryPolicy(
                checkpoint_every=0, max_crash_recoveries=0,
                fallback_to_bfj=True,
            ),
        )
        assert result.degraded
        assert "RecoveryError" in result.degraded_reason
        assert result.pair_set() == naive_join(d_s, d_r).pair_set()


class TestSpatialJoinFacade:
    def test_variant_name_survives_recovery(self):
        plan = FaultPlan(crash_after_ops=80)
        (config, metrics, injector, _, buffer, tree_r, data_s, d_r, d_s) = (
            _world(plan)
        )
        injector.arm()
        result = spatial_join(
            data_s, tree_r, buffer, config, metrics, method="STJ1-2N",
            use_linked_lists=True,
            recovery=RecoveryPolicy(checkpoint_every=32),
        )
        assert result.algorithm == "STJ1-2N"
        assert result.pair_set() == naive_join(d_s, d_r).pair_set()

    def test_degraded_variant_records_fallback_name(self):
        plan = FaultPlan(torn_write_rate=1.0)
        (config, metrics, injector, _, buffer, tree_r, data_s, d_r, d_s) = (
            _world(plan, buffer_pages=8)
        )
        injector.arm()
        result = spatial_join(
            data_s, tree_r, buffer, config, metrics, method="STJ1-2N",
            use_linked_lists=False,
            recovery=RecoveryPolicy(checkpoint_every=32),
        )
        assert result.degraded
        assert result.algorithm == "BFJ"
        assert result.fallback_from == "STJ1-2N"
        assert result.pair_set() == naive_join(d_s, d_r).pair_set()

    def test_bfj_ignores_recovery_policy(self):
        (config, metrics, _, _, buffer, tree_r, data_s, d_r, d_s) = (
            _world(None)
        )
        result = spatial_join(
            data_s, tree_r, buffer, config, metrics, method="BFJ",
            recovery=RecoveryPolicy(),
        )
        assert result.pair_set() == naive_join(d_s, d_r).pair_set()
        assert not result.degraded
