"""Tests for the TM tree-matching algorithm."""

from hypothesis import given, settings

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.join import match_trees, naive_join
from repro.metrics import MetricsCollector, Phase
from repro.rtree import RTree
from repro.seeded import SeededTree
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries
from ..strategies import entry_lists


def make_env(buffer_pages=512, page_size=104):
    cfg = SystemConfig(page_size=page_size, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
    return cfg, m, buf


def build_rtree(entries, env=None):
    cfg, m, buf = env or make_env()
    return RTree.build(buf, cfg, entries, metrics=m), (cfg, m, buf)


class TestMatchRTrees:
    def test_matches_naive_join(self):
        a_entries = random_entries(150, seed=1)
        b_entries = random_entries(180, seed=2, oid_start=1000)
        env = make_env()
        tree_a, _ = build_rtree(a_entries, env)
        tree_b, _ = build_rtree(b_entries, env)
        got = set(match_trees(tree_a, tree_b, env[1]))
        want = naive_join(a_entries, b_entries).pair_set()
        assert got == want

    def test_orientation(self):
        env = make_env()
        tree_a, _ = build_rtree([(Rect(0, 0, 1, 1), 7)], env)
        tree_b, _ = build_rtree([(Rect(0.5, 0.5, 2, 2), 9)], env)
        assert match_trees(tree_a, tree_b, env[1]) == [(7, 9)]

    def test_empty_trees(self):
        env = make_env()
        tree_a, _ = build_rtree([], env)
        tree_b, _ = build_rtree(random_entries(10), env)
        assert match_trees(tree_a, tree_b, env[1]) == []
        assert match_trees(tree_b, tree_a, env[1]) == []

    def test_disjoint_trees(self):
        env = make_env()
        left = [(Rect(0, 0, 0.1, 0.1), 1)]
        right = [(Rect(5, 5, 5.1, 5.1), 2)]
        tree_a, _ = build_rtree(left, env)
        tree_b, _ = build_rtree(right, env)
        assert match_trees(tree_a, tree_b, env[1]) == []

    def test_no_duplicate_pairs(self):
        env = make_env()
        a_entries = random_entries(120, seed=3)
        b_entries = random_entries(120, seed=4, oid_start=1000)
        tree_a, _ = build_rtree(a_entries, env)
        tree_b, _ = build_rtree(b_entries, env)
        pairs = match_trees(tree_a, tree_b, env[1])
        assert len(pairs) == len(set(pairs))

    def test_different_heights(self):
        env = make_env()
        tree_a, _ = build_rtree(random_entries(5, seed=5), env)     # shallow
        tree_b, _ = build_rtree(random_entries(300, seed=6, oid_start=1000),
                                env)                                 # deep
        assert tree_a.height < tree_b.height
        got = set(match_trees(tree_a, tree_b, env[1]))
        want = naive_join(random_entries(5, seed=5),
                          random_entries(300, seed=6, oid_start=1000)).pair_set()
        assert got == want

    def test_self_match(self):
        env = make_env()
        entries = random_entries(80, seed=7)
        tree, _ = build_rtree(entries, env)
        got = set(match_trees(tree, tree, env[1]))
        want = naive_join(entries, entries).pair_set()
        assert got == want


class TestMatchSeededTree:
    def test_seeded_vs_rtree_matches_naive(self):
        env = make_env()
        cfg, m, buf = env
        r_entries = random_entries(200, seed=8)
        s_entries = random_entries(150, seed=9, oid_start=1000)
        tree_r = RTree.build(buf, cfg, r_entries, metrics=m)
        tree_s = SeededTree(buf, cfg, m)
        tree_s.seed(tree_r)
        tree_s.grow_from(s_entries)
        tree_s.cleanup()
        got = set(match_trees(tree_s, tree_r, m))
        want = naive_join(s_entries, r_entries).pair_set()
        assert got == want

    def test_unbalanced_seeded_tree(self):
        """Grown subtrees of different heights must not confuse TM."""
        env = make_env()
        cfg, m, buf = env
        r_entries = random_entries(150, seed=10)
        tree_r = RTree.build(buf, cfg, r_entries, metrics=m)
        skewed = [
            (Rect(0.001 * i, 0.001, 0.001 * i + 0.002, 0.003), 1000 + i)
            for i in range(120)
        ] + [(Rect(0.9, 0.9, 0.92, 0.92), 5000)]
        tree_s = SeededTree(buf, cfg, m)
        tree_s.seed(tree_r)
        tree_s.grow_from(skewed)
        tree_s.cleanup()
        got = set(match_trees(tree_s, tree_r, m))
        want = naive_join(skewed, r_entries).pair_set()
        assert got == want


class TestMatchAccounting:
    def test_xy_tests_counted(self):
        env = make_env()
        cfg, m, buf = env
        tree_a, _ = build_rtree(random_entries(100, seed=11), env)
        tree_b, _ = build_rtree(random_entries(100, seed=12, oid_start=500),
                                env)
        before = m.cpu.xy_tests
        match_trees(tree_a, tree_b, m)
        assert m.cpu.xy_tests > before

    def test_io_charged_to_current_phase(self):
        # Small enough to force misses, large enough for TM's pinned
        # recursion spine (two pages per level of descent).
        env = make_env(buffer_pages=20)
        cfg, m, buf = env
        tree_a, _ = build_rtree(random_entries(150, seed=13), env)
        tree_b, _ = build_rtree(random_entries(150, seed=14, oid_start=500),
                                env)
        with m.phase(Phase.MATCH):
            match_trees(tree_a, tree_b, m)
        assert m.io_for(Phase.MATCH).random_reads > 0

    def test_no_pins_leak(self):
        env = make_env()
        cfg, m, buf = env
        tree_a, _ = build_rtree(random_entries(80, seed=15), env)
        tree_b, _ = build_rtree(random_entries(80, seed=16, oid_start=500),
                                env)
        match_trees(tree_a, tree_b, m)
        for page_id in list(buf.resident_ids()):
            assert buf.pin_count(page_id) == 0

    def test_works_without_metrics(self):
        env = make_env()
        tree_a, _ = build_rtree(random_entries(30, seed=17), env)
        tree_b, _ = build_rtree(random_entries(30, seed=18, oid_start=500),
                                env)
        pairs = match_trees(tree_a, tree_b, None)
        assert isinstance(pairs, list)


@settings(max_examples=20, deadline=None)
@given(entry_lists(min_size=1, max_size=40),
       entry_lists(min_size=1, max_size=40))
def test_match_always_equals_naive(a_entries, b_entries):
    b_entries = [(r, o + 10_000) for r, o in b_entries]
    env = make_env()
    cfg, m, buf = env
    tree_a = RTree.build(buf, cfg, a_entries, metrics=m)
    tree_b = RTree.build(buf, cfg, b_entries, metrics=m)
    got = set(match_trees(tree_a, tree_b, m))
    assert got == naive_join(a_entries, b_entries).pair_set()


class TestPinSafetyUnderFaults:
    """Regression: the matcher pinned both nodes *before* entering its
    try/finally, so a fault on the second read leaked the first pin and
    wedged the buffer pool. Each pin now has its own protected region."""

    def test_fault_on_second_read_leaks_no_pins(self):
        env = make_env()
        tree_a, _ = build_rtree(random_entries(200, seed=1), env)
        tree_b, _ = build_rtree(
            random_entries(200, seed=2, oid_start=1000), env
        )
        buf = env[2]
        original = tree_b.read_node

        def faulting_read(page_id, pin=False):
            if pin:
                raise RuntimeError("injected fault on the B-side read")
            return original(page_id, pin=pin)

        tree_b.read_node = faulting_read
        try:
            try:
                match_trees(tree_a, tree_b, env[1])
            except RuntimeError:
                pass
            leaked = [
                (page_id, pins)
                for _key, page_id, pins, _dirty in buf.audit_frames()
                if pins
            ]
            assert leaked == []
        finally:
            tree_b.read_node = original
