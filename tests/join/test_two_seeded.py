"""Tests for the two-seeded-tree join (Section 5 extension)."""

import pytest

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.geometry import Rect
from repro.join import naive_join, two_seeded_join
from repro.join.two_seeded import grid_boxes, sample_boxes
from repro.metrics import Phase
from repro.workspace import Workspace

from ..conftest import random_entries


@pytest.fixture(scope="module")
def env():
    ws = Workspace(SystemConfig(page_size=104, buffer_pages=128))
    a_entries = random_entries(180, seed=31)
    b_entries = random_entries(150, seed=32, oid_start=10_000)
    file_a = ws.install_datafile(a_entries, name="A")
    file_b = ws.install_datafile(b_entries, name="B")
    oracle = naive_join(a_entries, b_entries).pair_set()
    return ws, file_a, file_b, oracle


class TestGridBoxes:
    def test_tiles_cover_map(self):
        boxes = grid_boxes(Rect(0, 0, 1, 1), 4)
        assert len(boxes) == 16
        assert sum(b.area() for b in boxes) == pytest.approx(1.0)

    def test_single_cell(self):
        [box] = grid_boxes(Rect(0, 0, 2, 2), 1)
        assert box == Rect(0, 0, 2, 2)

    def test_rejects_zero_cells(self):
        with pytest.raises(ExperimentError):
            grid_boxes(Rect(0, 0, 1, 1), 0)


class TestSampleBoxes:
    def test_samples_from_both_inputs(self, env):
        ws, file_a, file_b, _ = env
        with ws.metrics.phase(Phase.SETUP):
            boxes = sample_boxes(file_a, file_b, sample_size=40, seed=1)
        assert len(boxes) == 40
        all_rects = {
            r for r, _ in file_a.read_all_unaccounted()
        } | {r for r, _ in file_b.read_all_unaccounted()}
        assert all(b in all_rects for b in boxes)

    def test_small_inputs_sample_everything(self):
        ws = Workspace(SystemConfig(page_size=104, buffer_pages=64))
        file_a = ws.install_datafile(random_entries(5, seed=33))
        file_b = ws.install_datafile(random_entries(5, seed=34, oid_start=99))
        boxes = sample_boxes(file_a, file_b, sample_size=100)
        assert len(boxes) == 10

    def test_empty_inputs_raise(self):
        ws = Workspace(SystemConfig(page_size=104, buffer_pages=64))
        file_a = ws.install_datafile([])
        file_b = ws.install_datafile([])
        with pytest.raises(ExperimentError):
            sample_boxes(file_a, file_b, sample_size=10)

    def test_deterministic_for_seed(self, env):
        ws, file_a, file_b, _ = env
        a = sample_boxes(file_a, file_b, sample_size=20, seed=7)
        b = sample_boxes(file_a, file_b, sample_size=20, seed=7)
        assert a == b


class TestTwoSeededJoin:
    def test_grid_matches_oracle(self, env):
        ws, file_a, file_b, oracle = env
        ws.start_measurement()
        result = two_seeded_join(file_a, file_b, ws.buffer, ws.config,
                                 ws.metrics, seeds="grid", grid_cells=4)
        assert result.pair_set() == oracle
        assert result.algorithm == "2STJ"

    def test_sample_matches_oracle(self, env):
        ws, file_a, file_b, oracle = env
        ws.start_measurement()
        result = two_seeded_join(file_a, file_b, ws.buffer, ws.config,
                                 ws.metrics, seeds="sample", sample_size=30)
        assert result.pair_set() == oracle

    def test_unknown_seed_source_rejected(self, env):
        ws, file_a, file_b, _ = env
        with pytest.raises(ExperimentError):
            two_seeded_join(file_a, file_b, ws.buffer, ws.config,
                            ws.metrics, seeds="magic")

    def test_costs_include_both_constructions(self, env):
        ws, file_a, file_b, _ = env
        ws.start_measurement()
        two_seeded_join(file_a, file_b, ws.buffer, ws.config, ws.metrics,
                        seeds="grid", grid_cells=4)
        s = ws.metrics.summary()
        # Both data files were scanned during construction.
        assert s.construct_read > 0
        assert s.match_read >= 0

    def test_custom_map_area(self, env):
        ws, file_a, file_b, oracle = env
        ws.start_measurement()
        result = two_seeded_join(
            file_a, file_b, ws.buffer, ws.config, ws.metrics,
            seeds="grid", grid_cells=8, map_area=Rect(0, 0, 1, 1),
        )
        assert result.pair_set() == oracle
