"""Unit tests for the partition-parallel executor.

The differential suite (``tests/test_differential.py``) establishes
end-to-end equivalence with sequential runs; this module pins down the
executor's own contract — planning edge cases, the in-process
``workers=1`` path, per-partition statistics, trace structure, method
adaptation on shallow shard trees, and degradation propagation.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.join import spatial_join
from repro.join.engine import ParallelExecutor, _adapt_method, _PartitionTask
from repro.metrics import validate_chrome_trace
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

from ..conftest import random_entries

CFG = SystemConfig(page_size=104, buffer_pages=64)


def _env(n_r: int = 200, n_s: int = 120, seed: int = 5):
    ws = Workspace(CFG)
    d_r = generate_clustered(ClusteredConfig(
        n_r, cover_quotient=2.0, objects_per_cluster=10, seed=seed,
    ))
    d_s = generate_clustered(ClusteredConfig(
        n_s, cover_quotient=2.0, objects_per_cluster=10, seed=seed + 1,
        oid_start=10**6,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    ws.start_measurement()
    return ws, tree_r, file_s


def _join(ws, tree_r, file_s, **kw):
    return spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, **kw,
    )


# --------------------------------------------------------------------- #
# Construction and planning
# --------------------------------------------------------------------- #


def test_invalid_shapes_rejected():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        ParallelExecutor("STJ", CFG, workers=0)
    with pytest.raises(ExperimentError):
        ParallelExecutor("STJ", CFG, workers=2, partitions=0)


def test_partitions_default_scales_with_workers():
    assert ParallelExecutor("STJ", CFG, workers=3).partitions == 12


def test_empty_input_short_circuits():
    ws = Workspace(CFG)
    tree_r = ws.install_rtree(random_entries(30, seed=3))
    empty = ws.install_datafile([])
    ws.start_measurement()
    res = _join(ws, tree_r, empty, method="STJ", workers=2, partitions=4,
                trace=True)
    assert res.pairs == []
    assert res.partitions == []
    assert not res.degraded
    (root,) = res.trace.roots
    assert root.name == "parallel[STJ]"


# --------------------------------------------------------------------- #
# workers=1 in-process path
# --------------------------------------------------------------------- #


def test_workers_one_matches_pool(monkeypatch):
    """The in-process fallback and the pool produce identical results,
    and the fallback never touches multiprocessing."""
    ws, tree_r, file_s = _env()
    pooled = _join(ws, tree_r, file_s, method="BFJ", workers=2, partitions=9)

    import repro.join.engine as engine_mod

    def _no_pool():  # pragma: no cover - failure path
        raise AssertionError("workers=1 must not build a pool")

    monkeypatch.setattr(
        engine_mod.ParallelExecutor, "_pool_context",
        staticmethod(_no_pool),
    )
    ws.start_measurement()
    serial = _join(ws, tree_r, file_s, method="BFJ", workers=1, partitions=9)
    assert serial.pair_set() == pooled.pair_set()
    assert [s.index for s in serial.partitions] == [
        s.index for s in pooled.partitions
    ]


# --------------------------------------------------------------------- #
# Partition statistics
# --------------------------------------------------------------------- #


def test_partition_stats_are_consistent():
    ws, tree_r, file_s = _env()
    res = _join(ws, tree_r, file_s, method="STJ", workers=2, partitions=8)
    stats = res.partitions
    assert stats
    assert [s.index for s in stats] == sorted(s.index for s in stats)
    for s in stats:
        assert s.n_r > 0 and s.n_s > 0, "unproductive shard was executed"
        assert 0 <= s.pairs <= s.raw_pairs, "dedup cannot add pairs"
        assert s.wall_s >= 0.0
        assert len(s.tile) == 4
    assert sum(s.pairs for s in stats) == len(res.pairs)
    # Replication: shard sizes sum to >= the input sizes.
    assert sum(s.n_s for s in stats) >= len(file_s)


def test_variant_label_survives_merging():
    ws, tree_r, file_s = _env()
    res = _join(ws, tree_r, file_s, method="STJ1-2N", workers=1,
                partitions=4)
    assert res.algorithm == "STJ1-2N"
    # Workers ran plain STJ (possibly clamped) on their shard trees.
    assert {s.algorithm for s in res.partitions} <= {"STJ", "BFJ"}


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #


def test_trace_structure_and_chrome_export():
    ws, tree_r, file_s = _env()
    res = _join(ws, tree_r, file_s, method="STJ", workers=2, partitions=4,
                trace=True)
    (root,) = res.trace.roots
    assert root.name == "parallel[STJ]" and root.kind == "join"
    prepare = root.children[0]
    assert prepare.name == "prepare-shards" and prepare.kind == "phase"
    partition_spans = [c for c in root.children if c.kind == "partition"]
    assert [p.name for p in partition_spans] == [
        f"partition[{s.index}]" for s in res.partitions
    ]
    for span in partition_spans:
        # Worker subtrees were rebased onto the parent timeline: the
        # child join span starts at the partition span's start.
        assert span.start_s >= prepare.end_s
        for child in span.children:
            assert child.start_s == pytest.approx(span.start_s)
            assert child.end_s <= root.end_s + 1e-6
    validate_chrome_trace(res.trace.to_chrome_trace())


# --------------------------------------------------------------------- #
# Method adaptation
# --------------------------------------------------------------------- #


def _task(method: str, options: dict | None = None) -> _PartitionTask:
    return _PartitionTask(
        index=0, method=method, config=CFG,
        universe=(0.0, 0.0, 1.0, 1.0), rows=1, cols=1,
        entries_r=[], entries_s=[], options=options or {},
        seed=99, want_trace=False,
    )


def test_adapt_single_leaf_shard_falls_back_to_bfj():
    method, options = _adapt_method(_task("STJ"), tree_height=1)
    assert method == "BFJ" and options == {}


def test_adapt_clamps_seed_levels_to_shard_height():
    method, options = _adapt_method(
        _task("STJ", {"seed_levels": 3}), tree_height=3,
    )
    assert method == "STJ"
    assert options["seed_levels"] == 2


def test_adapt_leaves_feasible_request_alone():
    method, options = _adapt_method(
        _task("STJ", {"seed_levels": 1}), tree_height=4,
    )
    assert options["seed_levels"] == 1


def test_adapt_pins_two_stj_sample_seed():
    method, options = _adapt_method(_task("2STJ"), tree_height=4)
    assert method == "2STJ"
    assert options["sample_seed"] == 99


# --------------------------------------------------------------------- #
# Degradation propagation
# --------------------------------------------------------------------- #


def test_partition_degradation_propagates(monkeypatch):
    import repro.join.engine as engine_mod

    real = engine_mod.run_partition_task

    def degrade_all(task):
        outcome = real(task)
        outcome.degraded = True
        return outcome

    monkeypatch.setattr(engine_mod, "run_partition_task", degrade_all)
    ws, tree_r, file_s = _env(n_r=80, n_s=60)
    res = _join(ws, tree_r, file_s, method="BFJ", workers=1, partitions=4)
    assert res.degraded
    assert res.fallback_from == "BFJ"
    assert "partition" in res.degraded_reason
    assert any(s.degraded for s in res.partitions)
