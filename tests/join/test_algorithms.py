"""Tests for the three join algorithms (BFJ, RTJ, STJ) and their facade.

The central integration property: every algorithm and every STJ variant
returns exactly the same pair set as the quadratic oracle.
"""

import pytest

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.geometry import Rect
from repro.join import (
    STJVariant,
    brute_force_join,
    naive_join,
    rtree_join,
    seeded_tree_join,
    spatial_join,
)
from repro.seeded import CopyStrategy, SeededTree, UpdatePolicy
from repro.workspace import Workspace

from ..conftest import random_entries

N_R, N_S = 250, 150


@pytest.fixture(scope="module")
def env():
    """A shared workspace with T_R and D_S installed, plus the oracle."""
    ws = Workspace(SystemConfig(page_size=104, buffer_pages=128))
    r_entries = random_entries(N_R, seed=21)
    s_entries = random_entries(N_S, seed=22, oid_start=10_000)
    tree_r = ws.install_rtree(r_entries)
    file_s = ws.install_datafile(s_entries, name="D_S")
    oracle = naive_join(s_entries, r_entries).pair_set()
    return ws, tree_r, file_s, oracle


ALL_METHODS = [
    "BFJ", "RTJ",
    "STJ1-2N", "STJ2-2N", "STJ1-2F", "STJ2-2F",
    "STJ1-3F", "STJ2-3F", "STJ1-3N",
]


class TestResultCorrectness:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_matches_oracle(self, env, method):
        ws, tree_r, file_s, oracle = env
        ws.start_measurement()
        result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, method=method)
        assert result.pair_set() == oracle

    @pytest.mark.parametrize("policy", list(UpdatePolicy))
    def test_every_update_policy_correct(self, env, policy):
        ws, tree_r, file_s, oracle = env
        ws.start_measurement()
        result = seeded_tree_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics,
            update_policy=policy,
        )
        assert result.pair_set() == oracle

    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_every_copy_strategy_correct(self, env, strategy):
        ws, tree_r, file_s, oracle = env
        ws.start_measurement()
        result = seeded_tree_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics,
            copy_strategy=strategy,
        )
        assert result.pair_set() == oracle

    def test_forced_linked_lists_correct(self, env):
        ws, tree_r, file_s, oracle = env
        ws.start_measurement()
        result = seeded_tree_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics,
            use_linked_lists=True,
        )
        assert result.pair_set() == oracle


class TestAlgorithmShapes:
    def test_bfj_builds_nothing(self, env):
        ws, tree_r, file_s, _ = env
        ws.start_measurement()
        result = brute_force_join(file_s, tree_r, ws.metrics)
        assert result.index is None
        s = ws.metrics.summary()
        assert s.construct_read == 0
        assert s.construct_write == 0

    def test_rtj_returns_its_tree(self, env):
        ws, tree_r, file_s, _ = env
        ws.start_measurement()
        result = rtree_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics)
        assert result.index is not None
        assert len(result.index) == N_S
        result.index.validate()

    def test_stj_returns_seeded_tree(self, env):
        ws, tree_r, file_s, _ = env
        ws.start_measurement()
        result = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config,
                                  ws.metrics)
        assert isinstance(result.index, SeededTree)
        result.index.validate()

    def test_stj_construction_charged_to_construct(self, env):
        ws, tree_r, file_s, _ = env
        ws.start_measurement()
        seeded_tree_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics)
        s = ws.metrics.summary()
        # At minimum the sequential D_S scan is construction I/O.
        assert s.construct_read > 0

    def test_bfj_xy_tests_zero(self, env):
        """BFJ never plane-sweeps: its CPU is pure bbox tests."""
        ws, tree_r, file_s, _ = env
        ws.start_measurement()
        brute_force_join(file_s, tree_r, ws.metrics)
        s = ws.metrics.summary()
        assert s.xy_tests == 0
        assert s.bbox_tests > 0

    def test_retained_stj_index_answers_selections(self, env):
        """Section 5: the seeded tree can serve later window queries."""
        ws, tree_r, file_s, _ = env
        ws.start_measurement()
        result = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config,
                                  ws.metrics)
        window = Rect(0.2, 0.2, 0.8, 0.8)
        expected = sorted(
            o for r, o in file_s.read_all_unaccounted()
            if r.intersects(window)
        )
        assert sorted(result.index.window_query(window)) == expected


class TestVariantParsing:
    def test_parse_fields(self):
        v = STJVariant.parse("STJ2-3F")
        assert v.flavour == 2
        assert v.seed_levels == 3
        assert v.filtering

    def test_parse_case_insensitive(self):
        assert STJVariant.parse("stj1-2n") == STJVariant(1, 2, False)

    def test_name_round_trip(self):
        for name in ("STJ1-2N", "STJ2-3F", "STJ1-4F"):
            assert STJVariant.parse(name).name == name

    def test_policies(self):
        assert STJVariant.parse("STJ1-2N").update_policy is \
            UpdatePolicy.ENCLOSE_DATA_ONLY
        assert STJVariant.parse("STJ2-2N").update_policy is \
            UpdatePolicy.SLOT_WITH_SEED
        assert STJVariant.parse("STJ1-2N").copy_strategy is \
            CopyStrategy.CENTER_AT_SLOTS

    @pytest.mark.parametrize("bad", ["STJ", "STJ3-2N", "STJ1-N", "RTJ",
                                     "STJ1-2X", ""])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ExperimentError):
            STJVariant.parse(bad)

    def test_spatial_join_rejects_unknown_method(self, env):
        ws, tree_r, file_s, _ = env
        with pytest.raises(ExperimentError):
            spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                         method="ZORDER")

    def test_spatial_join_plain_stj_accepts_kwargs(self, env):
        ws, tree_r, file_s, oracle = env
        ws.start_measurement()
        result = spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics,
            method="stj", seed_levels=2, filtering=True,
        )
        assert result.pair_set() == oracle

    def test_algorithm_label_set(self, env):
        ws, tree_r, file_s, _ = env
        ws.start_measurement()
        result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, method="STJ1-2F")
        assert result.algorithm == "STJ1-2F"


class TestEmptyInputs:
    def test_empty_ds(self):
        ws = Workspace(SystemConfig(page_size=104, buffer_pages=64))
        tree_r = ws.install_rtree(random_entries(50, seed=23))
        file_s = ws.install_datafile([])
        for method in ("BFJ", "RTJ", "STJ1-2N"):
            ws.start_measurement()
            result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                                  ws.metrics, method=method)
            assert result.pairs == []

    def test_empty_dr(self):
        ws = Workspace(SystemConfig(page_size=104, buffer_pages=64))
        tree_r = ws.install_rtree([])
        file_s = ws.install_datafile(random_entries(20, seed=24))
        for method in ("BFJ", "RTJ"):
            ws.start_measurement()
            result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                                  ws.metrics, method=method)
            assert result.pairs == []
