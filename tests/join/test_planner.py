"""Tests for cost estimation and the join planner."""

import pytest

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.join import naive_join
from repro.join.planner import (
    CostEstimate,
    estimate_bfj,
    estimate_join_selectivity,
    estimate_rtj,
    estimate_stj,
    plan_join,
    plan_spatial_join,
)
from repro.workload import ClusteredConfig, generate_clustered, generate_uniform
from repro.workspace import Workspace

CFG = SystemConfig(page_size=512, buffer_pages=128)  # fan-out 24


class TestSelectivityEstimate:
    def test_zero_for_empty_inputs(self):
        assert estimate_join_selectivity(0, 100, 0.01, 0.01) == 0.0
        assert estimate_join_selectivity(100, 0, 0.01, 0.01) == 0.0

    def test_grows_with_cardinalities(self):
        small = estimate_join_selectivity(100, 100, 0.01, 0.01)
        large = estimate_join_selectivity(1000, 100, 0.01, 0.01)
        assert large == pytest.approx(10 * small)

    def test_grows_with_extent(self):
        thin = estimate_join_selectivity(100, 100, 0.001, 0.001)
        fat = estimate_join_selectivity(100, 100, 0.05, 0.05)
        assert fat > thin

    def test_clustering_raises_density(self):
        spread = estimate_join_selectivity(100, 100, 0.01, 0.01, coverage=1.0)
        packed = estimate_join_selectivity(100, 100, 0.01, 0.01, coverage=0.2)
        assert packed > spread

    def test_within_factor_of_truth_on_uniform_data(self):
        n_s, n_r, side = 400, 400, 0.02
        d_s = generate_uniform(n_s, side_bound=side, seed=1)
        d_r = generate_uniform(n_r, side_bound=side, seed=2, oid_start=10_000)
        truth = len(naive_join(d_s, d_r).pairs)
        # Average drawn side is side/2.
        predicted = estimate_join_selectivity(n_s, n_r, side / 2, side / 2)
        assert truth / 3 <= predicted <= truth * 3


class TestEstimators:
    def test_bfj_grows_with_ds(self):
        a = estimate_bfj(CFG, 1_000, tree_r_pages=800, tree_r_height=4)
        b = estimate_bfj(CFG, 10_000, tree_r_pages=800, tree_r_height=4)
        assert b.total_io > a.total_io
        assert a.construct_io == 0

    def test_bfj_cheap_when_tr_fits_buffer(self):
        fits = estimate_bfj(CFG, 5_000, tree_r_pages=100, tree_r_height=3)
        thrash = estimate_bfj(CFG, 5_000, tree_r_pages=2_000, tree_r_height=4)
        assert fits.total_io < thrash.total_io

    def test_rtj_construction_explodes_past_buffer(self):
        fits = estimate_rtj(CFG, 2_000, tree_r_pages=800, tree_r_height=4)
        over = estimate_rtj(CFG, 20_000, tree_r_pages=800, tree_r_height=4)
        assert over.construct_io > 5 * fits.construct_io

    def test_stj_construction_stays_near_linear(self):
        small = estimate_stj(CFG, 5_000, tree_r_pages=800, tree_r_height=4)
        large = estimate_stj(CFG, 20_000, tree_r_pages=800, tree_r_height=4)
        # 4x the data should cost well under 8x the construction.
        assert large.construct_io < 8 * small.construct_io

    def test_stj_beats_rtj_in_overflow_regime(self):
        stj = estimate_stj(CFG, 20_000, tree_r_pages=2_000, tree_r_height=4)
        rtj = estimate_rtj(CFG, 20_000, tree_r_pages=2_000, tree_r_height=4)
        assert stj.total_io < rtj.total_io


class TestPlanJoin:
    def test_ranks_three_methods(self):
        plan = plan_join(CFG, 10_000, tree_r_pages=1_500, tree_r_height=4)
        assert sorted(e.method for e in plan.estimates) == \
            ["BFJ", "RTJ", "STJ"]
        assert isinstance(plan.best, CostEstimate)

    def test_estimate_lookup(self):
        plan = plan_join(CFG, 10_000, tree_r_pages=1_500, tree_r_height=4)
        assert plan.estimate_for("RTJ").method == "RTJ"
        with pytest.raises(ExperimentError):
            plan.estimate_for("ZORDER")

    def test_boundary_case_picks_bfj(self):
        """Tiny derived set, T_R working set fits the buffer: Table 1."""
        plan = plan_join(CFG, 500, tree_r_pages=150, tree_r_height=3)
        assert plan.best.method == "BFJ"

    def test_overflow_case_picks_stj(self):
        plan = plan_join(CFG, 20_000, tree_r_pages=2_000, tree_r_height=4)
        assert plan.best.method == "STJ"

    def test_never_picks_rtj(self):
        """The paper found RTJ dominated everywhere; the estimators
        agree across a broad sweep."""
        for n_s in (500, 2_000, 10_000, 40_000):
            for pages in (100, 800, 3_000):
                plan = plan_join(CFG, n_s, pages, 4)
                assert plan.best.method != "RTJ", (n_s, pages)


class TestPlanSpatialJoin:
    @pytest.fixture(scope="class")
    def env(self):
        ws = Workspace(CFG)
        d_r = generate_clustered(ClusteredConfig(
            10_000, objects_per_cluster=20, seed=51,
        ))
        d_s = generate_clustered(ClusteredConfig(
            4_000, objects_per_cluster=20, seed=52, oid_start=10**6,
        ))
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        oracle = naive_join(d_s, d_r).pair_set()
        return ws, tree_r, file_s, oracle

    def test_plan_only_costs_nothing(self, env):
        ws, tree_r, file_s, _ = env
        ws.start_measurement()
        plan, result = plan_spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics, execute=False,
        )
        assert result is None
        assert ws.metrics.summary().total_io == 0
        assert plan.best.method in ("BFJ", "STJ")

    def test_executed_plan_is_correct(self, env):
        ws, tree_r, file_s, oracle = env
        ws.start_measurement()
        plan, result = plan_spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics,
        )
        assert result is not None
        assert result.pair_set() == oracle

    def test_planner_choice_is_competitive(self, env):
        """The chosen method's measured cost is within 2.5x of the best
        measured method — the planner must never pick a blowup."""
        from repro.join import spatial_join

        ws, tree_r, file_s, _ = env
        measured = {}
        for method in ("BFJ", "RTJ", "STJ1-2N"):
            ws.start_measurement()
            spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                         method=method)
            measured[method] = ws.metrics.summary().total_io
        plan, _ = plan_spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics, execute=False,
        )
        chosen = plan.best.method
        chosen_key = "STJ1-2N" if chosen == "STJ" else chosen
        assert measured[chosen_key] <= 2.5 * min(measured.values())
