"""Tests for the Section-4 clustered workload generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.geometry import Rect
from repro.workload import (
    ClusteredConfig,
    cluster_side_bound,
    generate_clustered,
    generate_clusters,
    generate_uniform,
    measure_cover_quotient,
)
from repro.workload.generator import DEFAULT_MAP_AREA

MAP = DEFAULT_MAP_AREA


class TestClusterSideBound:
    def test_matches_expected_area(self):
        # x clusters of expected area (b/2)^2 must total q.
        for q in (0.2, 0.5, 1.0):
            b = cluster_side_bound(q, 100)
            assert 100 * (b / 2) ** 2 == pytest.approx(q)

    def test_rejects_bad_inputs(self):
        with pytest.raises(WorkloadError):
            cluster_side_bound(0.0, 10)
        with pytest.raises(WorkloadError):
            cluster_side_bound(0.2, 0)


class TestGenerateClusters:
    @pytest.mark.parametrize("quotient", [0.1, 0.3, 0.6, 1.0])
    def test_cover_quotient_hits_target_after_clipping(self, quotient):
        cfg = ClusteredConfig(num_objects=4000, cover_quotient=quotient,
                              seed=1)
        clusters = generate_clusters(cfg, random.Random(1))
        measured = measure_cover_quotient(clusters)
        assert measured == pytest.approx(quotient, rel=0.02)

    def test_cluster_count(self):
        cfg = ClusteredConfig(num_objects=1000, objects_per_cluster=200)
        assert cfg.num_clusters == 5
        clusters = generate_clusters(cfg, random.Random(0))
        assert len(clusters) == 5

    def test_partial_last_cluster(self):
        cfg = ClusteredConfig(num_objects=450, objects_per_cluster=200)
        assert cfg.num_clusters == 3

    def test_clusters_inside_map(self):
        cfg = ClusteredConfig(num_objects=2000, cover_quotient=1.0, seed=2)
        for c in generate_clusters(cfg, random.Random(2)):
            assert MAP.contains(c)


class TestGenerateClustered:
    def test_object_count(self):
        entries = generate_clustered(ClusteredConfig(777, seed=3))
        assert len(entries) == 777

    def test_oids_consecutive_from_start(self):
        entries = generate_clustered(
            ClusteredConfig(50, seed=4, oid_start=1000)
        )
        assert sorted(o for _, o in entries) == list(range(1000, 1050))

    def test_rects_inside_map(self):
        entries = generate_clustered(ClusteredConfig(1000, seed=5))
        assert all(MAP.contains(r) for r, _ in entries)

    def test_deterministic_per_seed(self):
        a = generate_clustered(ClusteredConfig(200, seed=6))
        b = generate_clustered(ClusteredConfig(200, seed=6))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_clustered(ClusteredConfig(200, seed=7))
        b = generate_clustered(ClusteredConfig(200, seed=8))
        assert a != b

    def test_zero_objects(self):
        assert generate_clustered(ClusteredConfig(0)) == []

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            generate_clustered(ClusteredConfig(-1))

    def test_data_side_bound_respected(self):
        entries = generate_clustered(
            ClusteredConfig(500, seed=9, data_side_bound=0.01)
        )
        assert all(r.width <= 0.01 and r.height <= 0.01 for r, _ in entries)

    def test_shuffle_randomises_order(self):
        shuffled = generate_clustered(ClusteredConfig(400, seed=10))
        ordered = generate_clustered(
            ClusteredConfig(400, seed=10, shuffle=False)
        )
        assert sorted(shuffled, key=lambda e: e[1]) == sorted(
            ordered, key=lambda e: e[1]
        )
        assert shuffled != ordered

    def test_unshuffled_order_is_cluster_grouped(self):
        """Without shuffling, consecutive objects are spatially close —
        the input-order locality the paper warns about."""

        def closeness(entries):
            pairs = list(zip(entries, entries[1:]))
            return sum(
                1 for (a, _), (b, _) in pairs
                if abs(a.center()[0] - b.center()[0]) < 0.1
                and abs(a.center()[1] - b.center()[1]) < 0.1
            ) / len(pairs)

        base = dict(cover_quotient=0.05, objects_per_cluster=50, seed=11)
        ordered = generate_clustered(
            ClusteredConfig(400, shuffle=False, **base)
        )
        shuffled = generate_clustered(ClusteredConfig(400, **base))
        assert closeness(ordered) > 2 * closeness(shuffled)

    def test_higher_quotient_spreads_data(self):
        """Lower quotient = more clustered = fewer occupied grid cells."""

        def occupied_cells(entries, grid=32):
            cells = set()
            for r, _ in entries:
                cx, cy = r.center()
                cells.add((min(int(cx * grid), grid - 1),
                           min(int(cy * grid), grid - 1)))
            return len(cells)

        tight = generate_clustered(
            ClusteredConfig(2000, seed=12, cover_quotient=0.1)
        )
        loose = generate_clustered(
            ClusteredConfig(2000, seed=12, cover_quotient=1.0)
        )
        assert occupied_cells(loose) > occupied_cells(tight)


class TestGenerateUniform:
    def test_count_and_bounds(self):
        entries = generate_uniform(300, seed=13)
        assert len(entries) == 300
        assert all(MAP.contains(r) for r, _ in entries)

    def test_oid_start(self):
        entries = generate_uniform(10, seed=14, oid_start=500)
        assert [o for _, o in entries] == list(range(500, 510))

    def test_rejects_negative(self):
        with pytest.raises(WorkloadError):
            generate_uniform(-5)

    def test_custom_map_area(self):
        area = Rect(10, 10, 20, 20)
        entries = generate_uniform(50, seed=15, map_area=area)
        assert all(area.contains(r) for r, _ in entries)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=500),
    st.sampled_from([0.1, 0.2, 0.5, 1.0]),
    st.integers(min_value=0, max_value=10_000),
)
def test_generator_properties(n, quotient, seed):
    cfg = ClusteredConfig(n, cover_quotient=quotient, seed=seed,
                          objects_per_cluster=50)
    entries = generate_clustered(cfg)
    assert len(entries) == n
    assert len({o for _, o in entries}) == n
    assert all(MAP.contains(r) for r, _ in entries)
