"""Tests for the additional spatial data families."""

import pytest

from repro.errors import WorkloadError
from repro.workload import (
    generate_gaussian_clusters,
    generate_grid_cells,
    generate_paths,
    generate_skewed,
)
from repro.workload.generator import DEFAULT_MAP_AREA

MAP = DEFAULT_MAP_AREA

FAMILIES = [
    lambda n, seed: generate_gaussian_clusters(n, seed=seed),
    lambda n, seed: generate_skewed(n, seed=seed),
    lambda n, seed: generate_paths(n, seed=seed),
]


@pytest.mark.parametrize("family", FAMILIES)
class TestCommonContract:
    def test_count_exact(self, family):
        assert len(family(500, 1)) == 500

    def test_zero_objects(self, family):
        assert family(0, 1) == []

    def test_inside_map(self, family):
        entries = family(400, 2)
        assert all(MAP.contains(r) for r, _ in entries)

    def test_oids_unique(self, family):
        entries = family(300, 3)
        assert len({o for _, o in entries}) == 300

    def test_deterministic(self, family):
        assert family(200, 4) == family(200, 4)

    def test_seeds_differ(self, family):
        assert family(200, 5) != family(200, 6)


class TestGaussianClusters:
    def test_clustering_is_real(self):
        """Most mass concentrates near the cluster centers."""
        entries = generate_gaussian_clusters(
            2000, num_clusters=4, sigma=0.01, seed=7,
        )
        # With 4 tight clusters, a 32x32 occupancy grid stays sparse.
        cells = {
            (int(r.center()[0] * 32), int(r.center()[1] * 32))
            for r, _ in entries
        }
        assert len(cells) < 200

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_gaussian_clusters(-1)
        with pytest.raises(WorkloadError):
            generate_gaussian_clusters(10, num_clusters=0)


class TestSkewed:
    def test_hot_spot_dominates(self):
        entries = generate_skewed(3000, num_clusters=30, zipf_s=1.5, seed=8)
        # Bucket by coarse location; the biggest bucket holds far more
        # than a uniform share.
        from collections import Counter

        buckets = Counter(
            (int(r.center()[0] * 10), int(r.center()[1] * 10))
            for r, _ in entries
        )
        top = buckets.most_common(1)[0][1]
        assert top > 3 * (3000 / 100)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_skewed(10, zipf_s=0.0)
        with pytest.raises(WorkloadError):
            generate_skewed(10, num_clusters=0)


class TestPaths:
    def test_segments_are_elongated(self):
        entries = generate_paths(500, step=0.03, thickness=0.002, seed=9)
        ratios = []
        for r, _ in entries:
            if min(r.width, r.height) > 0:
                ratios.append(max(r.width, r.height) /
                              min(r.width, r.height))
        assert sum(ratios) / len(ratios) > 3

    def test_segments_form_chains(self):
        """Walk steps share endpoints, so the overlap graph is dense:
        nearly every segment touches its chain neighbours, shuffle or
        not. Random thin rectangles would barely touch at all."""
        from repro.geometry import sweep_pairs

        entries = generate_paths(300, num_paths=5, seed=10)
        rects = [r for r, _ in entries]
        touching = sum(
            1 for a, b in sweep_pairs(rects, rects) if a is not b
        ) // 2
        assert touching > 200

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_paths(-5)
        with pytest.raises(WorkloadError):
            generate_paths(10, num_paths=0)


class TestGridCells:
    def test_exact_tessellation(self):
        entries = generate_grid_cells(8, coverage=1.0)
        assert len(entries) == 64
        total = sum(r.area() for r, _ in entries)
        assert total == pytest.approx(MAP.area())

    def test_partial_coverage_disjoint(self):
        entries = generate_grid_cells(6, coverage=0.8, seed=11)
        rects = [r for r, _ in entries]
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert not a.intersects(b)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_grid_cells(0)
        with pytest.raises(WorkloadError):
            generate_grid_cells(4, coverage=0.0)
        with pytest.raises(WorkloadError):
            generate_grid_cells(4, coverage=1.5)


class TestJoinsAcrossFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_stj_correct_on_every_family(self, family):
        from repro.config import SystemConfig
        from repro.join import naive_join, seeded_tree_join
        from repro.workspace import Workspace

        ws = Workspace(SystemConfig(page_size=224, buffer_pages=64))
        d_r = family(600, 21)
        d_s = [(r, o + 1_000_000) for r, o in family(400, 22)]
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        result = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config,
                                  ws.metrics)
        assert result.pair_set() == naive_join(d_s, d_r).pair_set()
