"""Tests for stable seed derivation and shard-level regeneration."""

from __future__ import annotations

import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload import (
    ClusteredConfig,
    derive_seed,
    generate_clustered,
    stable_digest,
)

label = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40), st.text(max_size=20)
)


# --------------------------------------------------------------------- #
# derive_seed
# --------------------------------------------------------------------- #


@given(st.integers(min_value=0, max_value=2**62), st.lists(label, max_size=4))
def test_derive_seed_range_and_determinism(base, labels):
    a = derive_seed(base, *labels)
    assert a == derive_seed(base, *labels)
    assert 0 <= a < 2**63


def test_known_values_are_frozen():
    """Cross-process stability, pinned: these constants must never move —
    they are what makes shard regeneration reproducible across runs."""
    assert derive_seed(0) == derive_seed(0)
    assert derive_seed(0, "partition", 3) != derive_seed(0, "partition", 4)
    assert derive_seed(0, "partition", 3) != derive_seed(1, "partition", 3)
    # The digest is the documented SHA-256 of the canonical encoding.
    import hashlib

    expected = hashlib.sha256(b"i0\x00spartition\x00i3\x00").digest()
    assert stable_digest(0, "partition", 3) == expected


def test_stable_across_interpreter_processes():
    """The whole point: a fresh interpreter (fresh hash salt) agrees."""
    import pathlib

    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    code = (
        f"import sys; sys.path.insert(0, {src!r});"
        "from repro.workload import derive_seed;"
        "print(derive_seed(42, 'partition', 7))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True,
    )
    assert int(out.stdout.strip()) == derive_seed(42, "partition", 7)


def test_type_tags_prevent_aliasing():
    """int 1 and str "1" must not collide; neither must shifted splits
    of the same character stream."""
    assert derive_seed(0, 1) != derive_seed(0, "1")
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


def test_bool_and_other_types_rejected():
    with pytest.raises(TypeError):
        derive_seed(0, True)
    with pytest.raises(TypeError):
        stable_digest(0, 1.5)  # type: ignore[arg-type]


@given(st.integers(min_value=0, max_value=1000))
def test_neighbouring_bases_do_not_alias(base):
    """``base + k`` arithmetic would collide streams; hashing does not."""
    assert derive_seed(base, 1) != derive_seed(base + 1, 0)


# --------------------------------------------------------------------- #
# ClusteredConfig.for_shard
# --------------------------------------------------------------------- #


def test_for_shard_is_deterministic_and_distinct():
    cfg = ClusteredConfig(100, cover_quotient=1.0, objects_per_cluster=10,
                          seed=7)
    a = cfg.for_shard("tile", 0)
    b = cfg.for_shard("tile", 1)
    assert a.seed == cfg.for_shard("tile", 0).seed
    assert a.seed != b.seed != cfg.seed
    # Only the seed changes; the workload shape is preserved.
    assert (a.num_objects, a.cover_quotient, a.objects_per_cluster) == (
        cfg.num_objects, cfg.cover_quotient, cfg.objects_per_cluster,
    )


def test_for_shard_regenerates_identically():
    cfg = ClusteredConfig(60, cover_quotient=1.0, objects_per_cluster=6,
                          seed=3)
    shard_cfg = cfg.for_shard("tile", 2, "retry")
    assert generate_clustered(shard_cfg) == generate_clustered(shard_cfg)
    assert generate_clustered(shard_cfg) != generate_clustered(cfg)
