"""Unit tests for the streaming update vocabulary and stream families."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.geometry import Rect
from repro.workload import (
    DELETE,
    INSERT,
    MOVE,
    QUERY,
    DriftFamily,
    MixedTrafficFamily,
    UpdateBatch,
    UpdateOp,
    ZipfChurnFamily,
    available_families,
    get_family,
    make_dataset,
    make_stream,
)


def _live(n: int) -> dict[int, Rect]:
    out = {}
    for i in range(n):
        x = (i % 8) / 8.0
        y = (i // 8 % 8) / 8.0
        out[i] = Rect(x, y, x + 0.01, y + 0.01)
    return out


class TestOps:
    def test_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError):
            UpdateOp("upsert", 1, Rect(0, 0, 1, 1))

    def test_move_requires_to_rect(self):
        with pytest.raises(WorkloadError):
            UpdateOp(MOVE, 1, Rect(0, 0, 1, 1))

    def test_non_move_must_not_carry_to_rect(self):
        with pytest.raises(WorkloadError):
            UpdateOp(INSERT, 1, Rect(0, 0, 1, 1), to_rect=Rect(0, 0, 1, 1))

    def test_batch_counts(self):
        r = Rect(0, 0, 0.1, 0.1)
        batch = UpdateBatch(0, "t", (
            UpdateOp(INSERT, 1, r),
            UpdateOp(DELETE, 2, r),
            UpdateOp(QUERY, -1, r),
            UpdateOp(MOVE, 3, r, to_rect=Rect(0.1, 0.1, 0.2, 0.2)),
        ))
        assert len(batch) == 4
        assert batch.writes == 3
        assert batch.net_growth == 0
        assert batch.count(QUERY) == 1


class TestFamilies:
    @pytest.mark.parametrize(
        "family_cls", (ZipfChurnFamily, DriftFamily, MixedTrafficFamily)
    )
    def test_deterministic_per_seed(self, family_cls):
        live = _live(60)
        a = family_cls(seed=7).batch(live, 40)
        b = family_cls(seed=7).batch(live, 40)
        assert a == b
        c = family_cls(seed=8).batch(live, 40)
        assert a != c

    def test_zipf_deletes_only_live_objects(self):
        live = _live(50)
        family = ZipfChurnFamily(seed=1, insert_fraction=0.3)
        batch = family.batch(live, 60)
        seen_live = dict(live)
        for op in batch.ops:
            if op.kind == DELETE:
                assert op.oid in seen_live
                assert op.rect == seen_live.pop(op.oid)
            else:
                assert op.oid not in seen_live
                seen_live[op.oid] = op.rect

    def test_drift_moves_preserve_identity_and_bounds(self):
        live = _live(40)
        family = DriftFamily(seed=2, move_fraction=1.0)
        area = family.map_area
        batch = family.batch(live, 30)
        model = dict(live)  # same object may move twice in one batch
        for op in batch.ops:
            if op.kind != MOVE:
                continue
            assert op.oid in model
            assert op.rect == model[op.oid]
            assert op.to_rect is not None
            assert op.to_rect.xlo >= area.xlo - 1e-9
            assert op.to_rect.xhi <= area.xhi + 1e-9
            model[op.oid] = op.to_rect

    def test_drift_velocity_is_stable_per_oid(self):
        a = DriftFamily(seed=5)
        b = DriftFamily(seed=5)
        # Touch oids in different orders: same velocities either way.
        va = [a._velocity_for(oid) for oid in (3, 1, 2)]
        vb = [b._velocity_for(oid) for oid in (2, 1, 3)]
        assert va[0] == vb[2] and va[1] == vb[1] and va[2] == vb[0]

    def test_mixed_interleaves_reads_with_inner_writes(self):
        family = MixedTrafficFamily(seed=3, read_fraction=0.5)
        batch = family.batch(_live(80), 50)
        assert len(batch) == 50
        assert batch.count(QUERY) > 0
        assert batch.writes > 0
        for op in batch.ops:
            if op.kind == QUERY:
                assert op.oid == -1

    def test_fresh_oids_never_collide_with_live(self):
        live = {1_000_000: Rect(0, 0, 0.1, 0.1)}  # squats on oid_start
        family = ZipfChurnFamily(seed=0, insert_fraction=1.0)
        batch = family.batch(live, 10)
        oids = [op.oid for op in batch.ops]
        assert 1_000_000 not in oids
        assert len(set(oids)) == len(oids)

    def test_batch_sequence_numbers_increment(self):
        family = DriftFamily(seed=0)
        live = _live(10)
        assert [family.batch(live, 2).seq for _ in range(3)] == [0, 1, 2]


class TestRegistry:
    def test_static_and_stream_families_listed(self):
        static = available_families("static")
        stream = available_families("stream")
        assert "clustered" in static and "grid" in static
        assert "zipf-churn" in stream and "drift" in stream
        assert "mixed-traffic" in stream

    def test_make_dataset_matches_direct_generator(self):
        a = make_dataset("clustered", 200, seed=4)
        b = make_dataset("clustered", 200, seed=4)
        assert a == b
        assert len(a) == 200

    def test_grid_family_truncates_to_requested_count(self):
        data = make_dataset("grid", 10, seed=0)
        assert len(data) == 10

    def test_make_stream_builds_seeded_family(self):
        stream = make_stream("drift", seed=9)
        assert isinstance(stream, DriftFamily)
        assert stream.seed == 9

    def test_unknown_family_is_typed_error(self):
        with pytest.raises(WorkloadError, match="clustered"):
            get_family("no-such-family")

    def test_kind_mismatch_is_typed_error(self):
        with pytest.raises(WorkloadError):
            make_dataset("drift", 100)
        with pytest.raises(WorkloadError):
            make_stream("clustered")
