"""Model-based testing of the full dynamic stack.

One Hypothesis-driven machine owns a churning resident join: random
insert / delete / move / query / join / re-seed sequences run against
plain-dict models, and after every step the trees must stay
structurally valid, queries must answer exactly, the incremental join
must equal the oracle, and the accounting counters must never move
backwards."""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.dynamic import (
    AlwaysRebuild,
    IncrementalJoin,
    NeverReseed,
    ReseedManager,
    StalenessThreshold,
    UpdateStream,
)
from repro.geometry import Rect
from repro.workload import (
    DELETE,
    INSERT,
    MOVE,
    UpdateBatch,
    UpdateOp,
    make_stream,
)
from repro.workspace import Workspace

from ..conftest import random_entries
from .conftest import DYN_CONFIG, oracle_pairs

#: CostSummary counters that must be monotone over a session's life.
COUNTER_FIELDS = (
    "match_read", "match_write", "construct_read", "construct_write",
    "bbox_tests", "xy_tests", "total_io",
)


class DynamicJoinMachine(RuleBasedStateMachine):
    """Random schedules over streams, joins, and re-seeds."""

    def __init__(self):
        super().__init__()
        self.ws = Workspace(DYN_CONFIG)
        data_r = random_entries(180, seed=101)
        data_s = random_entries(180, seed=102, oid_start=10_000)
        self.partner = self.ws.install_rtree(data_r)
        tree_s = self.ws.install_seeded_tree(self.partner, data_s)
        self.stream_r = UpdateStream(
            self.ws, self.partner, make_stream("drift", seed=111),
            live={oid: rect for rect, oid in data_r},
        )
        self.stream_s = UpdateStream(
            self.ws, tree_s, make_stream("zipf-churn", seed=112),
            live={oid: rect for rect, oid in data_s},
        )
        self.inc = IncrementalJoin(self.ws, tree_s, self.partner)
        self.stream_s.attach(self.inc.on_s_op)
        self.stream_r.attach(self.inc.on_r_op)
        self.inc.bootstrap(self.ws.match_resident(tree_s, self.partner))
        self.manager = ReseedManager(
            self.ws, tree_s, self.partner, NeverReseed()
        )
        self.manager.subscribe(self.stream_s.retree)
        self.manager.subscribe(self.inc.retree_s)
        self.next_oid = 500_000
        self.seq = 0
        self.last_counters = self._counters()
        self.last_mutations = (tree_s.mutations, self.partner.mutations)

    # ------------------------------------------------------------- #
    # Helpers
    # ------------------------------------------------------------- #

    def _counters(self) -> tuple:
        summary = self.ws.metrics.summary()
        return tuple(getattr(summary, f) for f in COUNTER_FIELDS)

    def _apply(self, stream: UpdateStream, op: UpdateOp) -> None:
        self.seq += 1
        stream.apply(UpdateBatch(self.seq, "machine", (op,)))

    def _rect(self, x: int, y: int, w: int, h: int) -> Rect:
        return Rect(x / 64, y / 64, min(1.0, (x + 1 + w) / 64),
                    min(1.0, (y + 1 + h) / 64))

    # ------------------------------------------------------------- #
    # Rules: stream writes
    # ------------------------------------------------------------- #

    @rule(x=st.integers(0, 63), y=st.integers(0, 63),
          w=st.integers(0, 4), h=st.integers(0, 4))
    def insert_s(self, x, y, w, h):
        oid, self.next_oid = self.next_oid, self.next_oid + 1
        self._apply(self.stream_s, UpdateOp(INSERT, oid,
                                            self._rect(x, y, w, h)))

    @rule(x=st.integers(0, 63), y=st.integers(0, 63),
          w=st.integers(0, 4), h=st.integers(0, 4))
    def insert_r(self, x, y, w, h):
        oid, self.next_oid = self.next_oid, self.next_oid + 1
        self._apply(self.stream_r, UpdateOp(INSERT, oid,
                                            self._rect(x, y, w, h)))

    @precondition(lambda self: self.stream_s.live)
    @rule(data=st.data())
    def delete_s(self, data):
        oid = data.draw(st.sampled_from(sorted(self.stream_s.live)))
        self._apply(self.stream_s,
                    UpdateOp(DELETE, oid, self.stream_s.live[oid]))

    @precondition(lambda self: self.stream_r.live)
    @rule(data=st.data())
    def delete_r(self, data):
        oid = data.draw(st.sampled_from(sorted(self.stream_r.live)))
        self._apply(self.stream_r,
                    UpdateOp(DELETE, oid, self.stream_r.live[oid]))

    @precondition(lambda self: self.stream_s.live)
    @rule(data=st.data(), x=st.integers(0, 63), y=st.integers(0, 63))
    def move_s(self, data, x, y):
        oid = data.draw(st.sampled_from(sorted(self.stream_s.live)))
        self._apply(self.stream_s, UpdateOp(
            MOVE, oid, self.stream_s.live[oid],
            to_rect=self._rect(x, y, 1, 1),
        ))

    # ------------------------------------------------------------- #
    # Rules: reads, joins, maintenance
    # ------------------------------------------------------------- #

    @rule(x=st.integers(0, 48), y=st.integers(0, 48))
    def window_queries_answer_exactly(self, x, y):
        window = Rect(x / 64, y / 64, x / 64 + 0.25, y / 64 + 0.25)
        for stream in (self.stream_s, self.stream_r):
            expected = sorted(
                oid for oid, rect in stream.live.items()
                if rect.intersects(window)
            )
            got = sorted(self.ws.window_query(stream.tree, window))
            assert got == expected

    @rule()
    def join_agrees_with_incremental_and_oracle(self):
        pairs = sorted(self.ws.match_resident(self.manager.tree,
                                              self.partner))
        assert pairs == self.inc.pairs()
        assert pairs == oracle_pairs(self.stream_s.live,
                                     self.stream_r.live)
        self.manager.record_run(float(len(pairs)), float(len(pairs)))

    @rule(policy=st.sampled_from(("rebuild", "threshold")))
    def reseed(self, policy):
        self.manager.policy = (
            AlwaysRebuild() if policy == "rebuild"
            else StalenessThreshold(incremental_at=0.05, rebuild_at=1e6)
        )
        self.manager.evaluate()
        self.manager.policy = NeverReseed()
        tree = self.manager.tree
        assert self.stream_s.tree is tree
        assert self.inc.tree_s is tree
        # The successor holds exactly the live set.
        assert len(tree) == len(self.stream_s.live)
        everything = Rect(0.0, 0.0, 1.0, 1.0)
        assert set(tree.window_query(everything)) == set(self.stream_s.live)

    # ------------------------------------------------------------- #
    # Invariants
    # ------------------------------------------------------------- #

    @invariant()
    def trees_stay_well_formed(self):
        self.manager.tree.validate()
        self.partner.validate()
        assert len(self.manager.tree) == len(self.stream_s.live)
        assert len(self.partner) == len(self.stream_r.live)

    @invariant()
    def counters_are_monotone(self):
        now = self._counters()
        for field, prev, cur in zip(COUNTER_FIELDS, self.last_counters, now):
            assert cur >= prev, f"{field} moved backwards"
        self.last_counters = now
        muts = (self.manager.tree.mutations, self.partner.mutations)
        # A re-seed swaps in a fresh tree (stamp resets); the partner's
        # stamp can only ever grow.
        assert muts[1] >= self.last_mutations[1]
        self.last_mutations = muts


TestDynamicJoinMachine = DynamicJoinMachine.TestCase
TestDynamicJoinMachine.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
