"""Re-seed policies and procedures: decisions from snapshots, and both
maintenance procedures preserving the live set exactly."""

from __future__ import annotations

import pytest

from repro.dynamic import (
    AlwaysRebuild,
    CostCrossover,
    IncrementalJoin,
    NeverReseed,
    ReseedDecision,
    ReseedManager,
    StalenessThreshold,
    UpdateStream,
    incremental_reseed,
    rebuild_seeded,
)
from repro.dynamic.staleness import StalenessSnapshot
from repro.geometry import Rect
from repro.workload import make_stream
from repro.workspace import Workspace

from ..conftest import random_entries
from .conftest import DYN_CONFIG


def _snap(**kwargs) -> StalenessSnapshot:
    base = dict(
        seed_dilation=0.0, occupancy_skew=1.0, cost_gap=0.0,
        partner_churn=0, runs=5, predicted_io=100.0, measured_io=100.0,
        tree_pages=100,
    )
    base.update(kwargs)
    return StalenessSnapshot(**base)


class TestPolicies:
    def test_never_reseed_never_fires(self):
        policy = NeverReseed()
        assert policy.decide(
            _snap(seed_dilation=99.0, measured_io=1e9)
        ) is ReseedDecision.NONE

    def test_always_rebuild_needs_churn(self):
        policy = AlwaysRebuild()
        assert policy.decide(_snap()) is ReseedDecision.NONE
        assert policy.decide(
            _snap(partner_churn=1)
        ) is ReseedDecision.REBUILD

    def test_staleness_threshold_ladder(self):
        policy = StalenessThreshold(incremental_at=0.25, rebuild_at=2.0,
                                    skew_at=4.0)
        assert policy.decide(_snap(seed_dilation=0.1)) is ReseedDecision.NONE
        assert policy.decide(
            _snap(seed_dilation=0.5)
        ) is ReseedDecision.INCREMENTAL
        assert policy.decide(
            _snap(occupancy_skew=5.0)
        ) is ReseedDecision.INCREMENTAL
        assert policy.decide(
            _snap(seed_dilation=3.0)
        ) is ReseedDecision.REBUILD

    def test_staleness_threshold_validates_bars(self):
        with pytest.raises(ValueError):
            StalenessThreshold(incremental_at=2.0, rebuild_at=1.0)

    def test_cost_crossover_triggers_on_excess(self):
        policy = CostCrossover(min_runs=3)
        quiet = _snap(measured_io=110.0)  # excess 10 < 0.3 * 100
        assert policy.decide(quiet) is ReseedDecision.NONE
        mid = _snap(measured_io=150.0)  # excess 50 >= 30, < 220
        assert policy.decide(mid) is ReseedDecision.INCREMENTAL
        heavy = _snap(measured_io=400.0)  # excess 300 >= 220
        assert policy.decide(heavy) is ReseedDecision.REBUILD

    def test_cost_crossover_waits_for_evidence(self):
        policy = CostCrossover(min_runs=3)
        assert policy.decide(
            _snap(runs=2, measured_io=1e6)
        ) is ReseedDecision.NONE


def _world(n: int = 250):
    ws = Workspace(DYN_CONFIG)
    data_r = random_entries(n, seed=81)
    data_s = random_entries(n, seed=82, oid_start=10_000)
    partner = ws.install_rtree(data_r)
    tree_s = ws.install_seeded_tree(partner, data_s)
    live_s = {oid: rect for rect, oid in data_s}
    return ws, partner, tree_s, live_s


class TestProcedures:
    @pytest.mark.parametrize("procedure", (rebuild_seeded, incremental_reseed))
    def test_successor_holds_exactly_the_live_set(self, procedure):
        ws, partner, tree_s, live_s = _world()
        successor = procedure(ws, tree_s, partner)
        assert successor is not None
        successor.validate()
        assert len(successor) == len(live_s)
        everything = Rect(0.0, 0.0, 1.0, 1.0)
        assert set(successor.window_query(everything)) == set(live_s)

    def test_procedures_charge_maintenance(self):
        ws, partner, tree_s, _ = _world()
        before = ws.metrics.summary().construct_io
        rebuild_seeded(ws, tree_s, partner)
        assert ws.metrics.summary().construct_io > before

    def test_incremental_is_cheaper_than_rebuild(self):
        """The whole point of grafting: an incremental re-seed must move
        far less accounted I/O than a full rebuild of the same tree."""
        ws_a, partner_a, tree_a, _ = _world()
        before = ws_a.metrics.summary().construct_io
        incremental_reseed(ws_a, tree_a, partner_a)
        incr_cost = ws_a.metrics.summary().construct_io - before

        ws_b, partner_b, tree_b, _ = _world()
        before = ws_b.metrics.summary().construct_io
        rebuild_seeded(ws_b, tree_b, partner_b)
        rebuild_cost = ws_b.metrics.summary().construct_io - before

        assert incr_cost < rebuild_cost

    def test_reseeded_join_equals_rebuilt_join(self):
        """Both procedures permute structure, not data: joins through
        either successor produce identical pair sets."""
        ws_a, partner_a, tree_a, _ = _world()
        ws_b, partner_b, tree_b, _ = _world()
        grafted = incremental_reseed(ws_a, tree_a, partner_a)
        rebuilt = rebuild_seeded(ws_b, tree_b, partner_b)
        assert grafted is not None
        pairs_grafted = sorted(ws_a.match_resident(grafted, partner_a))
        pairs_rebuilt = sorted(ws_b.match_resident(rebuilt, partner_b))
        assert pairs_grafted == pairs_rebuilt
        assert pairs_grafted  # non-vacuous


class TestManager:
    def _managed(self, policy):
        ws, partner, tree_s, live_s = _world()
        data_r_live = {
            oid: rect for rect, oid in random_entries(250, seed=81)
        }
        stream_r = UpdateStream(
            ws, partner, make_stream("drift", seed=91, speed=0.04),
            live=data_r_live,
        )
        stream_s = UpdateStream(
            ws, tree_s, make_stream("zipf-churn", seed=92), live=live_s
        )
        inc = IncrementalJoin(ws, tree_s, partner)
        stream_s.attach(inc.on_s_op)
        stream_r.attach(inc.on_r_op)
        inc.bootstrap(ws.match_resident(tree_s, partner))
        manager = ReseedManager(ws, tree_s, partner, policy)
        manager.subscribe(stream_s.retree)
        manager.subscribe(inc.retree_s)
        return ws, manager, stream_s, stream_r, inc

    def test_never_policy_keeps_tree_identity(self):
        ws, manager, stream_s, stream_r, inc = self._managed(NeverReseed())
        original = manager.tree
        stream_r.step(40)
        decision, snap = manager.evaluate()
        assert decision is ReseedDecision.NONE
        assert manager.tree is original
        assert manager.reseeds == 0 and manager.rebuilds == 0

    def test_rebuild_fires_and_repoints_subscribers(self):
        ws, manager, stream_s, stream_r, inc = self._managed(AlwaysRebuild())
        original = manager.tree
        stream_r.step(40)
        decision, snap = manager.evaluate()
        assert decision is ReseedDecision.REBUILD
        assert manager.rebuilds == 1
        assert manager.tree is not original
        assert stream_s.tree is manager.tree
        assert inc.tree_s is manager.tree
        # The incremental join stays exact through the swap.
        stream_s.step(20)
        stream_r.step(20)
        fresh = sorted(ws.match_resident(manager.tree, manager.partner))
        assert inc.pairs() == fresh

    def test_incremental_fires_under_low_threshold(self):
        policy = StalenessThreshold(incremental_at=1e-6, rebuild_at=1e6)
        ws, manager, stream_s, stream_r, inc = self._managed(policy)
        stream_r.step(60)
        decision, snap = manager.evaluate()
        assert decision is ReseedDecision.INCREMENTAL
        assert manager.reseeds == 1
        manager.tree.validate()
        fresh = sorted(ws.match_resident(manager.tree, manager.partner))
        assert inc.pairs() == fresh
