"""StalenessTracker: drift signals must be zero on a fresh baseline and
grow monotonically meaningful under churn."""

from __future__ import annotations

import pytest

from repro.dynamic import StalenessTracker, UpdateStream, occupancy_skew
from repro.dynamic.staleness import partner_seed_boxes
from repro.workload import make_stream
from repro.workspace import Workspace

from ..conftest import random_entries
from .conftest import DYN_CONFIG


def _world(n: int = 250):
    ws = Workspace(DYN_CONFIG)
    data_r = random_entries(n, seed=61)
    data_s = random_entries(n, seed=62, oid_start=10_000)
    partner = ws.install_rtree(data_r)
    tree_s = ws.install_seeded_tree(partner, data_s)
    return ws, partner, tree_s, data_r


class TestSignals:
    def test_fresh_baseline_measures_clean(self):
        ws, partner, tree_s, _ = _world()
        tracker = StalenessTracker()
        tracker.rebaseline(partner, tree_s)
        snap = tracker.measure(partner, tree_s)
        assert snap.seed_dilation == 0.0
        assert snap.partner_churn == 0
        assert snap.runs == 0
        assert snap.cost_gap == 0.0
        assert snap.excess_io == 0.0
        assert snap.tree_pages == tree_s.num_nodes()

    def test_partner_churn_raises_dilation(self):
        ws, partner, tree_s, data_r = _world()
        tracker = StalenessTracker()
        tracker.rebaseline(partner, tree_s)
        stream = UpdateStream(
            ws, partner, make_stream("drift", seed=71, speed=0.05),
            live={oid: rect for rect, oid in data_r},
        )
        for _ in range(6):
            stream.step(60)
        snap = tracker.measure(partner, tree_s)
        assert snap.partner_churn > 0
        assert snap.seed_dilation > 0.0

    def test_cost_gap_windows_measured_runs(self):
        ws, partner, tree_s, _ = _world()
        tracker = StalenessTracker(window=3)
        tracker.rebaseline(partner, tree_s)
        for measured in (100.0, 110.0, 120.0, 200.0):
            tracker.record_run(100.0, measured)
        snap = tracker.measure(partner, tree_s)
        assert snap.runs == 3  # the first run fell out of the window
        assert snap.predicted_io == 300.0
        assert snap.measured_io == 430.0
        assert snap.cost_gap == pytest.approx(430.0 / 300.0 - 1.0)
        assert snap.excess_io == pytest.approx(130.0)

    def test_rebaseline_clears_runs_and_churn(self):
        ws, partner, tree_s, _ = _world()
        tracker = StalenessTracker()
        tracker.rebaseline(partner, tree_s)
        tracker.record_run(10.0, 50.0)
        partner.insert(*random_entries(1, seed=99, oid_start=90_000)[0])
        tracker.rebaseline(partner, tree_s)
        snap = tracker.measure(partner, tree_s)
        assert snap.runs == 0
        assert snap.partner_churn == 0
        assert snap.seed_dilation == 0.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            StalenessTracker(window=0)


class TestStructure:
    def test_seed_boxes_match_seeding_depth(self):
        ws, partner, tree_s, _ = _world()
        boxes = partner_seed_boxes(partner, tree_s.seed_levels)
        assert boxes  # a height>=3 partner always yields slot boxes
        # Every box must sit inside the partner root's bounding region.
        root = partner._node_unaccounted(partner.root_id)
        universe = root.entries[0].mbr
        for e in root.entries[1:]:
            universe = universe.union(e.mbr)
        for box in boxes:
            assert universe.contains(box)

    def test_occupancy_skew_at_least_one(self):
        ws, partner, tree_s, _ = _world()
        assert occupancy_skew(tree_s) >= 1.0
