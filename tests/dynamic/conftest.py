"""Shared wiring for the dynamic-data suite.

Small pages keep the trees tall (the default two seed levels need a
partner of height >= 3) while modest object counts keep every test
inside tier-1 time budgets.
"""

from __future__ import annotations

from repro.config import SystemConfig

DYN_CONFIG = SystemConfig(page_size=256, buffer_pages=48)


def oracle_pairs(
    live_s: dict, live_r: dict
) -> list[tuple[int, int]]:
    """Brute-force S x R intersection pairs over two live models."""
    return sorted(
        (oid_s, oid_r)
        for oid_s, rect_s in live_s.items()
        for oid_r, rect_r in live_r.items()
        if rect_s.intersects(rect_r)
    )
