"""Differential: the incrementally-maintained join must equal a
from-scratch join over the post-churn data — across kernels on/off,
sequential and pooled execution, and multiple seeds."""

from __future__ import annotations

import pytest

from repro.dynamic import DynamicScenario
from repro.geometry import Rect
from repro.join import spatial_join
from repro.workspace import Workspace

from .conftest import DYN_CONFIG

SEEDS = (0, 1, 2)

#: Dense cluster coverage so the two sides genuinely intersect at this
#: scale — the paper's defaults give near-disjoint clusters below a few
#: thousand objects, which would make every equality check vacuous.
DENSE = {"cover_quotient": 1.0, "data_side_bound": 0.03,
         "objects_per_cluster": 40}


def _churned(seed: int) -> DynamicScenario:
    scenario = DynamicScenario(DYN_CONFIG, n_r=200, n_s=200, seed=seed,
                               dataset_params=DENSE)
    for _ in range(3):
        scenario.step(s_ops=12, r_ops=12)
    return scenario


def _entries(live: dict[int, Rect]) -> list[tuple[Rect, int]]:
    return [(live[oid], oid) for oid in sorted(live)]


def _scratch_pairs(scenario: DynamicScenario, **join_kw) -> list:
    """Join the post-churn live sets from scratch in a fresh workspace."""
    ws = Workspace(DYN_CONFIG)
    tree_r = ws.install_rtree(_entries(scenario.stream_r.live))
    file_s = ws.install_datafile(_entries(scenario.stream_s.live))
    ws.start_measurement()
    result = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics,
        method="STJ1-2N", **join_kw,
    )
    return sorted(result.pair_set())


class TestIncrementalVsScratch:
    @pytest.mark.parametrize("kernels", ("0", "1"))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sequential(self, seed, kernels, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", kernels)
        scenario = _churned(seed)
        expected = scenario.reference_pairs()
        assert expected  # non-vacuous workload
        assert scenario.incremental.pairs() == expected
        assert _scratch_pairs(scenario) == expected

    @pytest.mark.parametrize("kernels", ("0", "1"))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_pooled(self, seed, kernels, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", kernels)
        scenario = _churned(seed)
        expected = scenario.reference_pairs()
        pooled = _scratch_pairs(
            scenario, workers=2, partitions=4, parallel_seed=0,
            parallel_guard=False,
        )
        assert pooled == expected
        assert scenario.incremental.pairs() == expected

    @pytest.mark.parametrize("batch", ("0", "1"))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sequential_batch_modes(self, seed, batch, monkeypatch):
        """The batch-first traversal layer (REPRO_BATCH) is invisible to
        the dynamic pipeline too."""
        monkeypatch.setenv("REPRO_KERNELS", "1")
        monkeypatch.setenv("REPRO_BATCH", batch)
        scenario = _churned(seed)
        expected = scenario.reference_pairs()
        assert expected
        assert scenario.incremental.pairs() == expected
        assert _scratch_pairs(scenario) == expected

    @pytest.mark.parametrize("batch", ("0", "1"))
    def test_resident_rejoin_agrees_after_more_churn(self, batch,
                                                     monkeypatch):
        """The resident TM join, the incremental result, and a scratch
        join stay three-way identical as churn continues — with and
        without the batch layer, whose plan and construction-replay
        caches must invalidate on every churn step's tree mutations."""
        monkeypatch.setenv("REPRO_BATCH", batch)
        scenario = _churned(0)
        for _ in range(2):
            scenario.step(s_ops=10, r_ops=10)
            resident = sorted(scenario.run_join())
            assert resident == scenario.incremental.pairs()
        assert _scratch_pairs(scenario) == scenario.incremental.pairs()
