"""UpdateStream: accounted application of generated batches, listener
ordering, and the incremental join it feeds."""

from __future__ import annotations

import pytest

from repro.dynamic import IncrementalJoin, UpdateStream
from repro.errors import TreeError
from repro.geometry import Rect
from repro.workload import (
    DELETE,
    INSERT,
    MOVE,
    QUERY,
    UpdateBatch,
    UpdateOp,
    make_stream,
)
from repro.workspace import Workspace

from ..conftest import random_entries
from .conftest import DYN_CONFIG, oracle_pairs


def _world(n_r: int = 200, n_s: int = 200, seeded: bool = True):
    ws = Workspace(DYN_CONFIG)
    data_r = random_entries(n_r, seed=21)
    data_s = random_entries(n_s, seed=22, oid_start=10_000)
    partner = ws.install_rtree(data_r)
    # Small partners are too short to seed from; tests that only drive
    # the partner R-tree skip the seeded side.
    tree_s = ws.install_seeded_tree(partner, data_s) if seeded else None
    return ws, partner, tree_s, data_r, data_s


class TestUpdateStream:
    def test_live_model_defaults_from_tree(self):
        ws, partner, _, data_r, _ = _world()
        stream = UpdateStream(ws, partner, make_stream("drift", seed=1))
        assert stream.live == {oid: rect for rect, oid in data_r}

    def test_batches_keep_tree_exact_and_valid(self):
        ws, partner, tree_s, _, data_s = _world()
        stream = UpdateStream(
            ws, tree_s, make_stream("zipf-churn", seed=3),
            live={oid: rect for rect, oid in data_s},
        )
        for _ in range(5):
            report = stream.step(20)
            assert report.writes + report.queries == 20
            tree_s.validate()
            assert len(tree_s) == len(stream.live)
            window = Rect(0.2, 0.2, 0.8, 0.8)
            expected = {
                oid for oid, rect in stream.live.items()
                if rect.intersects(window)
            }
            assert set(tree_s.window_query(window)) == expected

    def test_writes_charge_construct_queries_charge_match(self):
        ws, partner, _, _, _ = _world()
        stream = UpdateStream(ws, partner, make_stream("mixed-traffic", seed=5))
        report = stream.step(30)
        assert report.queries > 0 and report.writes > 0
        assert report.maintenance_io > 0
        assert report.match_read > 0

    def test_listener_sees_every_op_in_order(self):
        ws, partner, _, _, _ = _world(n_r=80, seeded=False)
        stream = UpdateStream(ws, partner, make_stream("drift", seed=7))
        seen: list[UpdateOp] = []
        stream.attach(seen.append)
        batch = stream.family.batch(stream.live, 12)
        stream.apply(batch)
        assert tuple(seen) == batch.ops

    def test_delete_miss_is_typed_error(self):
        ws, partner, _, _, _ = _world(n_r=50, seeded=False)
        stream = UpdateStream(ws, partner, make_stream("drift", seed=0))
        ghost = UpdateBatch(0, "manual", (
            UpdateOp(DELETE, 999_999, Rect(0.5, 0.5, 0.51, 0.51)),
        ))
        with pytest.raises(TreeError, match="lost object"):
            stream.apply(ghost)


class TestIncrementalJoin:
    def _wired(self, n: int = 150):
        ws = Workspace(DYN_CONFIG)
        data_r = random_entries(n, seed=31)
        data_s = random_entries(n, seed=32, oid_start=10_000)
        partner = ws.install_rtree(data_r)
        tree_s = ws.install_seeded_tree(partner, data_s)
        stream_r = UpdateStream(
            ws, partner, make_stream("drift", seed=41),
            live={oid: rect for rect, oid in data_r},
        )
        stream_s = UpdateStream(
            ws, tree_s, make_stream("zipf-churn", seed=42),
            live={oid: rect for rect, oid in data_s},
        )
        inc = IncrementalJoin(ws, tree_s, partner)
        stream_s.attach(inc.on_s_op)
        stream_r.attach(inc.on_r_op)
        inc.bootstrap(ws.match_resident(tree_s, partner))
        return ws, stream_s, stream_r, inc

    def test_stays_exact_under_two_sided_churn(self):
        ws, stream_s, stream_r, inc = self._wired()
        for _ in range(4):
            stream_s.step(15)
            stream_r.step(15)
            assert inc.pairs() == oracle_pairs(stream_s.live, stream_r.live)

    def test_matches_resident_join_after_churn(self):
        ws, stream_s, stream_r, inc = self._wired()
        stream_s.step(25)
        stream_r.step(25)
        fresh = sorted(ws.match_resident(stream_s.tree, stream_r.tree))
        assert inc.pairs() == fresh

    def test_probes_charge_match_phase(self):
        ws, stream_s, stream_r, inc = self._wired()
        before = ws.metrics.summary().match_read
        probes_before = inc.probes
        stream_s.step(20)
        assert inc.probes > probes_before
        assert ws.metrics.summary().match_read > before

    def test_delete_is_pure_bookkeeping(self):
        ws, stream_s, stream_r, inc = self._wired()
        victim = sorted(stream_s.live)[0]
        rect = stream_s.live[victim]
        probes_before = inc.probes
        stream_s.apply(UpdateBatch(99, "manual",
                                   (UpdateOp(DELETE, victim, rect),)))
        assert inc.probes == probes_before  # no window query for deletes
        assert all(s != victim for s, _ in inc.pair_set())
