"""Chaos over the dynamic stack: randomized update/join/re-seed
schedules under randomized fault plans.

The storage invariant, extended to updates: under ANY fault schedule a
dynamic session either keeps answering exactly or raises a typed
:class:`~repro.errors.ReproError` — it never silently corrupts the
materialized join, loses objects, or wedges the buffer pool on a leaked
pin. 200 deterministic schedules; ``-k smoke`` selects the fixed-seed
subset CI runs on every push, the full sweep runs in the chaos leg.
"""

from __future__ import annotations

import random

import pytest

from repro.config import SystemConfig
from repro.dynamic import DynamicScenario, StalenessThreshold
from repro.errors import ReproError
from repro.storage import FaultInjector, FaultPlan

# Small pages keep the partner tall enough to seed from at this scale
# while updates still cause real splits, condenses, and evictions.
CONFIG = SystemConfig(page_size=256, buffer_pages=32)
N_SCHEDULES = 200


def _random_plan(rng: random.Random) -> FaultPlan:
    kind = rng.choice(
        ["quiet", "quiet", "transient", "torn", "bitflip", "crash", "mixed"]
    )
    if kind == "quiet":
        return FaultPlan()
    if kind == "transient":
        return FaultPlan(transient_read_rate=rng.uniform(0.01, 0.15))
    if kind == "torn":
        return FaultPlan(torn_write_rate=rng.uniform(0.01, 0.1))
    if kind == "bitflip":
        return FaultPlan(bit_flip_rate=rng.uniform(0.002, 0.02))
    if kind == "crash":
        return FaultPlan(crash_after_ops=rng.randrange(50, 600))
    return FaultPlan(
        transient_read_rate=rng.uniform(0.0, 0.05),
        torn_write_rate=rng.uniform(0.0, 0.03),
        crash_after_ops=rng.randrange(100, 800),
    )


def _schedule_run(seed: int) -> None:
    """One randomized schedule: mixed churn, joins, and re-seeds under
    an armed fault injector; exact-or-typed-error throughout."""
    rng = random.Random(seed * 0x9E3779B1 % 2**32)
    plan = _random_plan(rng)
    injector = FaultInjector(plan, seed=seed)
    # Construction is fault-free (the injector starts disarmed): the
    # schedule chaos targets served traffic, like the service suite.
    scenario = DynamicScenario(
        CONFIG, n_r=150, n_s=150, seed=seed % 7,
        # Dense coverage so the materialized join is non-empty and the
        # exactness check below compares real pair sets.
        dataset_params={"cover_quotient": 1.0, "data_side_bound": 0.03,
                        "objects_per_cluster": 40},
        policy=StalenessThreshold(incremental_at=0.1, rebuild_at=3.0),
        injector=injector,
    )
    injector.arm()
    clean = True
    try:
        for _ in range(rng.randrange(2, 5)):
            action = rng.choice(("s", "r", "both", "join", "maintain"))
            if action == "s":
                scenario.step(s_ops=rng.randrange(4, 12))
            elif action == "r":
                scenario.step(r_ops=rng.randrange(4, 12))
            elif action == "both":
                scenario.step(s_ops=rng.randrange(2, 8),
                              r_ops=rng.randrange(2, 8))
            elif action == "join":
                scenario.run_join()
            else:
                scenario.maintain()
    except ReproError:
        clean = False  # a typed failure is an acceptable outcome
    except Exception as exc:  # noqa: BLE001 — the invariant under test
        pytest.fail(
            f"untyped {type(exc).__name__} escaped under plan {plan}: {exc}"
        )
    if not clean:
        return
    # A schedule that completed without a typed error must still be
    # answering exactly: the materialized join equals the brute-force
    # oracle over the live models.
    assert scenario.incremental.pairs() == scenario.reference_pairs(), (
        f"silently wrong materialized join under plan {plan}"
    )
    if plan.is_quiet:
        totals = scenario.workspace.metrics.fault_totals()
        assert totals.faults_injected == 0


class TestDynamicChaos:
    @pytest.mark.parametrize("seed", range(N_SCHEDULES))
    def test_exact_or_typed_error(self, seed: int):
        _schedule_run(seed)


class TestDynamicChaosSmoke:
    """Fixed-seed subset for per-push CI
    (`pytest tests/dynamic/test_chaos_dynamic.py -k smoke`)."""

    @pytest.mark.parametrize("seed", (2, 17, 53, 101, 163))
    def test_smoke(self, seed: int):
        _schedule_run(seed)
