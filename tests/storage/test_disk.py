"""Tests for the disk simulator's accounting and page store."""

import pytest

from repro.errors import PageNotFoundError, StorageError
from repro.metrics import MetricsCollector, Phase
from repro.storage import DiskSimulator, Page, PageKind


def make_disk():
    metrics = MetricsCollector()
    return DiskSimulator(metrics), metrics


def page(disk, payload="x"):
    return Page(disk.allocate(), PageKind.DATA, payload)


class TestAllocation:
    def test_ids_are_contiguous(self):
        disk, _ = make_disk()
        first = disk.allocate(5)
        nxt = disk.allocate()
        assert nxt == first + 5

    def test_rejects_nonpositive_count(self):
        disk, _ = make_disk()
        with pytest.raises(StorageError):
            disk.allocate(0)

    def test_allocated_counter(self):
        disk, _ = make_disk()
        disk.allocate(3)
        assert disk.allocated_pages == 3


class TestReadWrite:
    def test_round_trip(self):
        disk, _ = make_disk()
        p = page(disk, payload={"k": 1})
        disk.write(p)
        assert disk.read(p.page_id) is p

    def test_read_unwritten_raises(self):
        disk, _ = make_disk()
        disk.allocate()
        with pytest.raises(PageNotFoundError):
            disk.read(0)

    def test_write_unallocated_raises(self):
        disk, _ = make_disk()
        with pytest.raises(StorageError):
            disk.write(Page(99, PageKind.DATA, None))

    def test_written_pages_counter(self):
        disk, _ = make_disk()
        p = page(disk)
        disk.write(p)
        disk.write(p)  # overwrite
        assert disk.written_pages == 1


class TestClassification:
    def test_first_access_is_random(self):
        disk, metrics = make_disk()
        p = page(disk)
        with metrics.phase(Phase.MATCH):
            disk.write(p)
        io = metrics.io_for(Phase.MATCH)
        assert io.random_writes == 1
        assert io.sequential_writes == 0

    def test_consecutive_pages_are_sequential(self):
        disk, metrics = make_disk()
        first = disk.allocate(3)
        pages = [Page(first + i, PageKind.DATA, i) for i in range(3)]
        with metrics.phase(Phase.MATCH):
            for p in pages:
                disk.write(p)
        io = metrics.io_for(Phase.MATCH)
        assert io.random_writes == 1
        assert io.sequential_writes == 2

    def test_backwards_access_is_random(self):
        disk, metrics = make_disk()
        first = disk.allocate(2)
        a = Page(first, PageKind.DATA, 0)
        b = Page(first + 1, PageKind.DATA, 1)
        with metrics.phase(Phase.MATCH):
            disk.write(b)
            disk.write(a)  # going backwards: a seek
        io = metrics.io_for(Phase.MATCH)
        assert io.random_writes == 2

    def test_read_after_adjacent_write_is_sequential(self):
        disk, metrics = make_disk()
        first = disk.allocate(2)
        disk.write(Page(first, PageKind.DATA, 0))
        disk.write(Page(first + 1, PageKind.DATA, 1))
        with metrics.phase(Phase.MATCH):
            disk.reset_arm()
            disk.read(first)          # random (arm was reset)
            disk.read(first + 1)      # sequential
        io = metrics.io_for(Phase.MATCH)
        assert io.random_reads == 1
        assert io.sequential_reads == 1

    def test_reset_arm_forces_random(self):
        disk, metrics = make_disk()
        first = disk.allocate(2)
        disk.write(Page(first, PageKind.DATA, 0))
        disk.write(Page(first + 1, PageKind.DATA, 1))
        disk.reset_arm()
        with metrics.phase(Phase.MATCH):
            disk.read(first + 1)
        assert metrics.io_for(Phase.MATCH).random_reads == 1


class TestRunIO:
    def test_write_run_costs_one_seek(self):
        disk, metrics = make_disk()
        first = disk.allocate(10)
        pages = [Page(first + i, PageKind.LIST, i) for i in range(10)]
        with metrics.phase(Phase.CONSTRUCT):
            disk.write_run(pages)
        io = metrics.io_for(Phase.CONSTRUCT)
        assert io.random_writes == 1
        assert io.sequential_writes == 9

    def test_read_run_costs_one_seek(self):
        disk, metrics = make_disk()
        first = disk.allocate(10)
        disk.write_run([Page(first + i, PageKind.LIST, i) for i in range(10)])
        disk.reset_arm()
        with metrics.phase(Phase.CONSTRUCT):
            got = disk.read_run(first, 10)
        assert [p.payload for p in got] == list(range(10))
        io = metrics.io_for(Phase.CONSTRUCT)
        assert io.random_reads == 1
        assert io.sequential_reads == 9

    def test_write_run_rejects_gaps(self):
        disk, _ = make_disk()
        first = disk.allocate(3)
        pages = [Page(first, PageKind.LIST, 0), Page(first + 2, PageKind.LIST, 2)]
        with pytest.raises(StorageError):
            disk.write_run(pages)

    def test_write_run_empty_is_noop(self):
        disk, metrics = make_disk()
        disk.write_run([])
        assert metrics.io_for(Phase.SETUP).total_accesses == 0

    def test_read_run_missing_page_raises(self):
        disk, _ = make_disk()
        disk.allocate(3)
        with pytest.raises(PageNotFoundError):
            disk.read_run(0, 3)


class TestUnaccountedAccess:
    def test_peek_charges_nothing(self):
        disk, metrics = make_disk()
        p = page(disk)
        disk.write(p)
        before = metrics.io_for(Phase.SETUP).total_accesses
        assert disk.peek(p.page_id) is p
        assert disk.peek(12345) is None
        assert metrics.io_for(Phase.SETUP).total_accesses == before

    def test_install_places_pages_free(self):
        disk, metrics = make_disk()
        first = disk.allocate(3)
        disk.install([Page(first + i, PageKind.TREE_NODE, i) for i in range(3)])
        assert disk.exists(first + 2)
        assert metrics.io_for(Phase.SETUP).total_accesses == 0

    def test_install_rejects_unallocated(self):
        disk, _ = make_disk()
        with pytest.raises(StorageError):
            disk.install([Page(7, PageKind.TREE_NODE, None)])

    def test_pages_of_kind(self):
        disk, _ = make_disk()
        first = disk.allocate(2)
        disk.write(Page(first, PageKind.DATA, "d"))
        disk.write(Page(first + 1, PageKind.TREE_NODE, "t"))
        assert [p.payload for p in disk.pages_of_kind(PageKind.DATA)] == ["d"]


class TestPhaseAttribution:
    def test_accesses_follow_current_phase(self):
        disk, metrics = make_disk()
        p = page(disk)
        with metrics.phase(Phase.CONSTRUCT):
            disk.write(p)
        with metrics.phase(Phase.MATCH):
            disk.read(p.page_id)
        assert metrics.io_for(Phase.CONSTRUCT).random_writes == 1
        assert metrics.io_for(Phase.MATCH).random_reads == 1
        assert metrics.io_for(Phase.SETUP).total_accesses == 0
