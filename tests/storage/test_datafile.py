"""Tests for sequential data files."""

from repro.config import SystemConfig
from repro.metrics import MetricsCollector, Phase
from repro.storage import DataFile, DiskSimulator

from ..conftest import random_entries


def make(config=None):
    cfg = config or SystemConfig(page_size=512)  # data capacity 24
    metrics = MetricsCollector(cfg)
    disk = DiskSimulator(metrics)
    return cfg, metrics, disk


class TestCreate:
    def test_page_count(self):
        cfg, _, disk = make()
        f = DataFile.create(disk, cfg, random_entries(50))
        assert f.num_objects == 50
        assert f.num_pages == (50 + 23) // 24
        assert len(f) == 50

    def test_write_is_one_sequential_run(self):
        cfg, metrics, disk = make()
        with metrics.phase(Phase.SETUP):
            DataFile.create(disk, cfg, random_entries(100))
        io = metrics.io_for(Phase.SETUP)
        assert io.random_writes == 1
        assert io.sequential_writes == f_pages(cfg, 100) - 1

    def test_empty_file(self):
        cfg, _, disk = make()
        f = DataFile.create(disk, cfg, [])
        assert f.num_objects == 0
        assert f.num_pages == 0
        assert list(f.scan()) == []

    def test_exactly_one_page(self):
        cfg, _, disk = make()
        f = DataFile.create(disk, cfg, random_entries(24))
        assert f.num_pages == 1


def f_pages(cfg, n):
    return cfg.data_pages_for(n)


class TestScan:
    def test_round_trip_order_preserved(self):
        cfg, _, disk = make()
        entries = random_entries(75)
        f = DataFile.create(disk, cfg, entries)
        assert list(f.scan()) == entries

    def test_scan_is_sequential(self):
        cfg, metrics, disk = make()
        f = DataFile.create(disk, cfg, random_entries(100))
        disk.reset_arm()
        with metrics.phase(Phase.MATCH):
            list(f.scan())
        io = metrics.io_for(Phase.MATCH)
        assert io.random_reads == 1
        assert io.sequential_reads == f.num_pages - 1

    def test_scan_pages_groups_by_page(self):
        cfg, _, disk = make()
        entries = random_entries(50)
        f = DataFile.create(disk, cfg, entries)
        pages = list(f.scan_pages())
        assert [len(p) for p in pages] == [24, 24, 2]
        flat = [e for page in pages for e in page]
        assert flat == entries

    def test_repeated_scans_each_charge(self):
        cfg, metrics, disk = make()
        f = DataFile.create(disk, cfg, random_entries(48))
        with metrics.phase(Phase.MATCH):
            list(f.scan())
            list(f.scan())
        io = metrics.io_for(Phase.MATCH)
        assert io.random_reads + io.sequential_reads == 2 * f.num_pages


class TestUnaccounted:
    def test_read_all_unaccounted(self):
        cfg, metrics, disk = make()
        entries = random_entries(30)
        f = DataFile.create(disk, cfg, entries)
        before = metrics.io_for(Phase.SETUP).total_accesses
        assert f.read_all_unaccounted() == entries
        assert metrics.io_for(Phase.SETUP).total_accesses == before

    def test_repr_mentions_name(self):
        cfg, _, disk = make()
        f = DataFile.create(disk, cfg, random_entries(5), name="D_S")
        assert "D_S" in repr(f)


class TestChaining:
    def test_pages_are_chained(self):
        cfg, _, disk = make()
        f = DataFile.create(disk, cfg, random_entries(60))
        pid = f.first_page_id
        seen = 0
        while pid != -1:
            record = disk.peek(pid).payload
            seen += len(record.entries)
            pid = record.next_page_id
        assert seen == 60
