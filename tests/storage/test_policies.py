"""Tests for the pluggable buffer replacement policies."""

import pytest

from repro.errors import StorageError
from repro.metrics import MetricsCollector
from repro.storage import BufferPool, DiskSimulator, Page, PageKind


def make_pool(policy, capacity=3):
    disk = DiskSimulator(MetricsCollector())
    pool = BufferPool(capacity, disk, policy=policy)
    return pool, disk


def on_disk(disk, payload):
    p = Page(disk.allocate(), PageKind.DATA, payload)
    disk.write(p)
    return p


class TestPolicySelection:
    def test_default_is_lru(self):
        pool, _ = make_pool("lru")
        assert pool.policy == "lru"
        disk = DiskSimulator(MetricsCollector())
        assert BufferPool(4, disk).policy == "lru"

    def test_unknown_policy_rejected(self):
        disk = DiskSimulator(MetricsCollector())
        with pytest.raises(StorageError):
            BufferPool(4, disk, policy="mru")


class TestFifo:
    def test_evicts_in_admission_order_despite_hits(self):
        pool, disk = make_pool("fifo", capacity=2)
        a = on_disk(disk, "a")
        b = on_disk(disk, "b")
        c = on_disk(disk, "c")
        pool.fetch(a.page_id)
        pool.fetch(b.page_id)
        pool.fetch(a.page_id)  # a hot — FIFO must not care
        pool.fetch(c.page_id)  # evicts a (oldest admission)
        assert a.page_id not in pool
        assert b.page_id in pool

    def test_pinned_pages_skipped(self):
        pool, disk = make_pool("fifo", capacity=2)
        a = on_disk(disk, "a")
        b = on_disk(disk, "b")
        pool.fetch(a.page_id, pin=True)
        pool.fetch(b.page_id)
        pool.fetch(on_disk(disk, "c").page_id)  # must evict b, not a
        assert a.page_id in pool
        assert b.page_id not in pool


class TestClock:
    def test_second_chance(self):
        pool, disk = make_pool("clock", capacity=2)
        a = on_disk(disk, "a")
        b = on_disk(disk, "b")
        pool.fetch(a.page_id)
        pool.fetch(b.page_id)
        pool.fetch(a.page_id)  # sets a's reference bit
        pool.fetch(on_disk(disk, "c").page_id)
        # The hand passes a (referenced -> spared), evicts b.
        assert a.page_id in pool
        assert b.page_id not in pool

    def test_unreferenced_evicted_first_pass(self):
        pool, disk = make_pool("clock", capacity=2)
        a = on_disk(disk, "a")
        b = on_disk(disk, "b")
        pool.fetch(a.page_id)
        pool.fetch(b.page_id)
        pool.fetch(on_disk(disk, "c").page_id)
        # Neither re-referenced: the first admitted (a) goes.
        assert a.page_id not in pool

    def test_all_pinned_raises(self):
        from repro.errors import BufferFullError

        pool, disk = make_pool("clock", capacity=2)
        pool.new_page(PageKind.TREE_NODE, 0, pin=True)
        pool.new_page(PageKind.TREE_NODE, 1, pin=True)
        with pytest.raises(BufferFullError):
            pool.new_page(PageKind.TREE_NODE, 2)


@pytest.mark.parametrize("policy", ["lru", "fifo", "clock"])
class TestPolicyCorrectness:
    def test_no_data_loss_under_any_policy(self, policy):
        """Whatever the policy, dirty data always survives eviction."""
        pool, disk = make_pool(policy, capacity=3)
        pages = [pool.new_page(PageKind.TREE_NODE, [i]) for i in range(12)]
        for i, page in enumerate(pages):
            got = pool.fetch(page.page_id)
            assert got.payload == [i]

    def test_capacity_respected(self, policy):
        pool, disk = make_pool(policy, capacity=3)
        for i in range(20):
            pool.new_page(PageKind.TREE_NODE, i)
            assert len(pool) <= 3

    def test_joins_unaffected_by_policy(self, policy):
        """Replacement changes costs, never answers."""
        from repro.config import SystemConfig
        from repro.join import match_trees, naive_join
        from repro.rtree import RTree

        cfg = SystemConfig(page_size=104, buffer_pages=24)
        m = MetricsCollector(cfg)
        pool = BufferPool(cfg.buffer_pages, DiskSimulator(m), policy=policy)
        from ..conftest import random_entries

        a_entries = random_entries(120, seed=91)
        b_entries = random_entries(120, seed=92, oid_start=10_000)
        tree_a = RTree.build(pool, cfg, a_entries, metrics=m)
        tree_b = RTree.build(pool, cfg, b_entries, metrics=m)
        got = set(match_trees(tree_a, tree_b, m))
        assert got == naive_join(a_entries, b_entries).pair_set()
