"""The parked-pinned-prefix eviction scan.

A long-pinned page at the LRU head used to be re-skipped by every
victim scan; the pool now parks such frames out of the scan and merges
them back when they become evictable. These tests pin down the park's
invariants and — most importantly — that the optimisation is
*behaviour-preserving*: victim choice, statistics, and iteration order
match the plain skip-scan frame for frame.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import BufferFullError, PinError
from repro.metrics import MetricsCollector
from repro.storage import BufferPool, DiskSimulator, Page, PageKind


def make_stack(capacity=4, policy="lru"):
    metrics = MetricsCollector()
    disk = DiskSimulator(metrics)
    return BufferPool(capacity, disk, policy=policy), disk


def on_disk(disk, payload):
    p = Page(disk.allocate(), PageKind.DATA, payload)
    disk.write(p)
    return p


class TestParking:
    def test_pinned_head_is_parked_not_rescanned(self):
        buf, disk = make_stack(capacity=3)
        pages = [on_disk(disk, i) for i in range(5)]
        buf.fetch(pages[0].page_id, pin=True)
        buf.fetch(pages[1].page_id)
        buf.fetch(pages[2].page_id)
        # Filling past capacity parks the pinned head and evicts page 1.
        buf.fetch(pages[3].page_id)
        assert len(buf._parked) == 1
        assert pages[0].page_id in buf._parked
        assert pages[0].page_id in buf  # still resident
        assert pages[1].page_id not in buf  # the true LRU victim went

    def test_unpin_to_zero_unparks(self):
        buf, disk = make_stack(capacity=3)
        pages = [on_disk(disk, i) for i in range(4)]
        buf.fetch(pages[0].page_id, pin=True)
        buf.fetch(pages[1].page_id)
        buf.fetch(pages[2].page_id)
        buf.fetch(pages[3].page_id)  # parks page 0
        assert pages[0].page_id in buf._parked
        buf.unpin(pages[0].page_id)
        assert not buf._parked
        # Page 0 is the oldest frame again: next eviction takes it.
        extra = on_disk(disk, "x")
        buf.fetch(extra.page_id)
        assert pages[0].page_id not in buf

    def test_lru_hit_on_parked_frame_rejoins_scan_at_tail(self):
        buf, disk = make_stack(capacity=3)
        pages = [on_disk(disk, i) for i in range(4)]
        buf.fetch(pages[0].page_id, pin=True)
        buf.fetch(pages[1].page_id)
        buf.fetch(pages[2].page_id)
        buf.fetch(pages[3].page_id)  # parks page 0
        buf.fetch(pages[0].page_id)  # LRU hit on the parked frame
        assert pages[0].page_id not in buf._parked
        assert list(buf.resident_ids())[-1] == pages[0].page_id
        assert buf.stats.hits >= 1

    def test_fifo_hit_on_parked_frame_stays_parked(self):
        buf, disk = make_stack(capacity=3, policy="fifo")
        pages = [on_disk(disk, i) for i in range(4)]
        buf.fetch(pages[0].page_id, pin=True)
        buf.fetch(pages[1].page_id)
        buf.fetch(pages[2].page_id)
        buf.fetch(pages[3].page_id)  # parks page 0
        hits_before = buf.stats.hits
        buf.fetch(pages[0].page_id)
        assert buf.stats.hits == hits_before + 1
        assert pages[0].page_id in buf._parked  # FIFO never reorders on hit

    def test_every_parked_frame_is_pinned(self):
        buf, disk = make_stack(capacity=3)
        pages = [on_disk(disk, i) for i in range(6)]
        buf.fetch(pages[0].page_id, pin=True)
        buf.fetch(pages[1].page_id, pin=True)
        buf.fetch(pages[2].page_id)
        buf.fetch(pages[3].page_id)  # parks 0 and 1, evicts 2
        assert set(buf._parked) == {pages[0].page_id, pages[1].page_id}
        assert all(f.pin_count > 0 for f in buf._parked.values())

    def test_all_pinned_raises_with_full_count(self):
        buf, disk = make_stack(capacity=2)
        pages = [on_disk(disk, i) for i in range(3)]
        buf.fetch(pages[0].page_id, pin=True)
        buf.fetch(pages[1].page_id, pin=True)
        with pytest.raises(BufferFullError, match="all 2 buffered pages"):
            buf.fetch(pages[2].page_id)
        # The failed scan unparked everything: state stays inspectable.
        assert not buf._parked
        assert len(buf) == 2

    def test_operations_reach_parked_frames(self):
        buf, disk = make_stack(capacity=3)
        pages = [on_disk(disk, i) for i in range(4)]
        buf.fetch(pages[0].page_id, pin=True)
        buf.fetch(pages[1].page_id)
        buf.fetch(pages[2].page_id)
        buf.fetch(pages[3].page_id)  # parks page 0
        pid = pages[0].page_id
        assert pid in buf._parked
        assert buf.pin_count(pid) == 1
        assert buf.peek(pid) is pages[0]
        buf.mark_dirty(pid)
        assert buf.is_dirty(pid)
        buf.flush_page(pid)
        assert not buf.is_dirty(pid)
        with pytest.raises(PinError):
            buf.drop(pid)  # parked frames are pinned
        assert buf.total_pinned() == 1
        assert list(buf.resident_ids())[0] == pid  # parked = oldest
        assert buf.audit_frames()[0][1] == pid
        with pytest.raises(PinError):
            buf.purge()
        buf.crash_discard()
        assert len(buf) == 0 and not buf._parked


class TestBehaviourEquivalence:
    """Randomised differential vs the plain skip-scan reference."""

    class RefPool(BufferPool):
        """The pre-park implementation, for behavioural comparison."""

        def _admit(self, page, dirty):
            from repro.storage.buffer import _Frame
            while len(self._frames) >= self.capacity:
                self._evict_one()
            frame = _Frame(page, dirty)
            self._frames[page.page_id] = frame
            return frame

        def _pick_victim(self):
            if self.policy in ("lru", "fifo"):
                for page_id, frame in self._frames.items():
                    if frame.pin_count == 0:
                        return page_id
                return None
            return super()._pick_victim()

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_pool(self, policy, seed):
        rng = random.Random(seed)
        da = DiskSimulator(metrics=MetricsCollector())
        db = DiskSimulator(metrics=MetricsCollector())
        a = BufferPool(6, da, policy=policy)
        b = self.RefPool(6, db, policy=policy)
        ids_a, ids_b = [], []
        for k in range(24):
            pa = Page(da.allocate(), PageKind.DATA, k)
            pb = Page(db.allocate(), PageKind.DATA, k)
            da.install([pa])
            db.install([pb])
            ids_a.append(pa.page_id)
            ids_b.append(pb.page_id)
        pinned = []
        for _ in range(1500):
            r = rng.random()
            i = rng.randrange(24)
            if r < 0.55:
                pin = rng.random() < 0.3
                ea = eb = None
                try:
                    a.fetch(ids_a[i], pin=pin)
                except BufferFullError:
                    ea = "full"
                try:
                    b.fetch(ids_b[i], pin=pin)
                except BufferFullError:
                    eb = "full"
                assert ea == eb
                if pin and ea is None:
                    pinned.append(i)
            elif r < 0.75 and pinned:
                j = pinned.pop(rng.randrange(len(pinned)))
                a.unpin(ids_a[j])
                b.unpin(ids_b[j])
            elif r < 0.85:
                if ids_a[i] in a:
                    assert ids_b[i] in b
                    a.mark_dirty(ids_a[i])
                    b.mark_dirty(ids_b[i])
            else:
                a.flush_all()
                b.flush_all()
            assert len(a) == len(b)
        assert [ids_a.index(p) for p in a.resident_ids()] == [
            ids_b.index(p) for p in b.resident_ids()
        ]
        sa, sb = a.stats, b.stats
        assert (sa.hits, sa.misses, sa.evictions, sa.dirty_writebacks) == (
            sb.hits, sb.misses, sb.evictions, sb.dirty_writebacks
        )
        assert a.total_pinned() == b.total_pinned()
        assert da.metrics.summary() == db.metrics.summary()
