"""Fault injection: determinism, typed errors, retry recovery, crashes."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import (
    ConfigError,
    CorruptPageError,
    SimulatedCrashError,
    TransientIOError,
)
from repro.metrics import MetricsCollector, Phase
from repro.storage import (
    BufferPool,
    DiskSimulator,
    FaultInjector,
    FaultPlan,
    Page,
    PageKind,
    RetryPolicy,
)
from repro.storage.datafile import DataFile
from repro.storage.faults import retry_read

from ..conftest import random_entries


def _faulty_stack(plan: FaultPlan, seed: int = 0, buffer_pages: int = 8):
    config = SystemConfig(page_size=512, buffer_pages=buffer_pages)
    metrics = MetricsCollector(config)
    injector = FaultInjector(plan, seed=seed)
    disk = DiskSimulator(metrics, injector=injector)
    buffer = BufferPool(buffer_pages, disk)
    return config, metrics, injector, disk, buffer


def _write_pages(disk: DiskSimulator, n: int) -> list[int]:
    first = disk.allocate(n)
    for i in range(n):
        disk.write(Page(first + i, PageKind.DATA, f"payload-{i}"))
    return list(range(first, first + n))


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(transient_read_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(torn_write_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(crash_after_ops=0)

    def test_quiet_plan(self):
        assert FaultPlan().is_quiet
        assert not FaultPlan(bit_flip_rate=0.1).is_quiet
        assert not FaultPlan(crash_every_ops=10).is_quiet


class TestDisabledInjector:
    def test_disabled_injector_never_fires(self):
        plan = FaultPlan(transient_read_rate=1.0, torn_write_rate=1.0,
                         bit_flip_rate=1.0, crash_after_ops=1)
        _, metrics, injector, disk, _ = _faulty_stack(plan)
        ids = _write_pages(disk, 5)
        for pid in ids:
            disk.read(pid)
        assert injector.ops_observed == 0
        assert metrics.fault_totals().is_zero

    def test_io_counts_identical_with_and_without_injector(self):
        """Cost transparency: a disarmed injector perturbs nothing."""

        def run(with_injector: bool):
            config = SystemConfig(page_size=512, buffer_pages=8)
            metrics = MetricsCollector(config)
            injector = (
                FaultInjector(FaultPlan(transient_read_rate=1.0))
                if with_injector else None
            )
            disk = DiskSimulator(metrics, injector=injector)
            buffer = BufferPool(8, disk)
            data = DataFile.create(
                disk, config, random_entries(200, seed=3), name="d"
            )
            with metrics.phase(Phase.MATCH):
                list(data.scan())
                for pid in range(data.first_page_id, data.first_page_id + 3):
                    buffer.fetch(pid)
            io = metrics.io_for(Phase.MATCH)
            return (io.random_reads, io.sequential_reads,
                    io.random_writes, io.sequential_writes)

        assert run(with_injector=False) == run(with_injector=True)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def schedule(seed: int) -> list[str]:
            plan = FaultPlan(transient_read_rate=0.4,
                             max_transient_per_page=100)
            _, _, injector, disk, _ = _faulty_stack(plan, seed=seed)
            ids = _write_pages(disk, 1)
            injector.arm()
            out = []
            for _ in range(50):
                try:
                    disk.read(ids[0])
                    out.append("ok")
                except TransientIOError:
                    out.append("transient")
            return out

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)


class TestTransientAndRetry:
    def test_buffer_retry_recovers_and_counts(self):
        plan = FaultPlan(transient_read_rate=1.0, max_transient_per_page=2)
        _, metrics, injector, disk, buffer = _faulty_stack(plan)
        ids = _write_pages(disk, 1)
        injector.arm()
        page = buffer.fetch(ids[0])
        assert page.payload == "payload-0"
        faults = metrics.faults_for(Phase.SETUP)
        assert faults.transient_read_errors == 2
        assert faults.retries == 2
        assert faults.pages_recovered == 1
        assert faults.backoff_seconds > 0

    def test_retry_budget_exhaustion_raises(self):
        plan = FaultPlan(transient_read_rate=1.0, max_transient_per_page=50)
        _, _, injector, disk, _ = _faulty_stack(plan)
        buffer = BufferPool(8, disk, retry=RetryPolicy(max_attempts=3))
        ids = _write_pages(disk, 1)
        injector.arm()
        with pytest.raises(TransientIOError):
            buffer.fetch(ids[0])

    def test_retry_recharges_io(self):
        """Each retry re-issues the disk access: retries are not free."""
        plan = FaultPlan(transient_read_rate=1.0, max_transient_per_page=2)
        _, metrics, injector, disk, buffer = _faulty_stack(plan)
        ids = _write_pages(disk, 1)
        before = metrics.io_for(Phase.SETUP).total_accesses
        injector.arm()
        buffer.fetch(ids[0])
        after = metrics.io_for(Phase.SETUP).total_accesses
        assert after - before == 3  # 2 failed attempts + 1 success

    def test_datafile_scan_retries_transients(self):
        # A single-page file keeps the guarantee airtight: at most 2
        # transients can ever be injected, under the 3-retry budget.
        plan = FaultPlan(transient_read_rate=1.0, max_transient_per_page=2)
        config, metrics, injector, disk, _ = _faulty_stack(plan, seed=11)
        data = DataFile.create(
            disk, config, random_entries(20, seed=5), name="d"
        )
        assert data.num_pages == 1
        injector.arm()
        entries = list(data.scan())
        assert len(entries) == 20
        assert metrics.fault_totals().transient_read_errors == 2
        assert metrics.fault_totals().pages_recovered == 1

    def test_retry_read_helper_propagates_corruption(self):
        calls = []

        def thunk():
            calls.append(1)
            raise CorruptPageError("bad")

        with pytest.raises(CorruptPageError):
            retry_read(thunk, None)
        assert len(calls) == 1  # corruption is never retried


class TestTornWritesAndBitFlips:
    def test_torn_write_detected_on_read(self):
        plan = FaultPlan(torn_write_rate=1.0)
        _, metrics, injector, disk, _ = _faulty_stack(plan)
        pid = disk.allocate()
        injector.arm()
        disk.write(Page(pid, PageKind.DATA, "x"))
        assert injector.page_is_bad(pid)
        with pytest.raises(CorruptPageError):
            disk.read(pid)
        faults = metrics.fault_totals()
        assert faults.torn_writes == 1

    def test_clean_rewrite_clears_torn_mark(self):
        plan = FaultPlan(torn_write_rate=1.0)
        _, _, injector, disk, _ = _faulty_stack(plan)
        pid = disk.allocate()
        injector.arm()
        disk.write(Page(pid, PageKind.DATA, "x"))
        assert injector.page_is_bad(pid)
        injector.arm(FaultPlan())  # faults off, injector still armed
        disk.write(Page(pid, PageKind.DATA, "y"))
        assert not injector.page_is_bad(pid)
        assert disk.read(pid).payload == "y"

    def test_bit_flip_is_persistent(self):
        plan = FaultPlan(bit_flip_rate=1.0)
        _, metrics, injector, disk, _ = _faulty_stack(plan)
        ids = _write_pages(disk, 1)
        injector.arm()
        for _ in range(3):
            with pytest.raises(CorruptPageError):
                disk.read(ids[0])
        # One bit flip surfaced; later reads fail on the bad-page mark.
        assert metrics.fault_totals().bit_flips == 1


class TestCrashes:
    def test_crash_after_ops_fires_once(self):
        plan = FaultPlan(crash_after_ops=3)
        _, metrics, injector, disk, _ = _faulty_stack(plan)
        ids = _write_pages(disk, 10)
        injector.arm()
        disk.read(ids[0])
        disk.read(ids[1])
        with pytest.raises(SimulatedCrashError):
            disk.read(ids[2])
        # One-shot: the crash point has been consumed.
        for pid in ids[3:]:
            disk.read(pid)
        assert metrics.fault_totals().crashes == 1

    def test_recurring_crash_every_ops(self):
        plan = FaultPlan(crash_every_ops=2)
        _, metrics, injector, disk, _ = _faulty_stack(plan)
        ids = _write_pages(disk, 8)
        injector.arm()
        crashes = 0
        for pid in ids:
            try:
                disk.read(pid)
            except SimulatedCrashError:
                crashes += 1
        assert crashes == 4
        assert metrics.fault_totals().crashes == 4

    def test_crash_loses_in_flight_write(self):
        plan = FaultPlan(crash_after_ops=1)
        _, _, injector, disk, _ = _faulty_stack(plan)
        pid = disk.allocate()
        injector.arm()
        with pytest.raises(SimulatedCrashError):
            disk.write(Page(pid, PageKind.DATA, "lost"))
        assert not disk.exists(pid)

    def test_crash_discard_drops_dirty_pages(self):
        _, _, _, disk, buffer = _faulty_stack(FaultPlan())
        ids = _write_pages(disk, 2)
        buffer.fetch(ids[0])
        dirty = buffer.new_page(PageKind.TREE_NODE, "never-flushed")
        buffer.fetch(ids[1], pin=True)
        buffer.crash_discard()
        assert len(buffer) == 0
        assert not disk.exists(dirty.page_id)  # the dirty page died
        assert disk.exists(ids[0])             # durable pages survive
        assert buffer.pin_count(ids[1]) == 0   # pins are void
