"""Page and dump integrity: corruption is always caught, never silent."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.errors import CorruptPageError, StorageError
from repro.rtree import RTree, dump_tree, load_tree
from repro.storage import BufferPool, DiskSimulator
from repro.storage.codec import (
    decode_data_page,
    decode_node,
    encode_data_page,
    encode_node,
    verify_page,
)

from ..conftest import random_entries
from ..strategies import coordinate

CONFIG = SystemConfig(page_size=512, buffer_pages=64)


@st.composite
def codec_entries(draw, max_size: int = 20):
    """(bbox, ref) tuples on the 1/1024 grid (float32-exact)."""
    n = draw(st.integers(min_value=0, max_value=max_size))
    out = []
    for i in range(n):
        x1, x2 = sorted((draw(coordinate), draw(coordinate)))
        y1, y2 = sorted((draw(coordinate), draw(coordinate)))
        out.append((x1, y1, x2, y2, i))
    return out


class TestSingleByteCorruption:
    """The tentpole property: one flipped byte can never change entries."""

    @settings(max_examples=60, deadline=None)
    @given(entries=codec_entries(), pos=st.integers(min_value=0),
           value=st.integers(min_value=0, max_value=255))
    def test_node_page_byte_flip(self, entries, pos, value):
        blob = encode_node(CONFIG, 0, True, entries)
        pos %= len(blob)
        mutated = blob[:pos] + bytes([value]) + blob[pos + 1:]
        if mutated == blob:
            level, is_leaf, decoded = decode_node(CONFIG, mutated)
            assert (level, is_leaf, decoded) == (0, True, entries)
        else:
            with pytest.raises(CorruptPageError):
                decode_node(CONFIG, mutated)

    @settings(max_examples=60, deadline=None)
    @given(entries=codec_entries(), next_id=st.integers(-1, 1000),
           pos=st.integers(min_value=0),
           value=st.integers(min_value=0, max_value=255))
    def test_data_page_byte_flip(self, entries, next_id, pos, value):
        blob = encode_data_page(CONFIG, entries, next_id)
        pos %= len(blob)
        mutated = blob[:pos] + bytes([value]) + blob[pos + 1:]
        if mutated == blob:
            decoded, decoded_next = decode_data_page(CONFIG, mutated)
            assert decoded == entries and decoded_next == next_id
        else:
            with pytest.raises(CorruptPageError):
                decode_data_page(CONFIG, mutated)

    @settings(max_examples=40, deadline=None)
    @given(entries=codec_entries(), drop=st.integers(min_value=1,
                                                     max_value=511))
    def test_truncated_page_rejected(self, entries, drop):
        blob = encode_node(CONFIG, 0, True, entries)
        with pytest.raises(CorruptPageError):
            decode_node(CONFIG, blob[:-drop])


class TestVerifyPage:
    def test_intact_page_passes(self):
        blob = encode_node(CONFIG, 1, False, [(0.0, 0.0, 1.0, 1.0, 42)])
        verify_page(blob)  # no raise

    def test_too_short_blob(self):
        with pytest.raises(CorruptPageError):
            verify_page(b"\x00" * 8)

    def test_crc_field_corruption_detected(self):
        blob = encode_node(CONFIG, 0, True, [])
        mutated = blob[:8] + b"\xff\xff\xff\xff" + blob[12:]
        with pytest.raises(CorruptPageError):
            verify_page(mutated)


class TestDumpIntegrity:
    def _dumped_tree(self) -> bytes:
        metrics_disk = DiskSimulator()
        buffer = BufferPool(64, metrics_disk)
        tree = RTree.build(buffer, CONFIG, random_entries(120, seed=9))
        return dump_tree(tree, allow_quantize=True)

    def _load(self, blob: bytes) -> RTree:
        disk = DiskSimulator()
        buffer = BufferPool(64, disk)
        return load_tree(buffer, CONFIG, blob)

    def test_round_trip_intact(self):
        blob = self._dumped_tree()
        tree = self._load(blob)
        assert len(tree) == 120
        tree.validate(check_min_fill=False)

    def test_truncated_blob_rejected(self):
        blob = self._dumped_tree()
        with pytest.raises(CorruptPageError):
            self._load(blob[: len(blob) // 2])
        with pytest.raises(CorruptPageError):
            self._load(blob[:10])

    def test_interior_bit_flip_rejected(self):
        blob = self._dumped_tree()
        for pos in (len(blob) // 3, len(blob) - 7):
            mutated = (
                blob[:pos] + bytes([blob[pos] ^ 0x40]) + blob[pos + 1:]
            )
            with pytest.raises(CorruptPageError):
                self._load(mutated)

    def test_header_crc_flip_rejected(self):
        blob = self._dumped_tree()
        # The body-CRC field sits in the last 4 header bytes.
        pos = 20
        mutated = blob[:pos] + bytes([blob[pos] ^ 0x01]) + blob[pos + 1:]
        with pytest.raises((CorruptPageError, StorageError)):
            self._load(mutated)

    def test_wrong_page_size_is_not_corruption(self):
        blob = self._dumped_tree()
        other = SystemConfig(page_size=1024, buffer_pages=64)
        disk = DiskSimulator()
        buffer = BufferPool(64, disk)
        with pytest.raises(StorageError) as excinfo:
            load_tree(buffer, other, blob)
        assert not isinstance(excinfo.value, CorruptPageError)
