"""Deadline-aware retries and seeded backoff jitter (ISSUE 6 satellite):
storage retries must never outlive the request that issued them."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, DeadlineExceededError, TransientIOError
from repro.storage.faults import (
    RetryPolicy,
    remaining_retry_budget,
    retry_read,
)


class _FakeDeadline:
    """Duck-typed stand-in for repro.service.Deadline."""

    def __init__(self, remaining: float):
        self._remaining = remaining

    def remaining(self) -> float:
        return self._remaining

    @property
    def expired(self) -> bool:
        return self._remaining <= 0.0


def _always_transient():
    raise TransientIOError("flaky page")


class TestJitter:
    def test_default_policy_has_no_jitter(self):
        policy = RetryPolicy()
        assert policy.jitter == 0.0
        assert policy.jitter_rng() is None
        # Exponential, capped, fully deterministic.
        assert policy.delay_for(0) == pytest.approx(0.001)
        assert policy.delay_for(1) == pytest.approx(0.002)
        assert policy.delay_for(10) == pytest.approx(policy.max_delay)

    def test_jitter_shrinks_delays_deterministically(self):
        policy = RetryPolicy(jitter=0.5, jitter_seed=7)
        rng_a = policy.jitter_rng(salt=3)
        rng_b = policy.jitter_rng(salt=3)
        seq_a = [policy.delay_for(i, rng_a) for i in range(6)]
        seq_b = [policy.delay_for(i, rng_b) for i in range(6)]
        assert seq_a == seq_b  # same seed+salt -> same draws
        for i, jittered in enumerate(seq_a):
            full = RetryPolicy().delay_for(i)
            assert full * 0.5 <= jittered <= full

    def test_salt_decorrelates_loops(self):
        policy = RetryPolicy(jitter=0.9, jitter_seed=1)
        seq = {
            salt: [policy.delay_for(i, policy.jitter_rng(salt))
                   for i in range(4)]
            for salt in (0, 1, 2)
        }
        assert seq[0] != seq[1] != seq[2]

    def test_jitter_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=-0.1)


class TestRetryBudget:
    def test_no_deadline_is_unbounded(self):
        assert remaining_retry_budget(None, 1e9) == float("inf")

    def test_budget_shrinks_with_spent_backoff(self):
        deadline = _FakeDeadline(2.0)
        assert remaining_retry_budget(deadline, 0.0) == pytest.approx(2.0)
        assert remaining_retry_budget(deadline, 1.5) == pytest.approx(0.5)
        assert remaining_retry_budget(deadline, 2.5) == pytest.approx(-0.5)

    def test_retry_raises_deadline_error_when_budget_exhausted(self):
        policy = RetryPolicy(max_attempts=50, base_delay=1.0, max_delay=8.0)
        with pytest.raises(DeadlineExceededError, match="retry abandoned"):
            retry_read(
                _always_transient, None, policy,
                deadline=_FakeDeadline(2.5),
            )

    def test_retry_without_deadline_exhausts_attempts_instead(self):
        policy = RetryPolicy(max_attempts=3, base_delay=1.0)
        with pytest.raises(TransientIOError):
            retry_read(_always_transient, None, policy)

    def test_retry_succeeds_within_budget(self):
        calls = {"n": 0}

        def flaky_then_ok():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("flaky")
            return "page"

        policy = RetryPolicy(max_attempts=5, base_delay=0.5)
        value = retry_read(
            flaky_then_ok, None, policy, deadline=_FakeDeadline(10.0)
        )
        assert value == "page"
        assert calls["n"] == 3
