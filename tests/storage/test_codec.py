"""Tests proving the configured layouts fit the configured pages."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.errors import NodeOverflowError, StorageError
from repro.storage import codec


def entry(i: int) -> codec.EntryTuple:
    base = i / 64.0
    return (
        codec.quantize(base),
        codec.quantize(base + 0.5),
        codec.quantize(base + 1.0),
        codec.quantize(base + 1.5),
        i,
    )


class TestNodeCodec:
    def test_round_trip(self):
        cfg = SystemConfig()
        entries = [entry(i) for i in range(10)]
        blob = codec.encode_node(cfg, level=2, is_leaf=False, entries=entries)
        level, is_leaf, decoded = codec.decode_node(cfg, blob)
        assert level == 2
        assert not is_leaf
        assert decoded == entries

    def test_leaf_flag_round_trips(self):
        cfg = SystemConfig()
        blob = codec.encode_node(cfg, 0, True, [entry(1)])
        _, is_leaf, _ = codec.decode_node(cfg, blob)
        assert is_leaf

    def test_blob_is_exactly_one_page(self):
        cfg = SystemConfig()
        blob = codec.encode_node(cfg, 0, True, [entry(0)])
        assert len(blob) == cfg.page_size

    def test_full_node_fits(self):
        """The headline physical claim: 50 entries fit a 1 KiB page."""
        cfg = SystemConfig()
        entries = [entry(i) for i in range(cfg.node_capacity)]
        blob = codec.encode_node(cfg, 1, False, entries)
        assert len(blob) == cfg.page_size
        assert codec.decode_node(cfg, blob)[2] == entries

    def test_over_capacity_rejected(self):
        cfg = SystemConfig()
        entries = [entry(i) for i in range(cfg.node_capacity + 1)]
        with pytest.raises(NodeOverflowError):
            codec.encode_node(cfg, 0, True, entries)

    def test_empty_node(self):
        cfg = SystemConfig()
        blob = codec.encode_node(cfg, 0, True, [])
        assert codec.decode_node(cfg, blob) == (0, True, [])

    def test_bad_level_rejected(self):
        cfg = SystemConfig()
        with pytest.raises(StorageError):
            codec.encode_node(cfg, 70000, False, [])

    def test_decode_wrong_size_rejected(self):
        cfg = SystemConfig()
        with pytest.raises(StorageError):
            codec.decode_node(cfg, b"\x00" * 10)

    def test_decode_bad_magic_rejected(self):
        cfg = SystemConfig()
        with pytest.raises(StorageError):
            codec.decode_node(cfg, b"\xff" * cfg.page_size)


class TestDataPageCodec:
    def test_round_trip_with_next_pointer(self):
        cfg = SystemConfig()
        entries = [entry(i) for i in range(7)]
        blob = codec.encode_data_page(cfg, entries, next_page_id=1234)
        decoded, next_id = codec.decode_data_page(cfg, blob)
        assert decoded == entries
        assert next_id == 1234

    def test_no_next_sentinel(self):
        cfg = SystemConfig()
        blob = codec.encode_data_page(cfg, [entry(0)])
        _, next_id = codec.decode_data_page(cfg, blob)
        assert next_id == codec.NO_NEXT_PAGE

    def test_full_data_page_fits(self):
        cfg = SystemConfig()
        entries = [entry(i) for i in range(cfg.data_page_capacity)]
        blob = codec.encode_data_page(cfg, entries, next_page_id=7)
        assert len(blob) == cfg.page_size
        assert codec.decode_data_page(cfg, blob)[0] == entries

    def test_over_capacity_rejected(self):
        cfg = SystemConfig()
        entries = [entry(i) for i in range(cfg.data_page_capacity + 1)]
        with pytest.raises(NodeOverflowError):
            codec.encode_data_page(cfg, entries)

    def test_node_decoder_rejects_data_page(self):
        cfg = SystemConfig()
        blob = codec.encode_data_page(cfg, [entry(0)])
        with pytest.raises(StorageError):
            codec.decode_node(cfg, blob)

    def test_data_decoder_rejects_node_page(self):
        cfg = SystemConfig()
        blob = codec.encode_node(cfg, 0, True, [entry(0)])
        with pytest.raises(StorageError):
            codec.decode_data_page(cfg, blob)


class TestSmallPages:
    def test_512_byte_page_capacity(self):
        """The scaled profiles' 512 B pages hold 24 entries."""
        cfg = SystemConfig(page_size=512)
        assert cfg.node_capacity == 24
        entries = [entry(i) for i in range(24)]
        blob = codec.encode_node(cfg, 0, True, entries)
        assert len(blob) == 512


@given(
    st.lists(
        st.tuples(
            st.integers(0, 255).map(lambda v: v / 256.0),
            st.integers(0, 255).map(lambda v: v / 256.0),
            st.integers(256, 512).map(lambda v: v / 256.0),
            st.integers(256, 512).map(lambda v: v / 256.0),
            st.integers(0, 2**32 - 1),
        ),
        max_size=24,
    ),
    st.booleans(),
    st.integers(0, 100),
)
def test_node_codec_round_trips_any_entries(entries, is_leaf, level):
    cfg = SystemConfig(page_size=512)
    blob = codec.encode_node(cfg, level, is_leaf, entries)
    got_level, got_leaf, got = codec.decode_node(cfg, blob)
    assert (got_level, got_leaf) == (level, is_leaf)
    # 1/256 steps are exactly representable in float32.
    assert got == entries
