"""Tests for the LRU buffer pool."""

import pytest

from repro.errors import BufferFullError, PinError, StorageError
from repro.metrics import MetricsCollector, Phase
from repro.storage import BufferPool, DiskSimulator, Page, PageKind


def make_stack(capacity=4):
    metrics = MetricsCollector()
    disk = DiskSimulator(metrics)
    return BufferPool(capacity, disk), disk, metrics


def on_disk(disk, payload):
    p = Page(disk.allocate(), PageKind.DATA, payload)
    disk.write(p)
    return p


class TestBasics:
    def test_rejects_zero_capacity(self):
        _, disk, _ = make_stack()
        with pytest.raises(StorageError):
            BufferPool(0, disk)

    def test_miss_reads_from_disk(self):
        buf, disk, metrics = make_stack()
        p = on_disk(disk, "a")
        with metrics.phase(Phase.MATCH):
            got = buf.fetch(p.page_id)
        assert got is p
        assert metrics.io_for(Phase.MATCH).random_reads == 1
        assert buf.stats.misses == 1

    def test_hit_costs_nothing(self):
        buf, disk, metrics = make_stack()
        p = on_disk(disk, "a")
        buf.fetch(p.page_id)
        with metrics.phase(Phase.MATCH):
            buf.fetch(p.page_id)
        assert metrics.io_for(Phase.MATCH).total_accesses == 0
        assert buf.stats.hits == 1

    def test_new_page_costs_nothing_until_eviction(self):
        buf, _, metrics = make_stack()
        buf.new_page(PageKind.TREE_NODE, "node")
        assert metrics.io_for(Phase.SETUP).total_accesses == 0

    def test_capacity_never_exceeded(self):
        buf, disk, _ = make_stack(capacity=3)
        for i in range(10):
            buf.new_page(PageKind.TREE_NODE, i)
            assert len(buf) <= 3

    def test_contains_and_len(self):
        buf, disk, _ = make_stack()
        p = on_disk(disk, "a")
        assert p.page_id not in buf
        buf.fetch(p.page_id)
        assert p.page_id in buf
        assert len(buf) == 1
        assert buf.free_frames == 3


class TestLRU:
    def test_evicts_least_recently_used(self):
        buf, disk, _ = make_stack(capacity=2)
        a = on_disk(disk, "a")
        b = on_disk(disk, "b")
        c = on_disk(disk, "c")
        buf.fetch(a.page_id)
        buf.fetch(b.page_id)
        buf.fetch(a.page_id)  # a is now most recent
        buf.fetch(c.page_id)  # must evict b
        assert a.page_id in buf
        assert b.page_id not in buf
        assert c.page_id in buf

    def test_resident_ids_in_lru_order(self):
        buf, disk, _ = make_stack(capacity=3)
        pages = [on_disk(disk, i) for i in range(3)]
        for p in pages:
            buf.fetch(p.page_id)
        buf.fetch(pages[0].page_id)  # bump 0 to most recent
        order = list(buf.resident_ids())
        assert order == [pages[1].page_id, pages[2].page_id, pages[0].page_id]


class TestDirtyWriteback:
    def test_clean_eviction_writes_nothing(self):
        buf, disk, metrics = make_stack(capacity=1)
        a = on_disk(disk, "a")
        b = on_disk(disk, "b")
        buf.fetch(a.page_id)
        with metrics.phase(Phase.MATCH):
            buf.fetch(b.page_id)  # evicts clean a
        assert metrics.io_for(Phase.MATCH).random_writes == 0

    def test_dirty_eviction_writes_back(self):
        buf, disk, metrics = make_stack(capacity=1)
        with metrics.phase(Phase.CONSTRUCT):
            buf.new_page(PageKind.TREE_NODE, "dirty")  # born dirty
            buf.new_page(PageKind.TREE_NODE, "more")   # evicts the first
        assert metrics.io_for(Phase.CONSTRUCT).random_writes == 1
        assert buf.stats.dirty_writebacks == 1

    def test_mark_dirty_then_evict_writes(self):
        buf, disk, metrics = make_stack(capacity=1)
        a = on_disk(disk, "a")
        buf.fetch(a.page_id)
        buf.mark_dirty(a.page_id)
        with metrics.phase(Phase.MATCH):
            buf.fetch(on_disk(disk, "b").page_id)
        assert metrics.io_for(Phase.MATCH).random_writes == 1

    def test_mark_dirty_nonresident_raises(self):
        buf, _, _ = make_stack()
        with pytest.raises(StorageError):
            buf.mark_dirty(42)

    def test_flush_page_clears_dirty(self):
        buf, disk, _ = make_stack()
        p = buf.new_page(PageKind.TREE_NODE, "n")
        assert buf.is_dirty(p.page_id)
        buf.flush_page(p.page_id)
        assert not buf.is_dirty(p.page_id)
        assert disk.exists(p.page_id)

    def test_flush_all(self):
        buf, disk, _ = make_stack()
        pages = [buf.new_page(PageKind.TREE_NODE, i) for i in range(3)]
        buf.flush_all()
        assert all(not buf.is_dirty(p.page_id) for p in pages)
        assert all(disk.exists(p.page_id) for p in pages)

    def test_purge_empties_and_preserves_data(self):
        buf, disk, _ = make_stack()
        p = buf.new_page(PageKind.TREE_NODE, "keep me")
        buf.purge()
        assert len(buf) == 0
        assert disk.read(p.page_id).payload == "keep me"


class TestPinning:
    def test_pinned_pages_survive_pressure(self):
        buf, disk, _ = make_stack(capacity=2)
        a = on_disk(disk, "a")
        buf.fetch(a.page_id, pin=True)
        for i in range(5):
            buf.new_page(PageKind.TREE_NODE, i)
        assert a.page_id in buf

    def test_all_pinned_raises(self):
        buf, disk, _ = make_stack(capacity=2)
        buf.new_page(PageKind.TREE_NODE, 0, pin=True)
        buf.new_page(PageKind.TREE_NODE, 1, pin=True)
        with pytest.raises(BufferFullError):
            buf.new_page(PageKind.TREE_NODE, 2)

    def test_unpin_releases(self):
        buf, disk, _ = make_stack(capacity=1)
        p = buf.new_page(PageKind.TREE_NODE, 0, pin=True)
        buf.unpin(p.page_id)
        buf.new_page(PageKind.TREE_NODE, 1)  # can evict now
        assert p.page_id not in buf

    def test_pin_counts_nest(self):
        buf, _, _ = make_stack()
        p = buf.new_page(PageKind.TREE_NODE, 0, pin=True)
        buf.pin(p.page_id)
        assert buf.pin_count(p.page_id) == 2
        buf.unpin(p.page_id)
        assert buf.pin_count(p.page_id) == 1

    def test_unpin_unpinned_raises(self):
        buf, _, _ = make_stack()
        p = buf.new_page(PageKind.TREE_NODE, 0)
        with pytest.raises(PinError):
            buf.unpin(p.page_id)

    def test_unpin_nonresident_raises(self):
        buf, _, _ = make_stack()
        with pytest.raises(PinError):
            buf.unpin(999)

    def test_pin_nonresident_raises(self):
        buf, _, _ = make_stack()
        with pytest.raises(StorageError):
            buf.pin(999)

    def test_purge_with_pins_raises(self):
        buf, _, _ = make_stack()
        buf.new_page(PageKind.TREE_NODE, 0, pin=True)
        with pytest.raises(PinError):
            buf.purge()


class TestDrop:
    def test_drop_discards_without_write(self):
        buf, disk, metrics = make_stack()
        p = buf.new_page(PageKind.LIST, "list data")
        buf.drop(p.page_id)
        assert p.page_id not in buf
        assert not disk.exists(p.page_id)

    def test_drop_with_writeback(self):
        buf, disk, _ = make_stack()
        p = buf.new_page(PageKind.LIST, "flush me")
        buf.drop(p.page_id, write_back=True)
        assert disk.read(p.page_id).payload == "flush me"

    def test_drop_nonresident_is_noop(self):
        buf, _, _ = make_stack()
        buf.drop(12345)  # must not raise

    def test_drop_pinned_raises(self):
        buf, _, _ = make_stack()
        p = buf.new_page(PageKind.LIST, 0, pin=True)
        with pytest.raises(PinError):
            buf.drop(p.page_id)


class TestAdoptAndPeek:
    def test_adopt_places_external_page(self):
        buf, disk, _ = make_stack()
        pid = disk.allocate()
        page = Page(pid, PageKind.TREE_NODE, "adopted")
        buf.adopt(page)
        assert buf.fetch(pid) is page

    def test_adopt_duplicate_raises(self):
        buf, disk, _ = make_stack()
        p = buf.new_page(PageKind.TREE_NODE, 0)
        with pytest.raises(StorageError):
            buf.adopt(p)

    def test_peek_does_not_touch_lru_or_stats(self):
        buf, disk, _ = make_stack(capacity=2)
        a = on_disk(disk, "a")
        b = on_disk(disk, "b")
        buf.fetch(a.page_id)
        buf.fetch(b.page_id)
        hits_before = buf.stats.hits
        assert buf.peek(a.page_id).payload == "a"
        assert buf.stats.hits == hits_before
        # a must still be the LRU victim despite the peek
        buf.fetch(on_disk(disk, "c").page_id)
        assert a.page_id not in buf

    def test_peek_nonresident_is_none(self):
        buf, _, _ = make_stack()
        assert buf.peek(5) is None


class TestStats:
    def test_hit_ratio(self):
        buf, disk, _ = make_stack()
        p = on_disk(disk, "a")
        buf.fetch(p.page_id)
        buf.fetch(p.page_id)
        buf.fetch(p.page_id)
        assert buf.stats.hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_empty(self):
        buf, _, _ = make_stack()
        assert buf.stats.hit_ratio == 0.0
