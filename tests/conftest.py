"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.storage import BufferPool, DiskSimulator


@pytest.fixture
def config() -> SystemConfig:
    """A mid-size physical design: fan-out 24, 64-page buffer."""
    return SystemConfig(page_size=512, buffer_pages=64)


@pytest.fixture
def cap4_config() -> SystemConfig:
    """A micro design (fan-out 4) that forces splits with few inserts."""
    return SystemConfig(page_size=104, buffer_pages=64)


@pytest.fixture
def metrics(config) -> MetricsCollector:
    return MetricsCollector(config)


@pytest.fixture
def disk(metrics) -> DiskSimulator:
    return DiskSimulator(metrics)


@pytest.fixture
def buffer(disk, config) -> BufferPool:
    return BufferPool(config.buffer_pages, disk)


def random_rects(n: int, seed: int = 0, side: float = 0.05) -> list[Rect]:
    """Deterministic random rectangles in the unit square."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        cx, cy = rng.random(), rng.random()
        w, h = rng.random() * side, rng.random() * side
        r = Rect.from_center(cx, cy, w, h).clipped_to(Rect(0, 0, 1, 1))
        assert r is not None
        out.append(r)
    return out


def random_entries(
    n: int, seed: int = 0, side: float = 0.05, oid_start: int = 0
) -> list[tuple[Rect, int]]:
    return [
        (r, oid_start + i) for i, r in enumerate(random_rects(n, seed, side))
    ]
