"""Metamorphic properties of the spatial join.

A spatial join's answer must be invariant under transformations that
preserve the overlap relation — translation, uniform scaling, axis
swapping, and input-order permutation. Each test joins a base workload
and its transformed twin and demands identical pair sets. These catch
coordinate-handling bugs (lost axis, flipped comparison, order
dependence) that value-based tests can slide past.
"""

import random

import pytest

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.join import naive_join, seeded_tree_join
from repro.workspace import Workspace

from .conftest import random_entries


def join_pairs(s_entries, r_entries, map_hint=None):
    """Run STJ on arbitrary (possibly transformed) inputs."""
    ws = Workspace(SystemConfig(page_size=224, buffer_pages=64))
    tree_r = ws.install_rtree(r_entries)
    file_s = ws.install_datafile(s_entries)
    result = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics)
    return result.pair_set()


def transform(entries, fn):
    return [(fn(rect), oid) for rect, oid in entries]


@pytest.fixture(scope="module")
def base():
    s = random_entries(250, seed=71)
    r = random_entries(250, seed=72, oid_start=10_000)
    return s, r, join_pairs(s, r)


class TestInvariance:
    def test_base_matches_oracle(self, base):
        s, r, pairs = base
        assert pairs == naive_join(s, r).pair_set()

    def test_translation(self, base):
        s, r, pairs = base

        def shift(rect):
            return Rect(rect.xlo + 3, rect.ylo - 7,
                        rect.xhi + 3, rect.yhi - 7)

        assert join_pairs(transform(s, shift), transform(r, shift)) == pairs

    def test_uniform_scaling(self, base):
        s, r, pairs = base

        def scale(rect):
            return Rect(rect.xlo * 5, rect.ylo * 5,
                        rect.xhi * 5, rect.yhi * 5)

        assert join_pairs(transform(s, scale), transform(r, scale)) == pairs

    def test_axis_swap(self, base):
        s, r, pairs = base

        def swap(rect):
            return Rect(rect.ylo, rect.xlo, rect.yhi, rect.xhi)

        assert join_pairs(transform(s, swap), transform(r, swap)) == pairs

    def test_point_reflection(self, base):
        s, r, pairs = base

        def reflect(rect):
            return Rect(-rect.xhi, -rect.yhi, -rect.xlo, -rect.ylo)

        assert join_pairs(transform(s, reflect),
                          transform(r, reflect)) == pairs

    def test_input_order_permutation(self, base):
        s, r, pairs = base
        rng = random.Random(73)
        s2, r2 = list(s), list(r)
        rng.shuffle(s2)
        rng.shuffle(r2)
        assert join_pairs(s2, r2) == pairs

    def test_symmetry(self, base):
        """join(S, R) flipped equals join(R, S)."""
        s, r, pairs = base
        flipped = {(b, a) for a, b in join_pairs(r, s)}
        assert flipped == pairs


class TestMonotonicity:
    def test_subset_of_inputs_gives_subset_of_pairs(self, base):
        s, r, pairs = base
        half_s = s[:125]
        sub = join_pairs(half_s, r)
        kept = {oid for _, oid in half_s}
        assert sub == {(a, b) for a, b in pairs if a in kept}

    def test_adding_disjoint_data_adds_nothing(self, base):
        s, r, pairs = base
        far = [(Rect(50 + i, 50, 50.01 + i, 50.01), 90_000 + i)
               for i in range(20)]
        assert join_pairs(s + far, r) == pairs
