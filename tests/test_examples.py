"""Smoke tests: every shipped example runs cleanly end to end.

Examples are user-facing documentation; a broken one is a bug. Each is
executed as a subprocess (the way users run them) with a generous
timeout; the scripts contain their own internal assertions (result
cross-checks), so a zero exit status means the scenario really worked.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_complete():
    """The deliverable: a quickstart plus domain scenarios."""
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"
