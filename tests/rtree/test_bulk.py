"""Tests for STR bulk loading."""

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree, bulk_load_str
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries


def bulk(entries, page_size=104, buffer_pages=256):
    cfg = SystemConfig(page_size=page_size, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
    return bulk_load_str(buf, cfg, entries, metrics=m)


class TestBulkLoad:
    def test_empty(self):
        tree = bulk([])
        assert len(tree) == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []

    def test_single(self):
        tree = bulk([(Rect(0, 0, 1, 1), 5)])
        assert len(tree) == 1
        assert tree.window_query(Rect(0, 0, 2, 2)) == [5]

    def test_queries_match_linear_scan(self):
        entries = random_entries(300, seed=1)
        tree = bulk(entries)
        tree.validate(check_min_fill=False)
        window = Rect(0.3, 0.3, 0.6, 0.6)
        expected = sorted(o for r, o in entries if r.intersects(window))
        assert sorted(tree.window_query(window)) == expected

    def test_count(self):
        tree = bulk(random_entries(123, seed=2))
        assert len(tree) == 123

    def test_is_ordinary_rtree(self):
        tree = bulk(random_entries(40, seed=3))
        assert isinstance(tree, RTree)
        # Dynamic inserts still work afterwards.
        tree.insert(Rect(0.1, 0.1, 0.2, 0.2), 999)
        assert 999 in tree.window_query(Rect(0, 0, 1, 1))
        tree.validate(check_min_fill=False)

    def test_packing_is_tight(self):
        """STR packs nodes nearly full; far fewer nodes than a dynamic
        build of the same data."""
        entries = random_entries(400, seed=4)
        packed = bulk(entries)
        cfg = SystemConfig(page_size=104, buffer_pages=256)
        m = MetricsCollector(cfg)
        dynamic = RTree.build(
            BufferPool(cfg.buffer_pages, DiskSimulator(m)), cfg, entries,
            metrics=m,
        )
        assert packed.num_nodes() < dynamic.num_nodes()

    def test_exact_capacity_multiple(self):
        # 16 entries with fan-out 4: exactly 4 leaves + 1 root.
        entries = random_entries(16, seed=5)
        tree = bulk(entries)
        assert tree.num_nodes() == 5
        assert tree.height == 2

    def test_counts_cpu(self):
        cfg = SystemConfig(page_size=104, buffer_pages=64)
        m = MetricsCollector(cfg)
        buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
        bulk_load_str(buf, cfg, random_entries(50, seed=6), metrics=m)
        assert m.cpu.bbox_tests > 0
