"""Tests for the dynamic R-tree: insertion, queries, invariants."""

import pytest
from hypothesis import given, settings

from repro.config import SystemConfig
from repro.errors import TreeError
from repro.geometry import Rect
from repro.metrics import MetricsCollector, Phase
from repro.rtree import RTree
from repro.rtree.split import linear_split
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries
from ..strategies import entry_lists


def make_tree(config=None, metrics=None):
    cfg = config or SystemConfig(page_size=104, buffer_pages=256)  # fan-out 4
    m = metrics or MetricsCollector(cfg)
    disk = DiskSimulator(m)
    buf = BufferPool(cfg.buffer_pages, disk)
    return RTree(buf, cfg, metrics=m), cfg, m


class TestEmptyTree:
    def test_empty_properties(self):
        tree, _, _ = make_tree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.mbr() is None
        assert tree.window_query(Rect(0, 0, 1, 1)) == []

    def test_validate_empty(self):
        tree, _, _ = make_tree()
        tree.validate()


class TestInsertion:
    def test_single_insert(self):
        tree, _, _ = make_tree()
        tree.insert(Rect(0, 0, 1, 1), 42)
        assert len(tree) == 1
        assert tree.window_query(Rect(0.5, 0.5, 2, 2)) == [42]

    def test_growth_splits_root(self):
        tree, cfg, _ = make_tree()
        for rect, oid in random_entries(20, seed=1):
            tree.insert(rect, oid)
        assert tree.height >= 2
        tree.validate()

    def test_three_levels(self):
        tree, _, _ = make_tree()
        for rect, oid in random_entries(120, seed=2):
            tree.insert(rect, oid)
        assert tree.height >= 3
        tree.validate()

    def test_mbr_covers_everything(self):
        tree, _, _ = make_tree()
        entries = random_entries(60, seed=3)
        for rect, oid in entries:
            tree.insert(rect, oid)
        mbr = tree.mbr()
        assert all(mbr.contains(r) for r, _ in entries)

    def test_duplicate_rects_allowed(self):
        tree, _, _ = make_tree()
        r = Rect(0.2, 0.2, 0.3, 0.3)
        for i in range(15):
            tree.insert(r, i)
        assert sorted(tree.window_query(r)) == list(range(15))
        tree.validate()

    def test_build_classmethod(self):
        tree, cfg, m = make_tree()
        built = RTree.build(tree.buffer, cfg, random_entries(30, seed=4),
                            metrics=m)
        assert len(built) == 30
        built.validate()

    def test_linear_split_variant(self):
        cfg = SystemConfig(page_size=104, buffer_pages=256)
        m = MetricsCollector(cfg)
        disk = DiskSimulator(m)
        buf = BufferPool(cfg.buffer_pages, disk)
        tree = RTree.build(buf, cfg, random_entries(80, seed=5),
                           metrics=m, split=linear_split)
        tree.validate()
        assert len(tree) == 80


class TestQueries:
    def test_window_query_matches_linear_scan(self):
        tree, _, _ = make_tree()
        entries = random_entries(200, seed=6)
        for rect, oid in entries:
            tree.insert(rect, oid)
        window = Rect(0.25, 0.25, 0.5, 0.5)
        expected = sorted(o for r, o in entries if r.intersects(window))
        assert sorted(tree.window_query(window)) == expected

    def test_point_query(self):
        tree, _, _ = make_tree()
        tree.insert(Rect(0, 0, 1, 1), 1)
        tree.insert(Rect(2, 2, 3, 3), 2)
        assert tree.point_query(0.5, 0.5) == [1]
        assert tree.point_query(2.0, 2.0) == [2]  # boundary point
        assert tree.point_query(1.5, 1.5) == []

    def test_window_outside_everything(self):
        tree, _, _ = make_tree()
        for rect, oid in random_entries(40, seed=7):
            tree.insert(rect, oid)
        assert tree.window_query(Rect(10, 10, 11, 11)) == []

    def test_query_counts_bbox_tests(self):
        tree, _, m = make_tree()
        for rect, oid in random_entries(40, seed=8):
            tree.insert(rect, oid)
        before = m.cpu.bbox_tests
        tree.window_query(Rect(0, 0, 1, 1))
        assert m.cpu.bbox_tests > before


class TestIntrospection:
    def test_all_objects(self):
        tree, _, _ = make_tree()
        entries = random_entries(50, seed=9)
        for rect, oid in entries:
            tree.insert(rect, oid)
        assert sorted(tree.all_objects(), key=lambda e: e[1]) == entries

    def test_num_nodes_consistent_with_levels(self):
        tree, _, _ = make_tree()
        for rect, oid in random_entries(100, seed=10):
            tree.insert(rect, oid)
        per_level = [
            len(tree.nodes_at_level(lv)) for lv in range(tree.height)
        ]
        assert sum(per_level) == tree.num_nodes()
        assert per_level[-1] == 1  # single root
        # strictly narrowing toward the root
        assert all(a > b for a, b in zip(per_level, per_level[1:]))

    def test_read_node_rejects_non_node_pages(self):
        tree, cfg, m = make_tree()
        from repro.storage import DataFile
        f = DataFile.create(tree.buffer.disk, cfg, random_entries(5))
        with pytest.raises(TreeError):
            tree.read_node(f.first_page_id)

    def test_repr(self):
        tree, _, _ = make_tree()
        assert "objects=0" in repr(tree)


class TestBufferInteraction:
    def test_small_buffer_still_correct(self):
        """Correctness is independent of buffer pressure."""
        cfg = SystemConfig(page_size=104, buffer_pages=8)
        m = MetricsCollector(cfg)
        disk = DiskSimulator(m)
        buf = BufferPool(cfg.buffer_pages, disk)
        entries = random_entries(150, seed=11)
        with m.phase(Phase.CONSTRUCT):
            tree = RTree.build(buf, cfg, entries, metrics=m)
        tree.validate()
        window = Rect(0.1, 0.1, 0.6, 0.6)
        expected = sorted(o for r, o in entries if r.intersects(window))
        assert sorted(tree.window_query(window)) == expected

    def test_small_buffer_causes_construction_io(self):
        cfg = SystemConfig(page_size=104, buffer_pages=8)
        m = MetricsCollector(cfg)
        disk = DiskSimulator(m)
        buf = BufferPool(cfg.buffer_pages, disk)
        with m.phase(Phase.CONSTRUCT):
            RTree.build(buf, cfg, random_entries(200, seed=12), metrics=m)
        io = m.io_for(Phase.CONSTRUCT)
        assert io.random_reads > 0    # re-reads of evicted nodes
        assert io.random_writes > 0   # dirty write-backs

    def test_large_buffer_no_construction_io(self):
        tree, _, m = make_tree()  # 256-page buffer, small tree
        with m.phase(Phase.CONSTRUCT):
            for rect, oid in random_entries(100, seed=13):
                tree.insert(rect, oid)
        assert m.io_for(Phase.CONSTRUCT).total_accesses == 0


@settings(max_examples=25, deadline=None)
@given(entry_lists(min_size=1, max_size=60))
def test_rtree_query_equals_linear_scan(entries):
    cfg = SystemConfig(page_size=104, buffer_pages=64)
    m = MetricsCollector(cfg)
    tree = RTree.build(
        BufferPool(cfg.buffer_pages, DiskSimulator(m)), cfg, entries,
        metrics=m,
    )
    tree.validate()
    window = Rect(0.25, 0.25, 0.75, 0.75)
    expected = sorted(o for r, o in entries if r.intersects(window))
    assert sorted(tree.window_query(window)) == expected
