"""Tests for Guttman deletion with tree condensation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries
from ..strategies import entry_lists


def build(entries, buffer_pages=256):
    cfg = SystemConfig(page_size=104, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    tree = RTree.build(
        BufferPool(cfg.buffer_pages, DiskSimulator(m)), cfg, entries,
        metrics=m,
    )
    return tree


class TestDeleteBasics:
    def test_delete_existing(self):
        entries = random_entries(30, seed=1)
        tree = build(entries)
        rect, oid = entries[7]
        assert tree.delete(rect, oid)
        assert len(tree) == 29
        assert oid not in tree.window_query(rect)
        tree.validate()

    def test_delete_missing_oid(self):
        entries = random_entries(10, seed=2)
        tree = build(entries)
        assert not tree.delete(entries[0][0], 999)
        assert len(tree) == 10

    def test_delete_wrong_rect(self):
        entries = random_entries(10, seed=3)
        tree = build(entries)
        assert not tree.delete(Rect(0.9, 0.9, 0.95, 0.95), entries[0][1])

    def test_delete_from_empty(self):
        tree = build([])
        assert not tree.delete(Rect(0, 0, 1, 1), 0)

    def test_delete_twice(self):
        entries = random_entries(20, seed=4)
        tree = build(entries)
        rect, oid = entries[0]
        assert tree.delete(rect, oid)
        assert not tree.delete(rect, oid)

    def test_delete_last_object(self):
        tree = build([])
        tree.insert(Rect(0, 0, 1, 1), 1)
        assert tree.delete(Rect(0, 0, 1, 1), 1)
        assert len(tree) == 0
        tree.validate()


class TestCondensation:
    def test_tree_shrinks_after_mass_delete(self):
        entries = random_entries(200, seed=5)
        tree = build(entries)
        tall = tree.height
        for rect, oid in entries[:180]:
            assert tree.delete(rect, oid)
        tree.validate()
        assert len(tree) == 20
        assert tree.height <= tall

    def test_delete_everything(self):
        entries = random_entries(120, seed=6)
        tree = build(entries)
        for rect, oid in entries:
            assert tree.delete(rect, oid)
        assert len(tree) == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []
        tree.validate()

    def test_queries_correct_after_deletes(self):
        entries = random_entries(150, seed=7)
        tree = build(entries)
        removed = set()
        rng = random.Random(8)
        for rect, oid in rng.sample(entries, 70):
            assert tree.delete(rect, oid)
            removed.add(oid)
        window = Rect(0.2, 0.2, 0.7, 0.7)
        expected = sorted(
            o for r, o in entries if o not in removed and r.intersects(window)
        )
        assert sorted(tree.window_query(window)) == expected
        tree.validate()

    def test_interleaved_insert_delete(self):
        tree = build([])
        live: dict[int, Rect] = {}
        rng = random.Random(9)
        entries = random_entries(160, seed=10)
        for i, (rect, oid) in enumerate(entries):
            tree.insert(rect, oid)
            live[oid] = rect
            if i % 3 == 2:
                victim = rng.choice(sorted(live))
                assert tree.delete(live[victim], victim)
                del live[victim]
        tree.validate()
        assert len(tree) == len(live)
        window = Rect(0, 0, 1, 1)
        assert sorted(tree.window_query(window)) == sorted(live)


class TestSmallBufferDelete:
    """Regression: delete must survive trees far larger than the buffer.

    The old implementation located the leaf with an *unpinned* DFS and
    pinned the path afterwards; with a small pool the search itself
    evicted its own ancestors and ``buffer.pin`` blew up with
    ``cannot pin non-resident page``. The path must be pinned while it
    is being discovered.
    """

    def test_full_drain_under_tiny_buffer(self):
        entries = random_entries(500, seed=11)
        tree = build(entries, buffer_pages=8)
        assert tree.height >= 5
        rng = random.Random(12)
        shuffled = entries[:]
        rng.shuffle(shuffled)
        for i, (rect, oid) in enumerate(shuffled):
            assert tree.delete(rect, oid)
            if i % 97 == 0:
                tree.validate()
        assert len(tree) == 0
        tree.validate()

    def test_no_pins_leak_when_target_absent(self):
        entries = random_entries(300, seed=13)
        tree = build(entries, buffer_pages=8)
        assert not tree.delete(Rect(0.01, 0.01, 0.02, 0.02), 10_000)
        assert not tree.delete(entries[5][0], 10_001)
        # purge refuses pinned pages, so a leaked pin fails here.
        tree.buffer.purge()
        tree.validate()

    def test_interleaved_churn_under_tiny_buffer(self):
        cfg = SystemConfig(page_size=104, buffer_pages=8)
        m = MetricsCollector(cfg)
        tree = RTree(BufferPool(cfg.buffer_pages, DiskSimulator(m)), cfg,
                     metrics=m)
        live: dict[int, Rect] = {}
        rng = random.Random(14)
        for rect, oid in random_entries(400, seed=15):
            tree.insert(rect, oid)
            live[oid] = rect
            if len(live) > 50 and rng.random() < 0.5:
                victim = rng.choice(sorted(live))
                assert tree.delete(live.pop(victim), victim)
        tree.validate()
        assert sorted(o for _, o in tree.all_objects()) == sorted(live)


@settings(max_examples=15, deadline=None)
@given(entry_lists(min_size=5, max_size=40), st.integers(0, 1_000_000))
def test_delete_random_subset_preserves_invariants(entries, seed):
    tree = build(entries)
    rng = random.Random(seed)
    victims = rng.sample(entries, len(entries) // 2)
    for rect, oid in victims:
        assert tree.delete(rect, oid)
    tree.validate()
    survivors = sorted(set(o for _, o in entries) - set(o for _, o in victims))
    assert sorted(o for _, o in tree.all_objects()) == survivors
