"""Tests for best-first k-nearest-neighbour search."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.seeded import SeededTree
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries
from ..strategies import entry_lists


def build(entries, page_size=104, buffer_pages=128):
    cfg = SystemConfig(page_size=page_size, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    return RTree.build(BufferPool(cfg.buffer_pages, DiskSimulator(m)),
                       cfg, entries, metrics=m)


def oracle(entries, x, y, k):
    def dist(rect):
        dx = max(rect.xlo - x, 0.0, x - rect.xhi)
        dy = max(rect.ylo - y, 0.0, y - rect.yhi)
        return math.hypot(dx, dy)

    return sorted((dist(r), o) for r, o in entries)[:k]


class TestNearestNeighbors:
    def test_single_nearest(self):
        entries = random_entries(200, seed=1)
        tree = build(entries)
        [(d, oid)] = tree.nearest_neighbors(0.5, 0.5, k=1)
        [(ed, eoid)] = oracle(entries, 0.5, 0.5, 1)
        assert d == pytest.approx(ed)
        assert oid == eoid

    def test_k_results_sorted(self):
        entries = random_entries(300, seed=2)
        tree = build(entries)
        got = tree.nearest_neighbors(0.3, 0.7, k=10)
        assert len(got) == 10
        dists = [d for d, _ in got]
        assert dists == sorted(dists)

    def test_matches_oracle_distances(self):
        entries = random_entries(300, seed=3)
        tree = build(entries)
        got = tree.nearest_neighbors(0.8, 0.2, k=15)
        want = oracle(entries, 0.8, 0.2, 15)
        # Distances must agree exactly; ids may differ only on exact ties.
        assert [d for d, _ in got] == pytest.approx([d for d, _ in want])

    def test_point_inside_object_is_distance_zero(self):
        tree = build([(Rect(0.4, 0.4, 0.6, 0.6), 7)])
        [(d, oid)] = tree.nearest_neighbors(0.5, 0.5)
        assert d == 0.0
        assert oid == 7

    def test_k_larger_than_tree(self):
        entries = random_entries(5, seed=4)
        tree = build(entries)
        got = tree.nearest_neighbors(0.5, 0.5, k=50)
        assert len(got) == 5

    def test_empty_tree(self):
        tree = build([])
        assert tree.nearest_neighbors(0.5, 0.5, k=3) == []

    def test_k_zero(self):
        tree = build(random_entries(10, seed=5))
        assert tree.nearest_neighbors(0.5, 0.5, k=0) == []

    def test_charges_io_and_cpu(self):
        entries = random_entries(400, seed=6)
        tree = build(entries, buffer_pages=8 * 4)
        m = tree.metrics
        before_cpu = m.cpu.bbox_tests
        tree.nearest_neighbors(0.1, 0.9, k=5)
        assert m.cpu.bbox_tests > before_cpu

    def test_visits_fewer_nodes_than_full_scan(self):
        """Branch and bound must prune: far fewer node reads than the
        tree has nodes."""
        entries = random_entries(800, seed=7, side=0.01)
        tree = build(entries)
        hits_before = tree.buffer.stats.hits + tree.buffer.stats.misses
        tree.nearest_neighbors(0.5, 0.5, k=3)
        reads = (tree.buffer.stats.hits + tree.buffer.stats.misses
                 - hits_before)
        assert reads < tree.num_nodes() / 3


class TestSeededTreeKnn:
    def test_retained_seeded_tree_answers_knn(self):
        cfg = SystemConfig(page_size=104, buffer_pages=128)
        m = MetricsCollector(cfg)
        buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
        r_entries = random_entries(150, seed=8)
        t_r = RTree.build(buf, cfg, r_entries, metrics=m)
        s_entries = random_entries(200, seed=9, oid_start=1000)
        tree = SeededTree(buf, cfg, m)
        tree.seed(t_r)
        tree.grow_from(s_entries)
        tree.cleanup()
        got = tree.nearest_neighbors(0.25, 0.25, k=8)
        want = oracle(s_entries, 0.25, 0.25, 8)
        assert [d for d, _ in got] == pytest.approx([d for d, _ in want])

    def test_requires_ready_phase(self):
        from repro.errors import TreePhaseError

        cfg = SystemConfig(page_size=104, buffer_pages=64)
        m = MetricsCollector(cfg)
        tree = SeededTree(BufferPool(64, DiskSimulator(m)), cfg, m)
        with pytest.raises(TreePhaseError):
            tree.nearest_neighbors(0.5, 0.5)


@settings(max_examples=25, deadline=None)
@given(entry_lists(min_size=1, max_size=50),
       st.integers(1, 10),
       st.integers(0, 16), st.integers(0, 16))
def test_knn_distances_match_oracle(entries, k, gx, gy):
    x, y = gx / 16.0, gy / 16.0
    tree = build(entries)
    got = tree.nearest_neighbors(x, y, k=k)
    want = oracle(entries, x, y, k)
    assert [round(d, 9) for d, _ in got] == [round(d, 9) for d, _ in want]
