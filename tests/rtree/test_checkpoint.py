"""Construction checkpointing: snapshots, crash resume, budget limits."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import RecoveryError
from repro.metrics import MetricsCollector, Phase
from repro.rtree import RTree, RTreeCheckpointer, build_with_checkpoints
from repro.storage import (
    BufferPool,
    DiskSimulator,
    FaultInjector,
    FaultPlan,
    RecoveryPolicy,
)
from repro.storage.datafile import DataFile
from repro.join import naive_join, rtree_join

from ..conftest import random_entries

CONFIG = SystemConfig(page_size=512, buffer_pages=16)


def _stack(plan: FaultPlan | None = None, seed: int = 0):
    metrics = MetricsCollector(CONFIG)
    injector = FaultInjector(plan, seed=seed) if plan is not None else None
    disk = DiskSimulator(metrics, injector=injector)
    buffer = BufferPool(CONFIG.buffer_pages, disk)
    return metrics, injector, disk, buffer


# 1/1024-grid entries: float32-exact, so snapshot quantization is lossless.
def _grid_entries(n: int, seed: int = 0) -> list:
    return [
        (
            type(r)(
                round(r.xlo * 1024) / 1024, round(r.ylo * 1024) / 1024,
                round(r.xhi * 1024) / 1024, round(r.yhi * 1024) / 1024,
            ),
            oid,
        )
        for r, oid in random_entries(n, seed=seed)
    ]


class TestCheckpointedBuild:
    def test_same_objects_as_plain_build(self):
        entries = _grid_entries(150, seed=1)
        _, _, disk, buffer = _stack()
        ckpt = RTreeCheckpointer(disk, CONFIG, every=25)
        tree = build_with_checkpoints(
            buffer, CONFIG, entries, checkpointer=ckpt
        )
        tree.validate(check_min_fill=False)

        _, _, _, plain_buffer = _stack()
        plain = RTree.build(plain_buffer, CONFIG, entries)
        assert set(tree.all_objects()) == set(plain.all_objects())
        assert ckpt.latest() is not None
        assert ckpt.latest().entries_done == 150

    def test_checkpoints_are_charged(self):
        entries = _grid_entries(80, seed=2)
        metrics, _, disk, buffer = _stack()
        with metrics.phase(Phase.CONSTRUCT):
            RTree.build(buffer, CONFIG, entries)
        plain_io = metrics.io_for(Phase.CONSTRUCT).total_accesses

        metrics2, _, disk2, buffer2 = _stack()
        ckpt = RTreeCheckpointer(disk2, CONFIG, every=20)
        with metrics2.phase(Phase.CONSTRUCT):
            build_with_checkpoints(
                buffer2, CONFIG, entries, checkpointer=ckpt
            )
        ckpt_io = metrics2.io_for(Phase.CONSTRUCT).total_accesses
        assert ckpt_io > plain_io  # durability is not free
        assert metrics2.faults_for(Phase.CONSTRUCT).checkpoints == 4

    def test_snapshot_round_trip(self):
        entries = _grid_entries(60, seed=3)
        metrics, _, disk, buffer = _stack()
        ckpt = RTreeCheckpointer(disk, CONFIG, every=60)
        tree = build_with_checkpoints(
            buffer, CONFIG, entries, checkpointer=ckpt
        )
        before = metrics.io_for(Phase.SETUP).total_accesses
        loaded, done = ckpt.load_latest(buffer)
        assert done == 60
        assert set(loaded.all_objects()) == set(tree.all_objects())
        # The blob read-back is charged.
        assert metrics.io_for(Phase.SETUP).total_accesses > before

    def test_resume_skips_absorbed_prefix(self):
        entries = _grid_entries(100, seed=4)
        _, _, disk, buffer = _stack()
        ckpt = RTreeCheckpointer(disk, CONFIG, every=40)
        build_with_checkpoints(
            buffer, CONFIG, entries[:80], checkpointer=ckpt
        )
        # Simulate post-crash resume: snapshot holds the first 80.
        buffer.crash_discard()
        resume = ckpt.load_latest(buffer)
        tree = build_with_checkpoints(
            buffer, CONFIG, entries, resume=resume
        )
        assert set(tree.all_objects()) == set(entries)
        tree.validate(check_min_fill=False)


class TestRtjCrashRecovery:
    def _join_world(self, plan: FaultPlan | None, seed: int = 0):
        # D_S large enough that T_S outgrows the 16-page buffer, so
        # construction generates real disk traffic for faults to hit.
        metrics, injector, disk, buffer = _stack(plan, seed=seed)
        d_r = _grid_entries(200, seed=21)
        d_s = _grid_entries(400, seed=22)
        tree_r = RTree.build(buffer, CONFIG, d_r, name="T_R")
        data_s = DataFile.create(disk, CONFIG, d_s, name="D_S")
        buffer.purge()  # T_R durable: a crash must not destroy it
        disk.reset_arm()
        return metrics, injector, disk, buffer, tree_r, data_s, d_r, d_s

    def test_crash_recovery_completes_with_exact_answers(self):
        plan = FaultPlan(crash_after_ops=120)
        metrics, injector, disk, buffer, tree_r, data_s, d_r, d_s = (
            self._join_world(plan)
        )
        injector.arm()
        result = rtree_join(
            data_s, tree_r, buffer, CONFIG, metrics,
            recovery=RecoveryPolicy(checkpoint_every=64),
        )
        oracle = naive_join(d_s, d_r)
        assert result.pair_set() == oracle.pair_set()
        faults = metrics.fault_totals()
        assert faults.crashes == 1
        assert faults.crash_recoveries == 1
        assert faults.checkpoints >= 1

    def test_crash_budget_exhaustion_raises_recovery_error(self):
        # Recurring crashes with checkpointing disabled: every attempt
        # restarts from scratch and dies again.
        plan = FaultPlan(crash_every_ops=40)
        metrics, injector, _, buffer, tree_r, data_s, _, _ = (
            self._join_world(plan)
        )
        injector.arm()
        with pytest.raises(RecoveryError):
            rtree_join(
                data_s, tree_r, buffer, CONFIG, metrics,
                recovery=RecoveryPolicy(
                    checkpoint_every=0, max_crash_recoveries=2
                ),
            )
        assert metrics.fault_totals().crash_recoveries == 2

    def test_no_recovery_policy_is_legacy_path(self):
        metrics, _, disk, buffer, tree_r, data_s, d_r, d_s = (
            self._join_world(None)
        )
        result = rtree_join(data_s, tree_r, buffer, CONFIG, metrics)
        oracle = naive_join(d_s, d_r)
        assert result.pair_set() == oracle.pair_set()
        assert metrics.fault_totals().is_zero
