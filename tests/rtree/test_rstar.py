"""Tests for the R* topological split."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.errors import TreeError
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.rtree.node import Entry
from repro.rtree.rstar import rstar_split
from repro.rtree.split import check_split, quadratic_split
from repro.rtree.stats import collect_tree_stats
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries, random_rects
from ..strategies import small_rects


def entries_from(rects):
    return [Entry(r, i) for i, r in enumerate(rects)]


class TestSplitContract:
    def test_partitions_input(self):
        entries = entries_from(random_rects(25, seed=1))
        check_split(entries, rstar_split(entries, min_fill=10), 10)

    def test_minimum_sizes(self):
        entries = entries_from(random_rects(12, seed=2))
        a, b = rstar_split(entries, min_fill=5)
        assert len(a) >= 5 and len(b) >= 5

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(TreeError):
            rstar_split(entries_from(random_rects(1)), 1)
        with pytest.raises(TreeError):
            rstar_split(entries_from(random_rects(3)), 2)

    def test_identical_rects(self):
        r = Rect(0.4, 0.4, 0.5, 0.5)
        entries = [Entry(r, i) for i in range(8)]
        check_split(entries, rstar_split(entries, 3), 3)

    def test_counts_cpu(self):
        m = MetricsCollector()
        entries = entries_from(random_rects(20, seed=3))
        rstar_split(entries, 8, metrics=m)
        assert m.cpu.bbox_tests == 20


class TestSplitQuality:
    def test_separates_bimodal_data_cleanly(self):
        left = [Entry(Rect(0.0, i / 10, 0.1, i / 10 + 0.05), i)
                for i in range(6)]
        right = [Entry(Rect(0.9, i / 10, 1.0, i / 10 + 0.05), 100 + i)
                 for i in range(6)]
        a, b = rstar_split(left + right, min_fill=4)
        groups = [{e.ref for e in a}, {e.ref for e in b}]
        assert {e.ref for e in left} in groups
        assert {e.ref for e in right} in groups

    def test_lower_overlap_than_quadratic_on_average(self):
        """The R* split's reason to exist: less group overlap."""

        def overlap_of(split, seed):
            entries = entries_from(random_rects(30, seed=seed, side=0.3))
            a, b = split(entries, min_fill=12)
            from repro.geometry import union_all
            inter = union_all(e.mbr for e in a).intersection(
                union_all(e.mbr for e in b)
            )
            return inter.area() if inter else 0.0

        seeds = range(20)
        rstar = sum(overlap_of(rstar_split, s) for s in seeds)
        quad = sum(overlap_of(quadratic_split, s) for s in seeds)
        assert rstar <= quad


class TestRStarTree:
    def build(self, split, n=400, seed=4):
        cfg = SystemConfig(page_size=224, buffer_pages=512)
        m = MetricsCollector(cfg)
        buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
        return RTree.build(buf, cfg, random_entries(n, seed=seed),
                           metrics=m, split=split)

    def test_tree_valid_and_correct(self):
        tree = self.build(rstar_split)
        tree.validate()
        window = Rect(0.2, 0.2, 0.6, 0.6)
        expected = sorted(
            o for r, o in random_entries(400, seed=4) if r.intersects(window)
        )
        assert sorted(tree.window_query(window)) == expected

    def test_leaf_overlap_not_worse_than_quadratic(self):
        rstar_stats = collect_tree_stats(self.build(rstar_split))
        quad_stats = collect_tree_stats(self.build(quadratic_split))
        assert rstar_stats.level(0).overlap_area <= \
            1.1 * quad_stats.level(0).overlap_area

    def test_delete_works_with_rstar_split(self):
        tree = self.build(rstar_split, n=150, seed=5)
        entries = random_entries(150, seed=5)
        for rect, oid in entries[:75]:
            assert tree.delete(rect, oid)
        tree.validate()


@given(st.lists(small_rects(), min_size=4, max_size=24),
       st.integers(min_value=1, max_value=2))
def test_rstar_split_properties(rects, min_fill):
    entries = entries_from(rects)
    check_split(entries, rstar_split(entries, min_fill), min_fill)
