"""Tests for tree dump/load through the page codec."""

import pytest

from repro.config import SystemConfig
from repro.errors import StorageError
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.rtree.persist import dump_tree, load_tree
from repro.seeded import SeededTree
from repro.storage import BufferPool, DiskSimulator


def grid_entries(n, seed_offset=0, oid_start=0):
    """Entries on a 1/256 grid: exactly representable in float32."""
    out = []
    for i in range(n):
        v = ((i * 37 + seed_offset) % 200) / 256.0
        w = ((i * 53 + seed_offset) % 40 + 1) / 256.0
        out.append((Rect(v, v / 2, min(1.0, v + w), min(1.0, v / 2 + w)),
                    oid_start + i))
    return out


def make_env(page_size=512, buffer_pages=128):
    cfg = SystemConfig(page_size=page_size, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
    return cfg, m, buf


class TestRoundTrip:
    def test_queries_identical_after_reload(self):
        cfg, m, buf = make_env()
        entries = grid_entries(300)
        tree = RTree.build(buf, cfg, entries, metrics=m)
        blob = dump_tree(tree)

        cfg2, m2, buf2 = make_env()
        loaded = load_tree(buf2, cfg2, blob, metrics=m2)
        loaded.validate(check_min_fill=False)
        assert len(loaded) == 300
        for window in (Rect(0, 0, 0.5, 0.5), Rect(0.3, 0.1, 0.9, 0.4)):
            assert sorted(loaded.window_query(window)) == \
                sorted(tree.window_query(window))

    def test_structure_preserved(self):
        cfg, m, buf = make_env()
        tree = RTree.build(buf, cfg, grid_entries(500), metrics=m)
        blob = dump_tree(tree)
        cfg2, m2, buf2 = make_env()
        loaded = load_tree(buf2, cfg2, blob, metrics=m2)
        assert loaded.height == tree.height
        assert loaded.num_nodes() == tree.num_nodes()

    def test_empty_tree(self):
        cfg, m, buf = make_env()
        tree = RTree(buf, cfg, metrics=m)
        blob = dump_tree(tree)
        cfg2, m2, buf2 = make_env()
        loaded = load_tree(buf2, cfg2, blob, metrics=m2)
        assert len(loaded) == 0
        assert loaded.window_query(Rect(0, 0, 1, 1)) == []

    def test_loaded_tree_accepts_inserts(self):
        cfg, m, buf = make_env()
        tree = RTree.build(buf, cfg, grid_entries(100), metrics=m)
        blob = dump_tree(tree)
        cfg2, m2, buf2 = make_env()
        loaded = load_tree(buf2, cfg2, blob, metrics=m2)
        loaded.insert(Rect(0.125, 0.125, 0.25, 0.25), 9999)
        assert 9999 in loaded.window_query(Rect(0.1, 0.1, 0.3, 0.3))
        loaded.validate(check_min_fill=False)

    def test_seeded_tree_dump(self):
        cfg, m, buf = make_env()
        t_r = RTree.build(buf, cfg, grid_entries(900), metrics=m)
        seeded = SeededTree(buf, cfg, m)
        seeded.seed(t_r)
        s_entries = grid_entries(150, seed_offset=7, oid_start=10_000)
        seeded.grow_from(s_entries)
        seeded.cleanup()
        blob = dump_tree(seeded)
        cfg2, m2, buf2 = make_env()
        loaded = load_tree(buf2, cfg2, blob, metrics=m2)
        window = Rect(0.2, 0.1, 0.7, 0.4)
        assert sorted(loaded.window_query(window)) == \
            sorted(seeded.window_query(window))


class TestQuantization:
    def test_lossy_dump_rejected_by_default(self):
        cfg, m, buf = make_env()
        tree = RTree.build(
            buf, cfg, [(Rect(0.1, 0.1, 0.2, 0.2), 1)], metrics=m,
        )  # 0.1 is not float32-exact
        with pytest.raises(StorageError):
            dump_tree(tree)

    def test_lossy_dump_allowed_explicitly(self):
        cfg, m, buf = make_env()
        tree = RTree.build(
            buf, cfg, [(Rect(0.1, 0.1, 0.2, 0.2), 1)], metrics=m,
        )
        blob = dump_tree(tree, allow_quantize=True)
        cfg2, m2, buf2 = make_env()
        loaded = load_tree(buf2, cfg2, blob, metrics=m2)
        assert len(loaded) == 1
        # The rounded box still answers a generous window query.
        assert loaded.window_query(Rect(0, 0, 1, 1)) == [1]


class TestValidation:
    def test_bad_magic(self):
        cfg, m, buf = make_env()
        with pytest.raises(StorageError):
            load_tree(buf, cfg, b"NOPE" + b"\x00" * 100, metrics=m)

    def test_truncated_blob(self):
        cfg, m, buf = make_env()
        tree = RTree.build(buf, cfg, grid_entries(50), metrics=m)
        blob = dump_tree(tree)
        with pytest.raises(StorageError):
            load_tree(buf, cfg, blob[:-10], metrics=m)

    def test_page_size_mismatch(self):
        cfg, m, buf = make_env(page_size=512)
        tree = RTree.build(buf, cfg, grid_entries(50), metrics=m)
        blob = dump_tree(tree)
        cfg2, m2, buf2 = make_env(page_size=1024)
        with pytest.raises(StorageError):
            load_tree(buf2, cfg2, blob, metrics=m2)

    def test_tiny_blob(self):
        cfg, m, buf = make_env()
        with pytest.raises(StorageError):
            load_tree(buf, cfg, b"x", metrics=m)
