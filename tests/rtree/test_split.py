"""Tests for the node-split algorithms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TreeError
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree.node import Entry
from repro.rtree.split import check_split, linear_split, quadratic_split

from ..conftest import random_rects
from ..strategies import small_rects

SPLITTERS = [quadratic_split, linear_split]


def entries_from(rects):
    return [Entry(r, i) for i, r in enumerate(rects)]


@pytest.mark.parametrize("split", SPLITTERS)
class TestSplitContracts:
    def test_partitions_input(self, split):
        entries = entries_from(random_rects(25, seed=1))
        groups = split(entries, min_fill=10)
        check_split(entries, groups, 10)

    def test_min_fill_respected(self, split):
        entries = entries_from(random_rects(21, seed=2))
        a, b = split(entries, min_fill=10)
        assert len(a) >= 10
        assert len(b) >= 10

    def test_two_entries(self, split):
        entries = entries_from(random_rects(2, seed=3))
        a, b = split(entries, min_fill=1)
        assert len(a) == 1 and len(b) == 1

    def test_single_entry_raises(self, split):
        with pytest.raises(TreeError):
            split(entries_from(random_rects(1)), min_fill=1)

    def test_impossible_min_fill_raises(self, split):
        with pytest.raises(TreeError):
            split(entries_from(random_rects(3)), min_fill=2)

    def test_identical_rects(self, split):
        r = Rect(0.5, 0.5, 0.6, 0.6)
        entries = [Entry(r, i) for i in range(10)]
        a, b = split(entries, min_fill=4)
        check_split(entries, (a, b), 4)

    def test_degenerate_points(self, split):
        entries = [Entry(Rect.point(i / 10, i / 10), i) for i in range(10)]
        a, b = split(entries, min_fill=4)
        check_split(entries, (a, b), 4)

    def test_metrics_counted(self, split):
        m = MetricsCollector()
        entries = entries_from(random_rects(20, seed=4))
        split(entries, min_fill=8, metrics=m)
        assert m.cpu.bbox_tests == 20  # one pass over the entries

    def test_no_metrics_ok(self, split):
        split(entries_from(random_rects(8, seed=5)), min_fill=3, metrics=None)


class TestQuadraticQuality:
    def test_separates_two_clusters(self):
        """Two well-separated clusters must end up in different groups."""
        left = [Entry(Rect(0, 0, 0.1, 0.1).union(Rect(i / 100, 0, i / 100, 0.1)), i)
                for i in range(5)]
        right = [Entry(Rect(10, 10, 10.1, 10.1), 100 + i) for i in range(5)]
        a, b = quadratic_split(left + right, min_fill=4)
        refs_a = {e.ref for e in a}
        refs_b = {e.ref for e in b}
        assert refs_a in ({0, 1, 2, 3, 4}, {100, 101, 102, 103, 104})
        assert refs_a != refs_b


class TestCheckSplit:
    def test_rejects_underfill(self):
        entries = entries_from(random_rects(10))
        with pytest.raises(TreeError):
            check_split(entries, (entries[:1], entries[1:]), min_fill=3)

    def test_rejects_loss(self):
        entries = entries_from(random_rects(10))
        with pytest.raises(TreeError):
            check_split(entries, (entries[:4], entries[5:]), min_fill=3)

    def test_rejects_substitution(self):
        entries = entries_from(random_rects(8))
        fake = entries[:4] + [Entry(Rect(0, 0, 1, 1), 99) for _ in range(4)]
        with pytest.raises(TreeError):
            check_split(entries, (fake[:4], fake[4:]), min_fill=3)


@given(st.lists(small_rects(), min_size=4, max_size=30),
       st.integers(min_value=1, max_value=2))
def test_quadratic_split_properties(rects, min_fill):
    entries = entries_from(rects)
    groups = quadratic_split(entries, min_fill=min_fill)
    check_split(entries, groups, min_fill)


@given(st.lists(small_rects(), min_size=4, max_size=30),
       st.integers(min_value=1, max_value=2))
def test_linear_split_properties(rects, min_fill):
    entries = entries_from(rects)
    groups = linear_split(entries, min_fill=min_fill)
    check_split(entries, groups, min_fill)
