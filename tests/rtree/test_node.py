"""Tests for node/entry primitives."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Rect
from repro.rtree.node import Entry, Node, entries_mbr, node_mbr


class TestEntry:
    def test_defaults(self):
        e = Entry(Rect(0, 0, 1, 1), 7)
        assert e.ref == 7
        assert e.shadow is None
        assert e.touched is False

    def test_shadow_field(self):
        shadow = Rect(0, 0, 2, 2)
        e = Entry(Rect(0, 0, 1, 1), 7, shadow=shadow)
        assert e.shadow is shadow

    def test_repr(self):
        e = Entry(Rect(0, 0, 1, 1), 42)
        assert "42" in repr(e)


class TestNode:
    def test_leaf_detection(self):
        assert Node(level=0).is_leaf
        assert not Node(level=1).is_leaf

    def test_len(self):
        n = Node(0, [Entry(Rect(0, 0, 1, 1), 1)])
        assert len(n) == 1

    def test_default_entries_are_independent(self):
        a, b = Node(0), Node(0)
        a.entries.append(Entry(Rect(0, 0, 1, 1), 1))
        assert len(b) == 0

    def test_unmaterialised_page_id(self):
        assert Node(0).page_id == -1


class TestMbrHelpers:
    def test_node_mbr(self):
        n = Node(0, [
            Entry(Rect(0, 0, 1, 1), 1),
            Entry(Rect(4, 4, 5, 6), 2),
        ])
        assert node_mbr(n) == Rect(0, 0, 5, 6)

    def test_entries_mbr(self):
        entries = [Entry(Rect(0, 0, 1, 1), 1), Entry(Rect(-1, 0, 0, 2), 2)]
        assert entries_mbr(entries) == Rect(-1, 0, 1, 2)

    def test_empty_node_mbr_raises(self):
        with pytest.raises(GeometryError):
            node_mbr(Node(0))
