"""Edge-case tests for the shared selection traversals."""

import pytest

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.metrics import MetricsCollector, Phase
from repro.rtree import RTree
from repro.rtree.query import _mindist_sq
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries


def build(entries, buffer_pages=64):
    cfg = SystemConfig(page_size=104, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    return RTree.build(BufferPool(cfg.buffer_pages, DiskSimulator(m)),
                       cfg, entries, metrics=m)


class TestMindist:
    def test_zero_inside(self):
        assert _mindist_sq(Rect(0, 0, 1, 1), 0.5, 0.5) == 0.0

    def test_zero_on_boundary(self):
        assert _mindist_sq(Rect(0, 0, 1, 1), 1.0, 0.5) == 0.0

    def test_axis_distance(self):
        assert _mindist_sq(Rect(0, 0, 1, 1), 2.0, 0.5) == 1.0

    def test_corner_distance(self):
        assert _mindist_sq(Rect(0, 0, 1, 1), 2.0, 2.0) == 2.0

    def test_degenerate_rect(self):
        assert _mindist_sq(Rect.point(0.5, 0.5), 0.5, 1.0) == pytest.approx(0.25)


class TestWindowEdgeCases:
    def test_degenerate_window(self):
        entries = [(Rect(0.2, 0.2, 0.4, 0.4), 1),
                   (Rect(0.6, 0.6, 0.8, 0.8), 2)]
        tree = build(entries)
        # A zero-area window on a boundary still selects by closed
        # semantics.
        assert tree.window_query(Rect(0.4, 0.4, 0.4, 0.4)) == [1]

    def test_window_equals_whole_map(self):
        entries = random_entries(60, seed=1)
        tree = build(entries)
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == \
            sorted(o for _, o in entries)

    def test_window_covering_single_point_object(self):
        tree = build([(Rect.point(0.5, 0.5), 9)])
        assert tree.window_query(Rect(0.5, 0.5, 0.6, 0.6)) == [9]
        assert tree.window_query(Rect(0.51, 0.51, 0.6, 0.6)) == []

    def test_query_io_charged_under_pressure(self):
        entries = random_entries(300, seed=2)
        tree = build(entries, buffer_pages=8)
        m = tree.metrics
        with m.phase(Phase.MATCH):
            tree.window_query(Rect(0, 0, 1, 1))
        assert m.io_for(Phase.MATCH).random_reads > 0

    def test_repeat_query_hits_cache(self):
        entries = random_entries(100, seed=3)
        tree = build(entries, buffer_pages=256)
        m = tree.metrics
        tree.window_query(Rect(0.2, 0.2, 0.4, 0.4))
        with m.phase(Phase.MATCH):
            tree.window_query(Rect(0.2, 0.2, 0.4, 0.4))
        assert m.io_for(Phase.MATCH).total_accesses == 0
