"""Tests for the shared subtree-insertion machinery.

These exercise :func:`insert_into_subtree` directly, the way a seeded
tree's slots use it: a forest of independently growing roots.
"""

import pytest

from repro.config import SystemConfig
from repro.errors import TreeError
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree.insertion import choose_subtree, insert_into_subtree, new_node
from repro.rtree.node import Entry, Node, node_mbr

from ..conftest import random_entries


class Owner:
    """Minimal duck-typed owner, as SeededTree provides."""

    def __init__(self, buffer_pages=256, page_size=104):
        from repro.rtree.split import quadratic_split
        from repro.storage import BufferPool, DiskSimulator

        self.config = SystemConfig(page_size=page_size,
                                   buffer_pages=buffer_pages)
        self.metrics = MetricsCollector(self.config)
        self.buffer = BufferPool(
            self.config.buffer_pages, DiskSimulator(self.metrics)
        )
        self.capacity = self.config.node_capacity
        self.min_fill = self.config.node_min_fill
        self.split = quadratic_split


def collect_leaf_refs(owner, root_id):
    out = []
    stack = [root_id]
    while stack:
        node = owner.buffer.peek(stack.pop()).payload
        if node.is_leaf:
            out.extend(e.ref for e in node.entries)
        else:
            stack.extend(e.ref for e in node.entries)
    return sorted(out)


class TestInsertIntoSubtree:
    def test_grows_root_on_split(self):
        owner = Owner()
        root = new_node(owner, 0, [])
        root_id = root.page_id
        ids = [root_id]
        for rect, oid in random_entries(30, seed=1):
            root_id = insert_into_subtree(owner, root_id, Entry(rect, oid))
            ids.append(root_id)
        assert root_id != ids[0]  # fan-out 4: must have grown
        assert collect_leaf_refs(owner, root_id) == list(range(30))

    def test_forest_roots_are_independent(self):
        owner = Owner()
        roots = [new_node(owner, 0, []).page_id for _ in range(3)]
        for i, (rect, oid) in enumerate(random_entries(60, seed=2)):
            slot = i % 3
            roots[slot] = insert_into_subtree(
                owner, roots[slot], Entry(rect, oid)
            )
        all_refs = []
        for root_id in roots:
            all_refs.extend(collect_leaf_refs(owner, root_id))
        assert sorted(all_refs) == list(range(60))

    def test_target_level_above_root_raises(self):
        owner = Owner()
        root = new_node(owner, 0, [])
        with pytest.raises(TreeError):
            insert_into_subtree(
                owner, root.page_id, Entry(Rect(0, 0, 1, 1), 1),
                target_level=3,
            )

    def test_parent_mbrs_exact_after_inserts(self):
        owner = Owner()
        root_id = new_node(owner, 0, []).page_id
        for rect, oid in random_entries(80, seed=3):
            root_id = insert_into_subtree(owner, root_id, Entry(rect, oid))

        def verify(page_id):
            node = owner.buffer.peek(page_id).payload
            if node.is_leaf:
                return
            for e in node.entries:
                child = owner.buffer.peek(e.ref).payload
                assert e.mbr == node_mbr(child)
                verify(e.ref)

        verify(root_id)

    def test_no_pins_leak(self):
        owner = Owner()
        root_id = new_node(owner, 0, []).page_id
        for rect, oid in random_entries(50, seed=4):
            root_id = insert_into_subtree(owner, root_id, Entry(rect, oid))
        for page_id in list(owner.buffer.resident_ids()):
            assert owner.buffer.pin_count(page_id) == 0


class TestChooseSubtree:
    def test_prefers_containing_child(self):
        owner = Owner()
        node = Node(1, [
            Entry(Rect(0, 0, 1, 1), 10),
            Entry(Rect(5, 5, 6, 6), 20),
        ])
        idx = choose_subtree(owner, node, Rect(0.2, 0.2, 0.4, 0.4))
        assert idx == 0

    def test_tie_broken_by_area(self):
        owner = Owner()
        node = Node(1, [
            Entry(Rect(0, 0, 4, 4), 10),       # contains, large
            Entry(Rect(1, 1, 2, 2), 20),       # contains, small
        ])
        idx = choose_subtree(owner, node, Rect(1.2, 1.2, 1.5, 1.5))
        assert idx == 1

    def test_counts_one_test_per_node(self):
        owner = Owner()
        node = Node(1, [Entry(Rect(0, 0, 1, 1), 1)] * 4)
        before = owner.metrics.cpu.bbox_tests
        choose_subtree(owner, node, Rect(0, 0, 1, 1))
        assert owner.metrics.cpu.bbox_tests == before + 1
