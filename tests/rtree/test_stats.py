"""Tests for tree-quality statistics."""

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.rtree.stats import (
    collect_tree_stats,
    format_tree_stats,
    pairing_degree,
)
from repro.seeded import SeededTree
from repro.storage import BufferPool, DiskSimulator

from ..conftest import random_entries


def make_env(page_size=224, buffer_pages=512):
    cfg = SystemConfig(page_size=page_size, buffer_pages=buffer_pages)
    m = MetricsCollector(cfg)
    buf = BufferPool(cfg.buffer_pages, DiskSimulator(m))
    return cfg, m, buf


def build_tree(entries, env=None):
    cfg, m, buf = env or make_env()
    return RTree.build(buf, cfg, entries, metrics=m), (cfg, m, buf)


class TestCollectTreeStats:
    def test_counts_match_tree(self):
        entries = random_entries(300, seed=1)
        tree, _ = build_tree(entries)
        stats = collect_tree_stats(tree)
        assert stats.num_objects == 300
        assert stats.num_nodes == tree.num_nodes()
        assert stats.height == tree.height

    def test_level_structure(self):
        entries = random_entries(300, seed=2)
        tree, _ = build_tree(entries)
        stats = collect_tree_stats(tree)
        levels = [ls.level for ls in stats.levels]
        assert levels == list(range(tree.height))
        # One root at the top level; entry counts narrow upwards.
        assert stats.level(tree.height - 1).nodes == 1
        assert stats.level(0).entries == 300

    def test_fill_within_bounds(self):
        entries = random_entries(400, seed=3)
        tree, (cfg, _, _) = build_tree(entries)
        stats = collect_tree_stats(tree)
        for ls in stats.levels[:-1]:  # root exempt from min fill
            assert cfg.node_min_fill <= ls.average_fill <= cfg.node_capacity

    def test_empty_tree(self):
        tree, _ = build_tree([])
        stats = collect_tree_stats(tree)
        assert stats.num_objects == 0
        assert stats.num_nodes == 1

    def test_overlap_zero_for_disjoint_grid(self):
        # A perfect grid of disjoint cells: zero sibling overlap at the
        # leaf level.
        cells = []
        for i in range(8):
            for j in range(8):
                cells.append(
                    (Rect(i / 8, j / 8, (i + 0.9) / 8, (j + 0.9) / 8),
                     i * 8 + j)
                )
        tree, _ = build_tree(cells)
        stats = collect_tree_stats(tree)
        # Leaf boxes may still overlap after splits, but the measure must
        # be finite and non-negative; with disjoint data it stays small.
        assert stats.level(0).overlap_area >= 0.0
        assert stats.level(0).overlap_area < stats.level(0).total_area

    def test_format(self):
        entries = random_entries(100, seed=4)
        tree, _ = build_tree(entries)
        text = format_tree_stats(collect_tree_stats(tree), title="T")
        assert text.startswith("T")
        assert "height" in text

    def test_works_on_seeded_tree(self):
        env = make_env()
        cfg, m, buf = env
        t_r = RTree.build(buf, cfg, random_entries(300, seed=5), metrics=m)
        tree = SeededTree(buf, cfg, m)
        tree.seed(t_r)
        tree.grow_from(random_entries(200, seed=6, oid_start=1000))
        tree.cleanup()
        stats = collect_tree_stats(tree)
        assert stats.num_objects == 200


class TestPairingDegree:
    def test_zero_for_empty(self):
        tree_a, env = build_tree([])
        tree_b, _ = build_tree(random_entries(10, seed=7), env)
        assert pairing_degree(tree_a, tree_b) == 0

    def test_one_for_two_singletons(self):
        env = make_env()
        a, _ = build_tree([(Rect(0, 0, 1, 1), 1)], env)
        b, _ = build_tree([(Rect(0.5, 0.5, 2, 2), 2)], env)
        assert pairing_degree(a, b) == 1  # just the root pair

    def test_counts_grow_with_overlap(self):
        env = make_env()
        base = random_entries(300, seed=8)
        tree, _ = build_tree(base, env)
        near = [(r, o + 10_000) for r, o in random_entries(300, seed=8)]
        far = [
            (Rect(r.xlo + 50, r.ylo + 50, r.xhi + 50, r.yhi + 50), o)
            for r, o in near
        ]
        tree_near, _ = build_tree(near, env)
        tree_far, _ = build_tree(far, env)
        assert pairing_degree(tree, tree_near) > pairing_degree(tree, tree_far)

    def test_seeded_and_plain_trees_pair_in_same_regime(self):
        """pairing_degree is a diagnostic, not a victory condition: at
        small scales a seeded tree may pair slightly more nodes than a
        plain R-tree (it has more, smaller grown nodes) while still
        winning on buffered match I/O. The metric must stay in the same
        regime for both so it remains comparable."""
        env = make_env()
        cfg, m, buf = env
        r_entries = random_entries(600, seed=9, side=0.02)
        s_entries = random_entries(400, seed=10, side=0.02, oid_start=5000)
        t_r = RTree.build(buf, cfg, r_entries, metrics=m)

        plain = RTree.build(buf, cfg, s_entries, metrics=m)
        seeded = SeededTree(buf, cfg, m)
        seeded.seed(t_r)
        seeded.grow_from(s_entries)
        seeded.cleanup()

        p = pairing_degree(plain, t_r)
        s = pairing_degree(seeded, t_r)
        assert p > 0 and s > 0
        assert s < 2.5 * p
        assert p < 2.5 * s
