"""Tests for the experiment workspace protocol."""

import pytest

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.metrics import Phase
from repro.workspace import Workspace

from .conftest import random_entries


@pytest.fixture
def ws():
    return Workspace(SystemConfig(page_size=104, buffer_pages=64))


class TestSetup:
    def test_default_config_is_paper(self):
        assert Workspace().config.page_size == 1024

    def test_install_datafile_charges_setup_only(self, ws):
        ws.install_datafile(random_entries(100, seed=1))
        assert ws.metrics.summary().total_io == 0
        assert ws.metrics.io_for(Phase.SETUP).total_accesses > 0

    def test_install_rtree_charges_setup_only(self, ws):
        tree = ws.install_rtree(random_entries(120, seed=2))
        tree.validate()
        assert ws.metrics.summary().total_io == 0
        assert ws.metrics.summary().bbox_tests == 0

    def test_rtree_starts_cold(self, ws):
        """After install, the buffer is purged: the join pays to read T_R."""
        tree = ws.install_rtree(random_entries(120, seed=3))
        assert len(ws.buffer) == 0
        with ws.metrics.phase(Phase.MATCH):
            tree.window_query(Rect(0, 0, 1, 1))
        assert ws.metrics.io_for(Phase.MATCH).random_reads > 0

    def test_rtree_survives_purge(self, ws):
        entries = random_entries(100, seed=4)
        tree = ws.install_rtree(entries)
        assert sorted(tree.all_objects(), key=lambda e: e[1]) == entries

    def test_tree_uses_workspace_metrics_after_install(self, ws):
        tree = ws.install_rtree(random_entries(50, seed=5))
        assert tree.metrics is ws.metrics


class TestStartMeasurement:
    def test_resets_counters_and_cache(self, ws):
        tree = ws.install_rtree(random_entries(80, seed=6))
        with ws.metrics.phase(Phase.MATCH):
            tree.window_query(Rect(0, 0, 1, 1))
        assert ws.metrics.summary().total_io > 0
        ws.start_measurement()
        assert ws.metrics.summary().total_io == 0
        assert ws.metrics.summary().bbox_tests == 0
        assert len(ws.buffer) == 0

    def test_repr(self, ws):
        assert "buffer=64p" in repr(ws)


class TestFaultCapableWorkspace:
    """The README's fault-plan recipe: inject at construction, arm later."""

    def test_setup_is_fault_free_until_armed(self):
        from repro.storage import FaultInjector, FaultPlan

        injector = FaultInjector(
            FaultPlan(transient_read_rate=1.0), seed=7
        )
        ws = Workspace(
            SystemConfig(page_size=104, buffer_pages=64), injector=injector
        )
        assert ws.disk.injector is injector
        tree = ws.install_rtree(random_entries(100, seed=8))
        assert ws.metrics.fault_totals().is_zero  # never armed during setup
        ws.disk.injector.arm()
        with ws.metrics.phase(Phase.MATCH):
            # Transients are capped below the retry budget, so the query
            # still succeeds — it just pays for the retries.
            tree.window_query(Rect(0, 0, 1, 1))
        faults = ws.metrics.faults_for(Phase.MATCH)
        assert faults.transient_read_errors > 0
        assert faults.pages_recovered > 0
