"""Model-based (stateful) property tests.

Hypothesis drives random operation sequences against the buffer pool and
the R-tree, checking them after every step against trivially correct
in-memory models. These catch interaction bugs that example-based tests
miss: eviction vs. pinning races, dirty-data loss, delete/insert
interleavings that violate tree invariants.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.config import SystemConfig
from repro.errors import BufferFullError
from repro.geometry import Rect
from repro.metrics import MetricsCollector
from repro.rtree import RTree
from repro.storage import BufferPool, DiskSimulator, PageKind


class BufferPoolMachine(RuleBasedStateMachine):
    """The buffer pool must never lose data and never exceed capacity.

    Model: a dict of the latest payload written per page. Every fetch
    must return it, whether the page is resident or was evicted and
    re-read.
    """

    CAPACITY = 4

    def __init__(self):
        super().__init__()
        self.metrics = MetricsCollector()
        self.disk = DiskSimulator(self.metrics)
        self.pool = BufferPool(self.CAPACITY, self.disk)
        self.model: dict[int, int] = {}      # page id -> expected payload
        self.pinned: set[int] = set()
        self.counter = 0

    # ------------------------------------------------------------- #

    @rule()
    def new_page(self):
        self.counter += 1
        payload = [self.counter]  # mutable payload, like a tree node
        try:
            page = self.pool.new_page(PageKind.TREE_NODE, payload)
        except BufferFullError:
            assert len(self.pinned) >= self.CAPACITY
            return
        self.model[page.page_id] = self.counter

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def fetch_and_check(self, data):
        page_id = data.draw(st.sampled_from(sorted(self.model)))
        try:
            page = self.pool.fetch(page_id)
        except BufferFullError:
            assert len(self.pinned) >= self.CAPACITY
            return
        assert page.payload[0] == self.model[page_id]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def mutate_resident(self, data):
        page_id = data.draw(st.sampled_from(sorted(self.model)))
        try:
            page = self.pool.fetch(page_id)
        except BufferFullError:
            assert len(self.pinned) >= self.CAPACITY
            return
        self.counter += 1
        page.payload[0] = self.counter
        self.pool.mark_dirty(page_id)
        self.model[page_id] = self.counter

    @precondition(lambda self: self.model and len(self.pinned) + 1 < 4)
    @rule(data=st.data())
    def pin_one(self, data):
        page_id = data.draw(st.sampled_from(sorted(self.model)))
        try:
            self.pool.fetch(page_id, pin=True)
        except BufferFullError:
            return
        self.pinned.add(page_id)

    @precondition(lambda self: self.pinned)
    @rule(data=st.data())
    def unpin_one(self, data):
        page_id = data.draw(st.sampled_from(sorted(self.pinned)))
        self.pool.unpin(page_id)
        if self.pool.pin_count(page_id) == 0:
            self.pinned.discard(page_id)

    @rule()
    def flush_all(self):
        self.pool.flush_all()

    # ------------------------------------------------------------- #

    @invariant()
    def capacity_respected(self):
        assert len(self.pool) <= self.CAPACITY

    @invariant()
    def pinned_pages_resident(self):
        for page_id in self.pinned:
            assert page_id in self.pool


class RTreeMachine(RuleBasedStateMachine):
    """Insert/delete interleavings must preserve all tree invariants.

    Model: a dict of live (oid -> rect). After every step the tree's
    structural invariants hold and a window query equals a linear scan
    of the model.
    """

    def __init__(self):
        super().__init__()
        cfg = SystemConfig(page_size=104, buffer_pages=64)  # fan-out 4
        self.metrics = MetricsCollector(cfg)
        self.tree = RTree(
            BufferPool(cfg.buffer_pages, DiskSimulator(self.metrics)),
            cfg, metrics=self.metrics,
        )
        self.model: dict[int, Rect] = {}
        self.next_oid = 0

    @rule(x=st.integers(0, 64), y=st.integers(0, 64),
          w=st.integers(0, 16), h=st.integers(0, 16))
    def insert(self, x, y, w, h):
        rect = Rect(x / 64, y / 64, min(1.0, (x + w) / 64),
                    min(1.0, (y + h) / 64))
        self.tree.insert(rect, self.next_oid)
        self.model[self.next_oid] = rect
        self.next_oid += 1

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        oid = data.draw(st.sampled_from(sorted(self.model)))
        assert self.tree.delete(self.model[oid], oid)
        del self.model[oid]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_missing(self, data):
        oid = data.draw(st.sampled_from(sorted(self.model)))
        # Right oid, wrong rect: must refuse and change nothing.
        assert not self.tree.delete(Rect(0.9, 0.99, 0.95, 1.0), oid + 10_000)
        assert len(self.tree) == len(self.model)

    @invariant()
    def structurally_valid(self):
        self.tree.validate()

    @invariant()
    def query_matches_model(self):
        window = Rect(0.25, 0.25, 0.75, 0.75)
        expected = sorted(
            oid for oid, rect in self.model.items()
            if rect.intersects(window)
        )
        assert sorted(self.tree.window_query(window)) == expected


TestBufferPoolMachine = pytest.mark.filterwarnings("ignore")(
    BufferPoolMachine.TestCase
)
TestBufferPoolMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)

TestRTreeMachine = RTreeMachine.TestCase
TestRTreeMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
