"""Tests for the paper-layout table and series rendering."""

from repro.metrics import CostSummary, MetricsCollector, Phase
from repro.metrics.report import (
    format_cost_table,
    format_fault_table,
    format_series,
)


def summary(**overrides):
    base = dict(
        match_read=100.0, match_write=10.0,
        construct_read=20.0, construct_write=30.0,
        bbox_tests=5000, xy_tests=7000,
    )
    base.update(overrides)
    return CostSummary(**base)


class TestCostTable:
    def test_contains_all_columns(self):
        text = format_cost_table([("BFJ", summary())])
        for token in ("Alg.", "match rd", "cons wr", "total", "bbox(K)", "XY(K)"):
            assert token in text

    def test_row_values_formatted(self):
        text = format_cost_table([("STJ1-2N", summary())])
        line = text.splitlines()[-1]
        assert "STJ1-2N" in line
        assert "160" in line  # total = 100+10+20+30
        assert "5" in line    # bbox K
        assert "7" in line    # xy K

    def test_title_line(self):
        text = format_cost_table([("X", summary())], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_multiple_rows_aligned(self):
        text = format_cost_table(
            [("A", summary()), ("LONGNAME", summary(match_read=123456.0))]
        )
        lines = text.splitlines()
        assert len({len(line) for line in lines[-2:]}) == 1  # equal width

    def test_empty_rows(self):
        text = format_cost_table([])
        assert "Alg." in text


class TestFaultTable:
    def test_contains_all_columns_and_phases(self):
        text = format_fault_table(MetricsCollector())
        for token in ("phase", "transient", "torn", "bitflip", "crash",
                      "retries", "backoff(s)", "recovered", "ckpts",
                      "resumes", "fallbacks"):
            assert token in text
        for phase in Phase:
            assert phase.value in text
        assert "total" in text

    def test_zero_run_renders_zero_rows(self):
        text = format_fault_table(MetricsCollector())
        total_line = text.splitlines()[-1]
        assert total_line.split() == ["total"] + ["0"] * 5 + ["0.000"] + [
            "0"
        ] * 4

    def test_counts_land_in_phase_row_and_total(self):
        m = MetricsCollector()
        with m.phase(Phase.CONSTRUCT):
            m.record_fault("crash")
            m.record_crash_recovery()
            m.record_retry(backoff=1.5)
        text = format_fault_table(m, title="chaos run")
        lines = text.splitlines()
        assert lines[0] == "chaos run"
        construct = next(l for l in lines if l.lstrip().startswith("construct"))
        assert construct.split() == [
            "construct", "0", "0", "0", "1", "1", "1.500", "0", "0", "1", "0",
        ]
        assert lines[-1].split()[4] == "1"  # crash column in the total row

    def test_rows_aligned(self):
        m = MetricsCollector()
        with m.phase(Phase.MATCH):
            m.record_retry(backoff=123.456)
        lines = format_fault_table(m).splitlines()
        assert len({len(line) for line in lines[2:]}) == 1


class TestSeries:
    def test_header_and_rows(self):
        text = format_series(
            "||D_S||", [20000, 40000],
            [("BFJ", [1.0, 2.0]), ("STJ1-2N", [0.5, 0.75])],
        )
        lines = text.splitlines()
        assert lines[0] == "||D_S||, 20000, 40000"
        assert lines[1] == "BFJ, 1, 2"
        assert lines[2].startswith("STJ1-2N")

    def test_title(self):
        text = format_series("x", [1], [("a", [1.0])], title="Figure 6")
        assert text.splitlines()[0] == "Figure 6"


class TestAsciiChart:
    def test_basic_structure(self):
        from repro.metrics.report import format_ascii_chart

        text = format_ascii_chart(
            [10, 20, 30],
            [("BFJ", [1.0, 2.0, 3.0]), ("RTJ", [3.0, 2.0, 1.0])],
            height=8, title="chart",
        )
        lines = text.splitlines()
        assert lines[0] == "chart"
        assert any("B=BFJ" in line for line in lines)
        assert any("R=RTJ" in line for line in lines)
        # 8 data rows + axis + labels + legend + title
        assert len(lines) == 8 + 4

    def test_marker_collision_falls_back_to_digits(self):
        from repro.metrics.report import format_ascii_chart

        text = format_ascii_chart(
            [1, 2], [("STJ1", [1.0, 2.0]), ("STJ2", [2.0, 1.0])],
        )
        assert "S=STJ1" in text
        assert "1=STJ2" in text

    def test_empty_series(self):
        from repro.metrics.report import format_ascii_chart

        assert format_ascii_chart([], [], title="t") == "t"

    def test_rejects_tiny_height(self):
        import pytest

        from repro.metrics.report import format_ascii_chart

        with pytest.raises(ValueError):
            format_ascii_chart([1], [("A", [1.0])], height=1)

    def test_max_value_on_top_row(self):
        from repro.metrics.report import format_ascii_chart

        text = format_ascii_chart([1], [("A", [100.0])], height=4)
        top_row = text.splitlines()[0]
        assert "A" in top_row
