"""Tests for structured join tracing and its Chrome-trace export."""

import json

import pytest

from repro.config import SystemConfig
from repro.join import spatial_join
from repro.metrics import (
    JoinTrace,
    MetricsCollector,
    Phase,
    format_trace_tree,
    validate_chrome_trace,
)
from repro.metrics.tracing import TraceSchemaError
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

CFG = SystemConfig(page_size=512, buffer_pages=64)


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 0.25
        return self.t


class TestSpanTree:
    def test_nesting_and_durations(self):
        metrics = MetricsCollector(CFG)
        trace = JoinTrace(metrics, clock=_FakeClock())
        with trace.span("outer", kind="join"):
            with trace.span("inner", kind="phase", phase=Phase.MATCH):
                pass
        (root,) = trace.roots
        assert root.name == "outer"
        (inner,) = root.children
        assert inner.phase == "match"
        assert inner.duration_s == pytest.approx(0.25)
        assert root.duration_s > inner.duration_s
        assert [s.name for s in root.walk()] == ["outer", "inner"]
        assert trace.depth == 0

    def test_span_captures_io_deltas_per_accounting_phase(self):
        metrics = MetricsCollector(CFG)
        trace = JoinTrace(metrics)
        with trace.span("work", phase=Phase.CONSTRUCT):
            with metrics.phase(Phase.CONSTRUCT):
                metrics.record_read(sequential=False)
                metrics.record_write(sequential=True)
        (span,) = trace.roots
        assert set(span.io) == {"construct"}
        assert span.io["construct"].random_reads == 1
        assert span.io["construct"].sequential_writes == 1

    def test_error_recorded_and_reraised(self):
        trace = JoinTrace(MetricsCollector(CFG))
        with pytest.raises(RuntimeError):
            with trace.span("bad"):
                raise RuntimeError("kaput")
        (span,) = trace.roots
        assert span.error == "RuntimeError: kaput"
        assert span.end_s is not None


class TestTracedJoins:
    @pytest.fixture(scope="class")
    def env(self):
        ws = Workspace(CFG)
        d_r = generate_clustered(ClusteredConfig(
            2_000, objects_per_cluster=20, seed=71,
        ))
        d_s = generate_clustered(ClusteredConfig(
            800, objects_per_cluster=20, seed=72, oid_start=10**6,
        ))
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        return ws, tree_r, file_s

    @pytest.mark.parametrize("method", ["BFJ", "RTJ", "STJ1-2N"])
    def test_phase_totals_match_collector(self, env, method):
        """Phase spans partition the join's work, so their I/O sums equal
        the collector's per-phase counters for the measured run."""
        ws, tree_r, file_s = env
        ws.start_measurement()
        result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, method=method, trace=True)
        totals = result.trace.phase_io_totals()
        for phase in (Phase.CONSTRUCT, Phase.MATCH):
            measured = ws.metrics.io_for(phase)
            traced = totals.get(phase.value)
            if measured.total_accesses == 0:
                assert traced is None
            else:
                assert traced == measured

    def test_tracing_does_not_perturb_counters(self, env):
        ws, tree_r, file_s = env
        ws.start_measurement()
        spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                     method="STJ1-2N")
        plain = ws.metrics.summary()
        ws.start_measurement()
        spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                     method="STJ1-2N", trace=True)
        assert ws.metrics.summary() == plain

    def test_chrome_export_round_trips_and_validates(self, env):
        ws, tree_r, file_s = env
        ws.start_measurement()
        result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, method="STJ1-2N", trace=True)
        events = json.loads(result.trace.to_json())
        validate_chrome_trace(events)
        names = [e["name"] for e in events]
        assert names[0] == "STJ"
        assert "construct" in names and "match" in names
        root = events[0]
        assert root["cat"] == "join" and root["ph"] == "X"
        # The root spans its children in time.
        for child in events[1:]:
            assert child["ts"] >= root["ts"]
            assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1

    def test_existing_trace_collects_multiple_joins(self, env):
        ws, tree_r, file_s = env
        ws.start_measurement()
        trace = JoinTrace(ws.metrics, ws.buffer)
        for method in ("BFJ", "RTJ"):
            spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                         method=method, trace=trace)
        assert [r.name for r in trace.roots] == ["BFJ", "RTJ"]
        validate_chrome_trace(trace.to_chrome_trace())

    def test_terminal_tree_rendering(self, env):
        ws, tree_r, file_s = env
        ws.start_measurement()
        result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, method="STJ1-2N", trace=True)
        text = format_trace_tree(result.trace, title="stj run")
        assert "stj run" in text
        assert "STJ" in text and "construct" in text and "match" in text
        assert "└─" in text


class TestSchemaValidation:
    def _good_event(self) -> dict:
        return {
            "name": "match", "cat": "phase", "ph": "X",
            "ts": 0.0, "dur": 1.0, "pid": 1, "tid": 2,
            "args": {
                "phase": "match", "error": None,
                "io": {"match": {
                    "random_reads": 1, "sequential_reads": 0,
                    "random_writes": 0, "sequential_writes": 0,
                }},
                "cpu": {"bbox_tests": 0, "xy_tests": 5},
                "faults": {
                    "injected": 0, "retries": 0, "crash_recoveries": 0,
                    "checkpoints": 0, "fallbacks": 0,
                },
                "buffer": {"hits": 3, "misses": 1, "hit_rate": 0.75},
            },
        }

    def test_accepts_conforming_event(self):
        validate_chrome_trace([self._good_event()])

    def test_rejects_non_list(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace({"name": "x"})

    def test_rejects_extra_key(self):
        event = self._good_event()
        event["extra"] = 1
        with pytest.raises(TraceSchemaError, match="event\\[0\\]"):
            validate_chrome_trace([event])

    def test_rejects_bad_category(self):
        event = self._good_event()
        event["cat"] = "mystery"
        with pytest.raises(TraceSchemaError, match="cat"):
            validate_chrome_trace([event])

    def test_rejects_unknown_accounting_phase(self):
        event = self._good_event()
        event["args"]["io"]["warmup"] = event["args"]["io"].pop("match")
        with pytest.raises(TraceSchemaError, match="warmup"):
            validate_chrome_trace([event])

    def test_rejects_negative_io_count(self):
        event = self._good_event()
        event["args"]["io"]["match"]["random_reads"] = -1
        with pytest.raises(TraceSchemaError, match="counts"):
            validate_chrome_trace([event])

    def test_rejects_hit_rate_out_of_range(self):
        event = self._good_event()
        event["args"]["buffer"]["hit_rate"] = 1.5
        with pytest.raises(TraceSchemaError, match="hit_rate"):
            validate_chrome_trace([event])
