"""Tests for per-phase cost collection and summaries."""

import pytest

from repro.config import SystemConfig
from repro.metrics import CostSummary, MetricsCollector, Phase


class TestPhases:
    def test_default_phase_is_setup(self):
        m = MetricsCollector()
        assert m.current_phase is Phase.SETUP

    def test_phase_context_restores(self):
        m = MetricsCollector()
        with m.phase(Phase.CONSTRUCT):
            assert m.current_phase is Phase.CONSTRUCT
            with m.phase(Phase.MATCH):
                assert m.current_phase is Phase.MATCH
            assert m.current_phase is Phase.CONSTRUCT
        assert m.current_phase is Phase.SETUP

    def test_phase_restored_on_exception(self):
        m = MetricsCollector()
        with pytest.raises(ValueError):
            with m.phase(Phase.MATCH):
                raise ValueError("boom")
        assert m.current_phase is Phase.SETUP

    def test_records_go_to_current_phase(self):
        m = MetricsCollector()
        m.record_read()
        with m.phase(Phase.CONSTRUCT):
            m.record_write(sequential=True, count=3)
        assert m.io_for(Phase.SETUP).random_reads == 1
        assert m.io_for(Phase.CONSTRUCT).sequential_writes == 3
        assert m.io_for(Phase.MATCH).total_accesses == 0


class TestSummary:
    def test_setup_excluded(self):
        m = MetricsCollector()
        m.record_read(count=100)  # setup: must not appear
        with m.phase(Phase.MATCH):
            m.record_read(count=5)
        s = m.summary()
        assert s.match_read == 5
        assert s.total_io == 5

    def test_sequential_weighting(self):
        m = MetricsCollector(SystemConfig())
        with m.phase(Phase.CONSTRUCT):
            m.record_read(sequential=True, count=30)
            m.record_read(count=2)
        s = m.summary()
        assert s.construct_read == pytest.approx(3.0)

    def test_cpu_counters(self):
        m = MetricsCollector()
        m.count_bbox_tests(1500)
        m.count_xy_tests(2500)
        s = m.summary()
        assert s.bbox_tests == 1500
        assert s.xy_tests == 2500
        assert s.bbox_k == pytest.approx(1.5)
        assert s.xy_k == pytest.approx(2.5)

    def test_total_io_sums_all_columns(self):
        m = MetricsCollector()
        with m.phase(Phase.CONSTRUCT):
            m.record_read(count=1)
            m.record_write(count=2)
        with m.phase(Phase.MATCH):
            m.record_read(count=4)
            m.record_write(count=8)
        assert m.summary().total_io == 15

    def test_construct_io_charges_match_writes(self):
        """The paper attributes match-time write-backs to construction."""
        m = MetricsCollector()
        with m.phase(Phase.CONSTRUCT):
            m.record_read(count=10)
            m.record_write(count=20)
        with m.phase(Phase.MATCH):
            m.record_read(count=40)
            m.record_write(count=80)
        s = m.summary()
        assert s.construct_io == 10 + 20 + 80
        assert s.match_io == 40

    def test_summary_is_frozen_snapshot(self):
        m = MetricsCollector()
        with m.phase(Phase.MATCH):
            m.record_read()
        s1 = m.summary()
        with m.phase(Phase.MATCH):
            m.record_read()
        assert m.summary().match_read == 2
        assert s1.match_read == 1
        assert isinstance(s1, CostSummary)


class TestFaultRecording:
    def test_record_fault_goes_to_current_phase(self):
        m = MetricsCollector()
        m.record_fault("transient_read")
        with m.phase(Phase.CONSTRUCT):
            m.record_fault("crash")
            m.record_fault("torn_write")
            m.record_fault("bit_flip")
        assert m.faults_for(Phase.SETUP).transient_read_errors == 1
        construct = m.faults_for(Phase.CONSTRUCT)
        assert construct.crashes == 1
        assert construct.torn_writes == 1
        assert construct.bit_flips == 1
        assert m.faults_for(Phase.MATCH).is_zero

    def test_record_fault_rejects_unknown_kind(self):
        m = MetricsCollector()
        with pytest.raises(ValueError):
            m.record_fault("gamma_ray")

    def test_recovery_records(self):
        m = MetricsCollector()
        with m.phase(Phase.CONSTRUCT):
            m.record_retry(backoff=0.01)
            m.record_retry(backoff=0.02)
            m.record_page_recovered()
            m.record_checkpoint()
            m.record_crash_recovery()
            m.record_fallback()
        f = m.faults_for(Phase.CONSTRUCT)
        assert f.retries == 2
        assert f.backoff_seconds == pytest.approx(0.03)
        assert f.pages_recovered == 1
        assert f.checkpoints == 1
        assert f.crash_recoveries == 1
        assert f.fallbacks == 1

    def test_fault_totals_merge_phases(self):
        m = MetricsCollector()
        m.record_fault("crash")
        with m.phase(Phase.MATCH):
            m.record_fault("crash")
            m.record_retry()
        total = m.fault_totals()
        assert total.crashes == 2
        assert total.retries == 1
        # totals are a snapshot, not a live view
        m.record_fault("crash")
        assert total.crashes == 2

    def test_reset_clears_fault_counters(self):
        m = MetricsCollector()
        m.record_fault("bit_flip")
        m.record_checkpoint()
        m.reset()
        assert m.fault_totals().is_zero


class TestReset:
    def test_reset_zeroes_everything(self):
        m = MetricsCollector()
        with m.phase(Phase.MATCH):
            m.record_read(count=9)
        m.count_bbox_tests(5)
        m.reset()
        s = m.summary()
        assert s.total_io == 0
        assert s.bbox_tests == 0
        assert m.current_phase is Phase.SETUP
