"""Tests for the raw counter records."""

import pytest

from repro.metrics import CpuCounters, FaultCounters, IoCounters


class TestIoCounters:
    def test_defaults_zero(self):
        io = IoCounters()
        assert io.total_accesses == 0
        assert io.total_cost(1 / 30) == 0.0

    def test_read_cost_weighting(self):
        io = IoCounters(random_reads=3, sequential_reads=60)
        assert io.read_cost(1 / 30) == pytest.approx(5.0)

    def test_write_cost_weighting(self):
        io = IoCounters(random_writes=1, sequential_writes=30)
        assert io.write_cost(1 / 30) == pytest.approx(2.0)

    def test_total_cost(self):
        io = IoCounters(2, 30, 3, 60)
        assert io.total_cost(1 / 30) == pytest.approx(2 + 1 + 3 + 2)

    def test_total_accesses_raw(self):
        io = IoCounters(1, 2, 3, 4)
        assert io.total_accesses == 10

    def test_merged_with(self):
        a = IoCounters(1, 2, 3, 4)
        b = IoCounters(10, 20, 30, 40)
        m = a.merged_with(b)
        assert (m.random_reads, m.sequential_reads) == (11, 22)
        assert (m.random_writes, m.sequential_writes) == (33, 44)
        # originals untouched
        assert a.random_reads == 1


class TestFaultCounters:
    def test_defaults_are_zero(self):
        f = FaultCounters()
        assert f.faults_injected == 0
        assert f.is_zero

    def test_faults_injected_sums_fault_kinds_only(self):
        f = FaultCounters(
            transient_read_errors=1, torn_writes=2, bit_flips=3, crashes=4,
            retries=99, checkpoints=5, pages_recovered=7,
        )
        assert f.faults_injected == 10

    def test_is_zero_sensitive_to_recovery_activity(self):
        # A fault-free run that still checkpointed is not "zero": the
        # counters double as a cost-transparency check and checkpoints
        # cost I/O.
        assert not FaultCounters(retries=1).is_zero
        assert not FaultCounters(checkpoints=1).is_zero
        assert not FaultCounters(crash_recoveries=1).is_zero
        assert not FaultCounters(fallbacks=1).is_zero
        # backoff_seconds alone never occurs without a retry; recovered
        # pages never without a retry either, so is_zero ignores them.
        assert FaultCounters(backoff_seconds=0.5, pages_recovered=1).is_zero

    def test_merged_with(self):
        a = FaultCounters(transient_read_errors=1, retries=2,
                          backoff_seconds=0.25, checkpoints=1)
        b = FaultCounters(transient_read_errors=10, torn_writes=3,
                          backoff_seconds=0.5, fallbacks=1)
        m = a.merged_with(b)
        assert m.transient_read_errors == 11
        assert m.torn_writes == 3
        assert m.retries == 2
        assert m.backoff_seconds == pytest.approx(0.75)
        assert m.checkpoints == 1
        assert m.fallbacks == 1
        # originals untouched
        assert a.transient_read_errors == 1
        assert b.retries == 0


class TestCpuCounters:
    def test_thousands_properties(self):
        cpu = CpuCounters(bbox_tests=2500, xy_tests=500)
        assert cpu.bbox_k == pytest.approx(2.5)
        assert cpu.xy_k == pytest.approx(0.5)

    def test_direct_mutation(self):
        cpu = CpuCounters()
        cpu.xy_tests += 7
        assert cpu.xy_tests == 7
