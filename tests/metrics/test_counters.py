"""Tests for the raw counter records."""

import pytest

from repro.metrics import CpuCounters, IoCounters


class TestIoCounters:
    def test_defaults_zero(self):
        io = IoCounters()
        assert io.total_accesses == 0
        assert io.total_cost(1 / 30) == 0.0

    def test_read_cost_weighting(self):
        io = IoCounters(random_reads=3, sequential_reads=60)
        assert io.read_cost(1 / 30) == pytest.approx(5.0)

    def test_write_cost_weighting(self):
        io = IoCounters(random_writes=1, sequential_writes=30)
        assert io.write_cost(1 / 30) == pytest.approx(2.0)

    def test_total_cost(self):
        io = IoCounters(2, 30, 3, 60)
        assert io.total_cost(1 / 30) == pytest.approx(2 + 1 + 3 + 2)

    def test_total_accesses_raw(self):
        io = IoCounters(1, 2, 3, 4)
        assert io.total_accesses == 10

    def test_merged_with(self):
        a = IoCounters(1, 2, 3, 4)
        b = IoCounters(10, 20, 30, 40)
        m = a.merged_with(b)
        assert (m.random_reads, m.sequential_reads) == (11, 22)
        assert (m.random_writes, m.sequential_writes) == (33, 44)
        # originals untouched
        assert a.random_reads == 1


class TestCpuCounters:
    def test_thousands_properties(self):
        cpu = CpuCounters(bbox_tests=2500, xy_tests=500)
        assert cpu.bbox_k == pytest.approx(2.5)
        assert cpu.xy_k == pytest.approx(0.5)

    def test_direct_mutation(self):
        cpu = CpuCounters()
        cpu.xy_tests += 7
        assert cpu.xy_tests == 7
