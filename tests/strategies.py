"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.geometry import Rect

#: Coordinates drawn from a bounded grid so unions/intersections stay
#: exactly representable and comparisons are never poisoned by float
#: noise. The grid is fine enough (1/1024 steps) to exercise geometry.
coordinate = st.integers(min_value=0, max_value=1024).map(lambda v: v / 1024.0)


@st.composite
def rects(draw) -> Rect:
    """An arbitrary well-formed rectangle in the unit square."""
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    return Rect(x1, y1, x2, y2)


@st.composite
def small_rects(draw, max_side: float = 0.125) -> Rect:
    """A rectangle with bounded extent (realistic data objects)."""
    cx, cy = draw(coordinate), draw(coordinate)
    w = draw(st.integers(min_value=0, max_value=128)) / 1024.0
    h = draw(st.integers(min_value=0, max_value=128)) / 1024.0
    w, h = min(w, max_side), min(h, max_side)
    xlo, ylo = max(0.0, cx - w / 2), max(0.0, cy - h / 2)
    xhi, yhi = min(1.0, cx + w / 2), min(1.0, cy + h / 2)
    return Rect(xlo, ylo, xhi, yhi)


def rect_lists(min_size: int = 0, max_size: int = 40):
    return st.lists(rects(), min_size=min_size, max_size=max_size)


def entry_lists(min_size: int = 1, max_size: int = 60):
    """(rect, oid) pairs with distinct oids."""
    return st.lists(small_rects(), min_size=min_size, max_size=max_size).map(
        lambda rs: [(r, i) for i, r in enumerate(rs)]
    )
