"""Tests for z-files and the z-order merge join."""

import pytest
from hypothesis import given, settings

from repro.config import SystemConfig
from repro.join import naive_join
from repro.join.zjoin import z_order_join
from repro.metrics import MetricsCollector, Phase
from repro.storage import DataFile, DiskSimulator
from repro.zorder import ZFile

from ..conftest import random_entries
from ..strategies import entry_lists

CFG = SystemConfig(page_size=512, buffer_pages=128)


def make_disk():
    metrics = MetricsCollector(CFG)
    return DiskSimulator(metrics), metrics


class TestZFileBuild:
    def test_entries_sorted(self):
        disk, _ = make_disk()
        zf = ZFile.build(disk, CFG, random_entries(100, seed=1))
        keys = [(e.element.zlo, -e.element.zhi) for e in zf.scan()]
        assert keys == sorted(keys)

    def test_redundancy_grows_with_budget(self):
        entries = random_entries(100, seed=2, side=0.1)
        disk, _ = make_disk()
        low = ZFile.build(disk, CFG, entries, max_elements=1)
        high = ZFile.build(disk, CFG, entries, max_elements=16)
        assert low.redundancy == 1.0
        assert high.redundancy > low.redundancy
        assert high.num_pages >= low.num_pages

    def test_empty(self):
        disk, _ = make_disk()
        zf = ZFile.build(disk, CFG, [])
        assert zf.num_entries == 0
        assert list(zf.scan()) == []

    def test_write_is_sequential(self):
        disk, metrics = make_disk()
        with metrics.phase(Phase.CONSTRUCT):
            zf = ZFile.build(disk, CFG, random_entries(200, seed=3))
        io = metrics.io_for(Phase.CONSTRUCT)
        assert io.random_writes == 1
        assert io.sequential_writes == zf.num_pages - 1

    def test_scan_is_sequential(self):
        disk, metrics = make_disk()
        zf = ZFile.build(disk, CFG, random_entries(200, seed=4))
        disk.reset_arm()
        with metrics.phase(Phase.MATCH):
            list(zf.scan())
        io = metrics.io_for(Phase.MATCH)
        assert io.random_reads == 1
        assert io.sequential_reads == zf.num_pages - 1

    def test_page_capacity(self):
        assert ZFile.page_capacity(CFG) == (512 - 24) // 28

    def test_repr(self):
        disk, _ = make_disk()
        zf = ZFile.build(disk, CFG, random_entries(5, seed=5), name="Z")
        assert "Z" in repr(zf)


def run_zjoin(s_entries, r_entries, max_elements=4):
    disk, metrics = make_disk()
    with metrics.phase(Phase.SETUP):
        zfile_r = ZFile.build(disk, CFG, r_entries, name="Z_R",
                              max_elements=max_elements)
        file_s = DataFile.create(disk, CFG, s_entries, name="D_S")
    disk.reset_arm()
    result = z_order_join(file_s, zfile_r, CFG, metrics,
                          max_elements=max_elements)
    return result, metrics


class TestZOrderJoin:
    def test_matches_naive(self):
        s = random_entries(150, seed=6)
        r = random_entries(200, seed=7, oid_start=10_000)
        result, _ = run_zjoin(s, r)
        assert result.pair_set() == naive_join(s, r).pair_set()

    def test_orientation(self):
        from repro.geometry import Rect
        s = [(Rect(0.1, 0.1, 0.2, 0.2), 7)]
        r = [(Rect(0.15, 0.15, 0.3, 0.3), 9)]
        result, _ = run_zjoin(s, r)
        assert result.pairs == [(7, 9)]

    def test_empty_sides(self):
        r = random_entries(30, seed=8)
        result, _ = run_zjoin([], r)
        assert result.pairs == []
        result, _ = run_zjoin(r, [])
        assert result.pairs == []

    @pytest.mark.parametrize("budget", [1, 4, 16])
    def test_correct_at_any_redundancy(self, budget):
        s = random_entries(120, seed=9, side=0.08)
        r = random_entries(120, seed=10, side=0.08, oid_start=10_000)
        result, _ = run_zjoin(s, r, max_elements=budget)
        assert result.pair_set() == naive_join(s, r).pair_set()

    def test_costs_charged_per_phase(self):
        s = random_entries(200, seed=11)
        r = random_entries(300, seed=12, oid_start=10_000)
        result, metrics = run_zjoin(s, r)
        summary = metrics.summary()
        assert summary.construct_read > 0   # D_S scan
        assert summary.construct_write > 0  # Z_S write
        assert summary.match_read > 0       # two merge sweeps
        assert summary.bbox_tests > 0       # exact tests
        # The merge is purely sequential: no random reads beyond the
        # first page of each of the three sweeps involved.
        match_io = metrics.io_for(Phase.MATCH)
        assert match_io.random_reads <= 2

    def test_duplicate_pairs_deduplicated(self):
        from repro.geometry import Rect
        # Large overlapping rects decomposed into many elements meet
        # through many element pairs but must be reported once.
        s = [(Rect(0.1, 0.1, 0.9, 0.9), 1)]
        r = [(Rect(0.2, 0.2, 0.8, 0.8), 2)]
        result, _ = run_zjoin(s, r, max_elements=16)
        assert result.pairs == [(1, 2)]


@settings(max_examples=20, deadline=None)
@given(entry_lists(min_size=1, max_size=25),
       entry_lists(min_size=1, max_size=25))
def test_zjoin_equals_naive(s_entries, r_entries):
    r_entries = [(rect, oid + 10_000) for rect, oid in r_entries]
    result, _ = run_zjoin(s_entries, r_entries)
    assert result.pair_set() == naive_join(s_entries, r_entries).pair_set()
