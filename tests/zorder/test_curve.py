"""Tests for the Z curve and quadtree decomposition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Rect
from repro.zorder.curve import (
    MAP,
    RESOLUTION,
    ZElement,
    _Cell,
    decompose,
    interleave,
    z_point,
)


class TestInterleave:
    def test_origin(self):
        assert interleave(0, 0) == 0

    def test_unit_steps(self):
        assert interleave(1, 0) == 0b01
        assert interleave(0, 1) == 0b10
        assert interleave(1, 1) == 0b11

    def test_bit_interleaving(self):
        # x = 0b10, y = 0b11 -> z = y1 x1 y0 x0 = 1 1 1 0
        assert interleave(0b10, 0b11) == 0b1110

    def test_max_coordinate(self):
        top = (1 << RESOLUTION) - 1
        assert interleave(top, top) == (1 << (2 * RESOLUTION)) - 1

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1),
           st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_injective(self, x1, y1, x2, y2):
        if (x1, y1) != (x2, y2):
            assert interleave(x1, y1) != interleave(x2, y2)


class TestZPoint:
    def test_corners(self):
        assert z_point(0.0, 0.0) == 0
        assert z_point(1.0, 1.0) == (1 << (2 * RESOLUTION)) - 1

    def test_clamps_outside_map(self):
        assert z_point(-5.0, -5.0) == 0
        assert z_point(5.0, 5.0) == (1 << (2 * RESOLUTION)) - 1

    def test_quadrant_ordering(self):
        # Z order visits quadrants SW, SE, NW, NE.
        sw = z_point(0.1, 0.1)
        se = z_point(0.9, 0.1)
        nw = z_point(0.1, 0.9)
        ne = z_point(0.9, 0.9)
        assert sw < se < nw < ne

    def test_degenerate_map_rejected(self):
        with pytest.raises(GeometryError):
            z_point(0.5, 0.5, map_area=Rect(0, 0, 0, 1))


class TestZElement:
    def test_root_cell(self):
        root = _Cell(0, 0, 0).element()
        assert root == ZElement(0, (1 << (2 * RESOLUTION)) - 1)
        assert root.depth == 0

    def test_child_nesting(self):
        root = _Cell(0, 0, 0)
        for child in root.children():
            assert root.element().contains(child.element())
            assert child.element().depth == 1

    def test_sibling_intervals_disjoint_and_ordered(self):
        intervals = [c.element() for c in _Cell(0, 0, 0).children()]
        for a, b in zip(intervals, intervals[1:]):
            assert a.zhi + 1 == b.zlo

    def test_overlap_is_containment(self):
        root = _Cell(0, 0, 0).element()
        child = next(_Cell(0, 0, 0).children()).element()
        assert root.overlaps(child)
        assert child.overlaps(root)
        other = ZElement(child.zhi + 1, child.zhi + 4)
        assert not child.overlaps(other)


class TestDecompose:
    def test_whole_map_is_one_element(self):
        [element] = decompose(MAP, max_elements=8)
        assert element.depth == 0

    def test_budget_respected(self):
        rect = Rect(0.13, 0.27, 0.56, 0.61)
        for budget in (1, 4, 16, 64):
            elements = decompose(rect, max_elements=budget)
            assert 1 <= len(elements) <= budget

    def test_elements_sorted(self):
        elements = decompose(Rect(0.1, 0.1, 0.8, 0.3), max_elements=32)
        assert elements == sorted(elements)

    def test_elements_pairwise_disjoint(self):
        elements = decompose(Rect(0.2, 0.2, 0.7, 0.7), max_elements=32)
        for a, b in zip(elements, elements[1:]):
            assert a.zhi < b.zlo

    def test_outside_map_is_empty(self):
        assert decompose(Rect(5, 5, 6, 6)) == []

    def test_more_budget_means_tighter_cover(self):
        rect = Rect(0.1, 0.1, 0.35, 0.15)

        def cover_span(elements):
            return sum(e.zhi - e.zlo + 1 for e in elements)

        loose = cover_span(decompose(rect, max_elements=1))
        tight = cover_span(decompose(rect, max_elements=32))
        assert tight < loose

    def test_point_rect(self):
        elements = decompose(Rect.point(0.5, 0.5), max_elements=8)
        assert elements  # a point still gets a (dilated) cover

    def test_bad_budget_rejected(self):
        with pytest.raises(GeometryError):
            decompose(Rect(0, 0, 1, 1), max_elements=0)


def coord():
    return st.integers(0, 256).map(lambda v: v / 256.0)


@given(coord(), coord(), coord(), coord(), st.integers(1, 16))
def test_decomposition_covers_rect(x1, y1, x2, y2, budget):
    """Every grid point of the rectangle lies in some element."""
    xlo, xhi = sorted((x1, x2))
    ylo, yhi = sorted((y1, y2))
    rect = Rect(xlo, ylo, xhi, yhi)
    elements = decompose(rect, max_elements=budget)
    assert elements
    # Probe the corners and center: their z-values must be covered.
    for px, py in [(xlo, ylo), (xhi, yhi), (xlo, yhi), (xhi, ylo),
                   ((xlo + xhi) / 2, (ylo + yhi) / 2)]:
        z = z_point(px, py)
        assert any(e.zlo <= z <= e.zhi for e in elements)


@given(coord(), coord(), coord(), coord())
def test_touching_rects_share_an_element_overlap(x, y, w, h):
    """Two rectangles sharing only an edge still produce overlapping
    element covers (the dilation guarantee)."""
    cut = min(max(x, 1 / 128), 127 / 128)
    left = Rect(0.0, 0.0, cut, 1.0)
    right = Rect(cut, 0.0, 1.0, 1.0)
    a = decompose(left, max_elements=16)
    b = decompose(right, max_elements=16)
    assert any(ea.overlaps(eb) for ea in a for eb in b)
