"""Tests for the physical-design configuration."""

import pytest

from repro.config import SEQUENTIAL_COST_FRACTION, SystemConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        """The default config is the paper's setup exactly."""
        cfg = SystemConfig()
        assert cfg.page_size == 1024
        assert cfg.buffer_pages == 512
        assert cfg.bbox_bytes == 16
        assert cfg.oid_bytes == 4
        assert cfg.sequential_cost == pytest.approx(1 / 30)

    def test_default_fanout_is_fifty(self):
        """1 KiB pages with 20-byte entries give the paper's fan-out 50."""
        assert SystemConfig().node_capacity == 50

    def test_data_page_capacity_matches_node(self):
        cfg = SystemConfig()
        assert cfg.data_page_capacity == cfg.node_capacity

    def test_min_fill_is_forty_percent(self):
        assert SystemConfig().node_min_fill == 20


class TestDerived:
    def test_entry_sizes(self):
        cfg = SystemConfig()
        assert cfg.nonleaf_entry_bytes == 20
        assert cfg.leaf_entry_bytes == 20

    def test_small_page_capacity(self):
        cfg = SystemConfig(page_size=104)
        assert cfg.node_capacity == 4
        assert cfg.node_min_fill == 1

    def test_data_pages_for(self):
        cfg = SystemConfig()  # capacity 50
        assert cfg.data_pages_for(0) == 0
        assert cfg.data_pages_for(1) == 1
        assert cfg.data_pages_for(50) == 1
        assert cfg.data_pages_for(51) == 2
        assert cfg.data_pages_for(40_000) == 800

    def test_estimated_tree_pages_grows_with_objects(self):
        cfg = SystemConfig()
        small = cfg.estimated_tree_pages(1_000)
        large = cfg.estimated_tree_pages(40_000)
        assert 0 < small < large

    def test_estimated_tree_pages_includes_upper_levels(self):
        cfg = SystemConfig()
        # 40K objects at 70% fill: ~1143 leaves plus parents and a root.
        est = cfg.estimated_tree_pages(40_000)
        assert est > 40_000 // 35
        assert est < 40_000 // 35 + 100

    def test_estimated_tree_pages_empty(self):
        assert SystemConfig().estimated_tree_pages(0) == 0


class TestCostModel:
    def test_io_cost_weights_sequential(self):
        cfg = SystemConfig()
        assert cfg.io_cost(10, 0) == 10
        assert cfg.io_cost(0, 30) == pytest.approx(1.0)
        assert cfg.io_cost(5, 60) == pytest.approx(7.0)

    def test_sequential_fraction_constant(self):
        assert SEQUENTIAL_COST_FRACTION == pytest.approx(1 / 30)


class TestValidation:
    def test_rejects_tiny_page(self):
        with pytest.raises(ConfigError):
            SystemConfig(page_size=24)

    def test_rejects_page_below_two_entries(self):
        with pytest.raises(ConfigError):
            SystemConfig(page_size=48)

    def test_rejects_zero_buffer(self):
        with pytest.raises(ConfigError):
            SystemConfig(buffer_pages=0)

    def test_rejects_bad_sequential_cost(self):
        with pytest.raises(ConfigError):
            SystemConfig(sequential_cost=0.0)
        with pytest.raises(ConfigError):
            SystemConfig(sequential_cost=1.5)

    def test_rejects_bad_min_fill(self):
        with pytest.raises(ConfigError):
            SystemConfig(min_fill_fraction=0.6)
        with pytest.raises(ConfigError):
            SystemConfig(min_fill_fraction=0.0)

    def test_rejects_zero_entry_fields(self):
        with pytest.raises(ConfigError):
            SystemConfig(bbox_bytes=0)

    def test_rejects_zero_flush_threshold(self):
        with pytest.raises(ConfigError):
            SystemConfig(list_flush_threshold=0)


class TestScaled:
    def test_scaled_overrides(self):
        cfg = SystemConfig().scaled(buffer_pages=64)
        assert cfg.buffer_pages == 64
        assert cfg.page_size == 1024

    def test_scaled_validates(self):
        with pytest.raises(ConfigError):
            SystemConfig().scaled(buffer_pages=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            SystemConfig().page_size = 2048  # type: ignore[misc]
