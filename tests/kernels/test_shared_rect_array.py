"""Lifecycle tests for the shared-memory rectangle and int columns.

The ownership contract under test (see ``repro.kernels.rect_array``):
the creating process owns a segment and alone may unlink it; attachers
map read-only views and only ever close. The scenarios here are the
ones that leak in practice — a child that exits normally, a child that
is SIGKILLed mid-attachment, and an owner interrupted by
``KeyboardInterrupt`` — each asserting that no ``/dev/shm`` segment
survives the owner. A Hypothesis sweep pins value parity between the
shared view and the plain in-process :class:`RectArray` on both
backends.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError, ParallelError
from repro.geometry import Rect
from repro.kernels.backend import np
from repro.kernels.rect_array import (
    LocalRectBuffer,
    RectArray,
    SharedRectArray,
    SharedRectBuffer,
    _attach_untracked,
)
from repro.parallel.shm import SharedInts, SharedIntsDescriptor

BACKENDS = ("python",) + (("numpy",) if np is not None else ())


def _segment_exists(name: str) -> bool:
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def _rects(n: int, base: float = 0.0) -> list[Rect]:
    return [
        Rect(base + i, base + 2 * i, base + i + 1.5, base + 2 * i + 0.5)
        for i in range(n)
    ]


def _entries(n: int) -> list[tuple[Rect, int]]:
    return [(r, 100 + i) for i, r in enumerate(_rects(n))]


def _columns_equal(a: RectArray, b: RectArray) -> bool:
    return len(a) == len(b) and all(
        a.rect_at(i) == b.rect_at(i) for i in range(len(a))
    )


# --------------------------------------------------------------------- #
# In-process lifecycle
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
def test_create_attach_roundtrip(backend):
    entries = _entries(17)
    shared = SharedRectArray.create(entries, backend=backend)
    try:
        local = RectArray.from_rects([r for r, _ in entries], backend=backend)
        assert _columns_equal(shared, local)
        attached = SharedRectArray.attach(shared.descriptor, backend=backend)
        try:
            assert _columns_equal(attached, local)
            assert not attached.buffer.owner
        finally:
            attached.close()
    finally:
        shared.unlink()
    assert shared.descriptor.name is None or not _segment_exists(
        shared.descriptor.name
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_attached_columns_are_read_only(backend):
    shared = SharedRectArray.create(_entries(8), backend=backend)
    try:
        attached = SharedRectArray.attach(shared.descriptor, backend=backend)
        try:
            with pytest.raises((ValueError, TypeError)):
                attached.xlo[0] = 99.0
        finally:
            attached.close()
    finally:
        shared.unlink()


def test_empty_array_allocates_no_segment():
    shared = SharedRectArray.create([])
    assert shared.descriptor.name is None
    attached = SharedRectArray.attach(shared.descriptor)
    assert len(attached) == 0
    attached.close()
    shared.unlink()  # no-op, must not raise


def test_only_owner_may_unlink():
    shared = SharedRectArray.create(_entries(4))
    try:
        attached = SharedRectArray.attach(shared.descriptor)
        with pytest.raises(GeometryError):
            attached.unlink()
        attached.close()
    finally:
        shared.unlink()


def test_close_is_idempotent_and_unlink_twice_safe():
    shared = SharedRectArray.create(_entries(4))
    name = shared.descriptor.name
    shared.close()
    shared.close()
    shared.unlink()
    shared.unlink()
    assert not _segment_exists(name)


def test_context_manager_unlinks_on_keyboard_interrupt():
    name = None
    with pytest.raises(KeyboardInterrupt):
        with SharedRectArray.create(_entries(6)) as shared:
            name = shared.descriptor.name
            assert _segment_exists(name)
            raise KeyboardInterrupt
    assert not _segment_exists(name)


def test_local_buffer_lifecycle_is_noop():
    buf = LocalRectBuffer([0.0], [0.0], [1.0], [1.0], is_numpy=False)
    assert buf.columns() == ([0.0], [0.0], [1.0], [1.0])
    buf.close()
    buf.unlink()


def test_finalizer_unlinks_abandoned_owner():
    buffer = SharedRectBuffer.create([0.0, 1.0], [0.0, 1.0],
                                     [2.0, 3.0], [2.0, 3.0])
    name = buffer.name
    assert _segment_exists(name)
    del buffer
    import gc

    gc.collect()
    assert not _segment_exists(name)


# --------------------------------------------------------------------- #
# Cross-process lifecycle
# --------------------------------------------------------------------- #

_FORK = "fork" in multiprocessing.get_all_start_methods()


def _child_attach_and_check(descriptor, expected_n, ok):
    attached = SharedRectArray.attach(descriptor)
    try:
        ok.value = 1 if len(attached) == expected_n else 0
    finally:
        attached.close()


def _child_attach_and_hang(descriptor, attached_event):
    attached = SharedRectArray.attach(descriptor)
    attached_event.set()
    import time

    while True:  # killed by the parent
        time.sleep(0.05)
        assert len(attached) > 0


@pytest.mark.skipif(not _FORK, reason="needs the fork start method")
def test_child_normal_exit_leaves_owner_segment_intact():
    ctx = multiprocessing.get_context("fork")
    shared = SharedRectArray.create(_entries(12))
    try:
        ok = ctx.Value("i", -1)
        child = ctx.Process(
            target=_child_attach_and_check,
            args=(shared.descriptor, 12, ok),
        )
        child.start()
        child.join(timeout=30)
        assert child.exitcode == 0
        assert ok.value == 1
        # The attacher's exit must not have destroyed the segment.
        assert _segment_exists(shared.descriptor.name)
    finally:
        name = shared.descriptor.name
        shared.unlink()
    assert not _segment_exists(name)


@pytest.mark.skipif(not _FORK, reason="needs the fork start method")
def test_sigkilled_attacher_does_not_destroy_segment():
    ctx = multiprocessing.get_context("fork")
    shared = SharedRectArray.create(_entries(9))
    try:
        attached_event = ctx.Event()
        child = ctx.Process(
            target=_child_attach_and_hang,
            args=(shared.descriptor, attached_event),
        )
        child.start()
        assert attached_event.wait(timeout=30)
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL
        assert _segment_exists(shared.descriptor.name)
        # The owner still reads its own data after the crash...
        assert shared.rect_at(0) == Rect(0.0, 0.0, 1.5, 0.5)
    finally:
        name = shared.descriptor.name
        shared.unlink()
    # ...and still tears the segment down cleanly.
    assert not _segment_exists(name)


def test_interrupted_owner_process_leaks_nothing():
    """An owner interpreter dying to KeyboardInterrupt (no context
    manager, no explicit unlink) must still leave no segment behind —
    the ``weakref.finalize`` backstop runs at interpreter shutdown."""
    script = textwrap.dedent("""
        from repro.geometry import Rect
        from repro.kernels.rect_array import SharedRectArray

        shared = SharedRectArray.create([(Rect(0, 0, 1, 1), 1)] * 5)
        print(shared.descriptor.name, flush=True)
        raise KeyboardInterrupt
    """)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, timeout=60,
    )
    name = proc.stdout.strip()
    assert name.startswith("psm_") or name, proc.stderr
    assert proc.returncode != 0  # the interrupt did terminate it
    assert not _segment_exists(name)


# --------------------------------------------------------------------- #
# SharedInts
# --------------------------------------------------------------------- #


def test_shared_ints_roundtrip():
    values = [0, -1, 2**40, -(2**40), 7]
    shared = SharedInts.create(values)
    try:
        assert [int(v) for v in shared.values] == values
        attached = SharedInts.attach(shared.descriptor)
        try:
            assert [int(v) for v in attached.values] == values
        finally:
            attached.close()
    finally:
        name = shared.name
        shared.unlink()
    assert name is None or not _segment_exists(name)


def test_shared_ints_empty():
    shared = SharedInts.create([])
    assert shared.descriptor == SharedIntsDescriptor(name=None, n=0)
    assert len(list(shared.values)) == 0
    shared.unlink()


def test_shared_ints_overflow_rejected_without_leak():
    before = None
    if os.path.isdir("/dev/shm"):
        before = set(os.listdir("/dev/shm"))
    with pytest.raises(ParallelError):
        SharedInts.create([1, 2, 2**63])
    if before is not None:
        assert set(os.listdir("/dev/shm")) <= before


def test_shared_ints_only_owner_unlinks():
    shared = SharedInts.create([1, 2, 3])
    try:
        attached = SharedInts.attach(shared.descriptor)
        with pytest.raises(ParallelError):
            attached.unlink()
        attached.close()
    finally:
        shared.unlink()


# --------------------------------------------------------------------- #
# Hypothesis parity: shared view vs in-process RectArray
# --------------------------------------------------------------------- #

_coord = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-1e12, max_value=1e12,
)


@st.composite
def _rect_lists(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    rects = []
    for _ in range(n):
        x1, x2 = sorted((draw(_coord), draw(_coord)))
        y1, y2 = sorted((draw(_coord), draw(_coord)))
        rects.append(Rect(x1, y1, x2, y2))
    return rects


@settings(max_examples=25, deadline=None)
@given(rects=_rect_lists(), backend=st.sampled_from(BACKENDS))
def test_shared_array_bit_identical_to_local(rects, backend):
    local = RectArray.from_rects(rects, backend=backend)
    shared = SharedRectArray.share(local)
    try:
        assert _columns_equal(shared, local)
        attached = SharedRectArray.attach(shared.descriptor, backend=backend)
        try:
            assert _columnwise_bits_equal(attached, local)
        finally:
            attached.close()
    finally:
        shared.unlink()


def _columnwise_bits_equal(a: RectArray, b: RectArray) -> bool:
    """Exact IEEE-754 equality, column by column (no tolerance)."""
    import struct

    if len(a) != len(b):
        return False
    for col in ("xlo", "ylo", "xhi", "yhi"):
        for va, vb in zip(getattr(a, col), getattr(b, col)):
            if struct.pack("<d", float(va)) != struct.pack("<d", float(vb)):
                return False
    return True
