"""Column coherence under churn: the cached columnar snapshot must
always mirror the live tree.

:func:`repro.join.batch.column_tree_of` caches one
:class:`~repro.kernels.node_store.ColumnTree` per tree, keyed on the
``(mutations, root_id)`` version stamp. The hazard is a mutating lane
that forgets to bump ``mutations``: the stale snapshot would silently
keep answering batch traversals against vanished geometry. This
machine extends the PR 8 dynamic-join machine — random insert /
delete / move / join / re-seed schedules over both trees — with an
invariant that, after every step, rebuilds the snapshot from scratch
through the same unaccounted peek path and demands the cached one be
column-for-column identical, on both trees, plus a stability check
that a cache hit returns the same object (no rebuild churn while the
stamp stands still).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis.stateful import invariant

from repro.join.batch import batch_traversal_available, column_tree_of
from repro.kernels.node_store import ColumnTree

from ..dynamic.test_stateful_dynamic import DynamicJoinMachine

if not batch_traversal_available():  # pragma: no cover
    pytest.skip("batch traversal needs the numpy backend",
                allow_module_level=True)

#: Every column of a ColumnTree, in layout order.
COLUMNS = (
    "page", "level", "is_leaf", "nent", "eoff",
    "exlo", "eylo", "exhi", "eyhi", "eref", "echild",
    "nxlo", "nylo", "nxhi", "nyhi",
)


def _fresh_snapshot(tree) -> ColumnTree:
    """Rebuild the snapshot from the live nodes, bypassing the cache."""
    records = []
    for node in tree.iter_nodes():
        entries = node.entries
        records.append((
            node.page_id,
            node.level,
            [e.ref for e in entries],
            [e.mbr.xlo for e in entries],
            [e.mbr.ylo for e in entries],
            [e.mbr.xhi for e in entries],
            [e.mbr.yhi for e in entries],
        ))
    return ColumnTree.build(records, tree.root_id)


def assert_columns_mirror_tree(tree) -> None:
    cached = column_tree_of(tree)
    assert column_tree_of(tree) is cached, (
        "unchanged stamp must be a cache hit, not a rebuild"
    )
    assert cached.stamp == (tree.mutations, tree.root_id)
    fresh = _fresh_snapshot(tree)
    assert cached.n_nodes == fresh.n_nodes
    assert cached.n_entries == fresh.n_entries
    for name in COLUMNS:
        assert np.array_equal(getattr(cached, name), getattr(fresh, name)), (
            f"stale column {name!r}: cached snapshot disagrees with a "
            f"from-scratch rebuild of the live tree"
        )
    # The structural digest is page-layout independent, so it must agree
    # even if this tree were rebuilt elsewhere on different pages.
    assert cached.digest() == fresh.digest()


class ColumnCoherenceMachine(DynamicJoinMachine):
    """PR 8's dynamic machine plus the column-mirror invariant."""

    @invariant()
    def columns_mirror_live_trees(self):
        assert_columns_mirror_tree(self.manager.tree)
        assert_columns_mirror_tree(self.partner)


TestColumnCoherenceMachine = ColumnCoherenceMachine.TestCase
TestColumnCoherenceMachine.settings = settings(
    max_examples=8, stateful_step_count=20, deadline=None
)
