"""Node-level kernel caches: laziness, invalidation, sanitizer checks."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import InvariantViolation
from repro.analysis.sanitizer import Sanitizer
from repro.geometry import Rect
from repro.kernels import RectArray
from repro.rtree.node import Entry, Node, node_mbr


def make_node(n=4, level=0, shadows=False):
    entries = [
        Entry(
            Rect(i, 0.0, i + 1.0, 1.0), i,
            shadow=Rect(i, 0.0, i + 1.0, 1.0) if shadows else None,
        )
        for i in range(n)
    ]
    return Node(level, entries, page_id=7)


class TestRectCache:
    def test_lazy_build_and_reuse(self):
        node = make_node()
        arr = node.rect_array()
        assert isinstance(arr, RectArray) and arr.n == 4
        assert node.rect_array() is arr  # cached, not rebuilt

    def test_invalidate_drops_cache(self):
        node = make_node()
        arr = node.rect_array()
        node.entries.append(Entry(Rect(9, 9, 10, 10), 99))
        node.invalidate_caches()
        rebuilt = node.rect_array()
        assert rebuilt is not arr and rebuilt.n == 5

    def test_length_guard_rebuilds_without_invalidate(self):
        """Appending without invalidating still yields a full column set
        (the belt-and-suspenders guard in rect_array)."""
        node = make_node()
        node.rect_array()
        node.entries.append(Entry(Rect(9, 9, 10, 10), 99))
        assert node.rect_array().n == 5

    def test_warm_rect_array_gate(self):
        node = make_node()
        assert node.warm_rect_array() is None  # cold: never built
        arr = node.rect_array()
        assert node.warm_rect_array() is arr  # warm: reused
        node.invalidate_caches()
        assert node.warm_rect_array() is None  # invalidated: cold again


class TestMbrAndShadowCaches:
    def test_cached_mbr(self):
        node = make_node()
        assert node.cached_mbr() == node_mbr(node)
        node.entries.pop()
        node.invalidate_caches()
        assert node.cached_mbr() == node_mbr(node)

    def test_shadow_array_none_when_any_shadow_missing(self):
        node = make_node(shadows=False)
        assert node.shadow_array() is None
        # The miss itself is cached; still None on re-ask.
        assert node.shadow_array() is None

    def test_shadow_array_built_when_all_present(self):
        node = make_node(shadows=True)
        arr = node.shadow_array()
        assert isinstance(arr, RectArray) and arr.n == 4
        assert node.shadow_array() is arr

    def test_pickle_drops_caches(self):
        node = make_node(shadows=True)
        node.rect_array(), node.cached_mbr(), node.shadow_array()
        clone = pickle.loads(pickle.dumps(node))
        assert clone.page_id == node.page_id
        assert clone.level == node.level
        assert [e.ref for e in clone.entries] == [e.ref for e in node.entries]
        assert clone.warm_rect_array() is None
        assert clone._mbr_cache is None and clone._shadow_cache is None


class TestSanitizerCacheChecks:
    def check(self, node):
        Sanitizer._check_node_caches(node, node.page_id, where="test")

    def test_fresh_and_valid_caches_pass(self):
        node = make_node(shadows=True)
        self.check(node)  # all caches None
        node.rect_array(), node.cached_mbr(), node.shadow_array()
        self.check(node)  # all caches coherent

    def test_stale_rect_cache_detected(self):
        node = make_node()
        node.rect_array()
        node.entries[0].mbr = Rect(50, 50, 51, 51)  # in-place, no invalidate
        with pytest.raises(InvariantViolation, match="MBR column cache"):
            self.check(node)

    def test_stale_mbr_cache_detected(self):
        node = make_node()
        node.cached_mbr()
        node.entries[0].mbr = Rect(50, 50, 51, 51)
        with pytest.raises(InvariantViolation, match="node-MBR cache"):
            self.check(node)

    def test_stale_shadow_cache_detected(self):
        node = make_node(shadows=True)
        node.shadow_array()
        node.entries[1].shadow = Rect(50, 50, 51, 51)
        with pytest.raises(InvariantViolation, match="shadow column cache"):
            self.check(node)

    def test_shadow_cache_cleared_entry_detected(self):
        node = make_node(shadows=True)
        node.shadow_array()
        node.entries[2].shadow = None
        with pytest.raises(InvariantViolation, match="shadow column cache"):
            self.check(node)


class TestPatchEntryMbr:
    def test_patch_keeps_columns_coherent(self):
        """Row patching must leave caches the sanitizer accepts."""
        node = make_node(shadows=True)
        node.rect_array(), node.cached_mbr(), node.shadow_array()
        node.entries[2].mbr = Rect(50, 50, 51, 51)
        node.patch_entry_mbr(2)
        Sanitizer._check_node_caches(node, node.page_id, where="test")
        assert node.rect_array().rect_at(2) == Rect(50, 50, 51, 51)
        assert node.cached_mbr() == node_mbr(node)

    def test_patch_reuses_cache_object(self):
        node = make_node()
        arr = node.rect_array()
        node.entries[0].mbr = Rect(-1, -1, 0, 0)
        node.patch_entry_mbr(0)
        assert node.rect_array() is arr  # patched in place, not rebuilt

    def test_patch_with_stale_length_falls_back_to_rebuild(self):
        node = make_node()
        node.rect_array()
        node.entries.append(Entry(Rect(9, 9, 10, 10), 99))
        node.entries[0].mbr = Rect(-1, -1, 0, 0)
        node.patch_entry_mbr(0)
        assert node._rect_cache is None  # dropped, rebuilt on demand
        assert node.rect_array().n == 5

    def test_patch_settles_all_points_memo(self):
        from repro.kernels import all_points

        entries = [Entry(Rect(i, i, i, i), i) for i in range(4)]
        node = Node(1, entries, page_id=7)
        arr = node.rect_array()
        assert all_points(arr)
        node.entries[1].mbr = Rect(0, 0, 2, 2)
        node.patch_entry_mbr(1)
        assert all_points(node.rect_array()) is False
        node.entries[1].mbr = Rect(5, 5, 5, 5)  # back to a point
        node.patch_entry_mbr(1)
        assert all_points(node.rect_array()) is True  # memo recomputed
