"""Bit-parity of the batch kernels against the scalar reference paths.

Every kernel's contract is *exact* agreement with the scalar code it
replaces — same results, same emission order, same counter deltas — on
both backends. The strategies draw coordinates from the shared 1/1024
grid, which makes ties, duplicates, touching edges, and zero-area
rectangles common rather than rare, exactly the inputs where an
"analytically equivalent" rewrite goes wrong.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Rect, union_all
from repro.geometry.sweep import brute_force_pairs, sweep_pairs
from repro.kernels import (
    HAVE_NUMPY,
    NUMPY_MIN_N,
    RectArray,
    all_points,
    clipped_area_total,
    intersect_indices,
    least_enlargement_index,
    mbr_of,
    min_center_distance_index,
    quadratic_split_indices,
    sweep_pairs_batch,
)
from repro.kernels.backend import FORCED_BACKEND
from repro.metrics.counters import CpuCounters
from repro.rtree.node import Entry
from repro.rtree.split import check_split, quadratic_split

from ..strategies import rect_lists, rects

BACKENDS = ("numpy", "python") if HAVE_NUMPY else ("python",)

backend_param = pytest.mark.parametrize("backend", BACKENDS)


def arr_of(rs, backend):
    return RectArray.from_rects(rs, backend=backend)


# --------------------------------------------------------------------- #
# sweep_pairs_batch
# --------------------------------------------------------------------- #


class TestSweepBatch:
    @backend_param
    @settings(max_examples=200, deadline=None)
    @given(a=rect_lists(max_size=30), b=rect_lists(max_size=30))
    def test_matches_scalar_sweep_order_and_counters(self, a, b, backend):
        """Same pairs, same order, same xy_tests as the scalar sweep."""
        scalar_counters = CpuCounters()
        scalar = sweep_pairs(
            list(enumerate(a)), list(enumerate(b)),
            rect_of=lambda t: t[1], counters=scalar_counters,
        )
        scalar_idx = [(ia, ib) for (ia, _), (ib, _) in scalar]

        batch_counters = CpuCounters()
        batch = sweep_pairs_batch(
            arr_of(a, backend), arr_of(b, backend), counters=batch_counters
        )

        assert batch == scalar_idx
        assert batch_counters.xy_tests == scalar_counters.xy_tests

    @backend_param
    @settings(max_examples=200, deadline=None)
    @given(a=rect_lists(max_size=25), b=rect_lists(max_size=25))
    def test_matches_brute_force_pair_set(self, a, b, backend):
        batch = sweep_pairs_batch(arr_of(a, backend), arr_of(b, backend))
        brute = brute_force_pairs(
            list(enumerate(a)), list(enumerate(b)), rect_of=lambda t: t[1]
        )
        assert sorted(batch) == sorted(
            (ia, ib) for (ia, _), (ib, _) in brute
        )

    @backend_param
    def test_identical_rect_lists(self, backend):
        """Fully tied inputs: every anchor decision is a tie-break."""
        a = [Rect(0.0, 0.0, 1.0, 1.0)] * 7
        b = [Rect(0.0, 0.0, 1.0, 1.0)] * 5
        sc, bc = CpuCounters(), CpuCounters()
        scalar = sweep_pairs(
            list(enumerate(a)), list(enumerate(b)),
            rect_of=lambda t: t[1], counters=sc,
        )
        batch = sweep_pairs_batch(
            arr_of(a, backend), arr_of(b, backend), counters=bc
        )
        assert batch == [(ia, ib) for (ia, _), (ib, _) in scalar]
        assert bc.xy_tests == sc.xy_tests

    @backend_param
    def test_empty_inputs_touch_no_counters(self, backend):
        counters = CpuCounters()
        assert sweep_pairs_batch(
            arr_of([], backend), arr_of([Rect(0, 0, 1, 1)], backend),
            counters=counters,
        ) == []
        assert sweep_pairs_batch(
            arr_of([Rect(0, 0, 1, 1)], backend), arr_of([], backend),
            counters=counters,
        ) == []
        assert counters.xy_tests == 0

    @backend_param
    def test_emits_python_ints(self, backend):
        pairs = sweep_pairs_batch(
            arr_of([Rect(0, 0, 1, 1)], backend),
            arr_of([Rect(0, 0, 1, 1)], backend),
        )
        assert pairs == [(0, 0)]
        assert type(pairs[0][0]) is int and type(pairs[0][1]) is int

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both backends")
    @settings(max_examples=100, deadline=None)
    @given(a=rect_lists(max_size=20), b=rect_lists(max_size=20))
    def test_backends_agree(self, a, b):
        ca, cb = CpuCounters(), CpuCounters()
        out_np = sweep_pairs_batch(
            arr_of(a, "numpy"), arr_of(b, "numpy"), counters=ca
        )
        out_py = sweep_pairs_batch(
            arr_of(a, "python"), arr_of(b, "python"), counters=cb
        )
        assert out_np == out_py
        assert ca.xy_tests == cb.xy_tests


# --------------------------------------------------------------------- #
# Scan kernels
# --------------------------------------------------------------------- #


class TestScanKernels:
    @backend_param
    @settings(max_examples=150, deadline=None)
    @given(rs=rect_lists(max_size=40), probe=rects())
    def test_intersect_indices(self, rs, probe, backend):
        got = list(intersect_indices(arr_of(rs, backend), probe))
        want = [i for i, r in enumerate(rs) if r.intersects(probe)]
        assert got == want

    @backend_param
    @settings(max_examples=150, deadline=None)
    @given(rs=rect_lists(min_size=1, max_size=40))
    def test_mbr_of(self, rs, backend):
        assert mbr_of(arr_of(rs, backend)) == union_all(rs)

    @backend_param
    def test_mbr_of_empty_raises(self, backend):
        with pytest.raises(GeometryError):
            mbr_of(arr_of([], backend))

    @backend_param
    @settings(max_examples=150, deadline=None)
    @given(rs=rect_lists(min_size=1, max_size=40), probe=rects())
    def test_least_enlargement_index(self, rs, probe, backend):
        """Same winner as the scalar first-minimum/area-tie-break loop."""
        best_idx = 0
        best_enl = float("inf")
        best_area = float("inf")
        for i, r in enumerate(rs):
            enl = r.enlargement(probe)
            if enl < best_enl:
                best_idx, best_enl, best_area = i, enl, r.area()
            elif enl == best_enl:
                area = r.area()
                if area < best_area:
                    best_idx, best_area = i, area
        assert least_enlargement_index(arr_of(rs, backend), probe) == best_idx

    @backend_param
    def test_least_enlargement_tie_breaks_to_first(self, backend):
        """Equal enlargement and equal area: first index wins, as in the
        scalar loop."""
        rs = [Rect(0, 0, 1, 1), Rect(2, 0, 3, 1), Rect(0, 2, 1, 3)]
        probe = Rect(0.25, 0.25, 0.75, 0.75)
        assert least_enlargement_index(arr_of(rs, backend), probe) == 0

    @backend_param
    @settings(max_examples=150, deadline=None)
    @given(rs=rect_lists(min_size=1, max_size=40), probe=rects())
    def test_min_center_distance_index(self, rs, probe, backend):
        dists = [r.center_distance_sq(probe) for r in rs]
        want = dists.index(min(dists))
        assert min_center_distance_index(arr_of(rs, backend), probe) == want

    @backend_param
    def test_all_points(self, backend):
        pts = [Rect.point(0.5, 0.5), Rect.point(0.25, 1.0)]
        assert all_points(arr_of(pts, backend))
        assert not all_points(arr_of(pts + [Rect(0, 0, 0.5, 0)], backend))


# --------------------------------------------------------------------- #
# clipped_area_total
# --------------------------------------------------------------------- #


WINDOW = Rect(0.0, 0.0, 1.0, 1.0)

unit = st.integers(min_value=0, max_value=1024).map(lambda v: v / 1024.0)


class TestClippedAreaTotal:
    @settings(max_examples=150, deadline=None)
    @given(
        data=st.lists(st.tuples(unit, unit, unit, unit), min_size=1,
                      max_size=30),
        scale=st.integers(min_value=1, max_value=64).map(lambda v: v / 16.0),
    )
    def test_matches_scalar_chain(self, data, scale):
        cx = [t[0] for t in data]
        cy = [t[1] for t in data]
        w = [t[2] for t in data]
        h = [t[3] for t in data]
        got = clipped_area_total(cx, cy, w, h, scale, WINDOW)

        total = 0.0
        expected: float | None = 0.0
        for k in range(len(data)):
            clipped = Rect.from_center(
                cx[k], cy[k], w[k] * scale, h[k] * scale
            ).clipped_to(WINDOW)
            if clipped is None:
                expected = None
                break
            total += clipped.area()
        if expected is None:
            assert got is None
        else:
            assert got == total  # bit-identical, not approx

    def test_outside_window_returns_none(self):
        assert clipped_area_total(
            [5.0], [5.0], [0.1], [0.1], 1.0, WINDOW
        ) is None


# --------------------------------------------------------------------- #
# RectArray plumbing
# --------------------------------------------------------------------- #


class TestRectArray:
    @backend_param
    def test_round_trip_and_take(self, backend):
        rs = [Rect(0, 0, 1, 1), Rect(0.5, 0.25, 2, 3), Rect(1, 1, 1, 1)]
        arr = arr_of(rs, backend)
        assert len(arr) == 3
        assert [arr.rect_at(i) for i in range(3)] == rs
        sub = arr.take([2, 0])
        assert [sub.rect_at(i) for i in range(2)] == [rs[2], rs[0]]
        assert sub.is_numpy == arr.is_numpy

    def test_unknown_backend_rejected(self):
        with pytest.raises(GeometryError):
            RectArray.from_rects([], backend="fortran")

    def test_auto_backend_small_arrays_stay_python(self):
        """Without an explicit backend, node-sized arrays use list
        columns — numpy's fixed per-call overhead dominates at fanout
        sizes (the NUMPY_MIN_N heuristic)."""
        if FORCED_BACKEND:
            pytest.skip("REPRO_KERNELS_BACKEND pins the backend")
        small = RectArray.from_rects([Rect(0, 0, 1, 1)] * 4)
        assert not small.is_numpy
        big = RectArray.from_rects([Rect(0, 0, 1, 1)] * NUMPY_MIN_N)
        assert big.is_numpy == HAVE_NUMPY

    def test_explicit_backend_overrides_heuristic(self):
        if not HAVE_NUMPY:
            pytest.skip("numpy not importable")
        assert RectArray.from_rects([Rect(0, 0, 1, 1)], backend="numpy").is_numpy
        many = [Rect(0, 0, 1, 1)] * (NUMPY_MIN_N + 8)
        assert not RectArray.from_rects(many, backend="python").is_numpy


# --------------------------------------------------------------------- #
# quadratic_split_indices
# --------------------------------------------------------------------- #


def scalar_quadratic_split(entries, min_fill):
    """Run the wired scalar path with the kernels forced off."""
    previous = os.environ.get("REPRO_KERNELS")
    os.environ["REPRO_KERNELS"] = "0"
    try:
        return quadratic_split(entries, min_fill)
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNELS", None)
        else:
            os.environ["REPRO_KERNELS"] = previous


@st.composite
def split_inputs(draw):
    rs = draw(rect_lists(min_size=2, max_size=32))
    min_fill = draw(st.integers(min_value=1, max_value=len(rs) // 2))
    return rs, min_fill


class TestQuadraticSplitParity:
    @backend_param
    @settings(max_examples=200, deadline=None)
    @given(case=split_inputs())
    def test_matches_scalar_split(self, case, backend):
        """Same seeds, same assignment order, same groups as Guttman's
        scalar loops — including the first-win tie-breaks."""
        rs, min_fill = case
        entries = [Entry(r, i) for i, r in enumerate(rs)]
        groups = quadratic_split_indices(arr_of(rs, backend), min_fill)
        assert groups is not None  # grid inputs never hit the NaN escape
        idx_a, idx_b = groups
        group_a, group_b = scalar_quadratic_split(entries, min_fill)
        assert [entries[k] for k in idx_a] == group_a
        assert [entries[k] for k in idx_b] == group_b
        check_split(entries, ([entries[k] for k in idx_a],
                              [entries[k] for k in idx_b]), min_fill)

    @backend_param
    def test_tie_storm_identical_rects(self, backend):
        """25 identical rectangles force every comparison through the
        tie chain; the kernel must walk it in the scalar order."""
        rs = [Rect(0.25, 0.25, 0.5, 0.5)] * 25
        entries = [Entry(r, i) for i, r in enumerate(rs)]
        idx_a, idx_b = quadratic_split_indices(arr_of(rs, backend), 10)
        group_a, group_b = scalar_quadratic_split(entries, 10)
        assert [e.ref for e in group_a] == [entries[k].ref for k in idx_a]
        assert [e.ref for e in group_b] == [entries[k].ref for k in idx_b]

    @backend_param
    def test_min_fill_absorption(self, backend):
        """A skewed input that trips Guttman's absorb-the-rest rule."""
        rs = [Rect(0, 0, 0.01, 0.01)] * 8 + [Rect(0.9, 0.9, 1, 1)]
        entries = [Entry(r, i) for i, r in enumerate(rs)]
        idx_a, idx_b = quadratic_split_indices(arr_of(rs, backend), 4)
        group_a, group_b = scalar_quadratic_split(entries, 4)
        assert [e.ref for e in group_a] == [entries[k].ref for k in idx_a]
        assert [e.ref for e in group_b] == [entries[k].ref for k in idx_b]
