"""Structural-digest semantics of the columnar snapshot.

The digest is what lets a traversal plan survive a tree rebuild: it
must be blind to page placement (a rebuilt tree lands on fresh pages)
while seeing every structural fact a plan depends on — shape, entry
fan-out, leaf object ids, and geometry. Callers that reuse a plan
across digest-equal snapshots re-lower the page columns themselves
(``_PreparedMatch.rebind``), which is exactly why pages must stay out
of the digest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.join.batch import batch_traversal_available
from repro.kernels.node_store import ColumnTree

if not batch_traversal_available():  # pragma: no cover
    pytest.skip("ColumnTree requires the numpy backend",
                allow_module_level=True)


def _records(base: int):
    """A tiny two-level tree rooted at page ``base``."""
    root = (base, 1, [base + 1, base + 2],
            [0.0, 0.2], [0.0, 0.2], [0.6, 0.3], [0.6, 0.3])
    leaf1 = (base + 1, 0, [101, 102],
             [0.0, 0.5], [0.0, 0.5], [0.1, 0.6], [0.1, 0.6])
    leaf2 = (base + 2, 0, [103], [0.2], [0.2], [0.3], [0.3])
    return [root, leaf1, leaf2]


def test_digest_ignores_page_layout():
    a = ColumnTree.build(_records(10), 10)
    b = ColumnTree.build(_records(500), 500)
    assert not np.array_equal(a.page, b.page)
    assert a.digest() == b.digest()


def test_digest_sees_geometry():
    a = ColumnTree.build(_records(10), 10)
    recs = _records(10)
    root, leaf1, leaf2 = recs
    moved = (leaf1[0], leaf1[1], leaf1[2],
             [0.05, 0.5], leaf1[4], leaf1[5], leaf1[6])
    b = ColumnTree.build([root, moved, leaf2], 10)
    assert a.digest() != b.digest()


def test_digest_sees_leaf_object_ids():
    a = ColumnTree.build(_records(10), 10)
    recs = _records(10)
    root, leaf1, leaf2 = recs
    relabeled = (leaf1[0], leaf1[1], [101, 999],
                 leaf1[3], leaf1[4], leaf1[5], leaf1[6])
    b = ColumnTree.build([root, relabeled, leaf2], 10)
    assert a.digest() != b.digest()


def test_digest_sees_shape():
    a = ColumnTree.build(_records(10), 10)
    recs = _records(10)
    root, leaf1, leaf2 = recs
    # Drop leaf2's entry (and the root's pointer to it).
    smaller_root = (root[0], root[1], [root[2][0]],
                    [root[3][0]], [root[4][0]], [root[5][0]], [root[6][0]])
    b = ColumnTree.build([smaller_root, leaf1], 10)
    assert a.digest() != b.digest()


def test_digest_is_cached():
    a = ColumnTree.build(_records(10), 10)
    assert a.digest() is a.digest()
