"""Cross-module integration tests.

The load-bearing property of the whole library: every join algorithm, in
every configuration, on every workload shape, computes exactly the pair
set of the quadratic oracle — while the cost accounting reproduces the
paper's qualitative behaviour.
"""

import pytest

from repro import (
    Phase,
    SystemConfig,
    Workspace,
    naive_join,
    seeded_tree_join,
    spatial_join,
)
from repro.workload import ClusteredConfig, generate_clustered

METHODS = ["BFJ", "RTJ", "STJ1-2N", "STJ2-2N", "STJ1-2F", "STJ2-2F",
           "STJ1-3F", "STJ2-3F"]


def build_env(n_r=3000, n_s=1200, quotient=0.2, buffer_pages=48,
              seed=0, opc=40, page_size=224):
    # Fan-out 10: large enough that seed slots, grown subtrees, and the
    # buffer relate the way the paper's fan-out-50 setup does.
    ws = Workspace(SystemConfig(page_size=page_size,
                                buffer_pages=buffer_pages))
    d_r = generate_clustered(ClusteredConfig(
        n_r, cover_quotient=quotient, objects_per_cluster=opc, seed=seed,
    ))
    d_s = generate_clustered(ClusteredConfig(
        n_s, cover_quotient=quotient, objects_per_cluster=opc,
        seed=seed + 1, oid_start=1_000_000,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    oracle = naive_join(d_s, d_r).pair_set()
    return ws, tree_r, file_s, oracle


@pytest.fixture(scope="module")
def clustered_env():
    return build_env()


class TestAllAlgorithmsAgree:
    @pytest.mark.parametrize("method", METHODS)
    def test_clustered_workload(self, clustered_env, method):
        ws, tree_r, file_s, oracle = clustered_env
        ws.start_measurement()
        result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, method=method)
        assert result.pair_set() == oracle

    def test_unclustered_workload(self):
        ws, tree_r, file_s, oracle = build_env(quotient=1.0, seed=5)
        for method in ("BFJ", "RTJ", "STJ1-2N", "STJ1-3F"):
            ws.start_measurement()
            result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                                  ws.metrics, method=method)
            assert result.pair_set() == oracle

    def test_tiny_buffer_does_not_change_results(self):
        ws, tree_r, file_s, oracle = build_env(
            n_r=1500, n_s=600, buffer_pages=24, seed=9
        )
        for method in ("BFJ", "RTJ", "STJ1-2N"):
            ws.start_measurement()
            result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                                  ws.metrics, method=method)
            assert result.pair_set() == oracle


class TestPaperShape:
    """The qualitative results the reproduction must preserve."""

    @pytest.fixture(scope="class")
    def costs(self):
        ws, tree_r, file_s, _ = build_env(seed=2)
        out = {}
        for method in METHODS:
            ws.start_measurement()
            spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                         method=method)
            out[method] = ws.metrics.summary()
        return out

    def test_stj_beats_rtj_total_io(self, costs):
        for variant in ("STJ1-2N", "STJ2-2N", "STJ1-2F", "STJ1-3F"):
            assert costs[variant].total_io < costs["RTJ"].total_io

    def test_rtj_construction_reads_dominate(self, costs):
        """RTJ's buffer misses vs STJ's linked lists (paper's headline)."""
        assert costs["RTJ"].construct_read > \
            5 * costs["STJ1-2N"].construct_read

    def test_bfj_has_no_construction(self, costs):
        assert costs["BFJ"].construct_read == 0
        assert costs["BFJ"].construct_write == 0
        assert costs["BFJ"].match_write == 0

    def test_stj_without_filtering_has_lowest_cpu(self, costs):
        # 10% tolerance: at test scale the STJ-vs-RTJ CPU margin is thin
        # (at the paper's scale it is decisive; see the benchmarks).
        reference = costs["STJ1-2N"].bbox_tests + costs["STJ1-2N"].xy_tests
        for other in ("BFJ", "RTJ", "STJ1-2F", "STJ1-3F"):
            total = costs[other].bbox_tests + costs[other].xy_tests
            assert reference <= 1.1 * total

    def test_filtering_multiplies_bbox_tests(self, costs):
        assert costs["STJ1-2F"].bbox_tests > 3 * costs["STJ1-2N"].bbox_tests
        assert costs["STJ1-3F"].bbox_tests > costs["STJ1-2F"].bbox_tests

    def test_bfj_cpu_is_highest(self, costs):
        assert costs["BFJ"].bbox_tests > costs["RTJ"].bbox_tests
        assert costs["BFJ"].bbox_tests > costs["STJ1-2N"].bbox_tests


class TestDerivedDataSetScenario:
    """The paper's motivating Q2: non-spatial selection, then join."""

    def test_selection_then_join(self):
        ws = Workspace(SystemConfig(page_size=104, buffer_pages=48))
        buildings = generate_clustered(
            ClusteredConfig(2000, seed=20, objects_per_cluster=40)
        )
        parks = generate_clustered(
            ClusteredConfig(800, seed=21, oid_start=100_000,
                            objects_per_cluster=40)
        )
        tree_parks = ws.install_rtree(parks)
        # Non-spatial selection: say government buildings are those with
        # oid % 10 == 0. The result is a derived set with no index.
        government = [(r, o) for r, o in buildings if o % 10 == 0]
        file_gov = ws.install_datafile(government, name="gov_buildings")

        ws.start_measurement()
        result = seeded_tree_join(file_gov, tree_parks, ws.buffer,
                                  ws.config, ws.metrics)
        assert result.pair_set() == naive_join(government, parks).pair_set()

    def test_join_output_feeds_second_join(self):
        """Chained joins: the output of one spatial join is a derived
        data set joined again (the paper's multi-layer overlay case)."""
        ws = Workspace(SystemConfig(page_size=104, buffer_pages=48))
        layer_a = generate_clustered(
            ClusteredConfig(1200, seed=22, objects_per_cluster=40)
        )
        layer_b = generate_clustered(
            ClusteredConfig(1200, seed=23, oid_start=10_000,
                            objects_per_cluster=40)
        )
        layer_c = generate_clustered(
            ClusteredConfig(800, seed=24, oid_start=20_000,
                            objects_per_cluster=40)
        )
        tree_b = ws.install_rtree(layer_b, name="T_B")
        file_a = ws.install_datafile(layer_a, name="A")

        first = seeded_tree_join(file_a, tree_b, ws.buffer, ws.config,
                                 ws.metrics)
        # Derived set: the A-side objects that matched something in B.
        matched = {a for a, _ in first.pair_set()}
        derived = [(r, o) for r, o in layer_a if o in matched]
        file_derived = ws.install_datafile(derived, name="A&B")
        tree_c = ws.install_rtree(layer_c, name="T_C")

        second = seeded_tree_join(file_derived, tree_c, ws.buffer,
                                  ws.config, ws.metrics)
        assert second.pair_set() == naive_join(derived, layer_c).pair_set()


class TestAccountingConsistency:
    def test_phases_partition_io(self):
        """Setup + construct + match accounts for every disk access."""
        ws, tree_r, file_s, _ = build_env(n_r=1000, n_s=400, seed=30)
        ws.start_measurement()
        spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                     method="STJ1-2N")
        per_phase = sum(
            ws.metrics.io_for(p).total_accesses for p in Phase
        )
        summary = ws.metrics.summary()
        assert per_phase > 0
        assert summary.total_io <= per_phase  # weighting only shrinks

    def test_repeated_runs_are_reproducible(self):
        ws, tree_r, file_s, _ = build_env(n_r=1000, n_s=400, seed=31)
        snapshots = []
        for _ in range(2):
            ws.start_measurement()
            spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                         method="STJ1-2N")
            snapshots.append(ws.metrics.summary())
        assert snapshots[0] == snapshots[1]
