"""Unit tests for the service's control plane: admission decisions,
the overload ladder, and deadline semantics."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import DeadlineExceededError
from repro.geometry import Rect
from repro.service import (
    Action,
    AdmissionController,
    Deadline,
    JoinRequest,
    LoadShedder,
    PressureLevel,
    RequestBudget,
    WindowQueryRequest,
    WorkspaceRegistry,
)

from ..conftest import random_entries


@pytest.fixture(scope="module")
def session():
    registry = WorkspaceRegistry(SystemConfig(page_size=512, buffer_pages=64))
    return registry.create("adm", random_entries(2000, seed=5))


def _join(n: int, method: str = "STJ1-2N", **kw) -> JoinRequest:
    return JoinRequest("adm", random_entries(n, seed=9), method=method, **kw)


class TestAdmission:
    def test_unlimited_budget_admits_everything(self, session):
        ctrl = AdmissionController()
        decision = ctrl.assess(session, _join(5000))
        assert decision.action is Action.ADMIT
        assert decision.predicted_io > 0

    def test_over_budget_downgrades_to_cheaper_method(self, session):
        # Find a derived-set size where STJ is NOT the cheapest estimate
        # (small sets: BFJ against the resident tree wins).
        ctrl = AdmissionController()
        for n in (50, 100, 200, 400, 800):
            plan = ctrl.plan_for(session, n_s=n)
            stj = plan.estimate_for("STJ").total_io
            cheapest = min(e.total_io for e in plan.estimates)
            if cheapest < stj:
                break
        else:
            pytest.fail("no size where STJ loses; estimators changed?")
        tight = AdmissionController(RequestBudget(
            max_predicted_io=(cheapest + stj) / 2
        ))
        decision = tight.assess(session, _join(n))
        assert decision.action is Action.DOWNGRADE
        assert decision.predicted_io == cheapest
        assert "downgraded" in decision.reason

    def test_nothing_fits_rejects(self, session):
        ctrl = AdmissionController(RequestBudget(max_predicted_io=1.0))
        decision = ctrl.assess(session, _join(3000))
        assert decision.action is Action.REJECT
        assert not decision.admitted
        assert "no cheaper method fits" in decision.reason

    def test_downgrade_disabled_rejects_instead(self, session):
        ctrl = AdmissionController()
        baseline = ctrl.assess(session, _join(3000)).predicted_io
        strict = AdmissionController(RequestBudget(
            max_predicted_io=baseline - 1, allow_downgrade=False
        ))
        assert strict.assess(session, _join(3000)).action is Action.REJECT

    def test_per_request_budget_overrides_service_budget(self, session):
        ctrl = AdmissionController(RequestBudget(max_predicted_io=1.0))
        generous = _join(500, max_predicted_io=10_000_000.0)
        assert ctrl.assess(session, generous).action is not Action.REJECT

    def test_window_query_admits_on_descent_estimate(self, session):
        ctrl = AdmissionController(RequestBudget(max_predicted_io=100.0))
        decision = ctrl.assess(
            session, WindowQueryRequest("adm", Rect(0, 0, 1, 1))
        )
        assert decision.action is Action.ADMIT
        assert decision.predicted_io == session.tree.height + 1

    def test_window_query_rejected_by_absurd_budget(self, session):
        ctrl = AdmissionController(RequestBudget(max_predicted_io=0.5))
        decision = ctrl.assess(
            session, WindowQueryRequest("adm", Rect(0, 0, 1, 1))
        )
        assert decision.action is Action.REJECT

    def test_unestimable_method_needs_unlimited_budget(self, session):
        unlimited = AdmissionController()
        bounded = AdmissionController(RequestBudget(max_predicted_io=1e12))
        req = _join(100, method="NAIVE")
        assert unlimited.assess(session, req).action is Action.ADMIT
        assert bounded.assess(session, req).action is Action.REJECT


class TestLoadShedder:
    def test_ladder_levels(self):
        shedder = LoadShedder(degrade_water=4, high_water=8)
        assert shedder.level(0) is PressureLevel.NORMAL
        assert shedder.level(3) is PressureLevel.NORMAL
        assert shedder.level(4) is PressureLevel.DEGRADE
        assert shedder.level(7) is PressureLevel.DEGRADE
        assert shedder.level(8) is PressureLevel.SHED

    def test_shed_hysteresis_holds_until_degrade_water(self):
        shedder = LoadShedder(degrade_water=4, high_water=8)
        assert shedder.level(8) is PressureLevel.SHED
        # Still shedding in the band between the watermarks...
        assert shedder.level(6) is PressureLevel.SHED
        assert shedder.level(5) is PressureLevel.SHED
        # ...until depth falls back to the degrade watermark.
        assert shedder.level(4) is PressureLevel.DEGRADE
        assert shedder.level(6) is PressureLevel.DEGRADE

    def test_invalid_watermarks(self):
        with pytest.raises(ValueError):
            LoadShedder(degrade_water=0, high_water=4)
        with pytest.raises(ValueError):
            LoadShedder(degrade_water=5, high_water=4)


class TestDeadline:
    def test_fake_clock_expiry(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(1.0)
        deadline.check()  # no raise
        now[0] = 0.999
        assert not deadline.expired
        now[0] = 1.0
        assert deadline.expired
        with pytest.raises(DeadlineExceededError):
            deadline.check("unit test")

    def test_cancel_hard_expires(self):
        deadline = Deadline(3600.0)
        assert not deadline.expired
        deadline.cancel()
        assert deadline.expired
        assert deadline.remaining() == float("-inf")
        with pytest.raises(DeadlineExceededError):
            deadline.check()
