"""Resident-tree maintenance: insert/delete streams against a
registered session (the Guttman Delete/condense path, which the one-shot
experiment protocol never drives)."""

from __future__ import annotations

import random

import pytest

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.metrics import Phase
from repro.service import WorkspaceRegistry

from ..conftest import random_entries


def _oracle_hits(live: dict[int, Rect], window: Rect) -> set[int]:
    return {oid for oid, rect in live.items() if rect.intersects(window)}


@pytest.fixture
def registry() -> WorkspaceRegistry:
    # Small fan-out so deletes actually underflow nodes and condense.
    return WorkspaceRegistry(SystemConfig(page_size=104, buffer_pages=64))


class TestResidentUpdates:
    def test_mixed_update_stream_keeps_tree_valid_and_exact(self, registry):
        entries = random_entries(300, seed=11)
        session = registry.create("upd", entries, bulk=False)
        live = dict((oid, rect) for rect, oid in entries)
        rng = random.Random(42)
        next_oid = 300

        for step in range(6):
            # Delete a batch of random live objects...
            victims = rng.sample(sorted(live), 30)
            for oid in victims:
                assert session.delete(live.pop(oid), oid) is True
            # ...insert a smaller batch of fresh ones...
            for _ in range(12):
                cx, cy = rng.random(), rng.random()
                rect = Rect.from_center(cx, cy, 0.02, 0.02)
                clipped = rect.clipped_to(Rect(0, 0, 1, 1))
                session.insert(clipped, next_oid)
                live[next_oid] = clipped
                next_oid += 1
            # ...and check structure + answers after every batch.
            session.tree.validate()
            assert len(session.tree) == len(live)
            window = Rect(rng.random() * 0.5, rng.random() * 0.5, 1.0, 1.0)
            assert set(session.window_query(window)) == _oracle_hits(
                live, window
            )

    def test_delete_to_near_empty_condenses(self, registry):
        entries = random_entries(150, seed=3)
        session = registry.create("drain", entries, bulk=False)
        height_before = session.tree.height
        for rect, oid in entries[:-5]:
            assert session.delete(rect, oid) is True
        session.tree.validate()
        assert len(session.tree) == 5
        assert session.tree.height <= height_before
        remaining = {oid for _, oid in entries[-5:]}
        assert set(session.window_query(Rect(0, 0, 1, 1))) == remaining

    def test_delete_of_absent_object_returns_false(self, registry):
        entries = random_entries(40, seed=8)
        session = registry.create("miss", entries, bulk=False)
        rect, oid = entries[0]
        assert session.delete(rect, oid) is True
        assert session.delete(rect, oid) is False
        session.tree.validate()

    def test_maintenance_charges_construct_phase(self, registry):
        entries = random_entries(80, seed=21)
        session = registry.create("acct", entries, bulk=False)
        metrics = session.workspace.metrics
        before = metrics.faults_for(Phase.CONSTRUCT)  # phase exists
        del before
        io_before = metrics.summary().construct_io
        for rect, oid in entries[:20]:
            session.delete(rect, oid)
        io_after = metrics.summary().construct_io
        assert io_after > io_before  # condensing did accounted I/O
