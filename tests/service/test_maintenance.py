"""The service maintenance lane: UpdateRequest batches through the
admission/deadline machinery, pooled-dataset invalidation on mutation,
and session teardown under concurrent traffic."""

from __future__ import annotations

import asyncio

import pytest

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.service import (
    JoinRequest,
    JoinService,
    Outcome,
    ServiceConfig,
    UpdateReport,
    UpdateRequest,
    WindowQueryRequest,
    WorkspaceRegistry,
)
from repro.service.admission import Action, AdmissionController, RequestBudget
from repro.workload import DELETE, INSERT, MOVE, QUERY, UpdateOp

from ..conftest import random_entries

CONFIG = SystemConfig(page_size=512, buffer_pages=64)


def run(coro):
    return asyncio.run(coro)


def _registry(n: int = 500, seed: int = 5) -> WorkspaceRegistry:
    registry = WorkspaceRegistry(CONFIG)
    registry.create("res", random_entries(n, seed=seed))
    return registry


def _rect(i: int) -> Rect:
    x = (i % 10) / 10.0
    y = (i // 10 % 10) / 10.0
    return Rect(x, y, x + 0.05, y + 0.05)


class TestUpdateRequests:
    def test_mixed_batch_served_with_exact_report(self):
        entries = random_entries(300, seed=9)
        registry = WorkspaceRegistry(CONFIG)
        registry.create("upd", entries, bulk=False)
        live = {oid: rect for rect, oid in entries}

        moved_rect, moved_oid = entries[0]
        gone_rect, gone_oid = entries[1]
        new_rect = _rect(3)
        ops = (
            UpdateOp(INSERT, 9_000, _rect(7)),
            UpdateOp(DELETE, gone_oid, gone_rect),
            UpdateOp(MOVE, moved_oid, moved_rect, to_rect=new_rect),
            UpdateOp(QUERY, 0, Rect(0.0, 0.0, 1.0, 1.0)),
            UpdateOp(DELETE, 77_777, _rect(1)),  # absent target
        )
        live[9_000] = _rect(7)
        del live[gone_oid]
        live[moved_oid] = new_rect

        async def main():
            service = JoinService(registry)
            await service.start()
            response = await service.submit(UpdateRequest("upd", ops))
            check = await service.submit(
                WindowQueryRequest("upd", Rect(0.0, 0.0, 1.0, 1.0))
            )
            await service.stop()
            return response, check

        response, check = run(main())
        assert response.outcome is Outcome.SERVED
        report = response.result
        assert isinstance(report, UpdateReport)
        assert (report.inserts, report.deletes, report.moves) == (1, 1, 1)
        assert report.queries == 1
        assert report.missing == 1
        assert report.applied == 3
        assert report.query_hits == len(live)  # query ran post-move
        assert report.tree_size == len(live)
        # The resident tree now answers for the updated live set.
        assert set(check.result) == set(live)
        session = registry.get("upd")
        session.tree.validate()

    def test_over_budget_batch_rejected_not_downgraded(self):
        registry = _registry()
        ops = tuple(
            UpdateOp(INSERT, 10_000 + i, _rect(i)) for i in range(50)
        )

        async def main():
            service = JoinService(registry)
            await service.start()
            response = await service.submit(
                UpdateRequest("res", ops, max_predicted_io=3.0)
            )
            await service.stop()
            return response

        response = run(main())
        assert response.outcome is Outcome.REJECTED
        assert response.error_type == "BudgetExceededError"
        # Nothing ran: the resident tree is untouched.
        assert len(registry.get("res").tree) == 500

    def test_admission_prices_batch_by_descent_estimate(self):
        registry = _registry()
        session = registry.get("res")
        controller = AdmissionController(RequestBudget())
        ops = tuple(UpdateOp(INSERT, 20_000 + i, _rect(i)) for i in range(8))
        decision = controller.assess(session, UpdateRequest("res", ops))
        assert decision.action is Action.ADMIT
        assert decision.method == "UPDATE"
        assert decision.predicted_io == 8 * (session.tree.height + 2)
        tight = AdmissionController(
            RequestBudget(max_predicted_io=decision.predicted_io - 1)
        )
        rejected = tight.assess(session, UpdateRequest("res", ops))
        assert rejected.action is Action.REJECT
        assert "maintenance batch" in rejected.reason

    def test_updates_charge_maintenance_phase(self):
        registry = _registry(n=200)
        session = registry.get("res")
        before = session.workspace.metrics.summary().construct_io
        ops = tuple(
            UpdateOp(INSERT, 30_000 + i, _rect(i)) for i in range(10)
        )

        async def main():
            service = JoinService(registry)
            await service.start()
            response = await service.submit(UpdateRequest("res", ops))
            await service.stop()
            return response

        assert run(main()).outcome is Outcome.SERVED
        after = session.workspace.metrics.summary().construct_io
        assert after > before


class TestUpdatesInterleavedWithJoins:
    def test_concurrent_joins_and_updates_all_resolve_exactly(self):
        """Joins and disjoint update batches race on one session; every
        response is typed, and the final tree equals the oracle."""
        entries = random_entries(400, seed=13)
        registry = WorkspaceRegistry(CONFIG)
        registry.create("mix", entries, bulk=False)
        live = {oid: rect for rect, oid in entries}

        # Disjoint batches: order of application cannot matter.
        batches = []
        for b in range(4):
            ops = []
            for i in range(5):
                oid = 50_000 + b * 100 + i
                rect = _rect(b * 17 + i)
                ops.append(UpdateOp(INSERT, oid, rect))
                live[oid] = rect
            victim_rect, victim_oid = entries[b * 20 + 2]
            ops.append(UpdateOp(DELETE, victim_oid, victim_rect))
            del live[victim_oid]
            batches.append(UpdateRequest("mix", tuple(ops)))
        probe_s = random_entries(40, seed=91, oid_start=90_000)

        async def main():
            service = JoinService(
                registry, ServiceConfig(workers=2, queue_capacity=32)
            )
            await service.start()
            requests = []
            for batch in batches:
                requests.append(service.submit(batch))
                requests.append(
                    service.submit(JoinRequest("mix", probe_s, method="BFJ"))
                )
            responses = await asyncio.gather(*requests)
            await service.stop()
            return responses

        responses = run(main())
        assert all(r.outcome is Outcome.SERVED for r in responses)
        session = registry.get("mix")
        session.tree.validate()
        assert len(session.tree) == len(live)
        hits = set(session.window_query(Rect(0.0, 0.0, 1.0, 1.0)))
        assert hits == set(live)


class TestSessionTeardown:
    def test_drop_under_live_traffic_keeps_outcomes_typed(self):
        """Dropping a session mid-stream: in-flight requests finish,
        later submissions fault with the registry's typed error — no
        hang, no foreign exception."""
        registry = _registry(n=400)
        probe_s = random_entries(30, seed=7, oid_start=80_000)

        async def main():
            service = JoinService(
                registry, ServiceConfig(workers=2, queue_capacity=32)
            )
            await service.start()
            pre = [
                service.submit(JoinRequest("res", probe_s, method="BFJ"))
                for _ in range(3)
            ]
            pre_responses = await asyncio.gather(*pre)
            registry.drop("res")
            post = [
                service.submit(JoinRequest("res", probe_s, method="BFJ")),
                service.submit(
                    UpdateRequest(
                        "res", (UpdateOp(INSERT, 1, _rect(0)),)
                    )
                ),
                service.submit(
                    WindowQueryRequest("res", Rect(0, 0, 1, 1))
                ),
            ]
            post_responses = await asyncio.gather(*post)
            await service.stop()
            return pre_responses, post_responses

        pre_responses, post_responses = run(main())
        assert all(r.outcome is Outcome.SERVED for r in pre_responses)
        for response in post_responses:
            assert response.outcome is Outcome.FAULTED
            assert response.error_type == "ExperimentError"
            assert "unknown session" in response.error


class TestDatasetCacheInvalidation:
    def test_service_updates_bump_stamps_and_evict(self):
        """A maintenance batch moves the resident tree's ``mutations``
        stamp, so the pooled-dataset cache treats every published shard
        for that tree as stale: lookup misses, republish bumps the
        version, and the invalidation listener hears about the old key."""
        from repro.parallel import DatasetCache
        from repro.parallel.dataset import (
            add_invalidation_listener,
            remove_invalidation_listener,
        )

        registry = _registry(n=120)
        session = registry.get("res")
        cache = DatasetCache(capacity=2)
        entries_s = random_entries(40, seed=3, oid_start=70_000)
        # The pooled path keys the cache on the DataFile / RTree source
        # objects themselves (weakly referenced), as spatial_join does.
        data_s = session.install_join_input(entries_s)
        entries_r = [
            (rect, oid) for rect, oid in random_entries(120, seed=5)
        ]

        invalidated: list[str] = []
        add_invalidation_listener(invalidated.append)
        try:
            published = cache.publish(
                data_s, session.tree, None, entries_r, entries_s
            )
            assert cache.lookup(data_s, session.tree) is published

            ops = (UpdateOp(INSERT, 60_000, _rect(4)),)

            async def main():
                service = JoinService(registry)
                await service.start()
                response = await service.submit(UpdateRequest("res", ops))
                await service.stop()
                return response

            assert run(main()).outcome is Outcome.SERVED

            # The stamp moved: the warm entry is evicted on lookup.
            assert cache.lookup(data_s, session.tree) is None
            assert published.key in invalidated

            refreshed = cache.publish(
                data_s, session.tree, None,
                entries_r + [(_rect(4), 60_000)], entries_s,
            )
            assert refreshed.version > published.version
            assert cache.lookup(data_s, session.tree) is refreshed
        finally:
            remove_invalidation_listener(invalidated.append)
            cache.clear()


class TestUpdateRequestShape:
    def test_ops_normalised_to_tuple(self):
        ops = [UpdateOp(INSERT, 1, _rect(0))]
        request = UpdateRequest("s", ops)
        assert isinstance(request.ops, tuple)
        assert request.method == "UPDATE"

    def test_rejects_bad_op_kind(self):
        with pytest.raises(Exception):
            UpdateOp("upsert", 1, _rect(0))
