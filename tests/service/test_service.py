"""Integration tests for the resident join service: answers, outcomes,
backpressure, deadlines, endpoints, and clean shutdown."""

from __future__ import annotations

import asyncio

import pytest

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.service import (
    JoinRequest,
    JoinService,
    MetricsServer,
    Outcome,
    ServiceConfig,
    WindowQueryRequest,
    WorkspaceRegistry,
)

from ..conftest import random_entries

CONFIG = SystemConfig(page_size=512, buffer_pages=64)


def _registry(n: int = 2000, seed: int = 5) -> WorkspaceRegistry:
    registry = WorkspaceRegistry(CONFIG)
    registry.create("res", random_entries(n, seed=seed))
    return registry


def _oracle_pairs(entries_s, entries_r) -> set[tuple[int, int]]:
    return {
        (oid_s, oid_r)
        for rect_s, oid_s in entries_s
        for rect_r, oid_r in entries_r
        if rect_s.intersects(rect_r)
    }


def run(coro):
    return asyncio.run(coro)


class TestAnswers:
    def test_window_query_matches_oracle(self):
        entries_r = random_entries(2000, seed=5)
        registry = _registry()

        async def main():
            service = JoinService(registry)
            await service.start()
            window = Rect(0.2, 0.1, 0.6, 0.5)
            response = await service.submit(
                WindowQueryRequest("res", window)
            )
            await service.stop()
            return response

        response = run(main())
        assert response.outcome is Outcome.SERVED
        expected = {
            oid for rect, oid in entries_r if rect.intersects(
                Rect(0.2, 0.1, 0.6, 0.5)
            )
        }
        assert set(response.result) == expected

    @pytest.mark.parametrize("method", ["BFJ", "STJ1-2N"])
    def test_join_matches_oracle(self, method):
        entries_r = random_entries(2000, seed=5)
        entries_s = random_entries(300, seed=77, oid_start=10_000)
        registry = _registry()

        async def main():
            service = JoinService(registry)
            await service.start()
            response = await service.submit(
                JoinRequest("res", entries_s, method=method)
            )
            await service.stop()
            return response

        response = run(main())
        assert response.outcome is Outcome.SERVED
        assert response.method_used == method
        assert set(response.result.pairs) == _oracle_pairs(
            entries_s, entries_r
        )

    def test_admission_downgrade_is_exact_and_flagged(self):
        entries_r = random_entries(2000, seed=5)
        entries_s = random_entries(100, seed=31, oid_start=10_000)
        registry = _registry()

        async def main():
            # Budget below STJ's estimate but above the cheapest method's:
            # the request downgrades instead of rejecting.
            from repro.service import AdmissionController

            probe = AdmissionController()
            plan = probe.plan_for(registry.get("res"), n_s=len(entries_s))
            stj = plan.estimate_for("STJ").total_io
            cheapest = min(e.total_io for e in plan.estimates)
            assert cheapest < stj, "need a size where STJ loses"
            service = JoinService(registry, ServiceConfig(
                max_predicted_io=(cheapest + stj) / 2,
            ))
            await service.start()
            response = await service.submit(
                JoinRequest("res", entries_s, method="STJ1-2N")
            )
            await service.stop()
            return service, response

        service, response = run(main())
        assert response.outcome is Outcome.DEGRADED
        assert response.result.degraded is True
        assert response.result.fallback_from == "STJ1-2N"
        assert set(response.result.pairs) == _oracle_pairs(
            entries_s, entries_r
        )
        counters = service.metrics.counters
        assert counters.degraded == 1
        assert counters.admission_downgrades == 1
        # The downgrade also landed in the substrate fault counters.
        assert registry.get("res").workspace.metrics.fault_totals(
        ).fallbacks == 1


class TestRobustness:
    def test_burst_sheds_and_every_request_resolves(self):
        registry = _registry()

        async def main():
            service = JoinService(registry, ServiceConfig(
                workers=1, queue_capacity=4, degrade_water=2, high_water=4,
            ))
            await service.start()
            responses = await asyncio.gather(*[
                service.submit(WindowQueryRequest(
                    "res", Rect(0, 0, 1, 1), stall_s=0.02
                ))
                for _ in range(20)
            ])
            await service.stop()
            return service, responses

        service, responses = run(main())
        outcomes = [r.outcome for r in responses]
        assert outcomes.count(Outcome.SHED) > 0
        assert outcomes.count(Outcome.SERVED) > 0
        shed = [r for r in responses if r.outcome is Outcome.SHED]
        assert all(r.error_type == "QueueFullError" for r in shed)
        counters = service.metrics.counters
        assert counters.submitted == 20
        assert counters.resolved == 20
        assert counters.in_flight == 0

    def test_deadline_times_out_stalled_request(self):
        registry = _registry()

        async def main():
            service = JoinService(registry, ServiceConfig(
                watchdog_interval_s=0.005
            ))
            await service.start()
            response = await service.submit(WindowQueryRequest(
                "res", Rect(0, 0, 1, 1), deadline_s=0.02, stall_s=0.5,
            ))
            await service.stop()
            return response

        response = run(main())
        assert response.outcome is Outcome.TIMED_OUT
        assert response.error_type == "DeadlineExceededError"
        # The watchdog resolved the future well before the stall ended.
        assert response.latency_s < 0.4

    def test_unknown_session_is_typed_fault(self):
        registry = _registry()

        async def main():
            service = JoinService(registry)
            await service.start()
            response = await service.submit(
                WindowQueryRequest("ghost", Rect(0, 0, 1, 1))
            )
            await service.stop()
            return response

        response = run(main())
        assert response.outcome is Outcome.FAULTED
        assert response.error_type == "ExperimentError"

    def test_stop_sheds_backlog_and_refuses_new_requests(self):
        registry = _registry()

        async def main():
            service = JoinService(registry, ServiceConfig(
                workers=1, queue_capacity=16,
            ))
            await service.start()
            pending = [
                asyncio.ensure_future(service.submit(WindowQueryRequest(
                    "res", Rect(0, 0, 1, 1), stall_s=0.05
                )))
                for _ in range(6)
            ]
            await asyncio.sleep(0.01)  # let the worker pick up the first
            await service.stop()
            backlog = await asyncio.gather(*pending)
            late = await service.submit(
                WindowQueryRequest("res", Rect(0, 0, 1, 1))
            )
            return service, backlog, late

        service, backlog, late = run(main())
        assert all(
            r.outcome in (Outcome.SERVED, Outcome.SHED) for r in backlog
        )
        assert any(r.outcome is Outcome.SHED for r in backlog)
        assert late.outcome is Outcome.SHED
        assert "not accepting" in late.error
        counters = service.metrics.counters
        assert counters.submitted == counters.resolved == 7


class TestEndpoints:
    @staticmethod
    async def _get(host, port, path):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode("latin-1"))
        await writer.drain()
        raw = (await reader.read()).decode()
        writer.close()
        head, _, body = raw.partition("\r\n\r\n")
        return head.splitlines()[0], body

    def test_metrics_and_healthz_over_real_socket(self):
        registry = _registry()

        async def main():
            service = JoinService(registry)
            await service.start()
            await service.submit(
                WindowQueryRequest("res", Rect(0, 0, 1, 1))
            )
            http = MetricsServer(service, port=0)
            host, port = await http.start()
            health = await self._get(host, port, "/healthz")
            metrics = await self._get(host, port, "/metrics")
            missing = await self._get(host, port, "/nope")
            await http.stop()
            await service.stop()
            return health, metrics, missing

        health, metrics, missing = run(main())
        assert "200" in health[0] and health[1].strip() == "ok"
        assert "200" in metrics[0]
        body = metrics[1]
        assert "repro_service_requests_submitted_total 1" in body
        assert "repro_service_requests_served_total 1" in body
        assert 'repro_session_objects{session="res"} 2000' in body
        assert "# TYPE repro_service_queue_depth gauge" in body
        assert "404" in missing[0]

    def test_healthz_not_ready_without_sessions(self):
        registry = WorkspaceRegistry(CONFIG)

        async def main():
            service = JoinService(registry)
            await service.start()
            health = service.healthz()
            await service.stop()
            return health, service.healthz()

        before_stop, after_stop = run(main())
        assert not before_stop.ready
        assert any("no resident sessions" in r for r in before_stop.reasons)
        assert not after_stop.ready
        assert any("not accepting" in r for r in after_stop.reasons)


class TestStopKeepsLoopResponsive:
    """Regression: ``stop()`` used to call ``executor.shutdown(wait=True)``
    and ``shutdown_default_pools()`` inline, freezing the event loop (and
    every health check / in-flight ticket) for the whole teardown. Both
    now hop through ``run_in_executor``; a concurrent ticker task must
    keep ticking while a deliberately slow pool teardown runs."""

    def test_ticker_ticks_through_a_slow_pool_teardown(self, monkeypatch):
        import time as _time

        import repro.parallel as parallel_mod

        def slow_teardown():
            _time.sleep(0.4)  # stands in for worker joins

        monkeypatch.setattr(
            parallel_mod, "shutdown_default_pools", slow_teardown
        )
        registry = _registry(200)

        async def main():
            service = JoinService(registry)
            await service.start()
            ticks = 0
            stopping = False

            async def ticker():
                nonlocal ticks
                while True:
                    await asyncio.sleep(0.02)
                    if stopping:
                        ticks += 1

            task = asyncio.create_task(ticker())
            await asyncio.sleep(0.05)  # let the ticker settle
            stopping = True
            await service.stop()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            return ticks

        ticks = run(main())
        # A frozen loop yields ~0 ticks across the 0.4 s teardown; the
        # executor hop keeps the loop serving (expect ~20, demand 8).
        assert ticks >= 8
