"""Service-level chaos: randomized fault, deadline and overload
schedules end-to-end through the resident join service.

The request-level form of the repo's exact-or-typed-error invariant:
every submitted request resolves to exactly one outcome; answered
outcomes carry *exact* answers (checked against a brute-force oracle);
every other outcome names a typed :class:`~repro.errors.ReproError`
subclass. No request may hang or drop silently, whatever the schedule
injects — slow workers, mid-request storage faults, deadline storms,
queue saturation.
"""

from __future__ import annotations

import asyncio
import random

import pytest

import repro.errors as errors_mod
from repro.config import SystemConfig
from repro.errors import ReproError
from repro.geometry import Rect
from repro.service import (
    ANSWERED,
    JoinRequest,
    JoinService,
    Outcome,
    ServiceConfig,
    WindowQueryRequest,
    WorkspaceRegistry,
)
from repro.storage import FaultInjector, FaultPlan, RecoveryPolicy

from ..conftest import random_entries

CONFIG = SystemConfig(page_size=512, buffer_pages=64)
RESIDENT = random_entries(2000, seed=5)


def _random_plan(rng: random.Random) -> FaultPlan:
    return FaultPlan(
        transient_read_rate=rng.choice([0.0, 0.005, 0.02]),
        torn_write_rate=rng.choice([0.0, 0.002]),
        bit_flip_rate=rng.choice([0.0, 0.001]),
        crash_after_ops=rng.choice([None, None, 500]),
        max_transient_per_page=rng.choice([2, 10]),
    )


def _mixed_request(rng: random.Random) -> JoinRequest | WindowQueryRequest:
    draw = rng.random()
    if draw < 0.55:
        cx, cy = rng.random(), rng.random()
        half = 0.02 + rng.random() * 0.1
        return WindowQueryRequest("chaos", Rect(
            max(0.0, cx - half), max(0.0, cy - half),
            min(1.0, cx + half), min(1.0, cy + half),
        ), deadline_s=rng.choice([None, None, 2.0]))
    if draw < 0.85:
        return JoinRequest(
            "chaos",
            random_entries(rng.randrange(40, 250), seed=rng.randrange(1 << 20),
                           oid_start=100_000),
            method=rng.choice(["BFJ", "STJ1-2N"]),
            deadline_s=rng.choice([None, 5.0]),
        )
    # Deadline storm contribution: stalled work with a deadline it misses.
    return WindowQueryRequest(
        "chaos", Rect(0.3, 0.3, 0.7, 0.7),
        deadline_s=rng.choice([0.001, 0.01]),
        stall_s=rng.choice([0.02, 0.05]),
    )


def _oracle(request) -> set:
    if isinstance(request, WindowQueryRequest):
        return {
            oid for rect, oid in RESIDENT if rect.intersects(request.window)
        }
    return {
        (oid_s, oid_r)
        for rect_s, oid_s in request.entries_s
        for rect_r, oid_r in RESIDENT
        if rect_s.intersects(rect_r)
    }


def _typed_error_names() -> set[str]:
    return {
        name for name in dir(errors_mod)
        if isinstance(getattr(errors_mod, name), type)
        and issubclass(getattr(errors_mod, name), ReproError)
    }


TYPED = _typed_error_names()


def _chaos_run(seed: int, n_requests: int = 40) -> None:
    rng = random.Random(seed)
    registry = WorkspaceRegistry(CONFIG)
    injector = FaultInjector(_random_plan(rng), seed=seed)
    session = registry.create(
        "chaos", RESIDENT, injector=injector,
        recovery=RecoveryPolicy(fallback_to_bfj=True),
    )
    injector.metrics = session.workspace.metrics
    injector.arm()
    requests = [_mixed_request(rng) for _ in range(n_requests)]

    async def main():
        service = JoinService(registry, ServiceConfig(
            workers=rng.choice([1, 2]),
            queue_capacity=rng.choice([4, 8, 16]),
            watchdog_interval_s=0.005,
        ))
        await service.start()
        pending = []
        for i, request in enumerate(requests):
            pending.append(
                asyncio.ensure_future(service.submit(request))
            )
            if rng.random() < 0.5:
                await asyncio.sleep(0.001 * rng.random())
        responses = await asyncio.gather(*pending)
        await service.stop()
        return service, responses

    service, responses = asyncio.run(main())

    # 1. Exactly one resolution per request, none missing.
    assert len(responses) == n_requests
    counters = service.metrics.counters
    assert counters.submitted == n_requests
    assert counters.resolved == n_requests
    assert counters.in_flight == 0

    for request, response in zip(requests, responses):
        if response.outcome in ANSWERED:
            # 2. Answered outcomes are exact, even under faults/downgrade.
            assert response.error_type == ""
            if isinstance(request, WindowQueryRequest):
                assert set(response.result) == _oracle(request)
            else:
                assert set(response.result.pairs) == _oracle(request)
                if response.outcome is Outcome.DEGRADED:
                    assert response.result.degraded
        else:
            # 3. Everything else names a typed ReproError subclass.
            assert response.error_type in TYPED, (
                f"untyped failure {response.error_type!r}: {response.error}"
            )
            assert response.result is None

    # 4. The ledger balances: degradation sub-causes never exceed the
    #    degraded tally recorded at the same lock.
    assert (
        counters.admission_downgrades + counters.overload_degrades
        >= 0
    )
    assert counters.degraded + counters.served == sum(
        1 for r in responses if r.outcome in ANSWERED
    )


class TestServiceChaos:
    """Randomized schedules (the full sweep; chaos-smoke runs a subset)."""

    @pytest.mark.parametrize("seed", range(1, 7))
    def test_exactly_one_typed_outcome(self, seed: int):
        _chaos_run(seed)


class TestServiceChaosSmoke:
    """Fixed-seed subset for the CI chaos-smoke job (-k smoke)."""

    @pytest.mark.parametrize("seed", [11, 23])
    def test_smoke(self, seed: int):
        _chaos_run(seed, n_requests=25)
