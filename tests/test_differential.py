"""Differential tests: partition-parallel runs vs sequential runs.

For every facade join method and ten fixed workload seeds, a
partition-parallel execution (``workers``/``partitions`` drawn
round-robin from a small grid) must be *observationally equivalent* to
the plain sequential execution on the same inputs:

* identical pair sets — replication plus reference-point dedup loses
  nothing and double-counts nothing;
* duplicate-free merged pair list — dedup happened in the workers, not
  by accident of set semantics at the end;
* exactly reconcilable accounting — the parent collector's merged
  :class:`~repro.metrics.CostSummary` equals the integer sum of the
  per-partition snapshots (``repro.partition.summed_summary``), field
  by field.

The fanout-4 physical design keeps trees tall on small inputs, so the
default ``STJ`` (two seed levels) runs sequentially without clamping
while each test stays fast.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.join import spatial_join
from repro.partition import summed_summary
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

CFG = SystemConfig(page_size=104, buffer_pages=64)

METHODS = ("BFJ", "RTJ", "STJ", "NAIVE", "ZJOIN", "2STJ")
SEEDS = tuple(range(10))

#: The ISSUE's parallel-shape grid, cycled so every (method, seed) cell
#: exercises some shape and every shape appears with every method.
PARALLEL_SHAPES = ((2, 4), (2, 16), (4, 4), (4, 16))

_ENV_CACHE: dict[int, tuple[list, list]] = {}


def _workload(seed: int):
    if seed not in _ENV_CACHE:
        d_r = generate_clustered(ClusteredConfig(
            220, cover_quotient=2.0, objects_per_cluster=11, seed=900 + seed,
        ))
        d_s = generate_clustered(ClusteredConfig(
            140, cover_quotient=2.0, objects_per_cluster=7, seed=950 + seed,
            oid_start=10**6,
        ))
        _ENV_CACHE[seed] = (d_r, d_s)
    return _ENV_CACHE[seed]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("method", METHODS)
def test_parallel_equals_sequential(method: str, seed: int) -> None:
    d_r, d_s = _workload(seed)
    workers, partitions = PARALLEL_SHAPES[
        (seed + METHODS.index(method)) % len(PARALLEL_SHAPES)
    ]

    ws = Workspace(CFG)
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)

    ws.start_measurement()
    sequential = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
    )

    ws.start_measurement()
    parallel = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
        workers=workers, partitions=partitions, parallel_seed=seed,
    )

    # -- answers ---------------------------------------------------- #
    assert parallel.pair_set() == sequential.pair_set()
    assert len(parallel.pairs) == len(set(parallel.pairs)), (
        "merged pair list contains duplicates"
    )
    assert parallel.algorithm == sequential.algorithm == method

    # -- accounting ------------------------------------------------- #
    stats = parallel.partitions
    assert stats, "parallel result carries no per-partition stats"
    assert sum(s.pairs for s in stats) == len(parallel.pairs)
    merged = ws.metrics.summary()
    summed = summed_summary(stats, ws.config)
    for field in (
        "match_read", "match_write", "construct_read", "construct_write",
        "bbox_tests", "xy_tests",
    ):
        assert getattr(merged, field) == getattr(summed, field), (
            f"{field}: merged collector disagrees with partition sum"
        )


# --------------------------------------------------------------------- #
# Kernels-on vs kernels-off
# --------------------------------------------------------------------- #

#: Wider data rectangles than the parallel workloads above, so the
#: kernel-path sweep actually emits pairs (the contract being pinned is
#: emission *order*, which zero-pair runs never exercise).
_KERNEL_CACHE: dict[int, tuple[list, list]] = {}

SUMMARY_FIELDS = (
    "match_read", "match_write", "construct_read", "construct_write",
    "bbox_tests", "xy_tests",
)


def _kernel_workload(seed: int):
    if seed not in _KERNEL_CACHE:
        d_r = generate_clustered(ClusteredConfig(
            220, cover_quotient=2.0, objects_per_cluster=11,
            data_side_bound=0.06, seed=900 + seed,
        ))
        d_s = generate_clustered(ClusteredConfig(
            140, cover_quotient=2.0, objects_per_cluster=7,
            data_side_bound=0.06, seed=950 + seed, oid_start=10**6,
        ))
        _KERNEL_CACHE[seed] = (d_r, d_s)
    return _KERNEL_CACHE[seed]


def _run_sequential(method: str, seed: int):
    d_r, d_s = _kernel_workload(seed)
    ws = Workspace(CFG)
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    ws.start_measurement()
    result = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
    )
    return result.pairs, ws.metrics.summary()


@pytest.mark.parametrize("seed", (0, 1, 2))
@pytest.mark.parametrize("method", METHODS)
def test_kernels_bit_identical_to_scalar(method, seed, monkeypatch):
    """The vectorized kernel layer changes nothing observable: pair list
    (including order) and every CostSummary field match the scalar path
    bit for bit."""
    monkeypatch.setenv("REPRO_KERNELS", "1")
    pairs_on, summary_on = _run_sequential(method, seed)
    monkeypatch.setenv("REPRO_KERNELS", "0")
    pairs_off, summary_off = _run_sequential(method, seed)

    assert pairs_on, "workload produced no pairs; order is untested"
    assert pairs_on == pairs_off
    for field in SUMMARY_FIELDS:
        assert getattr(summary_on, field) == getattr(summary_off, field), (
            f"{field}: kernels-on disagrees with kernels-off"
        )


@pytest.mark.parametrize("method", ("STJ", "BFJ"))
def test_kernels_bit_identical_under_sanitizer(method, monkeypatch):
    """Kernels + sanitizer together still match the plain scalar run —
    and the sanitizer's cache-coherence sweep stays silent."""
    monkeypatch.setenv("REPRO_KERNELS", "1")
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    pairs_san, summary_san = _run_sequential(method, 0)
    monkeypatch.setenv("REPRO_KERNELS", "0")
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    pairs_plain, summary_plain = _run_sequential(method, 0)

    assert pairs_san == pairs_plain
    for field in SUMMARY_FIELDS:
        assert getattr(summary_san, field) == getattr(summary_plain, field)


def test_kernels_bit_identical_in_parallel(monkeypatch):
    """Workers inherit REPRO_KERNELS through fork; a kernels-on parallel
    run must reconcile exactly with a kernels-off one."""
    d_r, d_s = _kernel_workload(0)

    def run(kernels: str):
        monkeypatch.setenv("REPRO_KERNELS", kernels)
        ws = Workspace(CFG)
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        ws.start_measurement()
        result = spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics, method="STJ",
            workers=2, partitions=4, parallel_seed=0,
        )
        return result.pair_set(), ws.metrics.summary()

    pairs_on, summary_on = run("1")
    pairs_off, summary_off = run("0")
    assert pairs_on == pairs_off
    for field in SUMMARY_FIELDS:
        assert getattr(summary_on, field) == getattr(summary_off, field)


# --------------------------------------------------------------------- #
# Batch-first traversal vs per-node kernels vs scalar
# --------------------------------------------------------------------- #

#: (REPRO_KERNELS, REPRO_BATCH): the columnar batch-first path, PR 5's
#: per-node kernel path, and the scalar reference.
BATCH_MODES = (("1", "1"), ("1", "0"), ("0", "0"))


def _set_modes(monkeypatch, kernels: str, batch: str) -> None:
    monkeypatch.setenv("REPRO_KERNELS", kernels)
    monkeypatch.setenv("REPRO_BATCH", batch)


@pytest.mark.parametrize("seed", (0, 1, 2))
@pytest.mark.parametrize("method", METHODS)
def test_batch_bit_identical_to_scalar(method, seed, monkeypatch):
    """The batch-first layer changes nothing observable on a cold
    workspace: pair list (including order) and every CostSummary field
    match both the per-node kernel path and the scalar path."""
    outputs = []
    for kernels, batch in BATCH_MODES:
        _set_modes(monkeypatch, kernels, batch)
        outputs.append(_run_sequential(method, seed))
    (pairs_b, sum_b), (pairs_k, _), (pairs_s, sum_s) = outputs
    assert pairs_b, "workload produced no pairs; order is untested"
    assert pairs_b == pairs_k == pairs_s
    for field in SUMMARY_FIELDS:
        assert getattr(sum_b, field) == getattr(sum_s, field), (
            f"{field}: batch disagrees with scalar"
        )


@pytest.mark.parametrize("method", METHODS)
def test_batch_repeat_runs_bit_identical(method, monkeypatch):
    """Repeated joins in ONE workspace — the resident steady state,
    where the traversal plan caches and the construction replay cache
    actually engage (a fresh workspace never hits them) — stay
    bit-identical to the scalar path run by run, down to the buffer's
    cumulative hit and miss counts."""
    d_r, d_s = _kernel_workload(0)

    def runs(kernels: str, batch: str):
        _set_modes(monkeypatch, kernels, batch)
        ws = Workspace(CFG)
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        out = []
        for _ in range(3):
            ws.start_measurement()
            result = spatial_join(
                file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                method=method,
            )
            out.append((
                result.pairs, ws.metrics.summary(),
                ws.buffer.stats.hits, ws.buffer.stats.misses,
            ))
        return out

    batch_runs = runs("1", "1")
    scalar_runs = runs("0", "0")
    assert batch_runs[0][0], "workload produced no pairs"
    for i, (b, s) in enumerate(zip(batch_runs, scalar_runs)):
        assert b[0] == s[0], f"run {i}: pairs differ"
        for field in SUMMARY_FIELDS:
            assert getattr(b[1], field) == getattr(s[1], field), (
                f"run {i}: CostSummary.{field} differs"
            )
        assert b[2] == s[2], f"run {i}: buffer hits differ"
        assert b[3] == s[3], f"run {i}: buffer misses differ"


@pytest.mark.parametrize("method", ("STJ", "BFJ"))
def test_batch_bit_identical_under_sanitizer(method, monkeypatch):
    """Batch + sanitizer together still match the plain scalar run (the
    replay cache stands down under the sanitizer; the traversal caches
    must stay coherent under its peeks)."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    _set_modes(monkeypatch, "1", "1")
    pairs_b, summary_b = _run_sequential(method, 0)
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    _set_modes(monkeypatch, "0", "0")
    pairs_s, summary_s = _run_sequential(method, 0)

    assert pairs_b == pairs_s
    for field in SUMMARY_FIELDS:
        assert getattr(summary_b, field) == getattr(summary_s, field)


def test_pooled_batch_on_off_bit_identical(monkeypatch) -> None:
    """Batch on vs off through the pooled parallel route: identical
    pairs and counters (workers inherit REPRO_BATCH at task time)."""
    d_r, d_s = _kernel_workload(1)

    def run(batch: str):
        _set_modes(monkeypatch, "1", batch)
        ws = Workspace(CFG)
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        ws.start_measurement()
        result = spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics, method="STJ",
            workers=2, partitions=4, parallel_seed=1, parallel_guard=False,
        )
        assert result.parallel_decision.pooled
        return result.pair_set(), ws.metrics.summary()

    pairs_on, summary_on = run("1")
    pairs_off, summary_off = run("0")
    assert pairs_on == pairs_off
    for field in SUMMARY_FIELDS:
        assert getattr(summary_on, field) == getattr(summary_off, field)


# --------------------------------------------------------------------- #
# Pooled mode vs sequential (and vs the legacy per-join pool)
# --------------------------------------------------------------------- #


def _run_routed(method: str, seed: int, **parallel_kw):
    """One parallel run on the workload of ``seed``, any route."""
    d_r, d_s = _workload(seed)
    ws = Workspace(CFG)
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    ws.start_measurement()
    result = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
        **parallel_kw,
    )
    return result, ws.metrics.summary(), ws


@pytest.mark.parametrize("seed", (0, 1))
@pytest.mark.parametrize("method", METHODS)
def test_pooled_equals_sequential(method: str, seed: int) -> None:
    """The persistent-pool route (guard disabled so it always engages)
    is observationally equivalent to sequential: same pair set, no
    duplicates, exactly reconcilable accounting."""
    sequential, _summary, _ws = _run_routed(method, seed)
    pooled, merged, ws = _run_routed(
        method, seed, workers=2, partitions=4, parallel_seed=seed,
        parallel_guard=False,
    )
    assert pooled.parallel_decision is not None
    assert pooled.parallel_decision.pooled, pooled.parallel_decision
    assert pooled.pair_set() == sequential.pair_set()
    assert len(pooled.pairs) == len(set(pooled.pairs))
    summed = summed_summary(pooled.partitions, ws.config)
    for field in SUMMARY_FIELDS:
        assert getattr(merged, field) == getattr(summed, field), (
            f"{field}: merged collector disagrees with partition sum"
        )


def test_pooled_equals_legacy_pool(monkeypatch) -> None:
    """The pooled route and the legacy per-join pool produce identical
    pairs and identical merged counters on the same inputs."""
    pooled, pooled_summary, _ws1 = _run_routed(
        "STJ", 2, workers=2, partitions=4, parallel_seed=2,
        parallel_guard=False,
    )
    monkeypatch.setenv("REPRO_POOL", "0")
    legacy, legacy_summary, _ws2 = _run_routed(
        "STJ", 2, workers=2, partitions=4, parallel_seed=2,
        parallel_guard=False,
    )
    assert pooled.parallel_decision.pooled
    assert not legacy.parallel_decision.pooled
    assert pooled.pair_set() == legacy.pair_set()
    for field in SUMMARY_FIELDS:
        assert getattr(pooled_summary, field) == getattr(
            legacy_summary, field
        )


def test_pooled_kernels_on_off_bit_identical(monkeypatch) -> None:
    """Kernels on vs off through the pooled route: identical pairs and
    counters (workers inherit REPRO_KERNELS at task time)."""
    d_r, d_s = _kernel_workload(1)

    def run(kernels: str):
        monkeypatch.setenv("REPRO_KERNELS", kernels)
        ws = Workspace(CFG)
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        ws.start_measurement()
        result = spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics, method="STJ",
            workers=2, partitions=4, parallel_seed=1, parallel_guard=False,
        )
        assert result.parallel_decision.pooled
        return result.pair_set(), ws.metrics.summary()

    pairs_on, summary_on = run("1")
    pairs_off, summary_off = run("0")
    assert pairs_on == pairs_off
    for field in SUMMARY_FIELDS:
        assert getattr(summary_on, field) == getattr(summary_off, field)
