"""Chaos harness: every join under randomized fault schedules.

The invariant is the tentpole of the fault-injection layer: under ANY
fault plan a join either returns the exact oracle answer or raises a
typed :class:`~repro.errors.ReproError` — it never silently returns a
wrong result. 70 deterministic schedules x 3 algorithms = 210 runs.

``-k smoke`` selects the fixed-seed smoke subset CI runs on every push.
"""

from __future__ import annotations

import random

import pytest

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.geometry import Rect
from repro.join import naive_join, spatial_join
from repro.metrics import MetricsCollector, Phase
from repro.rtree import RTree
from repro.storage import (
    BufferPool,
    DiskSimulator,
    FaultInjector,
    FaultPlan,
    RecoveryPolicy,
)
from repro.storage.datafile import DataFile

from .conftest import random_entries

# Small pages + a small pool so modest data sets generate real disk
# traffic (evictions, write-backs) for the fault plans to bite on, and
# so T_R is tall enough for the default two seed levels.
CONFIG = SystemConfig(page_size=256, buffer_pages=32)
N_R, N_S = 200, 300
METHODS = ("BFJ", "RTJ", "STJ1-2N")
RECOVERY = RecoveryPolicy(checkpoint_every=32)

_oracle_cache: set | None = None


def _grid_entries(n: int, seed: int) -> list[tuple[Rect, int]]:
    """Entries on the 1/1024 grid (exact under float32 checkpoints)."""
    return [
        (
            Rect(
                round(r.xlo * 1024) / 1024, round(r.ylo * 1024) / 1024,
                round(r.xhi * 1024) / 1024, round(r.yhi * 1024) / 1024,
            ),
            oid,
        )
        for r, oid in random_entries(n, seed=seed)
    ]


def _datasets():
    return _grid_entries(N_R, seed=71), _grid_entries(N_S, seed=72)


def _oracle() -> set:
    global _oracle_cache
    if _oracle_cache is None:
        d_r, d_s = _datasets()
        _oracle_cache = naive_join(d_s, d_r).pair_set()
    return _oracle_cache


def _random_plan(seed: int) -> FaultPlan:
    """One deterministic fault schedule drawn from ``seed``."""
    rng = random.Random(seed * 2654435761 % 2**32)
    kind = rng.choice(
        ["quiet", "transient", "torn", "bitflip",
         "crash_once", "crash_recurring", "mixed"]
    )
    if kind == "quiet":
        return FaultPlan()
    if kind == "transient":
        return FaultPlan(transient_read_rate=rng.uniform(0.02, 0.3))
    if kind == "torn":
        return FaultPlan(torn_write_rate=rng.uniform(0.01, 0.2))
    if kind == "bitflip":
        return FaultPlan(bit_flip_rate=rng.uniform(0.005, 0.05))
    if kind == "crash_once":
        return FaultPlan(crash_after_ops=rng.randrange(40, 400))
    if kind == "crash_recurring":
        return FaultPlan(crash_every_ops=rng.randrange(60, 400))
    return FaultPlan(
        transient_read_rate=rng.uniform(0.0, 0.1),
        torn_write_rate=rng.uniform(0.0, 0.05),
        bit_flip_rate=rng.uniform(0.0, 0.01),
        crash_after_ops=rng.randrange(100, 500),
    )


def _build_world(injector: FaultInjector | None):
    """T_R durable on disk, D_S on disk, nothing armed yet."""
    d_r, d_s = _datasets()
    metrics = MetricsCollector(CONFIG)
    disk = DiskSimulator(metrics, injector=injector)
    buffer = BufferPool(CONFIG.buffer_pages, disk)
    tree_r = RTree.build(buffer, CONFIG, d_r, name="T_R")
    data_s = DataFile.create(disk, CONFIG, d_s, name="D_S")
    buffer.purge()
    disk.reset_arm()
    return metrics, buffer, tree_r, data_s


def _chaos_run(method: str, seed: int) -> None:
    plan = _random_plan(seed)
    injector = FaultInjector(plan, seed=seed)
    metrics, buffer, tree_r, data_s = _build_world(injector)
    injector.arm()
    try:
        result = spatial_join(
            data_s, tree_r, buffer, CONFIG, metrics,
            method=method, recovery=RECOVERY,
        )
    except ReproError:
        return  # a typed failure is an acceptable outcome
    except Exception as exc:  # noqa: BLE001 — the invariant under test
        pytest.fail(
            f"untyped {type(exc).__name__} escaped under plan {plan}: {exc}"
        )
    assert result.pair_set() == _oracle(), (
        f"silently wrong answer under plan {plan}"
    )
    if plan.is_quiet:
        assert metrics.fault_totals().faults_injected == 0


class TestChaos:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("seed", range(70))
    def test_exact_or_typed_error(self, method: str, seed: int):
        _chaos_run(method, seed)


class TestChaosSmoke:
    """Fixed-seed subset for CI (`pytest tests/test_chaos.py -k smoke`)."""

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("seed", (3, 11, 29))
    def test_smoke(self, method: str, seed: int):
        _chaos_run(method, seed)


class TestCostTransparency:
    """A present-but-disarmed injector must not perturb any accounting."""

    @pytest.mark.parametrize("method", METHODS)
    def test_io_identical_with_and_without_injector(self, method: str):
        def run(injector):
            metrics, buffer, tree_r, data_s = _build_world(injector)
            result = spatial_join(
                data_s, tree_r, buffer, CONFIG, metrics, method=method
            )
            counts = {
                phase.value: (
                    io.random_reads, io.sequential_reads,
                    io.random_writes, io.sequential_writes,
                )
                for phase in Phase
                for io in [metrics.io_for(phase)]
            }
            return result.pair_set(), counts, metrics.fault_totals()

        bare_pairs, bare_io, _ = run(None)
        inj_pairs, inj_io, inj_faults = run(
            FaultInjector(FaultPlan(transient_read_rate=0.5), seed=1)
        )  # never armed
        assert bare_pairs == inj_pairs == _oracle()
        assert bare_io == inj_io
        assert inj_faults.is_zero
