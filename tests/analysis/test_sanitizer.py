"""The runtime sanitizer: detection power and zero cost-model footprint.

Two halves. Detection: corrupt a tree/buffer/collector in a targeted
way and the matching check must raise
:class:`~repro.errors.InvariantViolation`. Transparency: a sanitized
join (sequential and parallel, every facade method) must produce the
bit-identical :class:`~repro.metrics.CostSummary` of an unsanitized
run — the checks observe only unaccounted paths.
"""

from __future__ import annotations

import pytest

from repro.analysis import Sanitizer, resolve_sanitizer, sanitizer_enabled
from repro.analysis.sanitizer import ENV_VAR
from repro.config import SystemConfig
from repro.errors import InvariantViolation
from repro.geometry import Rect
from repro.join import spatial_join
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

CFG = SystemConfig(page_size=104, buffer_pages=64)


def _workload():
    d_r = generate_clustered(ClusteredConfig(
        220, cover_quotient=2.0, objects_per_cluster=11, seed=901,
    ))
    d_s = generate_clustered(ClusteredConfig(
        140, cover_quotient=2.0, objects_per_cluster=7, seed=951,
        oid_start=10**6,
    ))
    return d_r, d_s


def _installed_tree():
    d_r, _ = _workload()
    ws = Workspace(CFG)
    tree = ws.install_rtree(d_r)
    return ws, tree


# --------------------------------------------------------------------- #
# Resolution
# --------------------------------------------------------------------- #


def test_resolution_tristate(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert not sanitizer_enabled()
    assert resolve_sanitizer(None) is None
    assert resolve_sanitizer(False) is None
    assert isinstance(resolve_sanitizer(True), Sanitizer)

    monkeypatch.setenv(ENV_VAR, "1")
    assert sanitizer_enabled()
    assert isinstance(resolve_sanitizer(None), Sanitizer)
    assert resolve_sanitizer(False) is None

    monkeypatch.setenv(ENV_VAR, "off")
    assert not sanitizer_enabled()


def test_existing_instance_passes_through():
    s = Sanitizer()
    assert resolve_sanitizer(s) is s  # degradation re-entry keeps history


# --------------------------------------------------------------------- #
# Detection
# --------------------------------------------------------------------- #


def test_clean_tree_passes():
    _ws, tree = _installed_tree()
    Sanitizer().check_tree(tree)
    tree.validate()  # agree with the tree's own structural check


def test_detects_wrong_parent_mbr():
    _ws, tree = _installed_tree()
    root = tree._node_unaccounted(tree.root_id)
    assert not root.is_leaf, "workload too small to corrupt an inner entry"
    root.entries[0].mbr = Rect(0.0, 0.0, 1e-6, 1e-6)
    with pytest.raises(InvariantViolation, match="MBR"):
        Sanitizer().check_tree(tree)


def test_detects_fanout_overflow():
    _ws, tree = _installed_tree()
    leaf_id = None
    stack = [tree.root_id]
    while stack:
        node = tree._node_unaccounted(stack.pop())
        if node.is_leaf:
            leaf_id = node.page_id
            break
        stack.extend(e.ref for e in node.entries)
    node = tree._node_unaccounted(leaf_id)
    node.entries.extend(node.entries[:1] * (tree.capacity + 1))
    with pytest.raises(InvariantViolation, match="capacity"):
        Sanitizer().check_tree(tree)


def test_detects_leaked_pin():
    ws, tree = _installed_tree()
    ws.buffer.fetch(tree.root_id, pin=True)
    with pytest.raises(InvariantViolation, match="pin"):
        Sanitizer().check_buffer(ws.buffer)
    ws.buffer.unpin(tree.root_id)
    Sanitizer().check_buffer(ws.buffer)  # balanced again -> clean


def test_detects_counter_decrease():
    ws, _tree = _installed_tree()
    s = Sanitizer()
    s.check_counters(ws.metrics)  # baseline snapshot
    ws.metrics.reset()  # counters go backwards
    with pytest.raises(InvariantViolation, match="decreased"):
        s.check_counters(ws.metrics)


def test_counter_growth_is_clean():
    ws, tree = _installed_tree()
    s = Sanitizer()
    s.check_counters(ws.metrics)
    tree.window_query(Rect(0.0, 0.0, 1.0, 1.0))  # accrues reads/tests
    s.check_counters(ws.metrics)


# --------------------------------------------------------------------- #
# Transparency: identical cost model, identical answers
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "method", ("BFJ", "RTJ", "STJ", "STJ1-2F", "NAIVE", "ZJOIN", "2STJ")
)
def test_sanitized_run_is_bit_identical(method):
    d_r, d_s = _workload()
    outputs = []
    for sanitize in (False, True):
        ws = Workspace(CFG)
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        ws.start_measurement()
        result = spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics,
            method=method, sanitize=sanitize,
        )
        outputs.append((sorted(result.pairs), ws.metrics.summary()))
    assert outputs[0][0] == outputs[1][0]
    assert outputs[0][1] == outputs[1][1]


def test_sanitized_parallel_run_is_bit_identical():
    d_r, d_s = _workload()
    outputs = []
    for sanitize in (False, True):
        ws = Workspace(CFG)
        tree_r = ws.install_rtree(d_r)
        file_s = ws.install_datafile(d_s)
        ws.start_measurement()
        result = spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics,
            method="STJ", workers=2, partitions=4, sanitize=sanitize,
        )
        outputs.append((sorted(result.pairs), ws.metrics.summary()))
    assert outputs[0][0] == outputs[1][0]
    assert outputs[0][1] == outputs[1][1]


def test_env_var_arms_the_default_path(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")
    d_r, d_s = _workload()
    ws = Workspace(CFG)
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    ws.start_measurement()
    # No sanitize kwarg at all: the env var alone must arm the checks,
    # and a healthy run must sail through them.
    result = spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                          method="STJ")
    assert result.pairs is not None
