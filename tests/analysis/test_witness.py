"""Tests for the runtime lock witness: edge recording, inversion
detection, re-entrancy, edge-file merge writing, and the lattice diff
behind ``repro-lint --check-witness``."""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.witness import (
    _WitnessedLock,
    check_edges,
    _merge_write,
    observed_edges,
    reset_witness,
    witnessed_lock,
)
from repro.errors import InvariantViolation
from repro.service.metrics import ServiceMetrics
from repro.service.requests import Outcome


@pytest.fixture(autouse=True)
def clean_ledger():
    reset_witness()
    yield
    reset_witness()


def wrap(domain: str, rlock: bool = False) -> _WitnessedLock:
    lock = threading.RLock() if rlock else threading.Lock()
    return _WitnessedLock(domain, lock)


# --------------------------------------------------------------------- #
# Recording and policing
# --------------------------------------------------------------------- #


def test_legal_nesting_records_edges_and_passes():
    registry = wrap("registry")
    session = wrap("session", rlock=True)
    metrics = wrap("metrics")
    with registry:
        with session:
            with metrics:
                pass
    edges = observed_edges()
    assert ("registry", "session") in edges
    assert ("session", "metrics") in edges
    assert check_edges(edges) == []


def test_inversion_raises_at_the_acquisition():
    metrics = wrap("metrics")
    registry = wrap("registry")
    with metrics:
        with pytest.raises(InvariantViolation, match="inverts"):
            registry.acquire()
    # The offending edge is still recorded for the post-mortem diff.
    assert ("metrics", "registry") in observed_edges()


def test_same_domain_reentry_is_allowed():
    session = wrap("session", rlock=True)
    with session:
        with session:
            pass
    assert observed_edges() == set()


def test_skipping_domains_is_allowed():
    registry = wrap("registry")
    metrics = wrap("metrics")
    with registry:
        with metrics:
            pass
    assert check_edges(observed_edges()) == []


def test_release_pops_held_domain():
    pool = wrap("pool")
    session = wrap("session", rlock=True)
    pool.acquire()
    pool.release()
    # pool is no longer held: taking session afterwards is clean.
    with session:
        pass
    assert observed_edges() == set()


def test_nonblocking_failed_acquire_records_nothing():
    pool = wrap("pool")
    other = threading.Thread(target=lambda: None)
    pool.acquire()
    try:
        assert pool.acquire(blocking=False) is False or True
    finally:
        pool.release()
    del other
    assert observed_edges() == set()


def test_unknown_domain_rejected_at_creation():
    with pytest.raises(ValueError, match="unknown lock domain"):
        _WitnessedLock("ticket", threading.Lock())


def test_disarmed_witnessed_lock_returns_raw_lock(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    monkeypatch.delenv("REPRO_WITNESS", raising=False)
    raw = threading.Lock()
    assert witnessed_lock("pool", raw) is raw


def test_armed_witnessed_lock_wraps(monkeypatch):
    monkeypatch.setenv("REPRO_WITNESS", "1")
    lock = witnessed_lock("pool", threading.Lock())
    assert isinstance(lock, _WitnessedLock)


# --------------------------------------------------------------------- #
# Edge-file plumbing and the lattice diff
# --------------------------------------------------------------------- #


def test_check_edges_flags_inversions_and_unknown_domains():
    problems = check_edges({("metrics", "pool"), ("ticket", "session")})
    assert len(problems) == 2
    assert any("inverts" in p for p in problems)
    assert any("outside the declared lattice" in p for p in problems)


def test_merge_write_unions_with_existing_file(tmp_path):
    out = tmp_path / "edges.json"
    out.write_text(json.dumps({"edges": [["registry", "session"]]}))
    registry = wrap("registry")
    pool = wrap("pool")
    with registry:
        with pool:
            pass
    _merge_write(str(out))
    merged = json.loads(out.read_text())
    assert ["registry", "session"] in merged["edges"]
    assert ["registry", "pool"] in merged["edges"]


def test_merge_write_with_empty_ledger_creates_but_never_clobbers(tmp_path):
    # An empty-ledger flush still proves the run was armed: it creates
    # the file with zero edges...
    out = tmp_path / "edges.json"
    _merge_write(str(out))
    assert json.loads(out.read_text()) == {"edges": []}
    # ...but never rewrites a file another process already populated.
    out.write_text(json.dumps({"edges": [["registry", "pool"]]}))
    _merge_write(str(out))
    assert json.loads(out.read_text()) == {"edges": [["registry", "pool"]]}


def test_cli_check_witness_consistent(tmp_path, capsys):
    out = tmp_path / "edges.json"
    out.write_text(json.dumps(
        {"edges": [["registry", "session"], ["session", "metrics"]]}
    ))
    assert lint_main(["--check-witness", str(out)]) == 0
    assert "consistent" in capsys.readouterr().out


def test_cli_check_witness_inversion_fails(tmp_path, capsys):
    out = tmp_path / "edges.json"
    out.write_text(json.dumps({"edges": [["metrics", "registry"]]}))
    assert lint_main(["--check-witness", str(out)]) == 1
    assert "inverts" in capsys.readouterr().out


def test_cli_check_witness_empty_edges_pass_vacuously(tmp_path, capsys):
    # The repo's critical sections are single-domain; an armed run that
    # nested nothing writes an empty ledger, which is consistent.
    out = tmp_path / "edges.json"
    out.write_text(json.dumps({"edges": []}))
    assert lint_main(["--check-witness", str(out)]) == 0
    assert "vacuously" in capsys.readouterr().out


def test_cli_check_witness_wrong_shape_is_an_error(tmp_path):
    out = tmp_path / "edges.json"
    out.write_text(json.dumps({"not_edges": []}))
    assert lint_main(["--check-witness", str(out)]) == 2


def test_cli_check_witness_missing_file_is_an_error(tmp_path):
    assert lint_main(["--check-witness", str(tmp_path / "nope.json")]) == 2


# --------------------------------------------------------------------- #
# Zero accounting impact
# --------------------------------------------------------------------- #


def test_witnessed_metrics_counters_identical_to_raw():
    """The witness observes locks only: a ServiceMetrics wrapped in a
    witnessed lock produces bit-identical counters to a raw one."""

    def drive(metrics: ServiceMetrics) -> tuple:
        for _ in range(5):
            metrics.record_submit()
            metrics.record_outcome(
                Outcome.SERVED, latency_s=0.25, queue_wait_s=0.125
            )
        snap = metrics.snapshot()
        return (snap["counters"], snap["latency"], snap["queue_wait"])

    raw = ServiceMetrics()
    witnessed = ServiceMetrics()
    witnessed._lock = _WitnessedLock("metrics", threading.Lock())
    assert drive(raw) == drive(witnessed)
