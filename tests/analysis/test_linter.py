"""Suppressions, the RPR000 meta-rule, the cache, and the CLI.

Ends with the teeth of the whole exercise: the repository's own source
tree must lint clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import lint_paths, lint_source
from repro.analysis.cli import main as lint_main
from repro.analysis.linter import LintCache, check_suppressions

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_DISK = textwrap.dedent("""
    def load(self, page_id):
        return self.disk.read(page_id)
""")


def test_suppression_with_reason_silences_the_finding():
    src = textwrap.dedent("""
        def load(self, page_id):
            # repro-lint: disable=RPR001 -- replay path bypasses the buffer
            return self.disk.read(page_id)
    """)
    assert lint_source(src, "src/repro/join/example.py") == []


def test_suppression_on_the_violating_line_itself():
    src = textwrap.dedent("""
        def load(self, page_id):
            return self.disk.read(page_id)  # repro-lint: disable=RPR001 -- replay
    """)
    assert lint_source(src, "src/repro/join/example.py") == []


def test_suppression_without_reason_is_rpr000():
    src = textwrap.dedent("""
        def load(self, page_id):
            # repro-lint: disable=RPR001
            return self.disk.read(page_id)
    """)
    codes = [f.code for f in lint_source(src, "src/repro/join/example.py")]
    # A reasonless directive suppresses nothing: the original finding
    # stays, and the directive itself becomes an (unsuppressible) one.
    assert codes == ["RPR000", "RPR001"]


def test_rpr000_cannot_be_suppressed():
    # Line 1 legitimately suppresses RPR000 for itself and the next
    # line; the reasonless directive on that next line must still be
    # reported — the meta-rule ignores suppression entirely.
    src = textwrap.dedent("""
        def load(self, page_id):
            # repro-lint: disable=RPR000 -- attempting to silence the meta-rule
            # repro-lint: disable=RPR001
            return self.disk.read(page_id)
    """)
    codes = [f.code for f in lint_source(src, "src/repro/join/example.py")]
    assert "RPR000" in codes


def test_suppressing_one_code_leaves_others():
    src = textwrap.dedent("""
        import time

        def stamp(self, page_id):
            # repro-lint: disable=RPR001 -- direct read is deliberate here
            return self.disk.read(page_id), time.time()
    """)
    codes = [f.code for f in lint_source(src, "src/repro/join/example.py")]
    assert codes == ["RPR002"]


def test_syntax_error_becomes_rpr000():
    findings = lint_source("def broken(:\n", "src/repro/join/example.py")
    assert [f.code for f in findings] == ["RPR000"]


def test_findings_render_as_path_line_code(tmp_path):
    (tmp_path / "mod.py").write_text(BAD_DISK)
    findings = lint_paths([tmp_path])
    assert len(findings) == 1
    rendered = findings[0].render()
    assert "mod.py" in rendered and "RPR001" in rendered


def test_cache_roundtrip_and_invalidation(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_DISK)
    cache_file = tmp_path / "lint-cache.json"

    first = lint_paths([target], cache_file=cache_file)
    assert [f.code for f in first] == ["RPR001"]
    assert cache_file.exists()

    # Unchanged file: the cached findings come back identical.
    again = lint_paths([target], cache_file=cache_file)
    assert again == first

    # Changed file: the stale entry must not survive.
    target.write_text("def load(self, buffer, pid):\n    return buffer.fetch(pid)\n")
    assert lint_paths([target], cache_file=cache_file) == []


def test_cache_keyed_to_rule_fingerprint(tmp_path):
    import hashlib
    import json

    target = tmp_path / "mod.py"
    target.write_text(BAD_DISK)
    cache_file = tmp_path / "lint-cache.json"
    lint_paths([target], cache_file=cache_file)

    # A cache produced by different rule sources must be discarded
    # wholesale, even for files whose bytes are unchanged.
    payload = json.loads(cache_file.read_text())
    payload["fingerprint"] = "not-the-real-fingerprint"
    cache_file.write_text(json.dumps(payload))
    digest = hashlib.sha256(BAD_DISK.encode()).hexdigest()
    assert LintCache(cache_file).get(str(target), digest) is None


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_DISK)
    good = tmp_path / "good.py"
    good.write_text("X = 1\n")

    assert lint_main(["--no-cache", str(good)]) == 0
    assert lint_main(["--no-cache", str(bad)]) == 1
    assert "RPR001" in capsys.readouterr().out
    assert lint_main([]) == 2  # no paths is a usage error


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR000", "RPR001", "RPR006"):
        assert code in out


def test_repository_lints_clean():
    """The gate the CI job re-runs: our own tree has zero findings."""
    findings = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert findings == [], "\n".join(f.render() for f in findings)


# --------------------------------------------------------------------- #
# Stale-suppression detection
# --------------------------------------------------------------------- #

STALE_SUPPRESSED = textwrap.dedent("""
    def load(self, page_id):
        # repro-lint: disable=RPR001 -- goes through the buffer now
        return self.buffer.fetch(page_id)
""")

LIVE_SUPPRESSED = textwrap.dedent("""
    def load(self, page_id):
        # repro-lint: disable=RPR001 -- bootstrap read before the pool exists
        return self.disk.read(page_id)
""")


def test_check_suppressions_flags_directive_whose_rule_is_silent():
    stale = check_suppressions(STALE_SUPPRESSED, "src/repro/join/x.py")
    assert len(stale) == 1
    assert "stale suppression: RPR001" in stale[0].message


def test_check_suppressions_keeps_directive_whose_rule_fires():
    assert check_suppressions(LIVE_SUPPRESSED, "src/repro/join/x.py") == []


def test_check_suppressions_per_code_within_one_directive():
    src = textwrap.dedent("""
        def load(self, page_id):
            # repro-lint: disable=RPR001,RPR002 -- covers the read below
            return self.disk.read(page_id)
    """)
    stale = check_suppressions(src, "src/repro/join/x.py")
    assert len(stale) == 1  # RPR002 never fired; RPR001 still does
    assert "RPR002" in stale[0].message


def test_check_suppressions_ignores_unparseable_source():
    assert check_suppressions("def broken(:\n", "src/repro/join/x.py") == []


def test_cli_check_suppressions_exit_codes(tmp_path, capsys):
    stale = tmp_path / "stale.py"
    stale.write_text(STALE_SUPPRESSED)
    live = tmp_path / "live.py"
    live.write_text(LIVE_SUPPRESSED)

    assert lint_main(["--check-suppressions", str(live)]) == 0
    assert lint_main(["--check-suppressions", str(stale)]) == 1
    assert "stale suppression" in capsys.readouterr().out


def test_repository_has_no_stale_suppressions():
    """The second CI gate: every remaining directive still earns its keep."""
    stale: list = []
    for root in (REPO_ROOT / "src", REPO_ROOT / "tests"):
        for path in sorted(root.rglob("*.py")):
            text = path.read_text(encoding="utf-8")
            stale.extend(check_suppressions(text, str(path)))
    assert stale == [], "\n".join(f.render() for f in stale)
