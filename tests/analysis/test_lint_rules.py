"""Fixture suite for the repro-lint rules.

Each rule gets a *bad* snippet that must fire and a *good* twin —
minimally different, doing the same job the approved way — that must
stay silent. Snippets are linted under virtual paths so the per-rule
path scoping (storage/ exemptions, test exemptions, and so on) is
exercised exactly as it is on the real tree.
"""

from __future__ import annotations

import textwrap

from repro.analysis import RULES, lint_source
from repro.analysis.rules import RULE_SUMMARIES


def findings_for(snippet: str, path: str = "src/repro/join/example.py"):
    return lint_source(textwrap.dedent(snippet), path)


def codes_for(snippet: str, path: str = "src/repro/join/example.py"):
    return [f.code for f in findings_for(snippet, path)]


def test_every_rule_has_a_summary():
    for code in RULES:
        assert code in RULE_SUMMARIES
    assert "RPR000" in RULE_SUMMARIES  # the meta-rule has one too


# --------------------------------------------------------------------- #
# RPR001: direct disk access outside storage/
# --------------------------------------------------------------------- #

BAD_DISK = """
    def load(self, page_id):
        return self.disk.read(page_id)
"""

GOOD_DISK = """
    def load(self, page_id):
        return self.buffer.fetch(page_id)
"""


def test_rpr001_fires_on_direct_disk_read():
    assert codes_for(BAD_DISK) == ["RPR001"]


def test_rpr001_silent_on_buffer_fetch():
    assert codes_for(GOOD_DISK) == []


def test_rpr001_exempts_storage_package():
    assert codes_for(BAD_DISK, "src/repro/storage/buffer.py") == []


def test_rpr001_exempts_tests():
    assert codes_for(BAD_DISK, "tests/storage/test_disk.py") == []


def test_rpr001_allows_unaccounted_peek():
    snippet = """
        def inspect(self, page_id):
            return self.disk.peek(page_id)
    """
    assert codes_for(snippet) == []


# --------------------------------------------------------------------- #
# RPR002: nondeterminism primitives outside workload/seeding.py
# --------------------------------------------------------------------- #

BAD_RANDOM = """
    import random

    def jitter():
        return random.random()
"""

GOOD_RANDOM = """
    import random

    def jitter(seed):
        return random.Random(seed).random()
"""


def test_rpr002_fires_on_bare_random():
    assert codes_for(BAD_RANDOM) == ["RPR002"]


def test_rpr002_silent_on_seeded_rng():
    assert codes_for(GOOD_RANDOM) == []


def test_rpr002_fires_on_wall_clock():
    snippet = """
        import time

        def stamp():
            return time.time()
    """
    assert codes_for(snippet) == ["RPR002"]


def test_rpr002_fires_on_builtin_hash():
    snippet = """
        def bucket(key, n):
            return hash(key) % n
    """
    assert codes_for(snippet) == ["RPR002"]


def test_rpr002_allows_hash_in_dunder_hash():
    snippet = """
        class Key:
            def __hash__(self):
                return hash((self.a, self.b))
    """
    assert codes_for(snippet) == []


def test_rpr002_exempts_seeding_module():
    assert codes_for(BAD_RANDOM, "src/repro/workload/seeding.py") == []


# --------------------------------------------------------------------- #
# RPR003: pin acquire without a release on every path
# --------------------------------------------------------------------- #

BAD_PIN = """
    def visit(buffer, page_id):
        page = buffer.fetch(page_id, pin=True)
        if page.payload is None:
            raise ValueError("empty page")
        result = page.payload.entries
        buffer.unpin(page_id)
        return result
"""

GOOD_PIN = """
    def visit(buffer, page_id):
        page = buffer.fetch(page_id, pin=True)
        try:
            if page.payload is None:
                raise ValueError("empty page")
            return page.payload.entries
        finally:
            buffer.unpin(page_id)
"""


def test_rpr003_fires_on_unprotected_release():
    assert codes_for(BAD_PIN) == ["RPR003"]


def test_rpr003_silent_with_finally():
    assert codes_for(GOOD_PIN) == []


def test_rpr003_fires_when_release_is_missing_entirely():
    snippet = """
        def leak(buffer, page_id):
            return buffer.fetch(page_id, pin=True).payload
    """
    assert codes_for(snippet) == ["RPR003"]


def test_rpr003_ignores_nested_function_releases():
    # The release lives in a nested function that may never run; the
    # outer function still leaks.
    snippet = """
        def outer(buffer, page_id):
            buffer.pin(page_id)

            def later():
                buffer.unpin(page_id)

            return later
    """
    assert "RPR003" in codes_for(snippet)


def test_rpr003_exempts_tests():
    assert codes_for(BAD_PIN, "tests/rtree/test_pins.py") == []


# --------------------------------------------------------------------- #
# RPR004: I/O or phase entry outside the engine's jurisdiction
# --------------------------------------------------------------------- #

BAD_PHASE = """
    from repro.metrics import Phase

    def run(metrics):
        with metrics.phase(Phase.MATCH):
            pass
"""


def test_rpr004_fires_on_phase_entry_outside_engine():
    assert codes_for(BAD_PHASE) == ["RPR004"]


def test_rpr004_allows_phase_entry_in_engine():
    assert codes_for(BAD_PHASE, "src/repro/join/engine.py") == []


def test_rpr004_allows_phase_entry_in_workspace():
    assert codes_for(BAD_PHASE, "src/repro/workspace.py") == []


def test_rpr004_fires_on_module_level_io():
    snippet = """
        PAGES = buffer.fetch(0)
    """
    assert codes_for(snippet) == ["RPR004"]


def test_rpr004_silent_on_function_level_io():
    snippet = """
        def load(buffer):
            return buffer.fetch(0)
    """
    assert codes_for(snippet) == []


# --------------------------------------------------------------------- #
# RPR005: module-level mutable state
# --------------------------------------------------------------------- #

BAD_STATE = """
    _cache = {}

    def lookup(key):
        return _cache.get(key)
"""

GOOD_STATE = """
    _DEFAULTS = ("a", "b")

    def lookup(key, cache):
        return cache.get(key)
"""


def test_rpr005_fires_on_module_level_dict():
    assert codes_for(BAD_STATE) == ["RPR005"]


def test_rpr005_silent_on_immutable_constants():
    assert codes_for(GOOD_STATE) == []


def test_rpr005_fires_on_global_statement():
    snippet = """
        counter = 0

        def bump():
            global counter
            counter += 1
    """
    assert "RPR005" in codes_for(snippet)


def test_rpr005_allows_all_caps_registry():
    # ALL_CAPS module registries (rule tables, flavour maps) are the
    # sanctioned pattern: written once at import, never per-run.
    snippet = """
        RULES = {}

        def register(cls):
            RULES[cls.code] = cls
            return cls
    """
    assert codes_for(snippet) == []


def test_rpr005_exempts_tests():
    assert codes_for(BAD_STATE, "tests/join/test_cache.py") == []


# --------------------------------------------------------------------- #
# RPR006: raw float equality on rectangle coordinates
# --------------------------------------------------------------------- #

BAD_EQ = """
    def touches(a, b):
        return a.xhi == b.xlo
"""

GOOD_EQ = """
    from repro.geometry import feq

    def touches(a, b):
        return feq(a.xhi, b.xlo)
"""


def test_rpr006_fires_on_raw_coordinate_equality():
    assert codes_for(BAD_EQ) == ["RPR006"]


def test_rpr006_silent_on_feq():
    assert codes_for(GOOD_EQ) == []


def test_rpr006_exempts_geometry_package():
    assert codes_for(BAD_EQ, "src/repro/geometry/rect.py") == []


def test_rpr006_ignores_non_coordinate_attributes():
    snippet = """
        def same_page(a, b):
            return a.page_id == b.page_id
    """
    assert codes_for(snippet) == []


# --------------------------------------------------------------------- #
# RPR008: writes to shared/attached column views
# --------------------------------------------------------------------- #

BAD_COLUMN_WRITE = """
    def nudge(columns, i, dx):
        columns.xlo[i] += dx
"""

GOOD_COLUMN_WRITE = """
    def nudge(columns, i, dx):
        return columns.patch_row(i, shifted(columns.rect_at(i), dx))
"""


def test_rpr008_fires_on_column_subscript_store():
    assert codes_for(BAD_COLUMN_WRITE) == ["RPR008"]


def test_rpr008_fires_on_values_store():
    snippet = """
        def renumber(shared, i, oid):
            shared.values[i] = oid
    """
    assert codes_for(snippet) == ["RPR008"]


def test_rpr008_silent_on_patch_row():
    assert codes_for(GOOD_COLUMN_WRITE) == []


def test_rpr008_silent_on_local_subscript_store():
    # Writing through a bare local (the owner's memoryview during
    # create) carries no attribute chain and stays legal.
    snippet = """
        def fill(mv, coords):
            for i, x in enumerate(coords):
                mv[i] = x
    """
    assert codes_for(snippet) == []


def test_rpr008_fires_on_writeable_reenable():
    snippet = """
        def unseal(arr):
            arr.flags.writeable = True
    """
    assert codes_for(snippet) == ["RPR008"]


def test_rpr008_silent_on_writeable_clear():
    snippet = """
        def seal(arr):
            arr.flags.writeable = False
    """
    assert codes_for(snippet) == []


def test_rpr008_exempts_owning_modules_and_tests():
    assert codes_for(BAD_COLUMN_WRITE, "src/repro/kernels/rect_array.py") == []
    assert codes_for(BAD_COLUMN_WRITE, "src/repro/parallel/shm.py") == []
    assert codes_for(BAD_COLUMN_WRITE, "tests/parallel/test_pool.py") == []
