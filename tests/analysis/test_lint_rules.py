"""Fixture suite for the repro-lint rules.

Each rule gets a *bad* snippet that must fire and a *good* twin —
minimally different, doing the same job the approved way — that must
stay silent. Snippets are linted under virtual paths so the per-rule
path scoping (storage/ exemptions, test exemptions, and so on) is
exercised exactly as it is on the real tree.
"""

from __future__ import annotations

import textwrap

from repro.analysis import RULES, lint_source
from repro.analysis.rules import RULE_SUMMARIES


def findings_for(snippet: str, path: str = "src/repro/join/example.py"):
    return lint_source(textwrap.dedent(snippet), path)


def codes_for(snippet: str, path: str = "src/repro/join/example.py"):
    return [f.code for f in findings_for(snippet, path)]


def test_every_rule_has_a_summary():
    for code in RULES:
        assert code in RULE_SUMMARIES
    assert "RPR000" in RULE_SUMMARIES  # the meta-rule has one too


# --------------------------------------------------------------------- #
# RPR001: direct disk access outside storage/
# --------------------------------------------------------------------- #

BAD_DISK = """
    def load(self, page_id):
        return self.disk.read(page_id)
"""

GOOD_DISK = """
    def load(self, page_id):
        return self.buffer.fetch(page_id)
"""


def test_rpr001_fires_on_direct_disk_read():
    assert codes_for(BAD_DISK) == ["RPR001"]


def test_rpr001_silent_on_buffer_fetch():
    assert codes_for(GOOD_DISK) == []


def test_rpr001_exempts_storage_package():
    assert codes_for(BAD_DISK, "src/repro/storage/buffer.py") == []


def test_rpr001_exempts_tests():
    assert codes_for(BAD_DISK, "tests/storage/test_disk.py") == []


def test_rpr001_allows_unaccounted_peek():
    snippet = """
        def inspect(self, page_id):
            return self.disk.peek(page_id)
    """
    assert codes_for(snippet) == []


# --------------------------------------------------------------------- #
# RPR002: nondeterminism primitives outside workload/seeding.py
# --------------------------------------------------------------------- #

BAD_RANDOM = """
    import random

    def jitter():
        return random.random()
"""

GOOD_RANDOM = """
    import random

    def jitter(seed):
        return random.Random(seed).random()
"""


def test_rpr002_fires_on_bare_random():
    assert codes_for(BAD_RANDOM) == ["RPR002"]


def test_rpr002_silent_on_seeded_rng():
    assert codes_for(GOOD_RANDOM) == []


def test_rpr002_fires_on_wall_clock():
    snippet = """
        import time

        def stamp():
            return time.time()
    """
    assert codes_for(snippet) == ["RPR002"]


def test_rpr002_fires_on_builtin_hash():
    snippet = """
        def bucket(key, n):
            return hash(key) % n
    """
    assert codes_for(snippet) == ["RPR002"]


def test_rpr002_allows_hash_in_dunder_hash():
    snippet = """
        class Key:
            def __hash__(self):
                return hash((self.a, self.b))
    """
    assert codes_for(snippet) == []


def test_rpr002_exempts_seeding_module():
    assert codes_for(BAD_RANDOM, "src/repro/workload/seeding.py") == []


# --------------------------------------------------------------------- #
# RPR003: pin acquire without a release on every path
# --------------------------------------------------------------------- #

BAD_PIN = """
    def visit(buffer, page_id):
        page = buffer.fetch(page_id, pin=True)
        if page.payload is None:
            raise ValueError("empty page")
        result = page.payload.entries
        buffer.unpin(page_id)
        return result
"""

GOOD_PIN = """
    def visit(buffer, page_id):
        page = buffer.fetch(page_id, pin=True)
        try:
            if page.payload is None:
                raise ValueError("empty page")
            return page.payload.entries
        finally:
            buffer.unpin(page_id)
"""


def test_rpr003_fires_on_unprotected_release():
    assert codes_for(BAD_PIN) == ["RPR003"]


def test_rpr003_silent_with_finally():
    assert codes_for(GOOD_PIN) == []


def test_rpr003_fires_when_release_is_missing_entirely():
    snippet = """
        def leak(buffer, page_id):
            return buffer.fetch(page_id, pin=True).payload
    """
    assert codes_for(snippet) == ["RPR003"]


def test_rpr003_ignores_nested_function_releases():
    # The release lives in a nested function that may never run; the
    # outer function still leaks.
    snippet = """
        def outer(buffer, page_id):
            buffer.pin(page_id)

            def later():
                buffer.unpin(page_id)

            return later
    """
    assert "RPR003" in codes_for(snippet)


def test_rpr003_exempts_tests():
    assert codes_for(BAD_PIN, "tests/rtree/test_pins.py") == []


# --------------------------------------------------------------------- #
# RPR004: I/O or phase entry outside the engine's jurisdiction
# --------------------------------------------------------------------- #

BAD_PHASE = """
    from repro.metrics import Phase

    def run(metrics):
        with metrics.phase(Phase.MATCH):
            pass
"""


def test_rpr004_fires_on_phase_entry_outside_engine():
    assert codes_for(BAD_PHASE) == ["RPR004"]


def test_rpr004_allows_phase_entry_in_engine():
    assert codes_for(BAD_PHASE, "src/repro/join/engine.py") == []


def test_rpr004_allows_phase_entry_in_workspace():
    assert codes_for(BAD_PHASE, "src/repro/workspace.py") == []


def test_rpr004_fires_on_module_level_io():
    snippet = """
        PAGES = buffer.fetch(0)
    """
    assert codes_for(snippet) == ["RPR004"]


def test_rpr004_silent_on_function_level_io():
    snippet = """
        def load(buffer):
            return buffer.fetch(0)
    """
    assert codes_for(snippet) == []


# --------------------------------------------------------------------- #
# RPR005: module-level mutable state
# --------------------------------------------------------------------- #

BAD_STATE = """
    _cache = {}

    def lookup(key):
        return _cache.get(key)
"""

GOOD_STATE = """
    _DEFAULTS = ("a", "b")

    def lookup(key, cache):
        return cache.get(key)
"""


def test_rpr005_fires_on_module_level_dict():
    assert codes_for(BAD_STATE) == ["RPR005"]


def test_rpr005_silent_on_immutable_constants():
    assert codes_for(GOOD_STATE) == []


def test_rpr005_fires_on_global_statement():
    snippet = """
        counter = 0

        def bump():
            global counter
            counter += 1
    """
    assert "RPR005" in codes_for(snippet)


def test_rpr005_allows_all_caps_registry():
    # ALL_CAPS module registries (rule tables, flavour maps) are the
    # sanctioned pattern: written once at import, never per-run.
    snippet = """
        RULES = {}

        def register(cls):
            RULES[cls.code] = cls
            return cls
    """
    assert codes_for(snippet) == []


def test_rpr005_exempts_tests():
    assert codes_for(BAD_STATE, "tests/join/test_cache.py") == []


# --------------------------------------------------------------------- #
# RPR006: raw float equality on rectangle coordinates
# --------------------------------------------------------------------- #

BAD_EQ = """
    def touches(a, b):
        return a.xhi == b.xlo
"""

GOOD_EQ = """
    from repro.geometry import feq

    def touches(a, b):
        return feq(a.xhi, b.xlo)
"""


def test_rpr006_fires_on_raw_coordinate_equality():
    assert codes_for(BAD_EQ) == ["RPR006"]


def test_rpr006_silent_on_feq():
    assert codes_for(GOOD_EQ) == []


def test_rpr006_exempts_geometry_package():
    assert codes_for(BAD_EQ, "src/repro/geometry/rect.py") == []


def test_rpr006_ignores_non_coordinate_attributes():
    snippet = """
        def same_page(a, b):
            return a.page_id == b.page_id
    """
    assert codes_for(snippet) == []


# --------------------------------------------------------------------- #
# RPR008: writes to shared/attached column views
# --------------------------------------------------------------------- #

BAD_COLUMN_WRITE = """
    def nudge(columns, i, dx):
        columns.xlo[i] += dx
"""

GOOD_COLUMN_WRITE = """
    def nudge(columns, i, dx):
        return columns.patch_row(i, shifted(columns.rect_at(i), dx))
"""


def test_rpr008_fires_on_column_subscript_store():
    assert codes_for(BAD_COLUMN_WRITE) == ["RPR008"]


def test_rpr008_fires_on_values_store():
    snippet = """
        def renumber(shared, i, oid):
            shared.values[i] = oid
    """
    assert codes_for(snippet) == ["RPR008"]


def test_rpr008_silent_on_patch_row():
    assert codes_for(GOOD_COLUMN_WRITE) == []


def test_rpr008_silent_on_local_subscript_store():
    # Writing through a bare local (the owner's memoryview during
    # create) carries no attribute chain and stays legal.
    snippet = """
        def fill(mv, coords):
            for i, x in enumerate(coords):
                mv[i] = x
    """
    assert codes_for(snippet) == []


def test_rpr008_fires_on_writeable_reenable():
    snippet = """
        def unseal(arr):
            arr.flags.writeable = True
    """
    assert codes_for(snippet) == ["RPR008"]


def test_rpr008_silent_on_writeable_clear():
    snippet = """
        def seal(arr):
            arr.flags.writeable = False
    """
    assert codes_for(snippet) == []


def test_rpr008_exempts_owning_modules_and_tests():
    assert codes_for(BAD_COLUMN_WRITE, "src/repro/kernels/rect_array.py") == []
    assert codes_for(BAD_COLUMN_WRITE, "src/repro/parallel/shm.py") == []
    assert codes_for(BAD_COLUMN_WRITE, "tests/parallel/test_pool.py") == []


# --------------------------------------------------------------------- #
# RPR003 (flow-sensitive): custody transfer and blanket finallys
# --------------------------------------------------------------------- #

CUSTODY_PIN = """
    def find_leaf_path(tree, rect, oid, pinned):
        node = tree.read_node(tree.root_id, pin=True)
        pinned.append(node.page_id)

        def descend(node):
            child = tree.read_node(node.ref, pin=True)
            pinned.append(node.ref)
            found = descend(child)
            if found:
                return found
            pinned.pop()
            tree.buffer.unpin(node.ref)
            return None

        return descend(node)
"""

BLANKET_PIN = """
    def delete(self, rect, oid):
        pinned = []
        try:
            self._find_leaf_path(rect, oid, pinned)
            if not pinned:
                return False
            return True
        finally:
            for pid in pinned:
                self.buffer.unpin(pid)
"""

DOUBLE_PIN = """
    def match(self, page_a, page_b):
        node_a = self.buffer.fetch(page_a, pin=True)
        node_b = self.buffer.fetch(page_b, pin=True)
        try:
            return node_a, node_b
        finally:
            self.buffer.unpin(page_a)
            self.buffer.unpin(page_b)
"""

NESTED_PIN = """
    def match(self, page_a, page_b):
        node_a = self.buffer.fetch(page_a, pin=True)
        try:
            node_b = self.buffer.fetch(page_b, pin=True)
            try:
                return node_a, node_b
            finally:
                self.buffer.unpin(page_b)
        finally:
            self.buffer.unpin(page_a)
"""


def test_rpr003_custody_transfer_to_caller_param_is_silent():
    # The find_leaf_path shape the PR 8 suppressions papered over: the
    # rewrite must understand it without any directive.
    assert codes_for(CUSTODY_PIN) == []


def test_rpr003_blanket_finally_release_is_silent():
    assert codes_for(BLANKET_PIN) == []


def test_rpr003_fires_on_second_pin_before_try():
    # The double-pin-before-try shape: the first pin leaks if the
    # second fetch faults.
    assert codes_for(DOUBLE_PIN) == ["RPR003"]


def test_rpr003_silent_on_nested_try_per_pin():
    assert codes_for(NESTED_PIN) == []


def test_rpr003_fires_on_loop_carried_leak():
    snippet = """
        def sweep(self, pages):
            for page_id in pages:
                node = self.buffer.fetch(page_id, pin=True)
                if node.is_leaf:
                    continue
                self.buffer.unpin(page_id)
    """
    assert "RPR003" in codes_for(snippet)


def test_rpr003_loop_carried_release_is_silent():
    snippet = """
        def sweep(self, pages):
            for page_id in pages:
                node = self.buffer.fetch(page_id, pin=True)
                try:
                    node.touch()
                finally:
                    self.buffer.unpin(page_id)
    """
    assert codes_for(snippet) == []


# --------------------------------------------------------------------- #
# RPR009: lock-order lattice
# --------------------------------------------------------------------- #

BAD_LOCK_ORDER = """
    class ServiceMetrics:
        def report(self, registry):
            with self._lock:
                with registry._lock:
                    return registry.size()
"""

GOOD_LOCK_ORDER = """
    class ServiceMetrics:
        def report(self, registry):
            with registry._lock:
                size = registry.size()
            with self._lock:
                return size
"""


def test_rpr009_fires_on_lattice_inversion():
    assert codes_for(BAD_LOCK_ORDER, "src/repro/service/example.py") == [
        "RPR009"
    ]


def test_rpr009_silent_on_sequential_lattice_order():
    assert codes_for(GOOD_LOCK_ORDER, "src/repro/service/example.py") == []


def test_rpr009_allows_forward_nesting():
    snippet = """
        class WorkspaceRegistry:
            def serve(self, session):
                with self._lock:
                    with session.lock:
                        return session.run()
    """
    assert codes_for(snippet, "src/repro/service/example.py") == []


def test_rpr009_fires_on_manual_acquire_without_release_path():
    snippet = """
        class WorkerPool:
            def dispatch(self, job):
                self._lock.acquire()
                if job.empty():
                    return None
                self._lock.release()
                return job
    """
    assert "RPR009" in codes_for(snippet, "src/repro/parallel/example.py")


def test_rpr009_silent_on_manual_acquire_with_finally():
    snippet = """
        class WorkerPool:
            def dispatch(self, job):
                self._lock.acquire()
                try:
                    return job.run()
                finally:
                    self._lock.release()
    """
    assert codes_for(snippet, "src/repro/parallel/example.py") == []


def test_rpr009_sees_inversion_through_helper_summary():
    snippet = """
        def _publish(pool, item):
            with pool._lock:
                pool.push(item)


        class ServiceMetrics:
            def record(self, pool, item):
                with self._lock:
                    _publish(pool, item)
    """
    assert "RPR009" in codes_for(snippet, "src/repro/service/example.py")


def test_rpr009_ignores_unclassified_locks():
    snippet = """
        class _Ticket:
            def resolve(self, response):
                with self._lock:
                    self.value = response
    """
    assert codes_for(snippet, "src/repro/service/example.py") == []


# --------------------------------------------------------------------- #
# RPR010: shared-segment lifecycle
# --------------------------------------------------------------------- #

BAD_SEGMENT_LEAK = """
    from multiprocessing.shared_memory import SharedMemory

    def build(nbytes):
        seg = SharedMemory(create=True, size=nbytes)
        seg.buf[:4] = b"demo"
        seg.close()
"""

GOOD_SEGMENT_FULL_LIFECYCLE = """
    from multiprocessing.shared_memory import SharedMemory

    def build(nbytes):
        seg = SharedMemory(create=True, size=nbytes)
        try:
            seg.buf[:4] = b"demo"
        finally:
            seg.close()
            seg.unlink()
"""


def test_rpr010_fires_on_created_segment_without_unlink():
    assert codes_for(
        BAD_SEGMENT_LEAK, "src/repro/parallel/example.py"
    ) == ["RPR010"]


def test_rpr010_silent_on_full_lifecycle():
    assert codes_for(
        GOOD_SEGMENT_FULL_LIFECYCLE, "src/repro/parallel/example.py"
    ) == []


def test_rpr010_fires_on_attached_segment_without_close():
    snippet = """
        from multiprocessing.shared_memory import SharedMemory

        def read(name):
            seg = SharedMemory(name=name)
            return bytes(seg.buf[:4])
    """
    assert "RPR010" in codes_for(snippet, "src/repro/parallel/example.py")


def test_rpr010_fires_on_attacher_unlink():
    snippet = """
        from multiprocessing.shared_memory import SharedMemory

        def teardown(name):
            seg = SharedMemory(name=name)
            seg.close()
            seg.unlink()
    """
    assert "RPR010" in codes_for(snippet, "src/repro/parallel/example.py")


def test_rpr010_escape_transfers_the_obligation():
    snippet = """
        from multiprocessing.shared_memory import SharedMemory

        def build(nbytes, registry):
            seg = SharedMemory(create=True, size=nbytes)
            registry.adopt(seg)
    """
    assert codes_for(snippet, "src/repro/parallel/example.py") == []


def test_rpr010_raise_paths_are_exempt():
    snippet = """
        from multiprocessing.shared_memory import SharedMemory

        def build(nbytes):
            seg = SharedMemory(create=True, size=nbytes)
            if nbytes > 1 << 30:
                raise ValueError("too big")
            return seg
    """
    assert codes_for(snippet, "src/repro/parallel/example.py") == []


# --------------------------------------------------------------------- #
# RPR011: blocking calls in service coroutines
# --------------------------------------------------------------------- #

BAD_ASYNC_SLEEP = """
    import time

    async def watchdog(self):
        time.sleep(1.0)
"""

GOOD_ASYNC_SLEEP = """
    import asyncio

    async def watchdog(self):
        await asyncio.sleep(1.0)
"""

SERVICE = "src/repro/service/example.py"


def test_rpr011_fires_on_time_sleep_in_coroutine():
    assert codes_for(BAD_ASYNC_SLEEP, SERVICE) == ["RPR011"]


def test_rpr011_silent_on_awaited_sleep():
    assert codes_for(GOOD_ASYNC_SLEEP, SERVICE) == []


def test_rpr011_only_applies_to_service_paths():
    assert codes_for(BAD_ASYNC_SLEEP, "src/repro/join/example.py") == []


def test_rpr011_fires_on_executor_shutdown_inline():
    snippet = """
        async def stop(self):
            self._executor.shutdown(wait=True)
    """
    assert codes_for(snippet, SERVICE) == ["RPR011"]


def test_rpr011_silent_on_executor_hop():
    snippet = """
        import asyncio
        import functools

        async def stop(self):
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, functools.partial(self._executor.shutdown, wait=True)
            )
    """
    assert codes_for(snippet, SERVICE) == []


def test_rpr011_nowait_shutdown_is_exempt():
    snippet = """
        async def stop(self):
            self._executor.shutdown(wait=False)
    """
    assert codes_for(snippet, SERVICE) == []


def test_rpr011_fires_on_sync_lattice_lock_in_coroutine():
    snippet = """
        async def record(self, session):
            with session.lock:
                session.touch()
    """
    assert codes_for(snippet, SERVICE) == ["RPR011"]


def test_rpr011_fires_on_accounted_io_in_coroutine():
    snippet = """
        async def peek(self, page_id):
            return self.buffer.fetch(page_id)
    """
    assert codes_for(snippet, SERVICE) == ["RPR011"]


def test_rpr011_sync_helpers_inside_service_are_exempt():
    snippet = """
        def helper(buffer, page_id):
            return buffer.fetch(page_id)
    """
    assert codes_for(snippet, SERVICE) == []
