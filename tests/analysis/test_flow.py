"""Unit tests for the CFG / typestate engine behind the flow-sensitive
lint rules: block construction, event ordering, finally inlining, exit
labelling, walker fixpoints, and the one-level call summaries."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis import flow
from repro.analysis.lockspec import classify_lock_expr


def build(snippet: str) -> flow.CFG:
    tree = ast.parse(textwrap.dedent(snippet))
    func = next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return flow.CFG(func)


def trace_walk(cfg: flow.CFG) -> list[flow.ExitState]:
    """Walk recording the (kind, lineno) trail of every path."""

    def transfer(state, event, block):
        line = getattr(event.node, "lineno", 0)
        return (state + ((event.kind, line),),)

    return flow.walk(cfg, transfer, ())


def exit_kinds(cfg: flow.CFG) -> set[str]:
    return {e.kind for e in trace_walk(cfg)}


# --------------------------------------------------------------------- #
# Construction basics
# --------------------------------------------------------------------- #


def test_straight_line_single_end_exit():
    cfg = build("""
        def f(x):
            a = x + 1
            b = a * 2
            return b
    """)
    exits = trace_walk(cfg)
    assert [e.kind for e in exits] == ["return"]
    kinds = [kind for kind, _ in exits[0].state]
    assert kinds == ["stmt", "stmt", "expr"]  # the return value expr


def test_if_else_yields_both_paths():
    cfg = build("""
        def f(x):
            if x:
                y = 1
            else:
                y = 2
            return y
    """)
    exits = trace_walk(cfg)
    assert len(exits) == 2  # one abstract state per arm
    lines = {tuple(line for _, line in e.state) for e in exits}
    assert len(lines) == 2


def test_early_return_and_fallthrough_are_separate_exits():
    cfg = build("""
        def f(x):
            if x:
                return 1
            x.cleanup()
    """)
    exits = trace_walk(cfg)
    assert sorted(e.kind for e in exits) == ["end", "return"]


def test_explicit_raise_is_a_raise_exit():
    cfg = build("""
        def f(x):
            if not x:
                raise ValueError("boom")
            return x
    """)
    assert exit_kinds(cfg) == {"raise", "return"}


# --------------------------------------------------------------------- #
# Loops
# --------------------------------------------------------------------- #


def test_while_loop_reaches_fixpoint():
    cfg = build("""
        def f(n):
            total = 0
            while n:
                total += n
                n -= 1
            return total
    """)

    # A state that grows per iteration would never converge; cap growth
    # by folding into a bounded abstraction (iteration count saturates).
    def transfer(state, event, block):
        if event.kind == "stmt":
            return (min(state + 1, 3),)
        return (state,)

    exits = flow.walk(cfg, transfer, 0)
    assert {e.kind for e in exits} == {"return"}
    assert {e.state for e in exits} <= {1, 2, 3}


def test_for_loop_emits_iter_expr_and_loop_header():
    cfg = build("""
        def f(items):
            for item in items:
                item.touch()
    """)
    kinds = [
        (event.kind, type(event.node).__name__)
        for block in cfg.blocks for event in block.events
    ]
    assert ("expr", "Attribute") not in kinds  # iter is the Name 'items'
    assert ("loop", "For") in kinds


def test_break_and_continue_edges():
    cfg = build("""
        def f(items):
            for item in items:
                if item.skip:
                    continue
                if item.last:
                    break
                item.touch()
            return True
    """)
    exits = trace_walk(cfg)
    assert {e.kind for e in exits} == {"return"}


# --------------------------------------------------------------------- #
# try / finally
# --------------------------------------------------------------------- #


def test_finally_inlined_on_fallthrough_and_return():
    cfg = build("""
        def f(res):
            res.open()
            try:
                if res.bad:
                    return None
                res.use()
            finally:
                res.close()
            return res
    """)
    exits = trace_walk(cfg)
    # Both return paths must run the finally body (a final_stmt event)
    # before exiting.
    for e in exits:
        kinds = [kind for kind, _ in e.state]
        assert "final_stmt" in kinds
        close_at = kinds.index("final_stmt")
        assert e.kind == "return"
        assert close_at > 0


def test_finally_inlined_before_raise_unwind():
    cfg = build("""
        def f(res):
            try:
                raise ValueError("boom")
            finally:
                res.close()
    """)
    exits = trace_walk(cfg)
    raise_exits = [e for e in exits if e.kind == "raise"]
    assert raise_exits
    for e in raise_exits:
        assert ("final_stmt", 6) in e.state  # res.close() line


def test_try_body_blocks_carry_finally_protection():
    cfg = build("""
        def f(res):
            res.open()
            try:
                res.use()
            finally:
                res.close()
    """)
    protected = [
        block for block in cfg.blocks
        if any(event.kind == "stmt" for event in block.events)
        and block.protections
    ]
    assert protected  # the try-body block references the finalbody
    assert cfg.finalbodies  # and the raw statements are available
    fb = cfg.finalbodies[protected[0].protections[0]]
    assert isinstance(fb[0], ast.Expr)


def test_handler_entered_with_try_entry_state():
    cfg = build("""
        def f(res):
            marker = 1
            try:
                marker = 2
            except ValueError:
                recover()
            return marker
    """)
    exits = trace_walk(cfg)
    # Two paths: through the body, and through the handler (which must
    # NOT include the body's assignment event — handlers start from the
    # try-entry state).
    handler_paths = [
        e for e in exits if any(line == 7 for _, line in e.state)
    ]
    assert handler_paths
    for e in handler_paths:
        assert all(line != 5 for _, line in e.state)


# --------------------------------------------------------------------- #
# with / async constructs
# --------------------------------------------------------------------- #


def test_nested_with_exits_in_reverse_order():
    cfg = build("""
        def f(a, b):
            with a.lock:
                with b.lock:
                    work()
    """)
    exits = trace_walk(cfg)
    assert len(exits) == 1
    kinds = [kind for kind, _ in exits[0].state]
    assert kinds == [
        "with_enter", "with_enter", "stmt", "with_exit", "with_exit",
    ]


def test_with_exits_unwound_before_return():
    cfg = build("""
        def f(a):
            with a.lock:
                return a.value
    """)
    exits = trace_walk(cfg)
    assert [e.kind for e in exits] == ["return"]
    kinds = [kind for kind, _ in exits[0].state]
    assert kinds.index("with_exit") > kinds.index("with_enter")


def test_async_constructs_build_and_walk():
    cfg = build("""
        async def f(session, items):
            async with session.lock:
                async for item in items:
                    await item.process()
            return True
    """)
    exits = trace_walk(cfg)
    assert {e.kind for e in exits} == {"return"}
    enter = [
        event for block in cfg.blocks for event in block.events
        if event.kind == "with_enter"
    ]
    assert enter and enter[0].is_async


# --------------------------------------------------------------------- #
# Walker bounds and determinism
# --------------------------------------------------------------------- #


def test_state_explosion_is_bounded():
    # 2^20 syntactic paths; the per-block cap keeps the walk linear.
    branches = "\n".join(
        f"    if x[{i}]:\n        y = {i}" for i in range(20)
    )
    cfg = build(f"def f(x):\n{branches}\n    return y")

    def transfer(state, event, block):
        line = getattr(event.node, "lineno", 0)
        return (state + ((event.kind, line),),)

    exits = flow.walk(cfg, transfer, ())
    assert exits
    assert len(exits) <= flow.MAX_STATES_PER_BLOCK


def test_walk_is_deterministic():
    cfg = build("""
        def f(x):
            if x.a:
                y = 1
            if x.b:
                y = 2
            return y
    """)
    first = trace_walk(cfg)
    second = trace_walk(cfg)
    assert first == second


def test_transfer_can_kill_a_path():
    cfg = build("""
        def f(x):
            if x:
                poison()
            return x
    """)

    def transfer(state, event, block):
        for node in ast.walk(event.node):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ) and node.func.id == "poison":
                return ()
        return (state,)

    exits = flow.walk(cfg, transfer, ())
    assert len(exits) == 1  # only the poison-free path survives


# --------------------------------------------------------------------- #
# Call summaries
# --------------------------------------------------------------------- #


SUMMARY_MODULE = """
def find_leaf_path(tree, rect, oid, pinned):
    node = tree.read_node(tree.root_id, pin=True)
    pinned.append(node.page_id)
    return node


class RTree:
    def _find_leaf_path(self, rect, oid, pinned):
        return find_leaf_path(self, rect, oid, pinned)

    def delete(self, rect, oid):
        pinned = []
        try:
            self._find_leaf_path(rect, oid, pinned)
        finally:
            for pid in pinned:
                self.buffer.unpin(pid)

    def locked_op(self):
        with self.lock:
            return 1
"""


def test_summary_finds_direct_pin_custody_param():
    tree = ast.parse(SUMMARY_MODULE)
    summaries = flow.function_summaries(tree)
    assert summaries["find_leaf_path"].pin_param == "pinned"


def test_summary_propagates_custody_through_forwarders():
    tree = ast.parse(SUMMARY_MODULE)
    summaries = flow.function_summaries(tree)
    assert summaries["_find_leaf_path"].pin_param == "pinned"


def test_summary_collects_lock_domains():
    source = """
class ResidentSession:
    def __init__(self):
        self.lock = None

    def op(self):
        with self.lock:
            return 1


def helper(session):
    return session.op()
"""
    tree = ast.parse(source)
    summaries = flow.function_summaries(
        tree, classify_lock=classify_lock_expr
    )
    assert summaries["op"].lock_domains == frozenset({"session"})
    assert summaries["helper"].lock_domains == frozenset({"session"})


def test_map_argument_shifts_for_method_calls():
    source = "obj.helper(rect, oid, pins)"
    call = ast.parse(source).body[0].value
    summary = flow.FunctionSummary(
        name="helper",
        params=("self", "rect", "oid", "pinned"),
        pin_param="pinned",
        lock_domains=frozenset(),
    )
    arg = flow.map_argument(summary, call, 3)
    assert isinstance(arg, ast.Name) and arg.id == "pins"
