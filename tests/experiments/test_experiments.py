"""Tests for the experiment harness: profiles, configs, paper data."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.configs import (
    ALGORITHMS,
    EXPERIMENTS,
    FIGURES,
    SERIES_TABLES,
    get_experiment,
    series_for_figure,
    series_x_values,
)
from repro.experiments.paper_data import (
    PAPER_ALGORITHMS,
    PAPER_TABLES,
    paper_construct_io,
    paper_match_io,
    paper_total,
)
from repro.experiments.profiles import PROFILES, get_profile


class TestProfiles:
    def test_all_profiles_exist(self):
        assert set(PROFILES) == {"tiny", "small", "quarter", "full"}

    def test_full_profile_is_the_paper(self):
        full = get_profile("full")
        assert full.divisor == 1
        assert full.config.page_size == 1024
        assert full.config.buffer_pages == 512
        assert full.config.node_capacity == 50
        assert full.objects(100_000) == 100_000
        assert full.objects_per_cluster == 200

    def test_scaling_preserves_cluster_count(self):
        for prof in PROFILES.values():
            full_clusters = 100_000 / 200
            scaled_clusters = prof.objects(100_000) / prof.objects_per_cluster
            assert scaled_clusters == pytest.approx(full_clusters, rel=0.1)

    def test_unknown_profile_raises(self):
        with pytest.raises(ExperimentError):
            get_profile("gigantic")

    def test_tiny_is_smallest(self):
        sizes = {
            name: p.objects(100_000) for name, p in PROFILES.items()
        }
        assert sizes["tiny"] < sizes["small"] < sizes["quarter"] < sizes["full"]


class TestConfigs:
    def test_eight_tables(self):
        assert sorted(EXPERIMENTS) == list(range(1, 9))

    def test_series_membership(self):
        assert SERIES_TABLES[1] == (1, 2, 3, 4)
        assert SERIES_TABLES[2] == (2, 5, 6, 7, 8)

    def test_series1_varies_ds(self):
        sizes = [EXPERIMENTS[t].d_s_full for t in SERIES_TABLES[1]]
        assert sizes == [20_000, 40_000, 60_000, 80_000]
        assert all(
            EXPERIMENTS[t].cover_quotient == 0.2 for t in SERIES_TABLES[1]
        )

    def test_series2_varies_quotient(self):
        quotients = [EXPERIMENTS[t].cover_quotient for t in SERIES_TABLES[2]]
        assert quotients == [0.2, 0.4, 0.6, 0.8, 1.0]
        assert all(
            EXPERIMENTS[t].d_s_full == 40_000 for t in SERIES_TABLES[2]
        )

    def test_six_figures(self):
        assert sorted(FIGURES) == [6, 7, 8, 9, 10, 11]

    def test_series_for_figure(self):
        assert series_for_figure(6) == 1
        assert series_for_figure(11) == 2
        with pytest.raises(ExperimentError):
            series_for_figure(12)

    def test_series_x_values(self):
        assert series_x_values(1) == [20_000, 40_000, 60_000, 80_000]
        assert series_x_values(2) == [0.2, 0.4, 0.6, 0.8, 1.0]
        with pytest.raises(ExperimentError):
            series_x_values(3)

    def test_get_experiment_rejects_unknown(self):
        with pytest.raises(ExperimentError):
            get_experiment(9)

    def test_titles(self):
        assert "40K" in EXPERIMENTS[2].title()
        assert EXPERIMENTS[5].name == "table5"


class TestPaperData:
    def test_every_table_has_all_algorithms(self):
        for table, rows in PAPER_TABLES.items():
            assert tuple(rows) == PAPER_ALGORITHMS

    def test_algorithms_match_harness(self):
        assert ALGORITHMS == PAPER_ALGORITHMS

    def test_row_shape(self):
        for rows in PAPER_TABLES.values():
            for row in rows.values():
                assert len(row) == 7
                assert all(v >= 0 for v in row)

    def test_helpers(self):
        assert paper_total(2, "BFJ") == 8864
        assert paper_match_io(2, "RTJ") == 2439
        assert paper_construct_io(2, "RTJ") == 50 + 6015 + 1219

    def test_headline_claims_hold_in_paper_data(self):
        """Sanity: the transcription preserves the paper's own claims."""
        for table in range(2, 9):
            best_stj = min(
                paper_total(table, a) for a in PAPER_ALGORITHMS
                if a.startswith("STJ")
            )
            assert best_stj < paper_total(table, "BFJ")
            assert best_stj < paper_total(table, "RTJ")
        # Table 1 is the boundary case: BFJ wins there.
        assert paper_total(1, "BFJ") < min(
            paper_total(1, a) for a in PAPER_ALGORITHMS if a != "BFJ"
        )

    def test_rtj_worse_than_bfj_in_series1(self):
        for table in (2, 3, 4):
            assert paper_total(table, "RTJ") > paper_total(table, "BFJ")

    def test_filtering_multiplies_bbox_tests(self):
        for table in PAPER_TABLES:
            n = PAPER_TABLES[table]["STJ1-2N"][5]
            f = PAPER_TABLES[table]["STJ1-2F"][5]
            assert f > 4 * n
