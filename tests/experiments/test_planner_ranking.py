"""The cost model's ranking against measured costs from the runner.

Every ``TableResult`` now carries the planner's :class:`JoinPlan`,
computed from the same join-time metadata the measured runs saw. The
estimators are deliberately coarse — their contract is *ordering*, not
counts — so these tests pin the ranking properties on a small, fixed-seed
:class:`ScaleProfile` run rather than any absolute value.
"""

import pytest

from repro.experiments.runner import run_table

METHODS = ("BFJ", "RTJ", "STJ1-2N")

#: Maps an estimate's method name to the measured algorithm name.
_MEASURED_NAME = {"STJ": "STJ1-2N", "BFJ": "BFJ", "RTJ": "RTJ"}


def _rankings(table: int):
    result = run_table(table, profile="tiny", seed=0, algorithms=METHODS)
    measured = {r.algorithm: r.summary.total_io for r in result.rows}
    estimated = {
        _MEASURED_NAME[e.method]: e.total_io
        for e in result.plan.estimates
    }
    return (
        result,
        sorted(measured, key=measured.__getitem__),
        sorted(estimated, key=estimated.__getitem__),
    )


def test_plan_attached_with_phase_breakdown():
    result, _, _ = _rankings(5)
    assert result.plan is not None
    for estimate in result.plan.estimates:
        breakdown = estimate.phase_io()
        assert set(breakdown) == {"construct", "match"}
        assert sum(breakdown.values()) == pytest.approx(estimate.total_io)


def test_full_ranking_matches_measured_in_overflow_regime():
    """Table 5 (both trees overflow the buffer) separates all three
    methods; the estimated ranking must equal the measured one."""
    _, measured_rank, estimated_rank = _rankings(5)
    assert estimated_rank == measured_rank
    assert measured_rank[0] == "STJ1-2N"


@pytest.mark.parametrize("table", [2, 3, 5])
def test_predicted_winner_is_measured_winner(table):
    _, measured_rank, estimated_rank = _rankings(table)
    assert estimated_rank[0] == measured_rank[0]


def test_winner_never_a_measured_blowup():
    """Across the series-1 tables the planner's pick stays within 2x of
    the measured-best method (it may lose the photo finish of Table 1,
    where BFJ and STJ are close, but must never choose a blowup)."""
    for table in (1, 2, 3, 4):
        result, measured_rank, _ = _rankings(table)
        measured = {r.algorithm: r.summary.total_io for r in result.rows}
        pick = _MEASURED_NAME[result.plan.best.method]
        assert measured[pick] <= 2.0 * measured[measured_rank[0]], table
