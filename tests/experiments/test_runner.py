"""Tests for the experiment runner, table/figure rendering, and CLI.

A "micro" profile keeps these fast while preserving the machinery: every
algorithm variant really runs, results are cross-checked, and the output
formats are exercised end to end.
"""

import pytest

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.experiments import (
    TableResult,
    regenerate_figure,
    regenerate_table,
    run_series,
    run_table,
)
from repro.experiments.cli import build_parser, main
from repro.experiments.figures import figure_series, format_figure, paper_figure_series
from repro.experiments.profiles import ScaleProfile
from repro.experiments.tables import format_table

MICRO = ScaleProfile(
    name="micro",
    divisor=50,
    config=SystemConfig(page_size=104, buffer_pages=48),
    description="test-only profile",
)


@pytest.fixture(scope="module")
def table2():
    return run_table(2, profile=MICRO, seed=0)


@pytest.fixture(scope="module")
def series1():
    return run_series(1, profile=MICRO, seed=0)


class TestRunTable:
    def test_all_algorithms_present(self, table2):
        assert [r.algorithm for r in table2.rows] == [
            "BFJ", "RTJ", "STJ1-2N", "STJ2-2N", "STJ1-2F", "STJ2-2F",
            "STJ1-3F", "STJ2-3F",
        ]

    def test_all_agree_on_pairs(self, table2):
        counts = {r.pairs for r in table2.rows}
        assert len(counts) == 1

    def test_sizes_scaled(self, table2):
        assert table2.d_r_size == 2000
        assert table2.d_s_size == 800

    def test_summaries_populated(self, table2):
        for row in table2.rows:
            assert row.summary.total_io > 0
            assert row.elapsed_s > 0
        bfj = table2.row("BFJ")
        assert bfj.summary.construct_read == 0
        assert bfj.summary.xy_tests == 0

    def test_row_lookup_unknown_raises(self, table2):
        with pytest.raises(ExperimentError):
            table2.row("ZORDER")

    def test_unknown_table_raises(self):
        with pytest.raises(ExperimentError):
            run_table(9, profile=MICRO)

    def test_subset_of_algorithms(self):
        result = run_table(1, profile=MICRO, algorithms=("BFJ", "STJ1-2N"))
        assert len(result.rows) == 2

    def test_deterministic_for_seed(self):
        a = run_table(1, profile=MICRO, seed=3,
                      algorithms=("BFJ",)).row("BFJ")
        b = run_table(1, profile=MICRO, seed=3,
                      algorithms=("BFJ",)).row("BFJ")
        assert a.summary == b.summary
        assert a.pairs == b.pairs

    def test_title_mentions_profile(self, table2):
        assert "micro" in table2.title()


class TestRunSeries:
    def test_series1_tables(self, series1):
        assert sorted(series1) == [1, 2, 3, 4]
        assert all(isinstance(r, TableResult) for r in series1.values())

    def test_series1_shares_dr(self, series1):
        assert len({r.d_r_size for r in series1.values()}) == 1

    def test_ds_grows_along_series1(self, series1):
        sizes = [series1[t].d_s_size for t in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == 4

    def test_unknown_series_raises(self):
        with pytest.raises(ExperimentError):
            run_series(3, profile=MICRO)

    def test_series2_runs(self):
        results = run_series(
            2, profile=MICRO, algorithms=("BFJ", "STJ1-2N")
        )
        assert sorted(results) == [2, 5, 6, 7, 8]
        quotients = [results[t].spec.cover_quotient for t in (2, 5, 6, 7, 8)]
        assert quotients == [0.2, 0.4, 0.6, 0.8, 1.0]


class TestFormatting:
    def test_format_table_plain(self, table2):
        text = format_table(table2)
        assert "Table 2" in text
        assert "STJ1-2N" in text
        assert "match rd" in text

    def test_format_table_with_paper(self, table2):
        text = format_table(table2, compare_paper=True)
        assert "Paper's Table 2" in text
        assert "8864" in text  # paper's BFJ total

    def test_regenerate_table_end_to_end(self):
        text = regenerate_table(1, profile=MICRO, compare_paper=True,
                                algorithms=("BFJ", "RTJ"))
        assert "Table 1" in text

    def test_figure_series_extraction(self, series1):
        series = figure_series(6, series1)
        names = [name for name, _ in series]
        assert "BFJ" in names and "STJ1-2N" in names
        for _, values in series:
            assert len(values) == 4

    def test_figure_series_missing_tables(self, series1):
        partial = {1: series1[1]}
        with pytest.raises(ExperimentError):
            figure_series(6, partial)

    def test_format_figure(self, series1):
        text = format_figure(6, series1, compare_paper=True)
        assert "Figure 6" in text
        assert "||D_S||" in text
        assert "Paper's Figure 6" in text

    def test_regenerate_figure_with_cached_results(self, series1):
        text = regenerate_figure(7, results=series1)
        assert "Figure 7" in text

    def test_regenerate_unknown_figure(self):
        with pytest.raises(ExperimentError):
            regenerate_figure(5, profile=MICRO)

    def test_paper_figure_series_shapes(self):
        series = paper_figure_series(6)
        bfj = dict(series)["BFJ"]
        assert bfj == [438.0, 8864.0, 13650.0, 17151.0]


class TestCli:
    def test_parser_accepts_commands(self):
        parser = build_parser()
        args = parser.parse_args(["table", "3", "--profile", "tiny"])
        assert args.command == "table"
        assert args.number == 3

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out
        assert "Figure 11" in out
        assert "quarter" in out

    def test_parser_rejects_bad_table(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "12"])

    def test_parser_rejects_bad_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "1", "--profile", "huge"])


class TestJsonExport:
    def test_to_dict_round_trips_through_json(self, table2):
        import json

        payload = json.loads(json.dumps(table2.to_dict()))
        assert payload["table"] == 2
        assert payload["profile"] == "micro"
        assert len(payload["rows"]) == 8
        bfj = payload["rows"][0]
        assert bfj["algorithm"] == "BFJ"
        assert bfj["construct_read"] == 0
        assert bfj["total_io"] > 0
        assert bfj["pairs"] == table2.rows[0].pairs

    def test_cli_json_flag(self, capsys):
        import json

        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            ["table", "1", "--profile", "tiny", "--json"]
        )
        assert args.json


class TestRepeatedRuns:
    def test_aggregates_across_seeds(self):
        from repro.experiments import run_table_repeated

        results, aggregates = run_table_repeated(
            1, seeds=(0, 1), profile=MICRO,
            algorithms=("BFJ", "STJ1-2N"),
        )
        assert len(results) == 2
        assert [a.algorithm for a in aggregates] == ["BFJ", "STJ1-2N"]
        for agg in aggregates:
            assert agg.runs == 2
            assert agg.min_total <= agg.mean_total <= agg.max_total
            assert agg.stdev_total >= 0
            assert 0 <= agg.spread

    def test_single_seed_has_zero_stdev(self):
        from repro.experiments import run_table_repeated

        _, aggregates = run_table_repeated(
            1, seeds=(5,), profile=MICRO, algorithms=("BFJ",),
        )
        assert aggregates[0].stdev_total == 0.0
        assert aggregates[0].spread == 0.0

    def test_empty_seeds_rejected(self):
        from repro.experiments import run_table_repeated

        with pytest.raises(ExperimentError):
            run_table_repeated(1, seeds=(), profile=MICRO)


class TestChartOutput:
    def test_figure_with_chart(self, series1):
        text = regenerate_figure(6, results=series1, chart=True,
                                 compare_paper=False)
        assert "Figure 6" in text
        assert "B=BFJ" in text       # chart legend
        assert "+---" in text        # chart axis

    def test_cli_accepts_chart_flag(self):
        args = build_parser().parse_args(
            ["figure", "6", "--profile", "tiny", "--chart"]
        )
        assert args.chart
