"""Tests for the executable headline-claims validator."""

import pytest

from repro.config import SystemConfig
from repro.experiments.claims import (
    CLAIMS,
    ClaimOutcome,
    evaluate_claims,
    format_claims,
)
from repro.experiments.profiles import ScaleProfile
from repro.experiments.runner import run_series

MICRO = ScaleProfile(
    name="micro",
    divisor=50,
    config=SystemConfig(page_size=224, buffer_pages=40),
    description="claims-test profile (fan-out 10)",
)


@pytest.fixture(scope="module")
def both_series():
    results = {}
    for series in (1, 2):
        results.update(run_series(series, profile=MICRO, seed=0))
    return results


class TestClaimRegistry:
    def test_nine_claims(self):
        assert [c.number for c in CLAIMS] == list(range(1, 10))

    def test_texts_are_unique(self):
        assert len({c.text for c in CLAIMS}) == len(CLAIMS)

    def test_only_boundary_claim_is_profile_gated(self):
        gated = [c.number for c in CLAIMS if c.profiles]
        assert gated == [2]


class TestEvaluate:
    def test_every_claim_gets_an_outcome(self, both_series):
        outcomes = evaluate_claims(both_series, "micro")
        assert len(outcomes) == len(CLAIMS)
        assert all(isinstance(o, ClaimOutcome) for o in outcomes)

    def test_gated_claim_skipped_on_foreign_profile(self, both_series):
        outcomes = evaluate_claims(both_series, "micro")
        boundary = next(o for o in outcomes if o.claim.number == 2)
        assert boundary.passed is None

    def test_gated_claim_checked_on_matching_profile(self, both_series):
        outcomes = evaluate_claims(both_series, "quarter")
        boundary = next(o for o in outcomes if o.claim.number == 2)
        assert boundary.passed is not None

    def test_core_claims_hold_even_at_micro_scale(self, both_series):
        """The scale-robust claims (1, 3, 4) must hold even on the
        smallest profile the machinery supports."""
        outcomes = {o.claim.number: o for o in
                    evaluate_claims(both_series, "micro")}
        for number in (1, 3, 4):
            assert outcomes[number].passed, outcomes[number].detail

    def test_details_are_informative(self, both_series):
        for o in evaluate_claims(both_series, "micro"):
            assert o.detail
            assert len(o.detail) > 10


class TestFormat:
    def test_format_lists_every_claim(self, both_series):
        text = format_claims(evaluate_claims(both_series, "micro"))
        for claim in CLAIMS:
            assert f"{claim.number}." in text
        assert "claims hold" in text

    def test_format_marks_skips(self, both_series):
        text = format_claims(evaluate_claims(both_series, "micro"))
        assert "[SKIP]" in text  # claim 2 on a foreign profile

    def test_failed_claims_render_fail(self):
        claim = CLAIMS[0]
        text = format_claims(
            [ClaimOutcome(claim, False, "it broke")]
        )
        assert "[FAIL]" in text
        assert "0/1 claims hold" in text
