"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_storage_family(self):
        assert issubclass(errors.PageNotFoundError, errors.StorageError)
        assert issubclass(errors.BufferFullError, errors.StorageError)
        assert issubclass(errors.PinError, errors.StorageError)

    def test_tree_family(self):
        assert issubclass(errors.NodeOverflowError, errors.TreeError)
        assert issubclass(errors.SeedingError, errors.TreeError)
        assert issubclass(errors.TreePhaseError, errors.TreeError)

    def test_one_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.ExperimentError("boom")


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        major, *_ = repro.__version__.split(".")
        assert int(major) >= 1

    def test_key_entry_points_present(self):
        # The names a downstream user builds on; renaming any of these
        # is a breaking change and should trip this test.
        for name in ("Workspace", "SeededTree", "RTree", "spatial_join",
                     "seeded_tree_join", "two_seeded_join", "z_order_join",
                     "plan_spatial_join", "Rect", "SystemConfig"):
            assert name in repro.__all__

    def test_experiments_package_importable(self):
        from repro.experiments import EXPERIMENTS, PROFILES

        assert EXPERIMENTS and PROFILES
