"""Property tests pinning down the grid-partitioning invariants.

The parallel executor's correctness rests on three facts about
:class:`~repro.partition.GridPartitioner`:

1. **Replication is total** — every rectangle lands in at least one
   tile, so no input object can vanish during sharding.
2. **Dedup is exact** — for any intersecting pair, exactly one tile
   both holds copies of the pair (replication) and owns it
   (reference-point rule). One owner means no duplicates; the owner
   being inside both replication sets means no losses.
3. **Tiling covers the universe** — the tiles' union is the universe
   with no gaps, including at the float-sensitive last row/column.

Hypothesis drives these over adversarial extents: zero-area
rectangles, rectangles spanning every tile, and degenerate (zero
width/height) universes.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.geometry import Rect
from repro.partition import GridPartitioner, joint_universe, make_shards

from ..strategies import rects, small_rects

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

grid_dims = st.tuples(
    st.integers(min_value=1, max_value=7), st.integers(min_value=1, max_value=7)
)

#: Rectangles including deliberately nasty ones: points (zero area),
#: thin slivers along an axis, and the full universe.
adversarial_rects = st.one_of(
    rects(),
    small_rects(),
    st.builds(lambda x, y: Rect(x, y, x, y), st.floats(0, 1), st.floats(0, 1)),
    st.builds(lambda y: Rect(0.0, y, 1.0, y), st.floats(0, 1)),
    st.just(UNIT),
)


# --------------------------------------------------------------------- #
# Grid construction
# --------------------------------------------------------------------- #


@given(grid_dims)
def test_tiling_covers_universe(dims):
    rows, cols = dims
    part = GridPartitioner(UNIT, rows, cols)
    assert len(part.tiles) == rows * cols == part.num_tiles
    # Tiles abut exactly: each row/column boundary is shared, and the
    # last tile closes on the universe edge with no float drift.
    for tile in part.tiles:
        assert tile.index == tile.row * cols + tile.col
        if tile.col == cols - 1:
            # repro-lint: disable=RPR006 -- bit-exact shared edges are the tested property
            assert tile.rect.xhi == UNIT.xhi
        else:
            right = part.tiles[tile.index + 1]
            # repro-lint: disable=RPR006 -- bit-exact shared edges are the tested property
            assert tile.rect.xhi == right.rect.xlo
        if tile.row == rows - 1:
            # repro-lint: disable=RPR006 -- bit-exact shared edges are the tested property
            assert tile.rect.yhi == UNIT.yhi
        else:
            above = part.tiles[tile.index + cols]
            # repro-lint: disable=RPR006 -- bit-exact shared edges are the tested property
            assert tile.rect.yhi == above.rect.ylo
    # Area is conserved, so there are neither gaps nor overlaps beyond
    # the shared (measure-zero) boundaries.
    total = sum(t.rect.width * t.rect.height for t in part.tiles)
    assert math.isclose(total, UNIT.width * UNIT.height, rel_tol=1e-9)


@given(st.integers(min_value=1, max_value=40))
def test_for_tile_count_reaches_target(n):
    part = GridPartitioner.for_tile_count(UNIT, n)
    assert part.num_tiles >= n
    # Near-square: never more than one extra row's worth of tiles.
    assert part.num_tiles <= n + part.cols


def test_degenerate_grids_rejected():
    with pytest.raises(ExperimentError):
        GridPartitioner(UNIT, 0, 3)
    with pytest.raises(ExperimentError):
        GridPartitioner.for_tile_count(UNIT, 0)


@given(adversarial_rects, grid_dims)
def test_degenerate_universe_collapses_axis(rect, dims):
    """A zero-width universe still tiles, owns, and replicates."""
    rows, cols = dims
    flat = Rect(0.25, 0.0, 0.25, 1.0)
    part = GridPartitioner(flat, rows, cols)
    tiles = part.tiles_for(rect)
    assert tiles
    assert all(0 <= t < part.num_tiles for t in tiles)
    assert 0 <= part.owner_of(rect.xlo, rect.ylo) < part.num_tiles


# --------------------------------------------------------------------- #
# Replication
# --------------------------------------------------------------------- #


@given(adversarial_rects, grid_dims)
def test_every_rect_lands_in_a_tile(rect, dims):
    rows, cols = dims
    part = GridPartitioner(UNIT, rows, cols)
    tiles = part.tiles_for(rect)
    assert len(tiles) >= 1
    assert len(set(tiles)) == len(tiles)
    # Replication is sound: each listed tile really touches the rect
    # (closed-boundary containment, so edge contact counts).
    for idx in tiles:
        assert part.tiles[idx].rect.intersects(rect)


@given(adversarial_rects, grid_dims)
def test_replication_is_complete(rect, dims):
    """Every tile whose *open interior* meets the rect is listed.

    (Boundary-only contact may be attributed to either neighbour — the
    clamped-floor rule picks one — so the completeness claim is about
    interiors, which is what the join needs: any point where an
    intersection can start has its owner in the replication set.)
    """
    rows, cols = dims
    part = GridPartitioner(UNIT, rows, cols)
    listed = set(part.tiles_for(rect))
    for tile in part.tiles:
        t = tile.rect
        interior_overlap = (
            min(t.xhi, rect.xhi) > max(t.xlo, rect.xlo)
            and min(t.yhi, rect.yhi) > max(t.ylo, rect.ylo)
        )
        if interior_overlap:
            assert tile.index in listed


@given(adversarial_rects, grid_dims)
def test_owner_is_unique_and_replicated(rect, dims):
    """The dedup anchor: each point has one owner, inside the rect's
    replication set."""
    rows, cols = dims
    part = GridPartitioner(UNIT, rows, cols)
    listed = part.tiles_for(rect)
    for x, y in [(rect.xlo, rect.ylo), (rect.xhi, rect.yhi),
                 ((rect.xlo + rect.xhi) / 2, (rect.ylo + rect.yhi) / 2)]:
        owner = part.owner_of(x, y)
        assert owner in listed


# --------------------------------------------------------------------- #
# Reference-point dedup
# --------------------------------------------------------------------- #


@settings(max_examples=60)
@given(
    st.lists(adversarial_rects, min_size=1, max_size=12),
    st.lists(adversarial_rects, min_size=1, max_size=12),
    grid_dims,
)
def test_dedup_exactly_once(rects_a, rects_b, dims):
    """Distributed pair discovery equals the brute-force ground truth.

    Simulates the executor faithfully: replicate both sides into tiles,
    join within each tile, keep a pair only if the tile owns it. The
    multiset of kept pairs must equal the set of intersecting pairs —
    equality of the *list* and the *set* proves both no-loss and
    no-duplicate at once.
    """
    rows, cols = dims
    part = GridPartitioner(UNIT, rows, cols)
    shards_a: dict[int, list[int]] = {}
    shards_b: dict[int, list[int]] = {}
    for i, r in enumerate(rects_a):
        for t in part.tiles_for(r):
            shards_a.setdefault(t, []).append(i)
    for j, r in enumerate(rects_b):
        for t in part.tiles_for(r):
            shards_b.setdefault(t, []).append(j)

    reported: list[tuple[int, int]] = []
    for t in range(part.num_tiles):
        for i in shards_a.get(t, []):
            for j in shards_b.get(t, []):
                if rects_a[i].intersects(rects_b[j]) and part.owns_pair(
                    t, rects_a[i], rects_b[j]
                ):
                    reported.append((i, j))

    truth = {
        (i, j)
        for i, ra in enumerate(rects_a)
        for j, rb in enumerate(rects_b)
        if ra.intersects(rb)
    }
    assert len(reported) == len(set(reported)), "pair reported twice"
    assert set(reported) == truth


@given(adversarial_rects, adversarial_rects, grid_dims)
def test_owns_pair_single_winner(ra, rb, dims):
    rows, cols = dims
    part = GridPartitioner(UNIT, rows, cols)
    owners = [
        t for t in range(part.num_tiles) if part.owns_pair(t, ra, rb)
    ]
    if ra.intersects(rb):
        assert len(owners) == 1
        # Symmetric in its arguments: both orders pick the same tile.
        assert part.owns_pair(owners[0], rb, ra)
    else:
        assert owners == []


# --------------------------------------------------------------------- #
# Sharding helpers
# --------------------------------------------------------------------- #


@given(
    st.lists(small_rects(), min_size=1, max_size=20),
    st.lists(small_rects(), min_size=1, max_size=20),
)
def test_make_shards_partitions_all_entries(ra, rb):
    entries_r = [(r, i) for i, r in enumerate(ra)]
    entries_s = [(r, 1000 + i) for i, r in enumerate(rb)]
    universe = joint_universe(entries_r, entries_s)
    assert universe is not None
    part = GridPartitioner.for_tile_count(universe, 9)
    shards = make_shards(part, entries_r, entries_s, keep_unproductive=True)
    assert len(shards) == part.num_tiles
    # The scatter pass inlines tiles_for's arithmetic; membership must
    # agree with the canonical method exactly.
    for shard in shards:
        assert [e for e in entries_r
                if shard.tile.index in part.tiles_for(e[0])] == shard.entries_r
        assert [e for e in entries_s
                if shard.tile.index in part.tiles_for(e[0])] == shard.entries_s
    # Replication means every oid appears in >= 1 shard.
    seen_r = {oid for s in shards for _, oid in s.entries_r}
    seen_s = {oid for s in shards for _, oid in s.entries_s}
    assert seen_r == {oid for _, oid in entries_r}
    assert seen_s == {oid for _, oid in entries_s}
    # Dropping unproductive shards removes only tiles missing a side.
    productive = make_shards(part, entries_r, entries_s)
    assert [s.tile.index for s in productive] == [
        s.tile.index for s in shards if s.entries_r and s.entries_s
    ]


def test_joint_universe_empty():
    assert joint_universe([], []) is None
