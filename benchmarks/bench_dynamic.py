#!/usr/bin/env python
"""Benchmark the dynamic-data stack: incremental join maintenance vs
recompute-on-demand, and the re-seed policy sweep.

Two experiments, both on accounted I/O (the cost model the paper uses,
not wall-clock):

* **Crossover** — after a churn batch of ``k`` ops per side, a consumer
  can read the incrementally-maintained join for free, or recompute the
  join from scratch. Incremental maintenance pays per-op probe I/O, the
  recompute arm pays one full tree-matching join; sweeping ``k`` locates
  the measured crossover batch size. Both arms must produce identical
  pair sets — the sweep doubles as an end-to-end differential check.

* **Policy sweep** — a long churn-and-join horizon (drifting partner,
  three joins per round, periodic maintenance points) run under each
  re-seed policy. The interesting question is whether any *selective*
  policy beats both do-nothing (``never``) and paranoid
  (``always-rebuild``) baselines on total accounted I/O.

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic.py           # full
    PYTHONPATH=src python benchmarks/bench_dynamic.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.config import SystemConfig
from repro.dynamic import (
    AlwaysRebuild,
    CostCrossover,
    DynamicScenario,
    NeverReseed,
    StalenessThreshold,
)

CONFIG = SystemConfig(page_size=256, buffer_pages=32)

#: Dense cluster coverage so the two sides genuinely intersect at bench
#: scale (the paper's defaults give near-disjoint clusters below a few
#: thousand objects and the join would be vacuous).
DENSE = {"cover_quotient": 1.0, "data_side_bound": 0.03,
         "objects_per_cluster": 40}

# ------------------------------------------------------------------ #
# Experiment 1: incremental vs recompute crossover
# ------------------------------------------------------------------ #

CROSS_SEED = 5
CROSS_N = 600
BATCH_SIZES = (5, 10, 20, 40, 80, 160)
BATCH_SIZES_QUICK = (10, 40, 160)


def _cross_scenario() -> DynamicScenario:
    return DynamicScenario(
        CONFIG, n_r=CROSS_N, n_s=CROSS_N, seed=CROSS_SEED,
        dataset_params=DENSE, policy=NeverReseed(),
    )


def crossover_experiment(quick: bool) -> dict:
    rows = []
    for k in (BATCH_SIZES_QUICK if quick else BATCH_SIZES):
        # Incremental arm: the maintained result is ready the moment
        # the batch has been applied.
        inc = _cross_scenario()
        base = inc.workspace.metrics.summary().total_io
        inc.step(s_ops=k, r_ops=k)
        inc_io = inc.workspace.metrics.summary().total_io - base
        inc_pairs = inc.incremental.pairs()

        # Recompute arm: identical churn (same seeds, same batches)
        # with maintenance unhooked, then one from-scratch resident
        # join over the post-churn trees.
        rec = _cross_scenario()
        rec.stream_s.detach(rec.incremental.on_s_op)
        rec.stream_r.detach(rec.incremental.on_r_op)
        base = rec.workspace.metrics.summary().total_io
        rec.step(s_ops=k, r_ops=k)
        rec_pairs = sorted(
            rec.workspace.match_resident(rec.tree_s, rec.partner)
        )
        rec_io = rec.workspace.metrics.summary().total_io - base

        rows.append({
            "batch_ops_per_side": k,
            "incremental_io": round(inc_io, 1),
            "recompute_io": round(rec_io, 1),
            "winner": "incremental" if inc_io < rec_io else "recompute",
            "pairs": len(inc_pairs),
            "identical": inc_pairs == rec_pairs,
        })
    inc_wins = [r["batch_ops_per_side"] for r in rows
                if r["winner"] == "incremental"]
    rec_wins = [r["batch_ops_per_side"] for r in rows
                if r["winner"] == "recompute"]
    return {
        "objects_per_side": CROSS_N,
        "seed": CROSS_SEED,
        "rows": rows,
        "crossover_between": (
            [max(inc_wins), min(rec_wins)] if inc_wins and rec_wins
            else None
        ),
    }


# ------------------------------------------------------------------ #
# Experiment 2: re-seed policy sweep
# ------------------------------------------------------------------ #

POLICY_SEED = 3
POLICY_N = 800
ROUNDS = 60
ROUNDS_QUICK = 36
JOINS_PER_ROUND = 3
MAINTAIN_EVERY = 6
#: Heavy partner drift plus light retained-side churn: the regime where
#: seed staleness actually costs match I/O, so re-seeding can pay.
R_STREAM = {"speed": 0.06, "move_fraction": 0.95}
S_STREAM = {"insert_fraction": 0.5}

POLICIES = (
    ("never", NeverReseed),
    ("always-rebuild", AlwaysRebuild),
    ("staleness-threshold", lambda: StalenessThreshold(
        incremental_at=0.79, rebuild_at=0.8, skew_at=1e9)),
    ("cost-crossover", lambda: CostCrossover(min_runs=4)),
)


def _policy_horizon(policy, rounds: int) -> dict:
    scenario = DynamicScenario(
        CONFIG, n_r=POLICY_N, n_s=POLICY_N, seed=POLICY_SEED,
        dataset_params=DENSE, r_params=R_STREAM, s_params=S_STREAM,
        policy=policy,
    )
    ws = scenario.workspace
    base = ws.metrics.summary().total_io
    joins = 0
    for i in range(1, rounds + 1):
        scenario.step(s_ops=4, r_ops=40)
        for _ in range(JOINS_PER_ROUND):
            scenario.run_join()
            joins += 1
        if i % MAINTAIN_EVERY == 0:
            scenario.maintain()
    # Exactness survives the whole horizon (re-seeds included).
    exact = (scenario.incremental.pairs() == scenario.reference_pairs())
    return {
        "total_io": round(ws.metrics.summary().total_io - base, 1),
        "joins": joins,
        "reseeds": scenario.manager.reseeds,
        "rebuilds": scenario.manager.rebuilds,
        "exact": exact,
    }


def policy_sweep(quick: bool) -> dict:
    rounds = ROUNDS_QUICK if quick else ROUNDS
    results = {name: _policy_horizon(factory(), rounds)
               for name, factory in POLICIES}
    winner = min(results, key=lambda name: results[name]["total_io"])
    return {
        "objects_per_side": POLICY_N,
        "seed": POLICY_SEED,
        "rounds": rounds,
        "joins_per_round": JOINS_PER_ROUND,
        "maintain_every": MAINTAIN_EVERY,
        "policies": results,
        "winner": winner,
    }


# ------------------------------------------------------------------ #
# Driver
# ------------------------------------------------------------------ #


def check(out) -> list[str]:
    """The acceptance gates for --check (and the committed full run)."""
    problems = []
    rows = out["crossover"]["rows"]
    if not all(r["identical"] for r in rows):
        problems.append("incremental and recompute arms disagree")
    if not all(r["pairs"] > 0 for r in rows):
        problems.append("vacuous crossover workload (zero join pairs)")
    if out["crossover"]["crossover_between"] is None:
        problems.append("no measured crossover (one arm always won)")
    sweep = out["policies"]
    winner = sweep["winner"]
    if winner in ("never", "always-rebuild"):
        problems.append(
            f"no selective policy beat both baselines (winner: {winner})"
        )
    if not all(p["exact"] for p in sweep["policies"].values()):
        problems.append("a policy horizon ended with an inexact join")
    if sweep["policies"]["always-rebuild"]["rebuilds"] == 0:
        problems.append("always-rebuild never rebuilt (no partner churn?)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep (CI perf smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the dynamic gates hold")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_dynamic.json at "
                             "the repo root; --quick runs don't write)")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    print(f"crossover sweep ({'quick' if args.quick else 'full'})...")
    crossover = crossover_experiment(args.quick)
    for row in crossover["rows"]:
        print(f"  k={row['batch_ops_per_side']:4d}  "
              f"incremental={row['incremental_io']:8.1f}  "
              f"recompute={row['recompute_io']:8.1f}  -> {row['winner']}")
    print(f"  crossover between {crossover['crossover_between']}")

    print("policy sweep...")
    policies = policy_sweep(args.quick)
    for name, r in policies["policies"].items():
        print(f"  {name:20s} total_io={r['total_io']:9.1f} "
              f"reseeds={r['reseeds']} rebuilds={r['rebuilds']}")
    print(f"  winner: {policies['winner']}")

    out = {
        "config": {"page_size": CONFIG.page_size,
                   "buffer_pages": CONFIG.buffer_pages},
        "dataset_params": DENSE,
        "crossover": crossover,
        "policies": policies,
        "duration_s": round(time.perf_counter() - t0, 1),
    }

    if args.out or not args.quick:
        target = pathlib.Path(
            args.out
            or pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_dynamic.json"
        )
        target.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
        print(f"wrote {target}")

    if args.check:
        problems = check(out)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        print("PASS: crossover measured, arms identical, a selective "
              "policy beat both baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
