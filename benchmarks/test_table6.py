"""Table 6: ||D_R||=100K, ||D_S||=40K, quotient 0.6 (scaled by profile).

Series 2, middle point. The paper's observation here: with less
clustering, most leaf pairs must be visited anyway, so STJ's matching
advantage over RTJ shrinks — tree *construction* cost becomes the
deciding factor, and STJ's stays less than half of RTJ's.
"""

from conftest import (
    BENCH_SEED,
    assert_common_shape,
    assert_overflow_regime,
    profile,
    record_table,
)

from repro.experiments import run_table
from repro.experiments.tables import format_table


def test_table6(benchmark):
    result = benchmark.pedantic(
        run_table, args=(6,), kwargs=dict(profile=profile(), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    print("\n" + format_table(result, compare_paper=True))
    record_table(benchmark, result)
    assert_common_shape(result)
    assert_overflow_regime(result)

    # Construction decides: STJ's construction-attributed I/O is less
    # than half of RTJ's (paper: ~1300 vs ~7600).
    rtj = result.row("RTJ").summary
    stj = result.row("STJ1-2N").summary
    assert stj.construct_io < rtj.construct_io / 2
