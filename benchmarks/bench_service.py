#!/usr/bin/env python
"""Benchmark the resident join service under open-loop replay.

Drives a seeded trace of mixed window-query / join requests through a
:class:`~repro.service.JoinService` with Poisson (open-loop) arrivals in
three phases — steady, burst, recovery — so the run exercises the whole
robustness envelope: ordinary serving, admission downgrades, the
overload ladder, queue shedding and deadline timeouts. Writes per-phase
and overall p50/p99 latency, throughput, shed rate and degradation
counts to ``BENCH_service.json`` next to the repo root.

Open-loop means arrivals do not wait for completions: during the burst
phase the offered rate deliberately exceeds service capacity, so the
bounded queue must shed — a closed-loop driver could never show that.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full 100k
    PYTHONPATH=src python benchmarks/bench_service.py --quick --check
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import random
import sys
import time

from repro.config import SystemConfig
from repro.geometry import Rect
from repro.service import (
    ANSWERED,
    JoinRequest,
    JoinService,
    Outcome,
    ServiceConfig,
    WindowQueryRequest,
    WorkspaceRegistry,
)
from repro.workload import generate_uniform

SEED = 20240131
SESSION_OBJECTS = 10_000
CONFIG = SystemConfig(page_size=512, buffer_pages=128)

#: (name, request count, offered rate in requests/second). The burst
#: rate sits well above the two-worker service's capacity, forcing the
#: queue through the degrade and shed watermarks.
PHASES = (
    ("steady", 60_000, 1500.0),
    ("burst", 25_000, 8000.0),
    ("recovery", 15_000, 1000.0),
)
QUICK_DIVISOR = 100  # --quick: 1000 requests, same phase structure

#: With the bench session (10K objects, 436 tree pages) the planner
#: estimates: small joins (n<=120) BFJ ~90-360 / STJ ~380, big joins
#: (n>=2000) STJ ~590-1010 cheapest. A 450 budget therefore admits the
#: small-join traffic as requested, rejects the occasional big join
#: outright, and leaves "tight-budget" requests (per-request override
#: 350) to downgrade STJ -> BFJ at admission.
SERVICE = ServiceConfig(
    queue_capacity=64,
    workers=2,
    degrade_water=16,
    high_water=56,
    max_predicted_io=450.0,
    watchdog_interval_s=0.01,
)
TIGHT_BUDGET = 350.0


def build_schedule(quick: bool):
    """The seeded request trace: (arrival offset, phase, request)."""
    rng = random.Random(SEED)
    schedule = []
    offset = 0.0
    for name, count, rate in PHASES:
        n = max(count // QUICK_DIVISOR, 50) if quick else count
        for _ in range(n):
            offset += rng.expovariate(rate)
            schedule.append((offset, name, _mixed_request(rng)))
    return schedule


def _mixed_request(rng: random.Random):
    draw = rng.random()
    if draw < 0.96:
        cx, cy = rng.random(), rng.random()
        half = 0.005 + rng.random() * 0.03
        return WindowQueryRequest("bench", Rect(
            max(0.0, cx - half), max(0.0, cy - half),
            min(1.0, cx + half), min(1.0, cy + half),
        ), deadline_s=1.0)
    if draw < 0.995:
        n = rng.randrange(30, 100)
        stj = rng.random() < 0.4
        # A third of the seeded joins carry a tight per-request budget:
        # STJ's estimate busts it, BFJ's fits, so admission downgrades.
        tight = stj and rng.random() < 0.3
        return JoinRequest(
            "bench",
            generate_uniform(n, seed=rng.randrange(1 << 30),
                             oid_start=10**6),
            method="STJ1-2N" if stj else "BFJ",
            max_predicted_io=TIGHT_BUDGET if tight else None,
            deadline_s=5.0,
        )
    # Occasional big seeded join: every method's estimate busts the
    # service budget, so admission rejects it for the cost of a
    # metadata-driven estimate — no worker time burned.
    return JoinRequest(
        "bench",
        generate_uniform(rng.randrange(2000, 5000),
                         seed=rng.randrange(1 << 30), oid_start=10**6),
        method="STJ1-2N",
        deadline_s=10.0,
    )


async def replay(schedule):
    registry = WorkspaceRegistry(CONFIG)
    registry.create("bench", generate_uniform(SESSION_OBJECTS, seed=SEED))
    service = JoinService(registry, SERVICE)
    await service.start()

    tasks = []
    t0 = time.perf_counter()
    for offset, phase, request in schedule:
        delay = t0 + offset - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append((phase, asyncio.ensure_future(service.submit(request))))
    responses = [
        (phase, await task) for phase, task in tasks
    ]
    duration = time.perf_counter() - t0
    await service.stop()
    return service, responses, duration


def _percentile(ordered, q):
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(q / 100.0 * len(ordered)))]


def _latency_stats(latencies):
    ordered = sorted(latencies)
    return {
        "count": len(ordered),
        "mean_ms": round(sum(ordered) / len(ordered) * 1e3, 3)
        if ordered else 0.0,
        "p50_ms": round(_percentile(ordered, 50) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 99) * 1e3, 3),
        "max_ms": round(_percentile(ordered, 100) * 1e3, 3),
    }


def summarize(service, responses, duration):
    counters = service.metrics.counters
    phases = {}
    for name, _count, rate in PHASES:
        phase_responses = [r for p, r in responses if p == name]
        answered = [r for r in phase_responses if r.outcome in ANSWERED]
        phases[name] = {
            "offered_rate_rps": rate,
            "requests": len(phase_responses),
            "answered": len(answered),
            "shed": sum(
                1 for r in phase_responses if r.outcome is Outcome.SHED
            ),
            "timed_out": sum(
                1 for r in phase_responses
                if r.outcome is Outcome.TIMED_OUT
            ),
            "latency": _latency_stats([r.latency_s for r in answered]),
        }
    all_answered = [r for _p, r in responses if r.outcome in ANSWERED]
    out = {
        "workload": {
            "seed": SEED,
            "session_objects": SESSION_OBJECTS,
            "requests": len(responses),
            "page_size": CONFIG.page_size,
            "buffer_pages": CONFIG.buffer_pages,
            "queue_capacity": SERVICE.queue_capacity,
            "workers": SERVICE.workers,
            "degrade_water": SERVICE.degrade_water,
            "high_water": SERVICE.high_water,
            "max_predicted_io": SERVICE.max_predicted_io,
        },
        "phases": phases,
        "overall": {
            "duration_s": round(duration, 3),
            "throughput_rps": round(len(responses) / duration, 1),
            "answered_rps": round(len(all_answered) / duration, 1),
            "latency": _latency_stats([r.latency_s for r in all_answered]),
        },
        "outcomes": counters.as_dict(),
        "shed_rate": round(counters.shed / max(counters.submitted, 1), 4),
        "degradation": {
            "total": counters.degraded,
            "admission": counters.admission_downgrades,
            "overload": counters.overload_degrades,
        },
    }
    return out


def check(out) -> list[str]:
    """The acceptance gates for --check (and the full committed run)."""
    problems = []
    counters = out["outcomes"]
    resolved = sum(
        counters[k] for k in (
            "served", "degraded", "shed", "rejected_budget",
            "timed_out", "faulted",
        )
    )
    if counters["submitted"] != out["workload"]["requests"]:
        problems.append("submitted != requests replayed")
    if resolved != counters["submitted"]:
        problems.append(
            f"outcome ledger unbalanced: {resolved} resolved vs "
            f"{counters['submitted']} submitted"
        )
    if counters["shed"] == 0:
        problems.append("no requests shed (burst never saturated the queue)")
    if counters["degraded"] == 0:
        problems.append("no degraded requests (ladder never engaged)")
    if counters["faulted"] != 0:
        problems.append(f"{counters['faulted']} faulted requests")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="1/100-scale replay (CI perf smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the robustness gates hold")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_service.json at "
                             "the repo root; --quick runs don't write)")
    args = parser.parse_args(argv)

    schedule = build_schedule(args.quick)
    print(f"replaying {len(schedule)} requests "
          f"({'quick' if args.quick else 'full'} scale)...")
    service, responses, duration = asyncio.run(replay(schedule))
    out = summarize(service, responses, duration)

    overall = out["overall"]
    print(f"done in {overall['duration_s']}s: "
          f"{overall['throughput_rps']} req/s, "
          f"p50={overall['latency']['p50_ms']}ms "
          f"p99={overall['latency']['p99_ms']}ms")
    print(f"outcomes: {out['outcomes']}")
    print(f"shed rate {out['shed_rate'] * 100:.2f}%, "
          f"degradations {out['degradation']}")

    if args.out or not args.quick:
        target = pathlib.Path(
            args.out
            or pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_service.json"
        )
        target.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
        print(f"wrote {target}")

    if args.check:
        problems = check(out)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        print("PASS: ledger balanced, shed and degradation both nonzero")
    return 0


if __name__ == "__main__":
    sys.exit(main())
