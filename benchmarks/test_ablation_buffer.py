"""Ablation: buffer size sensitivity (Section 3.1's sizing argument).

The paper argues the linked-list algorithm "could work for seeded trees
of size at least tens of times larger than the buffer size" because the
average grown subtree is tiny. Consequence: STJ's construction cost is
nearly indifferent to the buffer, while RTJ's collapses only once the
buffer swallows the whole join-time tree. This benchmark sweeps the
buffer across a 6x range on a fixed workload.
"""

from conftest import BENCH_SEED, record_table  # noqa: F401

from repro.config import SystemConfig
from repro.join import rtree_join, seeded_tree_join
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

BUFFERS = (64, 128, 256, 384)


def run_at_buffer(buffer_pages):
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=buffer_pages))
    d_r = generate_clustered(ClusteredConfig(
        10_000, objects_per_cluster=20, seed=BENCH_SEED + 81,
    ))
    d_s = generate_clustered(ClusteredConfig(
        4_000, objects_per_cluster=20, seed=BENCH_SEED + 82,
        oid_start=1_000_000,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)

    out = {}
    ws.start_measurement()
    rtree_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics)
    out["RTJ"] = ws.metrics.summary()
    ws.start_measurement()
    seeded_tree_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics)
    out["STJ"] = ws.metrics.summary()
    return out


def test_buffer_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {b: run_at_buffer(b) for b in BUFFERS},
        rounds=1, iterations=1,
    )
    rtj = [results[b]["RTJ"].construct_io for b in BUFFERS]
    stj = [results[b]["STJ"].construct_io for b in BUFFERS]
    for b, r, s in zip(BUFFERS, rtj, stj):
        benchmark.extra_info[f"RTJ_construct@{b}"] = round(r)
        benchmark.extra_info[f"STJ_construct@{b}"] = round(s)
        print(f"buffer={b:4d}: RTJ construct={r:7.0f}  STJ construct={s:6.0f}")

    # RTJ is strongly buffer-bound: more than double the construction
    # cost at the smallest buffer vs the largest.
    assert rtj[0] > 2 * rtj[-1]
    # STJ is comparatively insensitive across the same range.
    assert max(stj) < 2.5 * min(stj)
    # While the join-time tree exceeds the buffer (the first two sizes),
    # STJ constructs far cheaper than RTJ. Once the buffer swallows the
    # whole tree (largest sizes) both approach the floor of one
    # sequential scan plus one write-out of the tree, and the gap
    # disappears — exactly the regime boundary Section 3.1 describes.
    assert stj[0] < rtj[0] / 2
    assert stj[1] < rtj[1] / 2
