"""Table 1: ||D_R||=100K, ||D_S||=20K, quotient 0.2 (scaled by profile).

The paper's *boundary case*: D_S is small enough that BFJ touches fewer
T_R nodes than the buffer holds, so BFJ wins on total I/O — the one
configuration where STJ does not.
"""

from conftest import BENCH_SEED, assert_common_shape, profile, record_table, totals

from repro.experiments import run_table
from repro.experiments.tables import format_table


def test_table1(benchmark):
    result = benchmark.pedantic(
        run_table, args=(1,), kwargs=dict(profile=profile(), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    print("\n" + format_table(result, compare_paper=True))
    record_table(benchmark, result)
    assert_common_shape(result)

    t = totals(result)
    # The boundary-case claim: BFJ is competitive here (the paper has it
    # winning outright); it must at least beat RTJ, whose join-time
    # construction dominates at every size.
    assert t["BFJ"] < t["RTJ"]
