"""Shared fixtures for the benchmark suite.

Each paper table gets its own benchmark (the join suite really runs);
the six figures reuse two session-scoped series runs, since a figure is
a projection of its series' tables. The scale profile defaults to
``tiny`` so the whole suite finishes in a couple of minutes; export
``REPRO_BENCH_PROFILE=quarter`` (or ``full``) for bigger runs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_series
from repro.experiments.profiles import get_profile

BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "tiny")
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def profile():
    return get_profile(BENCH_PROFILE)


@pytest.fixture(scope="session")
def series1_results():
    return run_series(1, profile=profile(), seed=BENCH_SEED)


@pytest.fixture(scope="session")
def series2_results():
    return run_series(2, profile=profile(), seed=BENCH_SEED)


def record_table(benchmark, result) -> None:
    """Attach a table's headline numbers to the benchmark record."""
    benchmark.extra_info["profile"] = result.profile.name
    benchmark.extra_info["d_r"] = result.d_r_size
    benchmark.extra_info["d_s"] = result.d_s_size
    benchmark.extra_info["pairs"] = result.rows[0].pairs
    for row in result.rows:
        benchmark.extra_info[f"{row.algorithm}_total_io"] = round(
            row.summary.total_io
        )


def totals(result) -> dict[str, float]:
    return {r.algorithm: r.summary.total_io for r in result.rows}


def best_stj_total(result) -> float:
    return min(
        r.summary.total_io for r in result.rows
        if r.algorithm.startswith("STJ")
    )


def assert_common_shape(result) -> None:
    """Claims the paper makes for *every* table."""
    # All algorithms computed the same answer (runner cross-checks too).
    assert len({r.pairs for r in result.rows}) == 1
    t = totals(result)
    # Best seeded-tree variant beats RTJ outright.
    assert best_stj_total(result) < t["RTJ"]
    # CPU: filtering costs at least 3x the bbox tests of no-filtering,
    # and BFJ's window queries dominate everyone's bbox counts.
    bbox = {r.algorithm: r.summary.bbox_tests for r in result.rows}
    assert bbox["STJ1-2F"] > 3 * bbox["STJ1-2N"]
    assert bbox["BFJ"] == max(bbox.values())


@pytest.fixture(scope="session")
def ablation_env():
    """A shared workspace for the ablation benchmarks.

    Mirrors the tiny profile's table-2 point: D_R = 10,000 with a
    pre-computed R-tree, D_S = 4,000 un-indexed, quotient 0.2, fan-out
    24, 128-page buffer — the regime where the paper's construction
    effects are all visible.
    """
    from repro.workload import ClusteredConfig, generate_clustered
    from repro.workspace import Workspace

    prof = get_profile("tiny")
    ws = Workspace(prof.config)
    d_r = generate_clustered(ClusteredConfig(
        10_000, cover_quotient=0.2,
        objects_per_cluster=prof.objects_per_cluster, seed=BENCH_SEED + 71,
    ))
    d_s = generate_clustered(ClusteredConfig(
        4_000, cover_quotient=0.2,
        objects_per_cluster=prof.objects_per_cluster, seed=BENCH_SEED + 72,
        oid_start=1_000_000,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s, name="D_S")
    return ws, tree_r, file_s, d_s


def assert_overflow_regime(result) -> None:
    """Claims that need D_S's tree to outgrow the buffer (tables 2-8).

    Table 1 is the paper's boundary case — there the join-time tree
    fits (or nearly fits) the buffer and these effects vanish.
    """
    t = totals(result)
    # STJ construction reads stay far below RTJ's (linked lists replace
    # the buffer-miss storm with sequential batches).
    rtj_cons = result.row("RTJ").summary.construct_read
    stj_cons = result.row("STJ1-2N").summary.construct_read
    assert stj_cons < rtj_cons / 2
    # Seeded trees beat both baselines on total I/O.
    assert best_stj_total(result) < t["BFJ"]
    assert best_stj_total(result) < t["RTJ"]
