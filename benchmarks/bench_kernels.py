#!/usr/bin/env python
"""Benchmark the vectorized geometry kernels against the scalar path.

Two tiers, both written into ``BENCH_kernels.json`` next to the repo
root:

* **micro** — leaf-sweep throughput: the scalar plane sweep
  (:func:`repro.geometry.sweep.sweep_pairs`) versus the batch kernel
  (:func:`repro.kernels.sweep_pairs_batch`) on pre-built column arrays,
  at 1k/10k/100k rectangles per side and on both backends. Pre-built
  arrays are the honest comparison: in the wired join the columns come
  from :meth:`~repro.rtree.node.Node.rect_array`, whose cache amortises
  construction across visits (build time is reported separately).
  Every timed pair of runs is also checked for bit-identical pairs and
  ``xy_tests``.
* **e2e** — the paper's Table-2 workload at quarter scale (the
  ``bench_parallel.py`` configuration) through all six facade methods,
  kernels on versus off via ``REPRO_KERNELS``, with pair lists and
  CostSummary fields asserted identical before any time is reported.

Flags::

    --quick   smaller sizes, two methods, divisor-10 scale (CI smoke)
    --check   exit non-zero unless the kernel path beats the scalar
              path (micro, numpy backend) and end-to-end STJ is not
              slower with kernels on

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.config import SystemConfig
from repro.geometry.sweep import sweep_pairs
from repro.join import spatial_join
from repro.kernels import HAVE_NUMPY, RectArray, sweep_pairs_batch
from repro.metrics.counters import CpuCounters
from repro.workload import ClusteredConfig, generate_clustered, generate_uniform
from repro.workspace import Workspace

SEED = 20240131
#: Table 2 at the quarter profile's divisor (4), as in bench_parallel.
N_R = 25_000
N_S = 10_000
QUICK_N_R = 10_000
QUICK_N_S = 4_000
COVER_QUOTIENT = 0.2
CONFIG = SystemConfig(page_size=512, buffer_pages=280)

METHODS = ("BFJ", "RTJ", "STJ", "NAIVE", "ZJOIN", "2STJ")
QUICK_METHODS = ("BFJ", "STJ")
MICRO_SIZES = (1_000, 10_000, 100_000)
QUICK_MICRO_SIZES = (1_000, 10_000)

#: Acceptance gates (see ISSUE 5): numpy batch sweep at 10k-per-side
#: must be >= 3x scalar; end-to-end STJ must be >= 1.2x with kernels on
#: at quarter Table-2 scale. The quick (CI smoke) profile shrinks the
#: workload 2.5x further, where the fixed per-run overheads compress
#: the achievable e2e gain and runner noise dominates, so it only
#: gates on "kernels do not lose" there.
MICRO_TARGET = 3.0
E2E_TARGET = 1.2
QUICK_E2E_TARGET = 1.0

SUMMARY_FIELDS = (
    "match_read", "match_write", "construct_read", "construct_write",
    "bbox_tests", "xy_tests",
)


def timed(fn, repeats: int = 3):
    """Best-of-N wall time: the minimum is the least noisy estimator."""
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


# --------------------------------------------------------------------- #
# Micro: leaf sweeps
# --------------------------------------------------------------------- #


def micro_inputs(n: int):
    """Two uniform rectangle sets sized so pair count stays ~linear."""
    side = (2.0 / n) ** 0.5
    a = [r for r, _ in generate_uniform(n, side_bound=side, seed=SEED)]
    b = [r for r, _ in generate_uniform(n, side_bound=side, seed=SEED + 1)]
    return a, b


def bench_micro_size(n: int, backends: tuple[str, ...]) -> dict:
    rects_a, rects_b = micro_inputs(n)

    def scalar():
        counters = CpuCounters()
        return sweep_pairs(rects_a, rects_b, counters=counters), counters

    (scalar_pairs, scalar_counters), scalar_wall = timed(scalar)

    # Index-level reference for order verification (identity-element
    # sweeps cannot disambiguate duplicate rectangles).
    ref = sweep_pairs(
        list(enumerate(rects_a)), list(enumerate(rects_b)),
        rect_of=lambda t: t[1],
    )
    ref_idx = [(ia, ib) for (ia, _), (ib, _) in ref]

    entry: dict = {
        "rects_per_side": n,
        "pairs": len(scalar_pairs),
        "scalar_wall_s": round(scalar_wall, 6),
        "backends": {},
    }
    for backend in backends:
        t0 = time.perf_counter()
        arr_a = RectArray.from_rects(rects_a, backend=backend)
        arr_b = RectArray.from_rects(rects_b, backend=backend)
        build_s = time.perf_counter() - t0

        def batch():
            counters = CpuCounters()
            return sweep_pairs_batch(arr_a, arr_b, counters=counters), counters

        (batch_pairs, batch_counters), batch_wall = timed(batch)
        if batch_pairs != ref_idx:
            raise SystemExit(f"micro n={n} {backend}: pair order differs")
        if batch_counters.xy_tests != scalar_counters.xy_tests:
            raise SystemExit(
                f"micro n={n} {backend}: xy_tests "
                f"{batch_counters.xy_tests} != {scalar_counters.xy_tests}"
            )
        speedup = scalar_wall / batch_wall
        entry["backends"][backend] = {
            "build_s": round(build_s, 6),
            "sweep_wall_s": round(batch_wall, 6),
            "speedup": round(speedup, 3),
        }
        print(
            f"micro n={n:>7,} {backend:6s} scalar={scalar_wall * 1e3:8.1f}ms"
            f"  kernel={batch_wall * 1e3:8.1f}ms  (x{speedup:5.2f})"
        )
    return entry


# --------------------------------------------------------------------- #
# End-to-end: Table 2, quarter scale
# --------------------------------------------------------------------- #


def build_env(n_r: int, n_s: int):
    ws = Workspace(CONFIG)
    d_r = generate_clustered(ClusteredConfig(
        n_r, cover_quotient=COVER_QUOTIENT, objects_per_cluster=20,
        seed=SEED,
    ))
    d_s = generate_clustered(ClusteredConfig(
        n_s, cover_quotient=COVER_QUOTIENT, objects_per_cluster=20,
        seed=SEED + 1, oid_start=10**6,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    return ws, tree_r, file_s


def bench_e2e_method(ws, tree_r, file_s, method: str, repeats: int) -> dict:
    def run():
        ws.start_measurement()
        result = spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
        )
        return result.pairs, ws.metrics.summary()

    # Interleave the modes so slow machine-wide drift (thermal, cache,
    # background load) hits both walls equally instead of biasing
    # whichever block ran second; keep the best of each.
    walls: dict[str, float] = {}
    outputs: dict[str, tuple] = {}
    for _ in range(repeats):
        for mode in ("1", "0"):
            os.environ["REPRO_KERNELS"] = mode
            t0 = time.perf_counter()
            outputs[mode] = run()
            elapsed = time.perf_counter() - t0
            walls[mode] = min(walls.get(mode, elapsed), elapsed)
    os.environ["REPRO_KERNELS"] = "1"
    (pairs_on, summary_on), wall_on = outputs["1"], walls["1"]
    (pairs_off, summary_off), wall_off = outputs["0"], walls["0"]

    if pairs_on != pairs_off:
        raise SystemExit(f"e2e {method}: kernel pairs differ from scalar")
    for field in SUMMARY_FIELDS:
        if getattr(summary_on, field) != getattr(summary_off, field):
            raise SystemExit(
                f"e2e {method}: CostSummary.{field} differs "
                f"({getattr(summary_on, field)} vs "
                f"{getattr(summary_off, field)})"
            )

    speedup = wall_off / wall_on
    print(
        f"e2e {method:8s} kernels-off={wall_off:8.3f}s  "
        f"kernels-on={wall_on:8.3f}s  (x{speedup:5.2f})  "
        f"pairs={len(pairs_on)}"
    )
    return {
        "pairs": len(pairs_on),
        "wall_on_s": round(wall_on, 6),
        "wall_off_s": round(wall_off, 6),
        "speedup": round(speedup, 3),
    }


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def run(quick: bool) -> dict:
    backends = ("numpy", "python") if HAVE_NUMPY else ("python",)
    sizes = QUICK_MICRO_SIZES if quick else MICRO_SIZES
    methods = QUICK_METHODS if quick else METHODS
    n_r, n_s = (QUICK_N_R, QUICK_N_S) if quick else (N_R, N_S)
    repeats = 3

    out: dict = {
        "quick": quick,
        "have_numpy": HAVE_NUMPY,
        "micro": {},
        "e2e": {
            "workload": {
                "table": 2,
                "seed": SEED,
                "d_r": n_r,
                "d_s": n_s,
                "cover_quotient": COVER_QUOTIENT,
                "page_size": CONFIG.page_size,
                "buffer_pages": CONFIG.buffer_pages,
            },
            "algorithms": {},
        },
    }
    for n in sizes:
        out["micro"][str(n)] = bench_micro_size(n, backends)

    ws, tree_r, file_s = build_env(n_r, n_s)
    # Warm caches and code paths once so the first measured method does
    # not absorb interpreter and allocator warm-up.
    ws.start_measurement()
    spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                 method="BFJ")
    for method in methods:
        out["e2e"]["algorithms"][method] = bench_e2e_method(
            ws, tree_r, file_s, method, repeats
        )
    return out


def verdicts(out: dict) -> dict:
    """Acceptance gates, evaluated on whatever tier actually ran."""
    e2e_target = QUICK_E2E_TARGET if out["quick"] else E2E_TARGET
    micro_10k = out["micro"].get("10000", {}).get("backends", {})
    numpy_10k = micro_10k.get("numpy", {}).get("speedup")
    stj = out["e2e"]["algorithms"].get("STJ", {}).get("speedup")
    kernel_never_slower = all(
        be["speedup"] >= 1.0
        for size in out["micro"].values()
        for name, be in size["backends"].items()
        if name == "numpy"
    )
    return {
        "micro_10k_numpy_speedup": numpy_10k,
        "micro_10k_target": MICRO_TARGET,
        "micro_10k_ok": (
            numpy_10k is None or numpy_10k >= MICRO_TARGET
        ),
        "e2e_stj_speedup": stj,
        "e2e_stj_target": e2e_target,
        "e2e_stj_ok": stj is None or stj >= e2e_target,
        "numpy_kernel_never_slower": kernel_never_slower,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke profile: fewer sizes and methods")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the kernel path loses")
    args = parser.parse_args()

    kernels_env = os.environ.get("REPRO_KERNELS")
    try:
        out = run(args.quick)
    finally:
        if kernels_env is None:
            os.environ.pop("REPRO_KERNELS", None)
        else:
            os.environ["REPRO_KERNELS"] = kernels_env

    out["verdicts"] = verdicts(out)
    target = (
        pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_kernels.json"
    )
    target.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")

    v = out["verdicts"]
    ok = bool(
        v["numpy_kernel_never_slower"]
        and v["micro_10k_ok"]
        and v["e2e_stj_ok"]
    )
    print(
        ("PASS" if ok else "MISS")
        + f": micro10k=x{v['micro_10k_numpy_speedup']}"
        f" (target x{MICRO_TARGET}),"
        f" e2e STJ=x{v['e2e_stj_speedup']}"
        f" (target x{v['e2e_stj_target']})"
    )
    if args.check and not ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
