#!/usr/bin/env python
"""Benchmark the vectorized geometry kernels against the scalar path.

Two tiers, both written into ``BENCH_kernels.json`` next to the repo
root:

* **micro** — leaf-sweep throughput: the scalar plane sweep
  (:func:`repro.geometry.sweep.sweep_pairs`) versus the batch kernel
  (:func:`repro.kernels.sweep_pairs_batch`) on pre-built column arrays,
  at 1k/10k/100k rectangles per side and on both backends. Pre-built
  arrays are the honest comparison: in the wired join the columns come
  from :meth:`~repro.rtree.node.Node.rect_array`, whose cache amortises
  construction across visits (build time is reported separately).
  Every timed pair of runs is also checked for bit-identical pairs and
  ``xy_tests``.
* **e2e** — the paper's Table-2 workload at quarter scale (the
  ``bench_parallel.py`` configuration) through all six facade methods,
  in three interleaved modes: **batch** (``REPRO_KERNELS=1
  REPRO_BATCH=1``, the columnar batch-first path), **kernels**
  (``REPRO_KERNELS=1 REPRO_BATCH=0``, per-node kernel calls under
  scalar control flow — PR 5's path) and **scalar** (``REPRO_KERNELS=0``).
  Pair lists and CostSummary fields are asserted identical across all
  three modes before any time is reported, and every mode's run
  carries the engine's per-phase wall clock
  (:attr:`~repro.join.result.JoinResult.phase_walls`), so the output
  separates kernel time from the control-flow overhead the batch layer
  removes: per phase, ``kernels_s - batch_s`` is control flow closed
  by batching, ``scalar_s - kernels_s`` is arithmetic closed by
  vectorization.

Flags::

    --quick   smaller sizes, two methods, divisor-10 scale (CI smoke)
    --check   exit non-zero unless the kernel path beats the scalar
              path (micro, numpy backend) and the batched end-to-end
              path clears the per-method floors (STJ >= 2.0x and
              BFJ >= 3.0x full scale; STJ >= 1.5x quick)

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.config import SystemConfig
from repro.geometry.sweep import sweep_pairs
from repro.join import spatial_join
from repro.kernels import HAVE_NUMPY, RectArray, sweep_pairs_batch
from repro.metrics.counters import CpuCounters
from repro.workload import ClusteredConfig, generate_clustered, generate_uniform
from repro.workspace import Workspace

SEED = 20240131
#: Table 2 at the quarter profile's divisor (4), as in bench_parallel.
N_R = 25_000
N_S = 10_000
QUICK_N_R = 10_000
QUICK_N_S = 4_000
COVER_QUOTIENT = 0.2
CONFIG = SystemConfig(page_size=512, buffer_pages=280)

METHODS = ("BFJ", "RTJ", "STJ", "NAIVE", "ZJOIN", "2STJ")
QUICK_METHODS = ("BFJ", "STJ")
MICRO_SIZES = (1_000, 10_000, 100_000)
QUICK_MICRO_SIZES = (1_000, 10_000)

#: Acceptance gates (ISSUE 5 micro, ISSUE 10 e2e): numpy batch sweep at
#: 10k-per-side must be >= 3x scalar; the batch-first e2e path must be
#: >= 2x (STJ) and >= 3x (BFJ) over the scalar path at quarter Table-2
#: scale. The quick (CI smoke) profile shrinks the workload 2.5x
#: further, where fixed per-run overheads compress the achievable gain,
#: so its floor is STJ >= 1.5x and BFJ is ungated.
MICRO_TARGET = 3.0
E2E_TARGETS = {"STJ": 2.0, "BFJ": 3.0}
QUICK_E2E_TARGETS = {"STJ": 1.5}

#: (label, REPRO_KERNELS, REPRO_BATCH) for the three e2e modes.
E2E_MODES = (
    ("batch", "1", "1"),
    ("kernels", "1", "0"),
    ("scalar", "0", "0"),
)

SUMMARY_FIELDS = (
    "match_read", "match_write", "construct_read", "construct_write",
    "bbox_tests", "xy_tests",
)


def timed(fn, repeats: int = 3):
    """Best-of-N wall time: the minimum is the least noisy estimator."""
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


# --------------------------------------------------------------------- #
# Micro: leaf sweeps
# --------------------------------------------------------------------- #


def micro_inputs(n: int):
    """Two uniform rectangle sets sized so pair count stays ~linear."""
    side = (2.0 / n) ** 0.5
    a = [r for r, _ in generate_uniform(n, side_bound=side, seed=SEED)]
    b = [r for r, _ in generate_uniform(n, side_bound=side, seed=SEED + 1)]
    return a, b


def bench_micro_size(n: int, backends: tuple[str, ...]) -> dict:
    rects_a, rects_b = micro_inputs(n)

    def scalar():
        counters = CpuCounters()
        return sweep_pairs(rects_a, rects_b, counters=counters), counters

    (scalar_pairs, scalar_counters), scalar_wall = timed(scalar)

    # Index-level reference for order verification (identity-element
    # sweeps cannot disambiguate duplicate rectangles).
    ref = sweep_pairs(
        list(enumerate(rects_a)), list(enumerate(rects_b)),
        rect_of=lambda t: t[1],
    )
    ref_idx = [(ia, ib) for (ia, _), (ib, _) in ref]

    entry: dict = {
        "rects_per_side": n,
        "pairs": len(scalar_pairs),
        "scalar_wall_s": round(scalar_wall, 6),
        "backends": {},
    }
    for backend in backends:
        t0 = time.perf_counter()
        arr_a = RectArray.from_rects(rects_a, backend=backend)
        arr_b = RectArray.from_rects(rects_b, backend=backend)
        build_s = time.perf_counter() - t0

        def batch():
            counters = CpuCounters()
            return sweep_pairs_batch(arr_a, arr_b, counters=counters), counters

        (batch_pairs, batch_counters), batch_wall = timed(batch)
        if batch_pairs != ref_idx:
            raise SystemExit(f"micro n={n} {backend}: pair order differs")
        if batch_counters.xy_tests != scalar_counters.xy_tests:
            raise SystemExit(
                f"micro n={n} {backend}: xy_tests "
                f"{batch_counters.xy_tests} != {scalar_counters.xy_tests}"
            )
        speedup = scalar_wall / batch_wall
        entry["backends"][backend] = {
            "build_s": round(build_s, 6),
            "sweep_wall_s": round(batch_wall, 6),
            "speedup": round(speedup, 3),
        }
        print(
            f"micro n={n:>7,} {backend:6s} scalar={scalar_wall * 1e3:8.1f}ms"
            f"  kernel={batch_wall * 1e3:8.1f}ms  (x{speedup:5.2f})"
        )
    return entry


# --------------------------------------------------------------------- #
# End-to-end: Table 2, quarter scale
# --------------------------------------------------------------------- #


def build_env(n_r: int, n_s: int):
    ws = Workspace(CONFIG)
    d_r = generate_clustered(ClusteredConfig(
        n_r, cover_quotient=COVER_QUOTIENT, objects_per_cluster=20,
        seed=SEED,
    ))
    d_s = generate_clustered(ClusteredConfig(
        n_s, cover_quotient=COVER_QUOTIENT, objects_per_cluster=20,
        seed=SEED + 1, oid_start=10**6,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    return ws, tree_r, file_s


def bench_e2e_method(ws, tree_r, file_s, method: str, repeats: int) -> dict:
    def run():
        ws.start_measurement()
        result = spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
        )
        return result.pairs, ws.metrics.summary(), dict(result.phase_walls)

    # Interleave the modes so slow machine-wide drift (thermal, cache,
    # background load) hits every wall equally instead of biasing
    # whichever block ran second; keep the best run of each mode (the
    # best run's phase walls travel with it). Repeats in one shared
    # workspace are the resident-service steady state: warm plan and
    # construction-replay caches legitimately count for the batch mode.
    walls: dict[str, float] = {}
    outputs: dict[str, tuple] = {}
    phases: dict[str, dict] = {}
    for _ in range(repeats):
        for label, kernels, batch in E2E_MODES:
            os.environ["REPRO_KERNELS"] = kernels
            os.environ["REPRO_BATCH"] = batch
            t0 = time.perf_counter()
            out = run()
            elapsed = time.perf_counter() - t0
            outputs[label] = out
            if label not in walls or elapsed < walls[label]:
                walls[label] = elapsed
                phases[label] = out[2]
    os.environ["REPRO_KERNELS"] = "1"
    os.environ["REPRO_BATCH"] = "1"

    pairs_batch, summary_batch, _ = outputs["batch"]
    for label, _, _ in E2E_MODES[1:]:
        pairs_other, summary_other, _ = outputs[label]
        if pairs_batch != pairs_other:
            raise SystemExit(
                f"e2e {method}: batch pairs differ from {label}"
            )
        for field in SUMMARY_FIELDS:
            if getattr(summary_batch, field) != getattr(summary_other, field):
                raise SystemExit(
                    f"e2e {method}: CostSummary.{field} differs "
                    f"(batch {getattr(summary_batch, field)} vs "
                    f"{label} {getattr(summary_other, field)})"
                )

    speedup = walls["scalar"] / walls["batch"]
    kernels_speedup = walls["scalar"] / walls["kernels"]
    print(
        f"e2e {method:8s} scalar={walls['scalar']:8.3f}s  "
        f"kernels={walls['kernels']:8.3f}s (x{kernels_speedup:5.2f})  "
        f"batch={walls['batch']:8.3f}s (x{speedup:5.2f})  "
        f"pairs={len(pairs_batch)}"
    )
    # Per-phase kernel-vs-control-flow breakdown: what vectorization
    # closed (scalar -> kernels) versus what batch-first control flow
    # closed on top of it (kernels -> batch), phase by phase.
    phase_out: dict[str, dict] = {}
    for name in phases["scalar"]:
        row = {
            label: round(phases[label].get(name, 0.0), 6)
            for label, _, _ in E2E_MODES
        }
        row["vectorization_closed_s"] = round(
            row["scalar"] - row["kernels"], 6
        )
        row["batching_closed_s"] = round(row["kernels"] - row["batch"], 6)
        phase_out[name] = row
        print(
            f"      {name:10s} scalar={row['scalar']:8.3f}s  "
            f"kernels={row['kernels']:8.3f}s  batch={row['batch']:8.3f}s"
        )
    return {
        "pairs": len(pairs_batch),
        "wall_batch_s": round(walls["batch"], 6),
        "wall_kernels_s": round(walls["kernels"], 6),
        "wall_scalar_s": round(walls["scalar"], 6),
        "speedup": round(speedup, 3),
        "kernels_only_speedup": round(kernels_speedup, 3),
        "phases": phase_out,
    }


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def run(quick: bool) -> dict:
    backends = ("numpy", "python") if HAVE_NUMPY else ("python",)
    sizes = QUICK_MICRO_SIZES if quick else MICRO_SIZES
    methods = QUICK_METHODS if quick else METHODS
    n_r, n_s = (QUICK_N_R, QUICK_N_S) if quick else (N_R, N_S)
    repeats = 3

    out: dict = {
        "quick": quick,
        "have_numpy": HAVE_NUMPY,
        "micro": {},
        "e2e": {
            "workload": {
                "table": 2,
                "seed": SEED,
                "d_r": n_r,
                "d_s": n_s,
                "cover_quotient": COVER_QUOTIENT,
                "page_size": CONFIG.page_size,
                "buffer_pages": CONFIG.buffer_pages,
            },
            "algorithms": {},
        },
    }
    for n in sizes:
        out["micro"][str(n)] = bench_micro_size(n, backends)

    ws, tree_r, file_s = build_env(n_r, n_s)
    # Warm caches and code paths once so the first measured method does
    # not absorb interpreter and allocator warm-up.
    ws.start_measurement()
    spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                 method="BFJ")
    for method in methods:
        out["e2e"]["algorithms"][method] = bench_e2e_method(
            ws, tree_r, file_s, method, repeats
        )
    return out


def verdicts(out: dict) -> dict:
    """Acceptance gates, evaluated on whatever tier actually ran."""
    targets = QUICK_E2E_TARGETS if out["quick"] else E2E_TARGETS
    micro_10k = out["micro"].get("10000", {}).get("backends", {})
    numpy_10k = micro_10k.get("numpy", {}).get("speedup")
    kernel_never_slower = all(
        be["speedup"] >= 1.0
        for size in out["micro"].values()
        for name, be in size["backends"].items()
        if name == "numpy"
    )
    result = {
        "micro_10k_numpy_speedup": numpy_10k,
        "micro_10k_target": MICRO_TARGET,
        "micro_10k_ok": (
            numpy_10k is None or numpy_10k >= MICRO_TARGET
        ),
        "numpy_kernel_never_slower": kernel_never_slower,
    }
    for method, target in targets.items():
        speedup = out["e2e"]["algorithms"].get(method, {}).get("speedup")
        key = method.lower()
        result[f"e2e_{key}_speedup"] = speedup
        result[f"e2e_{key}_target"] = target
        result[f"e2e_{key}_ok"] = speedup is None or speedup >= target
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke profile: fewer sizes and methods")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the kernel path loses")
    args = parser.parse_args()

    saved_env = {
        name: os.environ.get(name)
        for name in ("REPRO_KERNELS", "REPRO_BATCH")
    }
    try:
        out = run(args.quick)
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    out["verdicts"] = verdicts(out)
    target = (
        pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_kernels.json"
    )
    target.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")

    v = out["verdicts"]
    ok = all(value for key, value in v.items() if key.endswith("_ok")) and (
        v["numpy_kernel_never_slower"]
    )
    e2e_bits = ", ".join(
        f"e2e {key[4:-3].upper()}=x{v[f'{key[:-3]}_speedup']}"
        f" (target x{v[f'{key[:-3]}_target']})"
        for key in sorted(v)
        if key.startswith("e2e_") and key.endswith("_ok")
    )
    print(
        ("PASS" if ok else "MISS")
        + f": micro10k=x{v['micro_10k_numpy_speedup']}"
        f" (target x{MICRO_TARGET}), " + e2e_bits
    )
    if args.check and not ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
