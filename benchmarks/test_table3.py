"""Table 3: ||D_R||=100K, ||D_S||=60K, quotient 0.2 (scaled by profile).

Series 1, third point: D_S has grown past half of D_R. RTJ's
construction cost keeps climbing roughly linearly with ||D_S|| while
STJ's stays sequential, so the seeded tree's margin over RTJ widens
relative to Table 2.
"""

from conftest import (
    BENCH_SEED,
    assert_common_shape,
    assert_overflow_regime,
    best_stj_total,
    profile,
    record_table,
    totals,
)

from repro.experiments import run_table
from repro.experiments.tables import format_table


def test_table3(benchmark):
    result = benchmark.pedantic(
        run_table, args=(3,), kwargs=dict(profile=profile(), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    print("\n" + format_table(result, compare_paper=True))
    record_table(benchmark, result)
    assert_common_shape(result)
    assert_overflow_regime(result)

    t = totals(result)
    # Paper: both baselines lose clearly at this size (RTJ 16754 and
    # BFJ 13650 vs 3404-4652 for the STJ variants).
    assert best_stj_total(result) < 0.8 * t["BFJ"]
    assert best_stj_total(result) < 0.8 * t["RTJ"]
