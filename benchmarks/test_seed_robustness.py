"""Robustness: the paper's orderings hold across workload seeds.

The paper reports single runs per configuration. This benchmark repeats
the central Table 2 configuration under several workload seeds and
asserts that the *conclusions* — not the exact counts — are
seed-independent: STJ beats RTJ in every run, and the ranking spread of
each method stays moderate.
"""

from conftest import BENCH_SEED, profile, record_table  # noqa: F401

from repro.experiments import run_table_repeated

SEEDS = tuple(range(BENCH_SEED, BENCH_SEED + 4))


def test_orderings_stable_across_seeds(benchmark):
    results, aggregates = benchmark.pedantic(
        run_table_repeated,
        args=(2, SEEDS),
        kwargs=dict(profile=profile(),
                    algorithms=("BFJ", "RTJ", "STJ1-2N", "STJ1-3F")),
        rounds=1, iterations=1,
    )

    by_alg = {a.algorithm: a for a in aggregates}
    for agg in aggregates:
        benchmark.extra_info[f"{agg.algorithm}_mean"] = round(agg.mean_total)
        benchmark.extra_info[f"{agg.algorithm}_spread"] = round(
            agg.spread * 100
        )
        print(f"{agg.algorithm:8s} mean={agg.mean_total:7.0f} "
              f"stdev={agg.stdev_total:6.1f} spread={agg.spread * 100:5.1f}%")

    # STJ beats RTJ in every single run, not just on average.
    for result in results:
        stj = result.row("STJ1-2N").summary.total_io
        rtj = result.row("RTJ").summary.total_io
        assert stj < rtj

    # Mean ordering matches the paper's Table 2.
    assert by_alg["STJ1-2N"].mean_total < by_alg["RTJ"].mean_total
    assert by_alg["STJ1-2N"].mean_total < by_alg["BFJ"].mean_total

    # No method's cost is wildly seed-dependent (spread under 80%).
    for agg in aggregates:
        assert agg.spread < 0.8, agg.algorithm
