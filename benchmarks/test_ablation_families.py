"""Ablation: the seeded-tree conclusions across spatial data families.

The paper evaluates on one synthetic family (uniform clusters). This
benchmark re-runs the central comparison on four qualitatively different
distributions — Gaussian clusters, Zipf-skewed hot-spots, road-like
elongated paths, and a regular parcel grid — and asserts the paper's
core ordering (STJ beats RTJ; construction stays cheap) on every one.
"""

from conftest import BENCH_SEED, record_table  # noqa: F401

from repro.config import SystemConfig
from repro.join import spatial_join
from repro.workload import (
    generate_gaussian_clusters,
    generate_grid_cells,
    generate_paths,
    generate_skewed,
)
from repro.workspace import Workspace

FAMILIES = {
    "gaussian": lambda n, seed, oid: generate_gaussian_clusters(
        n, seed=seed, oid_start=oid),
    "skewed": lambda n, seed, oid: generate_skewed(
        n, seed=seed, oid_start=oid),
    "paths": lambda n, seed, oid: generate_paths(
        n, seed=seed, oid_start=oid),
    "grid": lambda n, seed, oid: generate_grid_cells(
        int(n ** 0.5), seed=seed, oid_start=oid),
}


def run_family(name, make):
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))
    d_r = make(10_000, BENCH_SEED + 51, 0)
    d_s = make(4_000, BENCH_SEED + 52, 1_000_000)
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)

    out = {}
    reference = None
    for method in ("BFJ", "RTJ", "STJ1-2N"):
        ws.start_measurement()
        result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, method=method)
        if reference is None:
            reference = result.pair_set()
        else:
            assert result.pair_set() == reference, (name, method)
        out[method] = ws.metrics.summary()
    return out


def test_families(benchmark):
    results = benchmark.pedantic(
        lambda: {name: run_family(name, make)
                 for name, make in FAMILIES.items()},
        rounds=1, iterations=1,
    )

    for name, methods in results.items():
        totals = {m: s.total_io for m, s in methods.items()}
        for method, total in totals.items():
            benchmark.extra_info[f"{name}_{method}"] = round(total)
        print(f"{name:9s} " + "  ".join(
            f"{m}={v:7.0f}" for m, v in totals.items()
        ))

    for name, methods in results.items():
        stj, rtj = methods["STJ1-2N"], methods["RTJ"]
        # The core ordering survives every distribution.
        assert stj.total_io < rtj.total_io, name
        # And the linked-list construction advantage too.
        assert stj.construct_read < rtj.construct_read / 2, name
