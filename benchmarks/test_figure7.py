"""Figure 7: tree-construction I/O vs ||D_S|| (series 1).

The linked-list result in one picture: RTJ's construction cost explodes
with the size of the join-time tree, while every STJ variant's stays a
shallow, near-linear line (the paper's RTJ line reaches ~19000 at 80K
where STJ sits near 2500-3000).
"""

from conftest import record_table

from repro.experiments.configs import SERIES_TABLES
from repro.experiments.figures import figure_series, format_figure


def test_figure7(benchmark, series1_results):
    series = benchmark.pedantic(
        figure_series, args=(7, series1_results), rounds=1, iterations=1,
    )
    print("\n" + format_figure(7, series1_results, compare_paper=True))
    record_table(benchmark, series1_results[SERIES_TABLES[1][-1]])
    lines = dict(series)

    # BFJ builds nothing, ever.
    assert all(v == 0 for v in lines["BFJ"])

    # RTJ's construction grows much faster than STJ's: compare the
    # increase from the smallest to the largest D_S.
    rtj_growth = lines["RTJ"][-1] - lines["RTJ"][0]
    stj_growth = lines["STJ1-2N"][-1] - lines["STJ1-2N"][0]
    assert rtj_growth > 2 * stj_growth

    # And at the endpoint, RTJ construction dwarfs every STJ variant's.
    for name, values in lines.items():
        if name.startswith("STJ"):
            assert lines["RTJ"][-1] > 2 * values[-1], name
