"""Ablation: does a better-split tree change the seeded-tree story?

The paper evaluates on the original R-tree "for generality" while citing
the R*-tree as the quality leader. Two questions the paper leaves open,
answered on the shared workload:

1. If the *seeding tree* T_R is built with the R* split (tighter,
   less-overlapping boxes), does STJ improve?
2. If *RTJ* uses the R* split for its join-time tree, does it close the
   gap to STJ? (It cannot fix RTJ's real problem — construction buffer
   misses — so the answer should be no.)
"""

from conftest import BENCH_SEED, record_table  # noqa: F401

from repro.config import SystemConfig
from repro.join import rtree_join, seeded_tree_join
from repro.rtree.rstar import rstar_split
from repro.rtree.split import quadratic_split
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace


def run_combo(tr_split, join_split):
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))
    d_r = generate_clustered(ClusteredConfig(
        10_000, objects_per_cluster=20, seed=BENCH_SEED + 31,
    ))
    d_s = generate_clustered(ClusteredConfig(
        4_000, objects_per_cluster=20, seed=BENCH_SEED + 32,
        oid_start=1_000_000,
    ))
    tree_r = ws.install_rtree(d_r, split=tr_split)
    file_s = ws.install_datafile(d_s)

    out = {}
    ws.start_measurement()
    stj = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                           split=join_split)
    out["STJ"] = (ws.metrics.summary(), stj.pair_set())
    ws.start_measurement()
    rtj = rtree_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                     split=join_split)
    out["RTJ"] = (ws.metrics.summary(), rtj.pair_set())
    return out


def test_rstar_variants(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "quad/quad": run_combo(quadratic_split, quadratic_split),
            "rstar/quad": run_combo(rstar_split, quadratic_split),
            "rstar/rstar": run_combo(rstar_split, rstar_split),
        },
        rounds=1, iterations=1,
    )

    # Same answers whatever the split.
    answers = {
        combo: algs["STJ"][1] for combo, algs in results.items()
    }
    assert len(set(map(frozenset, answers.values()))) == 1

    for combo, algs in results.items():
        for alg, (summary, _) in algs.items():
            benchmark.extra_info[f"{alg}_{combo}"] = round(summary.total_io)
            print(f"{combo:12s} {alg}: total={summary.total_io:7.0f} "
                  f"construct={summary.construct_io:7.0f}")

    # Question 2: even with the best split, RTJ's construction misses
    # keep it far above STJ.
    for combo, algs in results.items():
        assert algs["STJ"][0].total_io < algs["RTJ"][0].total_io, combo

    # Question 1: an R* seeding tree keeps STJ in the same cost regime
    # (the seeded tree copies only the top levels, so the effect is
    # second-order; assert a band, report the numbers).
    stj_costs = [algs["STJ"][0].total_io for algs in results.values()]
    assert max(stj_costs) < 1.5 * min(stj_costs)
