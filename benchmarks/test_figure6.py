"""Figure 6: total disk I/O vs ||D_S|| (series 1).

The paper's headline plot: as the derived data set grows, every
algorithm's total cost rises, RTJ and BFJ diverge upward, and the STJ
curves stay lowest (with Table 1's boundary case as the only exception).
"""

from conftest import record_table

from repro.experiments.configs import SERIES_TABLES
from repro.experiments.figures import figure_series, format_figure


def test_figure6(benchmark, series1_results):
    series = benchmark.pedantic(
        figure_series, args=(6, series1_results), rounds=1, iterations=1,
    )
    print("\n" + format_figure(6, series1_results, compare_paper=True))
    record_table(benchmark, series1_results[SERIES_TABLES[1][-1]])
    lines = dict(series)

    # Costs rise with ||D_S|| for every algorithm.
    for name, values in lines.items():
        assert values[0] < values[-1], name

    # STJ stays below RTJ at every point, and below BFJ beyond the
    # boundary case (the first point).
    for x in range(4):
        best_stj = min(
            v[x] for name, v in lines.items() if name.startswith("STJ")
        )
        assert best_stj < lines["RTJ"][x]
        if x > 0:
            assert best_stj < lines["BFJ"][x]
