"""Ablation: the seeded tree retained as a selection index (Section 5).

"If necessary, a seeded tree can be retained after join and used as an
ordinary spatial access method for spatial selections. The height of a
seeded tree is no greater than the height of the R-tree constructed with
the same input data plus the number of seed levels." This benchmark
retains the join's seeded tree, fires a window-query workload at it and
at an R-tree over the same data, and compares per-query I/O.
"""

import random

from conftest import BENCH_SEED, record_table  # noqa: F401

from repro.geometry import Rect
from repro.join import seeded_tree_join
from repro.metrics import Phase
from repro.rtree import RTree

NUM_QUERIES = 400


def query_windows(seed):
    rng = random.Random(seed)
    out = []
    for _ in range(NUM_QUERIES):
        cx, cy = rng.random(), rng.random()
        w, h = rng.random() * 0.05, rng.random() * 0.05
        window = Rect.from_center(cx, cy, w, h).clipped_to(Rect(0, 0, 1, 1))
        out.append(window)
    return out


def test_retained_selection_index(benchmark, ablation_env):
    ws, tree_r, file_s, d_s = ablation_env

    ws.start_measurement()
    joined = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics)
    seeded = joined.index

    ws.start_measurement()
    with ws.metrics.phase(Phase.SETUP):
        rtree = RTree.build(ws.buffer, ws.config, d_s, metrics=None)
        rtree.metrics = ws.metrics
        ws.buffer.purge()
    ws.disk.reset_arm()

    windows = query_windows(BENCH_SEED + 41)

    def run_queries(tree):
        ws.start_measurement()
        answers = []
        with ws.metrics.phase(Phase.MATCH):
            for window in windows:
                answers.append(sorted(tree.window_query(window)))
        return answers, ws.metrics.summary()

    def sweep():
        seeded_answers, seeded_cost = run_queries(seeded)
        rtree_answers, rtree_cost = run_queries(rtree)
        return seeded_answers, seeded_cost, rtree_answers, rtree_cost

    seeded_answers, seeded_cost, rtree_answers, rtree_cost = \
        benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Same answers from both indices.
    assert seeded_answers == rtree_answers

    per_query_seeded = seeded_cost.match_read / NUM_QUERIES
    per_query_rtree = rtree_cost.match_read / NUM_QUERIES
    benchmark.extra_info["seeded_io_per_query"] = round(per_query_seeded, 2)
    benchmark.extra_info["rtree_io_per_query"] = round(per_query_rtree, 2)
    print(f"seeded tree: {per_query_seeded:.2f} I/O per window query; "
          f"height {seeded.height}")
    print(f"r-tree:      {per_query_rtree:.2f} I/O per window query; "
          f"height {rtree.height}")

    # The retained seeded tree is a usable selection index: within 2x of
    # a purpose-built R-tree per query.
    assert per_query_seeded < 2 * per_query_rtree + 0.5
    # Height bound from Section 5.
    assert seeded.height <= rtree.height + seeded.seed_levels
