"""Table 5: ||D_R||=100K, ||D_S||=40K, quotient 0.4 (scaled by profile).

Series 2, second point: clustering loosened from 0.2 to 0.4. More of
the map holds data, so D_S rectangles overlap more of T_R and matching
costs rise for everyone; BFJ (pure matching) rises fastest.
"""

from conftest import (
    BENCH_SEED,
    assert_common_shape,
    assert_overflow_regime,
    profile,
    record_table,
    totals,
)

from repro.experiments import run_table
from repro.experiments.tables import format_table


def test_table5(benchmark):
    result = benchmark.pedantic(
        run_table, args=(5,), kwargs=dict(profile=profile(), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    print("\n" + format_table(result, compare_paper=True))
    record_table(benchmark, result)
    assert_common_shape(result)
    assert_overflow_regime(result)

    t = totals(result)
    # Paper: by quotient 0.4, BFJ has fallen behind RTJ too (14803 vs
    # 11036); at minimum it must trail every STJ variant badly.
    assert t["BFJ"] > 1.3 * min(
        v for k, v in t.items() if k.startswith("STJ")
    )
