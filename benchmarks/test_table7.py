"""Table 7: ||D_R||=100K, ||D_S||=40K, quotient 0.8 (scaled by profile).

Series 2, fourth point: nearly unclustered data. The paper notes that
seed-level filtering's effectiveness diminishes here — almost every D_S
object overlaps something in D_R, so the filter pays CPU without
removing much — while the STJ variants still beat both baselines.
"""

from conftest import (
    BENCH_SEED,
    assert_common_shape,
    assert_overflow_regime,
    profile,
    record_table,
    totals,
)

from repro.experiments import run_table
from repro.experiments.tables import format_table


def test_table7(benchmark):
    result = benchmark.pedantic(
        run_table, args=(7,), kwargs=dict(profile=profile(), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    print("\n" + format_table(result, compare_paper=True))
    record_table(benchmark, result)
    assert_common_shape(result)
    assert_overflow_regime(result)

    t = totals(result)
    # Filtering's I/O gain has largely evaporated: the filtered variant
    # is no longer meaningfully cheaper than the unfiltered one.
    assert t["STJ1-2F"] > 0.85 * t["STJ1-2N"]
