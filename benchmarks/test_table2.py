"""Table 2: ||D_R||=100K, ||D_S||=40K, quotient 0.2 (scaled by profile).

The paper's central configuration (it anchors both series): the
join-time tree for D_S is roughly twice the buffer, so RTJ's
construction thrashes while STJ's linked lists stay sequential, and the
seeded tree beats both baselines by a wide margin.
"""

from conftest import (
    BENCH_SEED,
    assert_common_shape,
    assert_overflow_regime,
    profile,
    record_table,
    totals,
)

from repro.experiments import run_table
from repro.experiments.tables import format_table


def test_table2(benchmark):
    result = benchmark.pedantic(
        run_table, args=(2,), kwargs=dict(profile=profile(), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    print("\n" + format_table(result, compare_paper=True))
    record_table(benchmark, result)
    assert_common_shape(result)
    assert_overflow_regime(result)

    # Paper: RTJ loses even to BFJ here — construction misses outweigh
    # the cheaper matching.
    t = totals(result)
    assert t["RTJ"] > t["BFJ"]
