"""Ablation: join-time index construction methods head to head.

Beyond the paper's RTJ-vs-STJ comparison, this pits four ways of getting
an index for the un-indexed side, all charged identically:

* dynamic R-tree insertion (what RTJ does),
* seeded-tree construction with linked lists (what STJ does),
* seeded-tree construction *without* lists (the paper's earlier
  experiments),
* STR bulk loading (post-1994 state of the art, as an upper baseline).

Construction-attributed I/O is compared; each index is then matched
against T_R to confirm identical answers.
"""

from conftest import record_table  # noqa: F401

from repro.join import match_trees
from repro.metrics import Phase
from repro.rtree import RTree, bulk_load_str
from repro.seeded import SeededTree


def test_construction_methods(benchmark, ablation_env):
    ws, tree_r, file_s, d_s = ablation_env
    costs = {}
    answers = set()

    def build_and_match(label, build):
        ws.start_measurement()
        with ws.metrics.phase(Phase.CONSTRUCT):
            index = build()
        with ws.metrics.phase(Phase.MATCH):
            pairs = match_trees(index, tree_r, ws.metrics)
        costs[label] = ws.metrics.summary()
        answers.add(frozenset(pairs))

    def dynamic_rtree():
        return RTree.build(ws.buffer, ws.config, file_s.scan(),
                           metrics=ws.metrics)

    def seeded(use_lists):
        def build():
            tree = SeededTree(ws.buffer, ws.config, ws.metrics,
                              use_linked_lists=use_lists)
            tree.seed(tree_r)
            tree.grow_from(file_s)
            tree.cleanup()
            return tree
        return build

    def bulk():
        return bulk_load_str(ws.buffer, ws.config, file_s.scan(),
                             metrics=ws.metrics)

    def sweep():
        build_and_match("rtree-dynamic", dynamic_rtree)
        build_and_match("seeded-lists", seeded(True))
        build_and_match("seeded-direct", seeded(False))
        build_and_match("str-bulk", bulk)
        return costs

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(answers) == 1

    for label, summary in costs.items():
        benchmark.extra_info[f"{label}_construct"] = round(summary.construct_io)
        print(f"{label:14s} construct={summary.construct_io:7.0f} "
              f"total={summary.total_io:7.0f}")

    # The paper's earlier finding: a seeded tree built without lists
    # pays construction reads like a dynamic R-tree build; with lists it
    # is far cheaper than both.
    assert costs["seeded-lists"].construct_read < \
        costs["rtree-dynamic"].construct_read / 2
    assert costs["seeded-lists"].construct_read < \
        costs["seeded-direct"].construct_read / 2
    # STR packs sequentially-created nodes: far cheaper construction
    # than dynamic insertion as well.
    assert costs["str-bulk"].construct_io < \
        costs["rtree-dynamic"].construct_io
