"""Table 8: ||D_R||=100K, ||D_S||=40K, quotient 1.0 (scaled by profile).

Series 2 endpoint: no effective clustering at all. The paper's worst
case for BFJ — its window queries touch far more of T_R than the buffer
holds, and it posts the largest total of the whole evaluation (31831) —
while STJ still beats RTJ on the strength of cheap construction alone.
"""

from conftest import (
    BENCH_SEED,
    assert_common_shape,
    assert_overflow_regime,
    profile,
    record_table,
    totals,
)

from repro.experiments import run_table
from repro.experiments.tables import format_table


def test_table8(benchmark):
    result = benchmark.pedantic(
        run_table, args=(8,), kwargs=dict(profile=profile(), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    print("\n" + format_table(result, compare_paper=True))
    record_table(benchmark, result)
    assert_common_shape(result)
    assert_overflow_regime(result)

    t = totals(result)
    # BFJ is the worst algorithm at quotient 1.0 (paper: 31831 vs
    # 10934 for RTJ and ~5000 for the STJ variants).
    assert t["BFJ"] == max(t.values())
