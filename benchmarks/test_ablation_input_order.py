"""Ablation: input-order spatial locality (Section 3.1's remark).

"Another factor affecting the construction cost is the degree of
clustering in the input data stream. If data objects close to each other
in space are also close in their input order, the chances of buffer
misses will be lower. However, such clustering is hard to guarantee in
general." This benchmark builds RTJ's join-time R-tree from the same
data in shuffled and in cluster-grouped order and measures the miss gap
— and shows STJ does not need the favourable order.
"""

from conftest import BENCH_SEED, record_table  # noqa: F401

from repro.config import SystemConfig
from repro.join import rtree_join, seeded_tree_join
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace


def run_order(shuffle: bool):
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))
    d_r = generate_clustered(ClusteredConfig(
        10_000, objects_per_cluster=20, seed=BENCH_SEED + 91,
    ))
    d_s = generate_clustered(ClusteredConfig(
        4_000, objects_per_cluster=20, seed=BENCH_SEED + 92,
        oid_start=1_000_000, shuffle=shuffle,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)

    out = {}
    ws.start_measurement()
    rtj = rtree_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics)
    out["RTJ"] = ws.metrics.summary()
    ws.start_measurement()
    stj = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics)
    out["STJ"] = ws.metrics.summary()
    assert rtj.pair_set() == stj.pair_set()
    return out


def test_input_order(benchmark):
    results = benchmark.pedantic(
        lambda: {order: run_order(order == "shuffled")
                 for order in ("clustered", "shuffled")},
        rounds=1, iterations=1,
    )
    for order, algs in results.items():
        for alg, summary in algs.items():
            benchmark.extra_info[f"{alg}_construct_{order}"] = round(
                summary.construct_io
            )
            print(f"{order:9s} {alg}: construct={summary.construct_io:7.0f}")

    # Favourable input order rescues RTJ's construction...
    assert results["clustered"]["RTJ"].construct_io < \
        results["shuffled"]["RTJ"].construct_io / 2
    # ...while STJ never depended on it in the first place.
    stj_pair = (results["clustered"]["STJ"].construct_io,
                results["shuffled"]["STJ"].construct_io)
    assert max(stj_pair) < 1.5 * min(stj_pair) + 50
