"""Figure 10: tree-construction I/O vs cover quotient (series 2).

Construction cost is a property of ||D_S|| and the buffer, not of the
data's clustering: with ||D_S|| fixed at 40K, the paper's STJ
construction line is *flat* (its construct-read column reads 236 at
every quotient) and RTJ's stays high and roughly flat. That flatness is
exactly what this benchmark asserts.
"""

from conftest import record_table

from repro.experiments.configs import SERIES_TABLES
from repro.experiments.figures import figure_series, format_figure


def test_figure10(benchmark, series2_results):
    series = benchmark.pedantic(
        figure_series, args=(10, series2_results), rounds=1, iterations=1,
    )
    print("\n" + format_figure(10, series2_results, compare_paper=True))
    record_table(benchmark, series2_results[SERIES_TABLES[2][-1]])
    lines = dict(series)

    # BFJ builds nothing at any quotient.
    assert all(v == 0 for v in lines["BFJ"])

    # STJ construction is flat across the quotient range (within 2x).
    stj = lines["STJ1-2N"]
    assert max(stj) < 2 * min(stj)

    # RTJ construction exceeds STJ's at every quotient by a wide margin.
    for x in range(5):
        assert lines["RTJ"][x] > 2 * lines["STJ1-2N"][x]
