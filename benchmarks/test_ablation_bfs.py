"""Ablation: depth-first TM vs Günther-style breadth-first matching.

The paper picked depth-first TM partly because the breadth-first
alternative "must record the pairs of matching tree-nodes at tree level
n before descending to level n+1", which can take a lot of memory for
high-fanout indices. This benchmark measures that argument: the same
match runs depth-first, breadth-first with unbounded queue memory, and
breadth-first with queues squeezed to a few hundred pairs (forcing
sequential spills).
"""

from conftest import record_table  # noqa: F401

from repro.join import match_trees
from repro.join.bfs_matching import match_trees_bfs
from repro.metrics import Phase
from repro.rtree import RTree


def test_bfs_vs_dfs(benchmark, ablation_env):
    ws, tree_r, file_s, d_s = ablation_env

    # The join-time tree for D_S (built once, uncharged, for a pure
    # matcher-vs-matcher comparison).
    with ws.metrics.phase(Phase.SETUP):
        tree_s = RTree.build(ws.buffer, ws.config, d_s, metrics=None)
        tree_s.metrics = ws.metrics

    variants = [
        ("dfs", lambda: match_trees(tree_s, tree_r, ws.metrics)),
        ("bfs-unbounded",
         lambda: match_trees_bfs(tree_s, tree_r, ws.metrics)),
        ("bfs-512-pairs",
         lambda: match_trees_bfs(tree_s, tree_r, ws.metrics,
                                 queue_budget_pairs=512)),
        ("bfs-64-pairs",
         lambda: match_trees_bfs(tree_s, tree_r, ws.metrics,
                                 queue_budget_pairs=64)),
    ]
    costs = {}
    answers = set()

    def sweep():
        for label, run in variants:
            ws.start_measurement()
            with ws.metrics.phase(Phase.MATCH):
                pairs = run()
            answers.add(frozenset(pairs))
            costs[label] = ws.metrics.summary()
        return costs

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(answers) == 1  # traversal order never changes the answer

    for label, summary in costs.items():
        benchmark.extra_info[label] = round(summary.total_io)
        print(f"{label:14s} match_io={summary.match_io:7.0f} "
              f"total={summary.total_io:7.0f}")

    # The paper's argument, quantified: squeezing the BFS queue costs
    # real I/O that depth-first never pays.
    assert costs["bfs-64-pairs"].total_io > costs["dfs"].total_io
    assert costs["bfs-64-pairs"].total_io > \
        costs["bfs-unbounded"].total_io
    # With unbounded memory the traversal orders cost about the same.
    assert costs["bfs-unbounded"].total_io < 1.5 * costs["dfs"].total_io
