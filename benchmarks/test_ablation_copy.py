"""Ablation: seed-copy strategies C1 vs C2 vs C3 (Section 2.1).

The paper: copying raw minimum bounding boxes (C1) can mislead insertion
when the seeding tree has badly formed boxes (its Figure 3 example), so
center points (C2) or center points at the slot level with true child
boxes above (C3) "almost always out-perform strategy C1".

Reproduction note (recorded in EXPERIMENTS.md): on our workloads the
three strategies land within a few percent of each other — the Figure 3
pathology requires a seeding tree whose boxes misdescribe their
children far more than clustered rectangle data produces. The benchmark
therefore asserts the *band* (strategy choice never costs more than
15%) and records the sweep for inspection, rather than forcing the
paper's strict ordering onto noise.
"""

from conftest import record_table  # noqa: F401  (fixture import side)

from repro.join import seeded_tree_join
from repro.seeded import CopyStrategy


def run_strategy(env, strategy):
    ws, tree_r, file_s, _ = env
    ws.start_measurement()
    result = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, copy_strategy=strategy)
    return ws.metrics.summary(), result.pair_set()


def test_copy_strategies(benchmark, ablation_env):
    summaries = {}
    answers = set()

    def sweep():
        for strategy in CopyStrategy:
            summary, pairs = run_strategy(ablation_env, strategy)
            summaries[strategy] = summary
            answers.add(frozenset(pairs))
        return summaries

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Correctness is policy-independent.
    assert len(answers) == 1

    c1 = summaries[CopyStrategy.MBR].total_io
    c2 = summaries[CopyStrategy.CENTER].total_io
    c3 = summaries[CopyStrategy.CENTER_AT_SLOTS].total_io
    for strategy, summary in summaries.items():
        benchmark.extra_info[strategy.value] = round(summary.total_io)
        print(f"{strategy.value}: total_io={summary.total_io:.0f} "
              f"match_rd={summary.match_read:.0f}")

    # Strategy choice is low-risk: every strategy lands within 15% of
    # the best (see module docstring for the paper-vs-measured note).
    best = min(c1, c2, c3)
    assert max(c1, c2, c3) < 1.15 * best
