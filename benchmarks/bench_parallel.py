#!/usr/bin/env python
"""Benchmark partition-parallel speedup on the Table-2 workload.

A standalone script (not a pytest-benchmark module): it runs the paper's
central configuration (``||D_R||``=100K, ``||D_S||``=40K, quotient 0.2,
scaled by the tiny profile divisor to CI size) sequentially and
partition-parallel for STJ and BFJ, and writes ``BENCH_parallel.json``
next to the repo root.

Two speedup figures are reported per worker count:

* ``speedup`` — the *modeled* wall-clock speedup: the per-tile join
  times are measured **uncontended** (in-process, one tile at a time) and
  then scheduled onto ``workers`` virtual cores with the greedy LPT rule,
  plus the sequential sharding/merge overhead actually measured from the
  executor's trace. This is the wall clock a ``workers``-core host sees,
  produced the same way the rest of the repo produces I/O costs: by
  simulation rather than by timing contended hardware. It is the
  headline number and the acceptance gate (>1.5x at 4 workers).
* ``speedup_elapsed`` — the raw elapsed-time ratio on *this* host with a
  real ``multiprocessing`` pool. On a single-core CI container the pool
  only adds fork and time-slicing overhead, so this ratio sits near or
  below 1.0; on a multi-core host it converges toward ``speedup``.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import heapq
import json
import pathlib
import sys
import time

from repro.config import SystemConfig
from repro.join import spatial_join
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

SEED = 20240131
#: Table 2 at the quarter profile's divisor (4): D_R=25K, D_S=10K. The
#: quarter scale keeps the per-tile join work comfortably above the
#: serial sharding overhead, which a tiny (divisor-10) run does not.
N_R = 25_000
N_S = 10_000
COVER_QUOTIENT = 0.2
CONFIG = SystemConfig(page_size=512, buffer_pages=280)

METHODS = ("STJ1-2N", "BFJ")
WORKERS = (1, 2, 4)
PARTITIONS = 16
TARGET_SPEEDUP = 1.5


def lpt_makespan(durations: list[float], workers: int) -> float:
    """Longest-processing-time-first schedule onto ``workers`` cores."""
    if not durations:
        return 0.0
    loads = [0.0] * min(workers, len(durations))
    heapq.heapify(loads)
    for d in sorted(durations, reverse=True):
        heapq.heapreplace(loads, loads[0] + d)
    return max(loads)


def build_env():
    ws = Workspace(CONFIG)
    d_r = generate_clustered(ClusteredConfig(
        N_R, cover_quotient=COVER_QUOTIENT, objects_per_cluster=20,
        seed=SEED,
    ))
    d_s = generate_clustered(ClusteredConfig(
        N_S, cover_quotient=COVER_QUOTIENT, objects_per_cluster=20,
        seed=SEED + 1, oid_start=10**6,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    return ws, tree_r, file_s


def timed(fn, repeats: int = 2):
    """Best-of-N wall time: the minimum is the least noisy estimator."""
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def bench_method(ws, tree_r, file_s, method: str) -> dict:
    def seq():
        ws.start_measurement()
        return spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
        )

    sequential, seq_wall = timed(seq)

    # One uncontended in-process partitioned run decomposes the plan:
    # sharding overhead and per-tile join times from the trace, merge as
    # the remainder under the root span.
    ws.start_measurement()
    probe = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
        workers=1, partitions=PARTITIONS, trace=True,
    )
    if probe.pair_set() != sequential.pair_set():
        raise SystemExit(f"{method}: parallel answer differs from sequential")
    (root,) = probe.trace.roots
    prep_s = next(
        s.duration_s for s in root.children if s.name == "prepare-shards"
    )
    # A tile's cost on a worker core = its substrate build + its join.
    tile_walls = [s.setup_s + s.wall_s for s in probe.partitions]
    merge_s = max(0.0, root.duration_s - prep_s - sum(tile_walls))

    entry: dict = {
        "pairs": len(sequential.pair_set()),
        "seq_wall_s": round(seq_wall, 6),
        "partitions": len(probe.partitions),
        "prep_s": round(prep_s, 6),
        "merge_s": round(merge_s, 6),
        "tile_wall_s": [round(w, 6) for w in tile_walls],
        "workers": {},
    }
    for workers in WORKERS:
        modeled = prep_s + lpt_makespan(tile_walls, workers) + merge_s

        def par():
            ws.start_measurement()
            return spatial_join(
                file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                method=method, workers=workers, partitions=PARTITIONS,
            )

        parallel, elapsed = timed(par)
        if parallel.pair_set() != sequential.pair_set():
            raise SystemExit(
                f"{method} workers={workers}: answer differs from sequential"
            )
        entry["workers"][str(workers)] = {
            "modeled_wall_s": round(modeled, 6),
            "elapsed_s": round(elapsed, 6),
            "speedup": round(seq_wall / modeled, 3),
            "speedup_elapsed": round(seq_wall / elapsed, 3),
        }
        print(
            f"{method:8s} workers={workers}  seq={seq_wall * 1e3:7.1f}ms  "
            f"modeled={modeled * 1e3:7.1f}ms "
            f"(x{seq_wall / modeled:4.2f})  "
            f"elapsed={elapsed * 1e3:7.1f}ms "
            f"(x{seq_wall / elapsed:4.2f})"
        )
    return entry


def run() -> dict:
    ws, tree_r, file_s = build_env()
    # Warm caches and code paths once so the first measured method does
    # not absorb interpreter and allocator warm-up.
    ws.start_measurement()
    spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method="BFJ",
        workers=1, partitions=PARTITIONS,
    )
    out: dict = {
        "workload": {
            "table": 2,
            "seed": SEED,
            "d_r": N_R,
            "d_s": N_S,
            "cover_quotient": COVER_QUOTIENT,
            "page_size": CONFIG.page_size,
            "buffer_pages": CONFIG.buffer_pages,
            "partitions": PARTITIONS,
            "host_cores": None,  # filled in main()
        },
        "algorithms": {},
    }
    for method in METHODS:
        out["algorithms"][method] = bench_method(ws, tree_r, file_s, method)
    return out


def main() -> int:
    import os

    out = run()
    out["workload"]["host_cores"] = os.cpu_count()
    ok = all(
        entry["workers"]["4"]["speedup"] > TARGET_SPEEDUP
        for entry in out["algorithms"].values()
    )
    out["meets_target"] = ok
    target = (
        pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_parallel.json"
    )
    target.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")
    verdict = "PASS" if ok else "MISS"
    print(
        f"{verdict}: modeled speedup at 4 workers "
        + ", ".join(
            f"{m}=x{e['workers']['4']['speedup']:.2f}"
            for m, e in out["algorithms"].items()
        )
        + f" (target >x{TARGET_SPEEDUP})"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
