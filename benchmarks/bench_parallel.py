#!/usr/bin/env python
"""Benchmark partition-parallel speedup on the Table-2 workload.

A standalone script (not a pytest-benchmark module): it runs the paper's
central configuration (``||D_R||``=100K, ``||D_S||``=40K, quotient 0.2,
scaled by the quarter profile divisor to CI size) sequentially and
through the persistent worker pool for STJ and BFJ, and writes
``BENCH_parallel.json`` next to the repo root.

Three execution legs are timed per method:

* ``cold`` — first pooled join on a freshly published dataset: pays
  column publication, worker attachment, and per-tile substrate builds.
* ``warm`` — repeat pooled join on the same dataset: shared columns are
  cached, every tile substrate is warm, workers receive descriptors
  only. This is the regime the pool exists for (resident service,
  experiment sweeps).
* ``legacy`` — the pre-pool executor (``REPRO_POOL=0``): fork per join,
  pickled shard scatter, full rebuilds. Kept as the baseline the
  refactor is measured against.

Two speedup figures are reported per worker count:

* ``speedup`` — the *modeled* wall-clock speedup of a warm pooled join:
  per-tile join times measured warm (zero setup) are scheduled onto
  ``workers`` virtual cores with the greedy LPT rule, plus the
  parent-side overhead (dispatch, IPC, merge) actually measured on this
  host. This is the wall clock a ``workers``-core host sees, produced
  the same way the rest of the repo produces I/O costs: by simulation
  rather than by timing contended hardware. It is the headline number
  and the acceptance gate (>= 2x at 4 workers).
* ``speedup_elapsed`` — the raw elapsed ratio sequential/warm on *this*
  host. On a single-core CI container this isolates the overhead the
  pool removed (no forks, no pickled entries, no rebuilds) and must not
  regress below 1.0; on a multi-core host it converges toward
  ``speedup``.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick --check

``--quick`` shrinks the workload and sweep for CI smoke; ``--check``
exits nonzero when the gate fails (quick gate: warm elapsed speedup
>= 1.0 at 2 workers; full gate: modeled >= 2.0 and warm elapsed >= 1.0
at 4 workers). ``--quick`` alone never writes BENCH_parallel.json.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import pathlib
import sys
import time

from repro.config import SystemConfig
from repro.join import spatial_join
from repro.parallel import shutdown_default_pools
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

SEED = 20240131
#: Table 2 at the quarter profile's divisor (4): D_R=25K, D_S=10K. The
#: quarter scale keeps the per-tile join work comfortably above the
#: serial dispatch overhead, which a tiny (divisor-10) run does not.
N_R = 25_000
N_S = 10_000
COVER_QUOTIENT = 0.2
CONFIG = SystemConfig(page_size=512, buffer_pages=280)

METHODS = ("STJ1-2N", "BFJ")
WORKERS = (2, 4)
PARTITIONS = 16
TARGET_SPEEDUP = 2.0
GATE_WORKERS = 4

#: ``--quick`` profile: small enough for a smoke job, large enough that
#: per-tile work still dominates the dispatch overhead being gated.
QUICK_N_R = 12_000
QUICK_N_S = 4_800
QUICK_WORKERS = (2,)
QUICK_GATE_WORKERS = 2


def lpt_makespan(durations: list[float], workers: int) -> float:
    """Longest-processing-time-first schedule onto ``workers`` cores."""
    if not durations:
        return 0.0
    loads = [0.0] * min(workers, len(durations))
    heapq.heapify(loads)
    for d in sorted(durations, reverse=True):
        heapq.heapreplace(loads, loads[0] + d)
    return max(loads)


def build_env(n_r: int, n_s: int):
    ws = Workspace(CONFIG)
    d_r = generate_clustered(ClusteredConfig(
        n_r, cover_quotient=COVER_QUOTIENT, objects_per_cluster=20,
        seed=SEED,
    ))
    d_s = generate_clustered(ClusteredConfig(
        n_s, cover_quotient=COVER_QUOTIENT, objects_per_cluster=20,
        seed=SEED + 1, oid_start=10**6,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    return ws, tree_r, file_s


def timed(fn, repeats: int = 2):
    """Best-of-N wall time: the minimum is the least noisy estimator."""
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def bench_method(ws, tree_r, file_s, method: str, workers_sweep) -> dict:
    def join(**kw):
        ws.start_measurement()
        return spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics, method=method,
            **kw,
        )

    sequential, seq_wall = timed(join, repeats=3)

    # Uncontended per-tile join walls from an in-process partitioned
    # probe: PartitionStats keeps substrate setup separate from join
    # wall, so ``wall_s`` alone is each tile's *warm* cost. Tile walls
    # measured inside a multi-worker run would be inflated by scheduler
    # waits whenever workers outnumber cores, which is exactly the CI
    # situation, so they never feed the model.
    probe = join(workers=1, partitions=PARTITIONS)
    if probe.pair_set() != sequential.pair_set():
        raise SystemExit(f"{method}: parallel answer differs from sequential")
    tile_walls = [s.wall_s for s in probe.partitions]

    entry: dict = {
        "pairs": len(sequential.pair_set()),
        "seq_wall_s": round(seq_wall, 6),
        "partitions": PARTITIONS,
        "tile_wall_s": [round(w, 6) for w in tile_walls],
        "workers": {},
    }
    for workers in workers_sweep:
        pooled_kw = dict(
            workers=workers, partitions=PARTITIONS, parallel_guard=False,
        )
        # Fresh dataset version per worker count would defeat the warm
        # leg, so cold is timed once (first join after the sweep's tree
        # is published for this shape) and warm is best-of-2 after it.
        t0 = time.perf_counter()
        cold = join(**pooled_kw)
        cold_s = time.perf_counter() - t0
        if not cold.parallel_decision.pooled:
            raise SystemExit(
                f"{method} workers={workers}: expected the pooled route, "
                f"got {cold.parallel_decision!r}"
            )
        if cold.pair_set() != sequential.pair_set():
            raise SystemExit(
                f"{method} workers={workers}: answer differs from sequential"
            )
        warm_result, warm_s = timed(lambda: join(**pooled_kw))
        if warm_result.pair_set() != sequential.pair_set():
            raise SystemExit(
                f"{method} workers={workers}: warm answer differs"
            )

        # On a one-core host the warm elapsed time is the serialization
        # of all worker CPU plus the parent's dispatch/IPC/merge work,
        # so subtracting the uncontended tile CPU isolates the overhead
        # a multi-core host would still pay.
        overhead_s = max(0.0, warm_s - sum(tile_walls))
        modeled = overhead_s + lpt_makespan(tile_walls, workers)

        os.environ["REPRO_POOL"] = "0"
        try:
            legacy, legacy_s = timed(lambda: join(**pooled_kw), repeats=1)
        finally:
            del os.environ["REPRO_POOL"]
        if legacy.pair_set() != sequential.pair_set():
            raise SystemExit(
                f"{method} workers={workers}: legacy answer differs"
            )

        entry["workers"][str(workers)] = {
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "legacy_s": round(legacy_s, 6),
            "overhead_s": round(overhead_s, 6),
            "modeled_wall_s": round(modeled, 6),
            "speedup": round(seq_wall / modeled, 3),
            "speedup_elapsed": round(seq_wall / warm_s, 3),
            "speedup_vs_legacy": round(legacy_s / warm_s, 3),
        }
        print(
            f"{method:8s} workers={workers}  seq={seq_wall * 1e3:7.1f}ms  "
            f"cold={cold_s * 1e3:7.1f}ms  warm={warm_s * 1e3:7.1f}ms "
            f"(x{seq_wall / warm_s:4.2f})  legacy={legacy_s * 1e3:7.1f}ms  "
            f"modeled={modeled * 1e3:7.1f}ms (x{seq_wall / modeled:4.2f})"
        )
    return entry


def run(quick: bool) -> dict:
    n_r, n_s = (QUICK_N_R, QUICK_N_S) if quick else (N_R, N_S)
    workers_sweep = QUICK_WORKERS if quick else WORKERS
    ws, tree_r, file_s = build_env(n_r, n_s)
    # Warm caches and code paths once so the first measured method does
    # not absorb interpreter and allocator warm-up.
    ws.start_measurement()
    spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics, method="BFJ",
        workers=1, partitions=PARTITIONS,
    )
    out: dict = {
        "workload": {
            "table": 2,
            "seed": SEED,
            "d_r": n_r,
            "d_s": n_s,
            "cover_quotient": COVER_QUOTIENT,
            "page_size": CONFIG.page_size,
            "buffer_pages": CONFIG.buffer_pages,
            "partitions": PARTITIONS,
            "quick": quick,
            "host_cores": os.cpu_count(),
        },
        "algorithms": {},
    }
    for method in METHODS:
        out["algorithms"][method] = bench_method(
            ws, tree_r, file_s, method, workers_sweep,
        )
    shutdown_default_pools()
    return out


def gate(out: dict, quick: bool) -> tuple[bool, str]:
    """(passed, verdict line) for the profile's acceptance gate."""
    if quick:
        cell = str(QUICK_GATE_WORKERS)
        ratios = {
            m: e["workers"][cell]["speedup_elapsed"]
            for m, e in out["algorithms"].items()
        }
        ok = all(r >= 1.0 for r in ratios.values())
        detail = ", ".join(f"{m}=x{r:.2f}" for m, r in ratios.items())
        return ok, (
            f"warm elapsed speedup at {cell} workers {detail} "
            f"(gate >= x1.00)"
        )
    cell = str(GATE_WORKERS)
    ok = all(
        e["workers"][cell]["speedup"] >= TARGET_SPEEDUP
        and e["workers"][cell]["speedup_elapsed"] >= 1.0
        for e in out["algorithms"].values()
    )
    detail = ", ".join(
        f"{m}=x{e['workers'][cell]['speedup']:.2f}"
        f"/x{e['workers'][cell]['speedup_elapsed']:.2f}(elapsed)"
        for m, e in out["algorithms"].items()
    )
    return ok, (
        f"modeled/elapsed speedup at {cell} workers {detail} "
        f"(gate modeled >= x{TARGET_SPEEDUP:.1f}, elapsed >= x1.00)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload + 2-worker sweep for CI smoke; "
             "does not write BENCH_parallel.json",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero when the profile's speedup gate fails",
    )
    args = parser.parse_args(argv)

    out = run(args.quick)
    ok, verdict = gate(out, args.quick)
    out["meets_target"] = ok
    if not args.quick:
        target = (
            pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_parallel.json"
        )
        target.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
        print(f"wrote {target}")
    print(("PASS: " if ok else "MISS: ") + verdict)
    if args.check:
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
