"""Ablation: linked-list construction on vs off (Section 3.1).

The paper: "Our earlier experiments showed that STJ incurred similar
numbers of creation time reads as RTJ when intermediate linked list was
not used. Using intermediate linked lists in tree construction
successfully eliminated most of the buffer misses." This benchmark flips
exactly that switch.
"""

from conftest import record_table  # noqa: F401

from repro.join import seeded_tree_join


def test_linked_lists(benchmark, ablation_env):
    ws, tree_r, file_s, _ = ablation_env
    summaries = {}
    answers = set()

    def sweep():
        for use_lists in (False, True):
            ws.start_measurement()
            result = seeded_tree_join(
                file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                use_linked_lists=use_lists,
            )
            summaries[use_lists] = ws.metrics.summary()
            answers.add(frozenset(result.pair_set()))
        return summaries

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(answers) == 1

    without, with_lists = summaries[False], summaries[True]
    benchmark.extra_info["construct_rd_without"] = round(without.construct_read)
    benchmark.extra_info["construct_rd_with"] = round(with_lists.construct_read)
    print(f"without lists: construct_rd={without.construct_read:.0f} "
          f"total={without.total_io:.0f}")
    print(f"with lists:    construct_rd={with_lists.construct_read:.0f} "
          f"total={with_lists.total_io:.0f}")

    # Lists eliminate most construction-time random reads...
    assert with_lists.construct_read < without.construct_read / 2
    # ...and lower the construction-attributed I/O overall.
    assert with_lists.construct_io < without.construct_io
