"""Ablation: the two-seeded-tree scenario (Section 5).

When both inputs are derived, the paper offers two sources for the
common artificial seed levels — a uniform grid of slots or spatially
sampled data. This benchmark compares them (and a grid-resolution sweep)
on a pair of index-less data sets.
"""

from conftest import BENCH_SEED, record_table  # noqa: F401

from repro.config import SystemConfig
from repro.join import naive_join, two_seeded_join
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace


def test_two_seeded_variants(benchmark):
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))
    d_a = generate_clustered(ClusteredConfig(
        4_000, objects_per_cluster=20, seed=BENCH_SEED + 61,
    ))
    d_b = generate_clustered(ClusteredConfig(
        4_000, objects_per_cluster=20, seed=BENCH_SEED + 62,
        oid_start=1_000_000,
    ))
    file_a = ws.install_datafile(d_a, name="A")
    file_b = ws.install_datafile(d_b, name="B")
    oracle = naive_join(d_a, d_b).pair_set()

    configs = [
        ("grid-8", dict(seeds="grid", grid_cells=8)),
        ("grid-16", dict(seeds="grid", grid_cells=16)),
        ("grid-32", dict(seeds="grid", grid_cells=32)),
        ("sample-256", dict(seeds="sample", sample_size=256)),
    ]
    costs = {}

    def sweep():
        for label, kwargs in configs:
            ws.start_measurement()
            result = two_seeded_join(file_a, file_b, ws.buffer, ws.config,
                                     ws.metrics, **kwargs)
            assert result.pair_set() == oracle
            costs[label] = ws.metrics.summary()
        return costs

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for label, summary in costs.items():
        benchmark.extra_info[label] = round(summary.total_io)
        print(f"{label:11s} total={summary.total_io:7.0f} "
              f"match={summary.match_io:7.0f}")

    # All variants are in the same cost regime — no configuration may
    # blow up (within 3x of the best).
    totals = [s.total_io for s in costs.values()]
    assert max(totals) < 3 * min(totals)
