"""Figure 9: total disk I/O vs cover quotient (series 2).

As clustering weakens (quotient 0.2 -> 1.0), totals rise for everyone.
BFJ degrades fastest and ends as the worst method; the STJ curves stay
lowest across the whole range.
"""

from conftest import record_table

from repro.experiments.configs import SERIES_TABLES
from repro.experiments.figures import figure_series, format_figure


def test_figure9(benchmark, series2_results):
    series = benchmark.pedantic(
        figure_series, args=(9, series2_results), rounds=1, iterations=1,
    )
    print("\n" + format_figure(9, series2_results, compare_paper=True))
    record_table(benchmark, series2_results[SERIES_TABLES[2][-1]])
    lines = dict(series)

    # Everyone pays more with less clustering.
    for name, values in lines.items():
        assert values[-1] > values[0], name

    # BFJ's degradation is the steepest of all methods.
    growth = {
        name: values[-1] / values[0] for name, values in lines.items()
    }
    assert growth["BFJ"] == max(growth.values())

    # BFJ is the worst method at quotient 1.0.
    assert lines["BFJ"][-1] == max(v[-1] for v in lines.values())

    # The best STJ variant leads at every quotient.
    for x in range(5):
        best_stj = min(
            v[x] for name, v in lines.items() if name.startswith("STJ")
        )
        assert best_stj < lines["RTJ"][x]
        assert best_stj < lines["BFJ"][x]
