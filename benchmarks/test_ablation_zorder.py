"""Ablation: the z-order merge join against the tree-based methods.

The paper's related work describes Orenstein's z-order approach as the
main alternative family to tree-matching joins. This benchmark runs it
on the shared workload (with the indexed side's z-file pre-built, like
``T_R``), sweeps its redundancy knob ([Ore89]: more elements per object
= tighter covers but bigger files), and places it among STJ/RTJ/BFJ.

Expected shape: ZOJ's I/O is purely sequential (build one sorted run,
merge two), so its *disk* cost is very competitive; it pays instead in
CPU (exact tests on candidate pairs) and in file redundancy.
"""

from conftest import record_table  # noqa: F401

from repro.join import seeded_tree_join
from repro.join.zjoin import z_order_join
from repro.metrics import Phase
from repro.zorder import ZFile


def test_zorder_join(benchmark, ablation_env):
    ws, tree_r, file_s, d_s = ablation_env

    # Reference answer and cost from the seeded tree.
    ws.start_measurement()
    stj_result = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config,
                                  ws.metrics)
    stj_cost = ws.metrics.summary()
    oracle = stj_result.pair_set()

    # Pre-build Z_R for each redundancy level (uncharged, like T_R),
    # then run the z-order join.
    d_r = tree_r.all_objects()
    costs = {}
    redundancy = {}

    def sweep():
        for budget in (1, 4, 16):
            ws.start_measurement()
            with ws.metrics.phase(Phase.SETUP):
                zfile_r = ZFile.build(ws.disk, ws.config, d_r,
                                      max_elements=budget, name="Z_R")
            ws.disk.reset_arm()
            result = z_order_join(file_s, zfile_r, ws.config, ws.metrics,
                                  max_elements=budget)
            assert result.pair_set() == oracle
            costs[budget] = ws.metrics.summary()
            redundancy[budget] = zfile_r.redundancy
        return costs

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print(f"STJ reference: total={stj_cost.total_io:.0f} "
          f"bbox={stj_cost.bbox_k:.0f}K")
    for budget, summary in costs.items():
        benchmark.extra_info[f"zoj_total@{budget}"] = round(summary.total_io)
        print(f"ZOJ budget={budget:2d}: total={summary.total_io:7.0f} "
              f"redundancy={redundancy[budget]:.2f} "
              f"bbox={summary.bbox_k:7.0f}K")

    # Redundancy grows with the element budget.
    assert redundancy[16] > redundancy[1] >= 1.0
    # More redundancy = bigger files = more merge I/O.
    assert costs[16].total_io > costs[1].total_io
    # ZOJ's sequential profile keeps its disk cost in the tree joins'
    # regime (within 3x of STJ on this workload).
    assert costs[1].total_io < 3 * stj_cost.total_io
