"""Figure 8: tree-matching I/O vs ||D_S|| (series 1).

Matching cost rises with the number of objects on the un-indexed side
for every method; BFJ (whose whole cost is matching) rises fastest once
its touched node set outgrows the buffer, while the tree-vs-tree
matchers stay close to each other — the seeded tree's better shape gives
it the lower line.
"""

from conftest import record_table

from repro.experiments.configs import SERIES_TABLES
from repro.experiments.figures import figure_series, format_figure


def test_figure8(benchmark, series1_results):
    series = benchmark.pedantic(
        figure_series, args=(8, series1_results), rounds=1, iterations=1,
    )
    print("\n" + format_figure(8, series1_results, compare_paper=True))
    record_table(benchmark, series1_results[SERIES_TABLES[1][-1]])
    lines = dict(series)

    # Matching cost rises with ||D_S|| for every algorithm.
    for name, values in lines.items():
        assert values[-1] > values[0], name

    # Beyond the boundary case, BFJ's matching is the most expensive —
    # it re-reads T_R per query instead of walking both trees once.
    for x in range(1, 4):
        assert lines["BFJ"][x] == max(v[x] for v in lines.values())

    # STJ's matching beats RTJ's at the clustered setting (better tree
    # organisation; the paper's Figure 8 shows the same ordering).
    assert lines["STJ1-2N"][-1] <= 1.2 * lines["RTJ"][-1]
