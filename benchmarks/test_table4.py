"""Table 4: ||D_R||=100K, ||D_S||=80K, quotient 0.2 (scaled by profile).

Series 1 endpoint: the join-time tree is now several times the buffer.
This is where RTJ is at its worst (the paper reports 22354 total against
4276 for STJ2-3F — more than 5x), and where the construction-cost gap
between a straightforward build and the linked-list build is widest.
"""

from conftest import (
    BENCH_SEED,
    assert_common_shape,
    assert_overflow_regime,
    profile,
    record_table,
    totals,
)

from repro.experiments import run_table
from repro.experiments.tables import format_table


def test_table4(benchmark):
    result = benchmark.pedantic(
        run_table, args=(4,), kwargs=dict(profile=profile(), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    print("\n" + format_table(result, compare_paper=True))
    record_table(benchmark, result)
    assert_common_shape(result)
    assert_overflow_regime(result)

    # At the largest D_S, RTJ's construction reads alone exceed any STJ
    # variant's *entire* cost.
    rtj_construct = result.row("RTJ").summary.construct_read
    for row in result.rows:
        if row.algorithm.startswith("STJ"):
            assert rtj_construct > 0.5 * row.summary.total_io

    t = totals(result)
    assert t["RTJ"] > t["BFJ"]  # construction misses still dominate
