#!/usr/bin/env python
"""Benchmark the execution engine across all six join pipelines.

A standalone script (not a pytest-benchmark module): it runs every
algorithm the engine executes — the paper's three plus the oracle, the
z-order merge join and the two-seeded join — on one small fixed-seed
clustered workload, and writes ``BENCH_engine.json`` next to the repo
root. Per algorithm it records the per-phase wall time and raw
random/sequential I/O pulled from the engine's trace, alongside the
paper-model :class:`~repro.metrics.CostSummary`. The workload is kept
small because NAIVE is quadratic; the point is the per-phase *shape*
of each pipeline, not headline scale.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.config import SystemConfig
from repro.join import spatial_join
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

SEED = 20240131
N_R = 1_200
N_S = 500
CONFIG = SystemConfig(page_size=512, buffer_pages=64)

METHODS = ("BFJ", "RTJ", "STJ1-2N", "NAIVE", "ZJOIN", "2STJ")


def run() -> dict:
    ws = Workspace(CONFIG)
    d_r = generate_clustered(ClusteredConfig(
        N_R, cover_quotient=2.0, objects_per_cluster=20, seed=SEED,
    ))
    d_s = generate_clustered(ClusteredConfig(
        N_S, cover_quotient=2.0, objects_per_cluster=20, seed=SEED + 1,
        oid_start=10**6,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)
    file_r = ws.install_datafile(d_r, name="D_R(raw)")

    out: dict = {
        "workload": {
            "seed": SEED,
            "d_r": N_R,
            "d_s": N_S,
            "page_size": CONFIG.page_size,
            "buffer_pages": CONFIG.buffer_pages,
        },
        "algorithms": {},
    }
    reference = None
    for method in METHODS:
        ws.start_measurement()
        result = spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics,
            method=method, data_r=file_r, trace=True,
        )
        pair_set = result.pair_set()
        if reference is None:
            reference = pair_set
        elif pair_set != reference:
            raise SystemExit(f"{method} answer differs from BFJ")
        summary = ws.metrics.summary()
        (root,) = result.trace.roots
        phases = [
            {
                "phase": span.name,
                "accounting": span.phase,
                "wall_s": round(span.duration_s, 6),
                "io": {
                    acc: {
                        "random_reads": io.random_reads,
                        "sequential_reads": io.sequential_reads,
                        "random_writes": io.random_writes,
                        "sequential_writes": io.sequential_writes,
                    }
                    for acc, io in span.io.items()
                },
            }
            for span in root.children
        ]
        out["algorithms"][method] = {
            "pairs": len(pair_set),
            "wall_s": round(root.duration_s, 6),
            "construct_read": round(summary.construct_read, 3),
            "construct_write": round(summary.construct_write, 3),
            "match_read": round(summary.match_read, 3),
            "match_write": round(summary.match_write, 3),
            "total_io": round(summary.total_io, 3),
            "phases": phases,
        }
        print(
            f"{method:8s} pairs={len(pair_set):5d} "
            f"total_io={summary.total_io:9.1f} "
            f"wall={root.duration_s * 1e3:8.1f}ms "
            f"phases={[p['phase'] for p in phases]}"
        )
    return out


def main() -> int:
    out = run()
    target = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    target.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
