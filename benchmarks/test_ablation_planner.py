"""Ablation: how good is the Section-5 cost-based planner?

For every point of series 1 (the ``||D_S||`` sweep, where the BFJ → STJ
crossover lives), compare the planner's choice against the measured
winner. The planner sees only join-time metadata; the benchmark asserts
it never picks a method that costs more than twice the measured best —
the "no blowups" guarantee a planner must give.
"""

from conftest import record_table  # noqa: F401

from repro.experiments.configs import SERIES_TABLES
from repro.join.planner import plan_join


def test_planner_vs_measured(benchmark, series1_results):
    def evaluate():
        report = []
        for table in SERIES_TABLES[1]:
            result = series1_results[table]
            plan = plan_join(
                result.profile.config,
                n_s=result.d_s_size,
                # Metadata the planner would read from the catalog:
                tree_r_pages=result.profile.config.estimated_tree_pages(
                    result.d_r_size
                ),
                tree_r_height=4,
            )
            measured = {
                r.algorithm: r.summary.total_io for r in result.rows
                if r.algorithm in ("BFJ", "RTJ", "STJ1-2N")
            }
            chosen = plan.best.method
            chosen_key = "STJ1-2N" if chosen == "STJ" else chosen
            best_alg = min(measured, key=measured.get)
            report.append(
                (table, chosen, best_alg,
                 measured[chosen_key], measured[best_alg])
            )
        return report

    report = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    for table, chosen, best_alg, chosen_cost, best_cost in report:
        benchmark.extra_info[f"table{table}"] = f"{chosen} vs {best_alg}"
        print(f"table {table}: planner={chosen:4s} "
              f"measured-best={best_alg:8s} "
              f"cost {chosen_cost:.0f} vs {best_cost:.0f}")
        # The planner's pick never costs more than 2x the true winner.
        assert chosen_cost <= 2.0 * best_cost

    # In the overflow regime (the larger D_S points) the planner must
    # pick the seeded tree, the measured winner.
    late = [chosen for table, chosen, *_ in report if table >= 3]
    assert all(c == "STJ" for c in late)
