"""Figure 11: tree-matching I/O vs cover quotient (series 2).

The paper: "as the degree of clustering decreases, the number of disk
accesses by STJ at tree matching time becomes close to that of RTJ" —
with most leaves overlapping, there is little left for a better-shaped
tree to skip. BFJ's matching (its whole cost) meanwhile keeps climbing.
"""

from conftest import record_table

from repro.experiments.configs import SERIES_TABLES
from repro.experiments.figures import figure_series, format_figure


def test_figure11(benchmark, series2_results):
    series = benchmark.pedantic(
        figure_series, args=(11, series2_results), rounds=1, iterations=1,
    )
    print("\n" + format_figure(11, series2_results, compare_paper=True))
    record_table(benchmark, series2_results[SERIES_TABLES[2][-1]])
    lines = dict(series)

    # Matching cost rises as clustering weakens, for every algorithm.
    for name, values in lines.items():
        assert values[-1] > values[0], name

    # STJ's matching converges toward RTJ's at low clustering: the gap
    # at quotient 1.0 is within 25%.
    rtj, stj = lines["RTJ"][-1], lines["STJ1-2N"][-1]
    assert abs(rtj - stj) < 0.25 * rtj

    # BFJ's matching is the most expensive at every quotient beyond the
    # most clustered point.
    for x in range(1, 5):
        assert lines["BFJ"][x] == max(v[x] for v in lines.values())
