"""Ablation: bounding-box update policies U1-U5 (Section 2.2).

The paper's finding: the policies that let the tree adapt to the data —
U3 (enclose data only, all levels), U4 and U5 (slot level only) — always
gave better performance than never updating (U1) or dragging the seed
box along (U2), with only marginal differences among the best three.

Reproduction note (recorded in EXPERIMENTS.md): on our workloads all
five policies land within a few percent — with C3's center-point slots,
distance-guided descent already sends objects to well-matched slots, so
box updates barely change routing. The benchmark asserts the band and
records the sweep instead of forcing the paper's ordering onto noise.
"""

from conftest import record_table  # noqa: F401

from repro.join import seeded_tree_join
from repro.seeded import UpdatePolicy

BEST = (UpdatePolicy.ENCLOSE_DATA_ONLY, UpdatePolicy.SLOT_WITH_SEED,
        UpdatePolicy.SLOT_DATA_ONLY)


def test_update_policies(benchmark, ablation_env):
    ws, tree_r, file_s, _ = ablation_env
    summaries = {}
    answers = set()

    def sweep():
        for policy in UpdatePolicy:
            ws.start_measurement()
            result = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config,
                                      ws.metrics, update_policy=policy)
            summaries[policy] = ws.metrics.summary()
            answers.add(frozenset(result.pair_set()))
        return summaries

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(answers) == 1  # results are policy-independent

    for policy, summary in summaries.items():
        benchmark.extra_info[policy.value] = round(summary.total_io)
        print(f"{policy.value}: total_io={summary.total_io:.0f}")

    totals = [s.total_io for s in summaries.values()]
    # Policy choice is low-risk: the full U1-U5 spread stays within 15%
    # (see module docstring for the paper-vs-measured note).
    assert max(totals) < 1.15 * min(totals)
    # "The differences between the three best update policies were
    # marginal" — the paper's winning trio stays within 10%.
    best = [summaries[p].total_io for p in BEST]
    assert max(best) < 1.1 * min(best)
