"""Ablation: buffer replacement policy (LRU vs FIFO vs CLOCK).

The paper assumes a dedicated buffer but never names its replacement
policy; we default to LRU. This benchmark re-runs the central workload
under FIFO and CLOCK to check how much of the story depends on that
assumption. Expectation: the *orderings* (STJ < BFJ < RTJ) are policy-
robust; absolute costs move a little because BFJ's repeated window
queries are the most recency-sensitive access pattern in the mix.
"""

from conftest import BENCH_SEED, record_table  # noqa: F401

from repro.config import SystemConfig
from repro.join import spatial_join
from repro.storage import BufferPool
from repro.workload import ClusteredConfig, generate_clustered
from repro.workspace import Workspace

POLICIES = ("lru", "fifo", "clock")
METHODS = ("BFJ", "RTJ", "STJ1-2N")


def run_policy(policy):
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))
    ws.buffer = BufferPool(ws.config.buffer_pages, ws.disk, policy=policy)
    d_r = generate_clustered(ClusteredConfig(
        10_000, objects_per_cluster=20, seed=BENCH_SEED + 21,
    ))
    d_s = generate_clustered(ClusteredConfig(
        4_000, objects_per_cluster=20, seed=BENCH_SEED + 22,
        oid_start=1_000_000,
    ))
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)

    out = {}
    answers = set()
    for method in METHODS:
        ws.start_measurement()
        result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, method=method)
        answers.add(frozenset(result.pair_set()))
        out[method] = ws.metrics.summary().total_io
    assert len(answers) == 1
    return out


def test_buffer_policies(benchmark):
    results = benchmark.pedantic(
        lambda: {p: run_policy(p) for p in POLICIES},
        rounds=1, iterations=1,
    )
    for policy, methods in results.items():
        for method, total in methods.items():
            benchmark.extra_info[f"{method}@{policy}"] = round(total)
        print(f"{policy:6s} " + "  ".join(
            f"{m}={v:7.0f}" for m, v in methods.items()
        ))

    # The paper's ordering holds under every policy.
    for policy, methods in results.items():
        assert methods["STJ1-2N"] < methods["RTJ"], policy
        assert methods["STJ1-2N"] < 1.2 * methods["BFJ"], policy

    # Costs stay in the same regime across policies (within 2x per
    # method) — the conclusions do not hinge on the LRU assumption.
    for method in METHODS:
        per_policy = [results[p][method] for p in POLICIES]
        assert max(per_policy) < 2 * min(per_policy), method
