#!/usr/bin/env python3
"""Quickstart: one seeded-tree join, start to finish.

Sets up the paper's environment — a pre-computed R-tree over data set
``D_R`` and an index-less derived data set ``D_S`` — then runs the three
join algorithms of the evaluation and prints their answers and costs in
the paper's accounting (random-access units; sequential accesses count
1/30).

Run with::

    python examples/quickstart.py
"""

from repro import SystemConfig, Workspace, spatial_join
from repro.metrics.report import format_cost_table
from repro.workload import ClusteredConfig, generate_clustered


def main() -> None:
    # A scaled-down physical design (fan-out 24, 128-page buffer) so the
    # example runs in seconds; drop the overrides for the paper's exact
    # 1 KiB pages and 512-page buffer.
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))

    # D_R: 10,000 clustered rectangles with a pre-computed R-tree.
    d_r = generate_clustered(
        ClusteredConfig(10_000, cover_quotient=0.2,
                        objects_per_cluster=20, seed=1)
    )
    tree_r = ws.install_rtree(d_r, name="T_R")

    # D_S: a derived data set (no index) of 4,000 rectangles.
    d_s = generate_clustered(
        ClusteredConfig(4_000, cover_quotient=0.2,
                        objects_per_cluster=20, seed=2,
                        oid_start=1_000_000)
    )
    file_s = ws.install_datafile(d_s, name="D_S")

    print(f"T_R: {len(tree_r)} objects, height {tree_r.height}, "
          f"{tree_r.num_nodes()} nodes")
    print(f"D_S: {len(file_s)} objects in {file_s.num_pages} pages\n")

    rows = []
    answer = None
    for method in ("BFJ", "RTJ", "STJ1-2N", "STJ1-3F"):
        ws.start_measurement()  # cold cache, zeroed counters
        result = spatial_join(file_s, tree_r, ws.buffer, ws.config,
                              ws.metrics, method=method)
        rows.append((method, ws.metrics.summary()))
        if answer is None:
            answer = result.pair_set()
            print(f"join answer: {len(answer)} intersecting pairs\n")
        else:
            assert result.pair_set() == answer, "algorithms must agree"

    print(format_cost_table(rows, title="Join costs (random-access units)"))
    print("\nSTJ wins on total I/O; RTJ pays for join-time R-tree "
          "construction;\nBFJ pays per-query reads of T_R.")


if __name__ == "__main__":
    main()
