#!/usr/bin/env python3
"""Choosing a join method with the cost-based planner (Section 5).

The paper closes by calling for "quantitative measures to predict the
characteristics of the outcomes of spatial operations ... necessary in
choosing the best way to realize a spatial query". This example uses the
library's planner layer on a sweep of derived-set sizes:

* estimate the join selectivity from data statistics,
* rank BFJ / RTJ / STJ from join-time metadata only,
* execute the winner and compare prediction against measurement,
* and, for contrast, run the z-order merge join (the related-work
  alternative) on the same inputs.

Run with::

    python examples/join_planning.py
"""

from repro import SystemConfig, Workspace, spatial_join, z_order_join
from repro.join.planner import (
    estimate_join_selectivity,
    plan_spatial_join,
)
from repro.metrics import Phase
from repro.workload import ClusteredConfig, generate_clustered
from repro.zorder import ZFile


def main() -> None:
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))
    d_r = generate_clustered(
        ClusteredConfig(12_000, cover_quotient=0.2,
                        objects_per_cluster=25, seed=8)
    )
    tree_r = ws.install_rtree(d_r)
    print(f"T_R: {len(tree_r)} objects, {tree_r.num_nodes()} pages, "
          f"buffer {ws.config.buffer_pages} pages\n")

    print(f"{'||D_S||':>8s} {'predicted':>10s} {'chosen':>7s} "
          f"{'measured':>9s} {'best':>9s} {'best alg':>8s}")
    for n_s in (500, 2_000, 6_000, 12_000):
        d_s = generate_clustered(
            ClusteredConfig(n_s, cover_quotient=0.2, objects_per_cluster=25,
                            seed=100 + n_s, oid_start=1_000_000)
        )
        file_s = ws.install_datafile(d_s)

        # Selectivity estimate vs (implicit) truth.
        expected_pairs = estimate_join_selectivity(
            n_s, len(tree_r), 0.002, 0.002, coverage=0.36,
        )

        # Plan, then execute the planner's choice.
        ws.start_measurement()
        plan, result = plan_spatial_join(
            file_s, tree_r, ws.buffer, ws.config, ws.metrics,
        )
        chosen = plan.best.method
        measured_chosen = ws.metrics.summary().total_io

        # Ground truth: measure every method.
        measured = {}
        for method in ("BFJ", "RTJ", "STJ1-2N"):
            ws.start_measurement()
            spatial_join(file_s, tree_r, ws.buffer, ws.config, ws.metrics,
                         method=method)
            measured[method] = ws.metrics.summary().total_io
        best_alg = min(measured, key=measured.get)

        print(f"{n_s:8d} {plan.best.total_io:10.0f} {chosen:>7s} "
              f"{measured_chosen:9.0f} {measured[best_alg]:9.0f} "
              f"{best_alg:>8s}   (≈{expected_pairs:.0f} pairs predicted, "
              f"{len(result)} found)")

    # ---- The related-work alternative: z-order merge join ----------- #
    print("\nZ-order merge join on the largest input (element budget 4):")
    d_s = generate_clustered(
        ClusteredConfig(12_000, cover_quotient=0.2, objects_per_cluster=25,
                        seed=112_000, oid_start=1_000_000)
    )
    file_s = ws.install_datafile(d_s)
    ws.start_measurement()
    with ws.metrics.phase(Phase.SETUP):           # Z_R pre-exists, like T_R
        zfile_r = ZFile.build(ws.disk, ws.config, d_r, name="Z_R")
    ws.disk.reset_arm()
    zoj = z_order_join(file_s, zfile_r, ws.config, ws.metrics)
    s = ws.metrics.summary()
    print(f"  {len(zoj)} pairs; total I/O {s.total_io:.0f} "
          f"(purely sequential), bbox tests {s.bbox_k:.0f}K — cheap disk, "
          f"expensive CPU and {zfile_r.redundancy:.1f}x file redundancy.")


if __name__ == "__main__":
    main()
