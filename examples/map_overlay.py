#!/usr/bin/env python3
"""Map overlay: the paper's motivating GIS scenario (Section 1.2).

Two map layers cover a city: ``buildings`` (indexed by an R-tree) and
``parks`` (indexed by an R-tree). The paper's two queries:

* **Q1** — "find all buildings that overlap a park": both sides indexed;
  the classic R-tree join applies directly.
* **Q2** — "find all *government-owned* buildings that overlap a park":
  the non-spatial selection runs first, producing a *derived* data set
  with no spatial index — exactly the situation seeded trees exist for.

The example runs Q2 three ways (brute-force window queries, join-time
R-tree, seeded tree) at two selectivities. With a highly selective
predicate the derived set is tiny and BFJ's working set fits the buffer —
the paper's Table 1 boundary case, where BFJ wins. With a broader
predicate the seeded tree takes over. Finally the seeded tree is reused
as a retained selection index (Section 5).

Run with::

    python examples/map_overlay.py
"""

import random
from dataclasses import dataclass

from repro import Rect, SystemConfig, Workspace, match_trees, spatial_join
from repro.metrics import Phase
from repro.metrics.report import format_cost_table
from repro.workload import ClusteredConfig, generate_clustered


@dataclass(frozen=True)
class Building:
    oid: int
    footprint: Rect
    government_owned: bool


def make_city(seed: int = 7, government_fraction: float = 0.08):
    """Synthesise the two map layers."""
    rng = random.Random(seed)
    footprints = generate_clustered(
        ClusteredConfig(12_000, cover_quotient=0.25,
                        objects_per_cluster=30, seed=seed,
                        data_side_bound=0.003)
    )
    buildings = [
        Building(oid, rect, government_owned=rng.random() < government_fraction)
        for rect, oid in footprints
    ]
    # The parks layer is the indexed join partner T_R; like the paper's
    # D_R it is large relative to the buffer (~900 pages vs 128), so
    # repeated window queries against it cannot simply stay cached.
    parks = generate_clustered(
        ClusteredConfig(15_000, cover_quotient=0.25,
                        objects_per_cluster=30, seed=seed + 1,
                        oid_start=1_000_000, data_side_bound=0.006)
    )
    return buildings, parks


def main() -> None:
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))
    buildings, parks = make_city()

    # Both layers have pre-computed R-trees, as a GIS normally would.
    tree_parks = ws.install_rtree(
        [(p, oid) for p, oid in parks], name="T_parks"
    )
    tree_buildings = ws.install_rtree(
        [(b.footprint, b.oid) for b in buildings], name="T_buildings"
    )

    # ---- Q1: both sides indexed -> plain TM match ------------------- #
    ws.start_measurement()
    with ws.metrics.phase(Phase.MATCH):
        q1 = match_trees(tree_buildings, tree_parks, ws.metrics)
    print(f"Q1: {len(set(b for b, _ in q1))} buildings overlap a park "
          f"({ws.metrics.summary().total_io:.0f} I/O units)\n")

    # ---- Q2: non-spatial selection first -> derived data set -------- #
    retained_index = None
    government = []
    for fraction, label in ((0.08, "highly selective (8%)"),
                            (0.50, "broad (50%)")):
        rng = random.Random(99)
        government = [
            (b.footprint, b.oid) for b in buildings
            if rng.random() < fraction
        ]
        print(f"Q2 selection {label}: {len(government)} of "
              f"{len(buildings)} buildings (no spatial index for them)")
        file_gov = ws.install_datafile(government, name="gov_buildings")

        rows = []
        answers = []
        for method in ("BFJ", "RTJ", "STJ1-2N"):
            ws.start_measurement()
            result = spatial_join(file_gov, tree_parks, ws.buffer,
                                  ws.config, ws.metrics, method=method)
            rows.append((method, ws.metrics.summary()))
            answers.append(result.pair_set())
            if method.startswith("STJ"):
                retained_index = result.index
        assert answers[0] == answers[1] == answers[2]
        print(f"Q2 answer: {len(answers[0])} (building, park) overlaps")
        print(format_cost_table(rows, title=f"Q2 costs, {label} selection"))
        print()
    print("With the tiny derived set BFJ's working set fits the buffer "
          "(the paper's\nTable 1 boundary case); with the broad selection "
          "the seeded tree wins.")

    # ---- Section 5: retain the seeded tree for later selections ----- #
    downtown = Rect(0.4, 0.4, 0.6, 0.6)
    ws.start_measurement()
    hits = retained_index.window_query(downtown)
    print(f"\nRetained seeded tree answers a window query: "
          f"{len(hits)} selected buildings downtown "
          f"({ws.metrics.summary().total_io:.0f} I/O units)")
    expected = {o for r, o in government if r.intersects(downtown)}
    assert set(hits) == expected


if __name__ == "__main__":
    main()
