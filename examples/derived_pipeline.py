#!/usr/bin/env python3
"""A multi-way overlay pipeline ending in a two-seeded-tree join.

Section 5 of the paper: when *both* join inputs are derived data sets —
here, the outputs of two earlier spatial joins — no pre-computed R-tree
matches either input, so both sides get seeded trees built over a
*common* set of artificial seed levels (a uniform grid, or a spatial
sample of the inputs).

The pipeline (a caricature of an environmental-impact query):

    wetlands x flood_zones   -> sensitive wetlands        (join 1)
    parcels  x developments  -> active parcels            (join 2)
    sensitive x active       -> parcels needing review    (two-seeded join)

Run with::

    python examples/derived_pipeline.py
"""

from repro import SystemConfig, Workspace, spatial_join, two_seeded_join
from repro.workload import ClusteredConfig, generate_clustered


def layer(n, seed, oid_start=0, side=0.006):
    return generate_clustered(
        ClusteredConfig(n, cover_quotient=0.3, objects_per_cluster=25,
                        seed=seed, oid_start=oid_start,
                        data_side_bound=side)
    )


def main() -> None:
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))

    wetlands = layer(6_000, seed=11)
    flood_zones = layer(2_000, seed=12, oid_start=100_000, side=0.02)
    parcels = layer(8_000, seed=13, oid_start=200_000)
    developments = layer(1_500, seed=14, oid_start=300_000, side=0.015)

    # The base layers have indices; the joins' outputs will not.
    tree_flood = ws.install_rtree(flood_zones, name="T_flood")
    tree_dev = ws.install_rtree(developments, name="T_dev")
    file_wet = ws.install_datafile(wetlands, name="wetlands")
    file_par = ws.install_datafile(parcels, name="parcels")

    # ---- Join 1: wetlands in flood zones (seeded tree join) --------- #
    ws.start_measurement()
    join1 = spatial_join(file_wet, tree_flood, ws.buffer, ws.config,
                         ws.metrics, method="STJ1-2N")
    sensitive_ids = {w for w, _ in join1.pair_set()}
    sensitive = [(r, o) for r, o in wetlands if o in sensitive_ids]
    print(f"join 1: {len(sensitive)} wetlands lie in flood zones "
          f"({ws.metrics.summary().total_io:.0f} I/O units)")

    # ---- Join 2: parcels with active development --------------------- #
    ws.start_measurement()
    join2 = spatial_join(file_par, tree_dev, ws.buffer, ws.config,
                         ws.metrics, method="STJ1-2N")
    active_ids = {p for p, _ in join2.pair_set()}
    active = [(r, o) for r, o in parcels if o in active_ids]
    print(f"join 2: {len(active)} parcels have active development "
          f"({ws.metrics.summary().total_io:.0f} I/O units)")

    # ---- Final join: two derived sets, no usable indices ------------- #
    file_sensitive = ws.install_datafile(sensitive, name="sensitive")
    file_active = ws.install_datafile(active, name="active")

    for seeds in ("grid", "sample"):
        ws.start_measurement()
        final = two_seeded_join(
            file_sensitive, file_active, ws.buffer, ws.config, ws.metrics,
            seeds=seeds, grid_cells=8, sample_size=128,
        )
        review = {p for _, p in final.pair_set()}
        print(f"final join ({seeds} seeds): {len(review)} parcels need "
              f"environmental review "
              f"({ws.metrics.summary().total_io:.0f} I/O units)")


if __name__ == "__main__":
    main()
