#!/usr/bin/env python3
"""Exploring the seeded tree's design space: C1-C3, U1-U5, k, filtering.

Section 2 of the paper defines three seed-copy strategies and five
bounding-box update policies and reports that C2/C3 with U3/U4/U5 win.
This example sweeps the full 3 x 5 grid on one workload, then the number
of seed levels and the filtering switch, printing total I/O for each —
the do-it-yourself version of the paper's policy study.

Run with::

    python examples/policy_tuning.py
"""

from repro import (
    CopyStrategy,
    SystemConfig,
    UpdatePolicy,
    Workspace,
    seeded_tree_join,
)
from repro.workload import ClusteredConfig, generate_clustered


def main() -> None:
    ws = Workspace(SystemConfig(page_size=512, buffer_pages=128))
    d_r = generate_clustered(
        ClusteredConfig(12_000, cover_quotient=0.2,
                        objects_per_cluster=25, seed=3)
    )
    d_s = generate_clustered(
        ClusteredConfig(5_000, cover_quotient=0.2, objects_per_cluster=25,
                        seed=4, oid_start=1_000_000)
    )
    tree_r = ws.install_rtree(d_r)
    file_s = ws.install_datafile(d_s)

    def run(**kwargs) -> float:
        ws.start_measurement()
        result = seeded_tree_join(file_s, tree_r, ws.buffer, ws.config,
                                  ws.metrics, **kwargs)
        assert len(result) > 0
        return ws.metrics.summary().total_io

    # ---- Copy strategy x update policy grid -------------------------- #
    print("Total I/O by (copy strategy, update policy), 2 seed levels:\n")
    header = "         " + "".join(f"{u.value:>8s}" for u in UpdatePolicy)
    print(header)
    for strategy in CopyStrategy:
        cells = [
            run(copy_strategy=strategy, update_policy=policy)
            for policy in UpdatePolicy
        ]
        row = "".join(f"{c:8.0f}" for c in cells)
        print(f"{strategy.value:>8s} {row}")
    print("\n(The paper: C2/C3 beat C1; U3/U4/U5 beat U1/U2, margins "
          "among the best are marginal.)\n")

    # ---- Seed levels and filtering ----------------------------------- #
    print("Total I/O by seed levels and filtering (C3, U3):\n")
    print("  k   no filter    filter")
    for k in (1, 2, 3):
        plain = run(seed_levels=k, filtering=False)
        filtered = run(seed_levels=k, filtering=True)
        print(f"  {k}  {plain:10.0f}  {filtered:8.0f}")
    print("\n(Filtering buys I/O with CPU; deeper seed levels filter "
          "more precisely.)")


if __name__ == "__main__":
    main()
