"""BFJ — the brute-force join (Section 4).

"Algorithm BFJ simply performs a series of window queries on the R-tree
``T_R``, using the data rectangles in ``D_S`` as query windows. The
aggregation of answers to these window queries is equivalent to a spatial
join between ``D_R`` and ``D_S``."

BFJ creates no structures, so it has no construction phase: the
sequential scan of ``D_S`` and all ``T_R`` node reads are charged to
matching. It profits fully from the buffer — when the set of touched
``T_R`` nodes fits in the buffer, repeat queries hit memory, which is
exactly the boundary case in which the paper observed BFJ winning
(Table 1).
"""

from __future__ import annotations

from ..metrics import MetricsCollector, Phase
from ..rtree import RTree
from ..storage import DataFile
from .result import JoinResult


def brute_force_join(
    data_s: DataFile,
    tree_r: RTree,
    metrics: MetricsCollector,
) -> JoinResult:
    """Join ``data_s`` with the data indexed by ``tree_r`` via window queries."""
    pairs = []
    with metrics.phase(Phase.MATCH):
        for rect, oid_s in data_s.scan():
            for oid_r in tree_r.window_query(rect):
                pairs.append((oid_s, oid_r))
    return JoinResult(pairs=pairs, index=None, algorithm="BFJ")
