"""BFJ — the brute-force join (Section 4).

"Algorithm BFJ simply performs a series of window queries on the R-tree
``T_R``, using the data rectangles in ``D_S`` as query windows. The
aggregation of answers to these window queries is equivalent to a spatial
join between ``D_R`` and ``D_S``."

BFJ creates no structures, so its pipeline is a single ``match`` phase:
the sequential scan of ``D_S`` and all ``T_R`` node reads are charged to
matching. It profits fully from the buffer — when the set of touched
``T_R`` nodes fits in the buffer, repeat queries hit memory, which is
exactly the boundary case in which the paper observed BFJ winning
(Table 1). The same pipeline serves as the engine's degradation target
when STJ construction fails irrecoverably.
"""

from __future__ import annotations

from ..kernels import batch_enabled, kernels_enabled
from ..metrics import MetricsCollector, Phase
from ..metrics.tracing import JoinTrace
from ..rtree import RTree
from ..storage import DataFile
from .batch import batch_traversal_available, window_join_batch
from .engine import ExecutionContext, JoinPhase, JoinPipeline
from .result import JoinResult


def _match(ctx: ExecutionContext) -> None:
    # One kernel-toggle read for the whole scan; BFJ issues thousands of
    # window queries and the per-query environment lookup is measurable.
    use_kernels = kernels_enabled()
    if (use_kernels and batch_enabled() and batch_traversal_available()):
        # All window queries descend the columnar snapshot together;
        # the replay fetches the same pages in the same order and emits
        # identical pairs (see repro.join.batch).
        ctx.state["pairs"] = window_join_batch(ctx.data_s, ctx.tree_r)
        return
    pairs = []
    for rect, oid_s in ctx.data_s.scan():
        for oid_r in ctx.tree_r.window_query(rect, use_kernels):
            pairs.append((oid_s, oid_r))
    ctx.state["pairs"] = pairs


def bfj_pipeline() -> JoinPipeline:
    """One window query per ``D_S`` rectangle, all charged to matching."""
    return JoinPipeline("BFJ", [
        JoinPhase("match", _match, metrics_phase=Phase.MATCH),
    ])


def brute_force_join(
    data_s: DataFile,
    tree_r: RTree,
    metrics: MetricsCollector,
    trace: JoinTrace | None = None,
    sanitize: bool | None = None,
) -> JoinResult:
    """Join ``data_s`` with the data indexed by ``tree_r`` via window queries."""
    ctx = ExecutionContext(
        data_s=data_s, metrics=metrics, tree_r=tree_r, trace=trace,
        sanitize=sanitize,
    )
    return bfj_pipeline().execute(ctx)
