"""The tree-matching algorithm TM ([BKS93], adopted by the paper).

TM starts from the two root nodes and recursively descends every pair of
children whose bounding boxes overlap, reporting answers when both sides
reach leaf entries. The paper chose it for the seeded tree's matching
component because it needs no balance: a seeded tree's grown subtrees have
different heights, and TM simply keeps descending the deeper side while
the shallower side waits at a leaf.

The CPU and I/O improvement techniques of [BKS93] are applied:

* **Intersection-box restriction** — when nodes ``R1`` and ``R2`` match,
  children that do not overlap ``R1.mbr ∩ R2.mbr`` cannot contribute and
  are dropped before pairing.
* **Plane sweep** — overlapping child pairs are enumerated with the sweep
  of :func:`repro.geometry.sweep.sweep_pairs` instead of a nested loop,
  and are *visited in sweep order*, which gives consecutive pairs high
  page-buffer locality (this is [BKS93]'s access-ordering optimisation).
* **Pinning** — the two nodes of the pair being processed are pinned so
  child fetches can never evict their parents mid-visit.

Every single-axis comparison performed here feeds the paper's "XY" CPU
column via the metrics collector.

Buffer requirement: the depth-first descent keeps the current node pair
of every level pinned, so the buffer must hold at least two pages per
level of combined descent (roughly ``height_a + height_b`` pages). Any
realistic configuration — the paper's is 512 pages for trees of height
4 — satisfies this by orders of magnitude.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Any

from ..geometry import Rect, sweep_pairs
from ..kernels import (
    batch_enabled,
    intersect_indices,
    kernels_enabled,
    sweep_pairs_batch,
)
from ..metrics import MetricsCollector
from ..rtree.node import Node
from .batch import batch_traversal_available, match_trees_batch
from .result import JoinPair

#: Entry -> MBR adapter, hoisted out of the per-pair sweep calls.
_MBR_OF = attrgetter("mbr")


def match_trees(
    tree_a: Any,
    tree_b: Any,
    metrics: MetricsCollector | None = None,
) -> list[JoinPair]:
    """All (ref_a, ref_b) pairs of overlapping objects in the two trees.

    ``tree_a`` and ``tree_b`` are duck-typed: they need ``root_id``,
    ``read_node(page_id, pin=...)``, ``buffer``, ``mutations`` and
    ``iter_nodes`` attributes — both :class:`~repro.rtree.RTree` and
    :class:`~repro.seeded.SeededTree` qualify. Either tree may be
    unbalanced.

    With the kernels and the batch layer both enabled (and the numpy
    backend live), the whole pair tree is planned level-at-a-time over
    columnar snapshots and replayed through the buffer —
    :func:`~repro.join.batch.match_trees_batch` — with bit-identical
    pairs, counters and I/O. ``REPRO_KERNELS=0`` or ``REPRO_BATCH=0``
    restores the scalar recursion below.
    """
    if (kernels_enabled() and batch_enabled()
            and batch_traversal_available()):
        return match_trees_batch(tree_a, tree_b, metrics)
    matcher = _TreeMatcher(tree_a, tree_b, metrics)
    return matcher.run()


class _TreeMatcher:
    """One matching run; exists to carry shared state through recursion."""

    def __init__(self, tree_a: Any, tree_b: Any,
                 metrics: MetricsCollector | None):
        self.tree_a = tree_a
        self.tree_b = tree_b
        self.metrics = metrics
        self.cpu = metrics.cpu if metrics is not None else None
        self.results: list[JoinPair] = []
        # One env read per matching run, not per node pair.
        self.use_kernels = kernels_enabled()
        # Bound-method hoists: _match runs once per overlapping node
        # pair, and the attribute chains (tree -> buffer -> unpin) cost
        # more than the call they set up.
        self._read_a = tree_a.read_node
        self._read_b = tree_b.read_node
        self._unpin_a = tree_a.buffer.unpin
        self._unpin_b = tree_b.buffer.unpin

    def run(self) -> list[JoinPair]:
        root_a = self.tree_a.read_node(self.tree_a.root_id)
        root_b = self.tree_b.read_node(self.tree_b.root_id)
        if not root_a.entries or not root_b.entries:
            return []
        self._match(self.tree_a.root_id, self.tree_b.root_id)
        return self.results

    # ----------------------------------------------------------------- #

    def _match(self, page_a: int, page_b: int) -> None:
        node_a = self._read_a(page_a, pin=True)
        try:
            node_b = self._read_b(page_b, pin=True)
            try:
                if node_a.is_leaf and node_b.is_leaf:
                    self._match_leaves(node_a, node_b)
                elif node_a.is_leaf:
                    self._descend_one(node_a, page_a, node_b, leaf_side="a")
                elif node_b.is_leaf:
                    self._descend_one(node_b, page_b, node_a, leaf_side="b")
                else:
                    self._match_internal(node_a, node_b)
            finally:
                self._unpin_b(page_b)
        finally:
            self._unpin_a(page_a)

    def _match_leaves(self, node_a: Node, node_b: Node) -> None:
        """Report overlapping (oid, oid) pairs via plane sweep."""
        if self.use_kernels:
            hits = sweep_pairs_batch(
                node_a.rect_array(), node_b.rect_array(), counters=self.cpu,
            )
            entries_a, entries_b = node_a.entries, node_b.entries
            self.results.extend(
                (entries_a[i].ref, entries_b[j].ref) for i, j in hits
            )
            return
        pairs = sweep_pairs(
            node_a.entries, node_b.entries,
            rect_of=_MBR_OF, counters=self.cpu,
        )
        self.results.extend((ea.ref, eb.ref) for ea, eb in pairs)

    def _match_internal(self, node_a: Node, node_b: Node) -> None:
        """Pair up overlapping children, restricted to the intersection box."""
        box = node_a.cached_mbr().intersection(node_b.cached_mbr())
        if box is None:
            return
        if self.use_kernels:
            # Same restrict-then-sweep plan on the cached columns; the
            # restriction charge stays two XY tests per child, emptiness
            # still short-circuits after both sides were charged.
            if self.cpu is not None:
                self.cpu.xy_tests += 2 * (
                    len(node_a.entries) + len(node_b.entries)
                )
            idx_a = intersect_indices(node_a.rect_array(), box)
            idx_b = intersect_indices(node_b.rect_array(), box)
            if len(idx_a) == 0 or len(idx_b) == 0:
                return
            hits = sweep_pairs_batch(
                node_a.rect_array().take(idx_a),
                node_b.rect_array().take(idx_b),
                counters=self.cpu,
            )
            entries_a, entries_b = node_a.entries, node_b.entries
            for i, j in hits:
                self._match(entries_a[idx_a[i]].ref, entries_b[idx_b[j]].ref)
            return
        cand_a = self._restrict(node_a, box)
        cand_b = self._restrict(node_b, box)
        if not cand_a or not cand_b:
            return
        pairs = sweep_pairs(
            cand_a, cand_b, rect_of=_MBR_OF, counters=self.cpu,
        )
        # Sweep order doubles as the traversal order ([BKS93]'s ordering
        # optimisation): consecutive pairs share pages, so the LRU buffer
        # turns repeats into hits.
        for ea, eb in pairs:
            self._match(ea.ref, eb.ref)

    def _descend_one(self, leaf: Node, leaf_page: int, internal: Node,
                     leaf_side: str) -> None:
        """Unbalanced case: hold the leaf, descend the internal node.

        Seeded trees make this common — a grown subtree may bottom out
        while the R-tree side still has internal levels.
        """
        window = leaf.cached_mbr()
        if self.cpu is not None:
            self.cpu.xy_tests += 2 * len(internal.entries)
        if self.use_kernels:
            entries = internal.entries
            for i in intersect_indices(internal.rect_array(), window):
                ref = entries[i].ref
                if leaf_side == "a":
                    self._match(leaf_page, ref)
                else:
                    self._match(ref, leaf_page)
            return
        for e in internal.entries:
            if e.mbr.intersects(window):
                if leaf_side == "a":
                    self._match(leaf_page, e.ref)
                else:
                    self._match(e.ref, leaf_page)

    def _restrict(self, node: Node, box: Rect) -> list:
        """Children overlapping the pair's intersection box.

        Each check is an x-axis plus a y-axis comparison (two XY tests);
        this is the [BKS93] technique that prunes children before the
        sweep even starts.
        """
        if self.cpu is not None:
            self.cpu.xy_tests += 2 * len(node.entries)
        return [e for e in node.entries if e.mbr.intersects(box)]
