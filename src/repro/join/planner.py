"""Cost estimation and join-method selection.

Section 5 of the paper closes with future work: "finding quantitative
measures to predict the characteristics ... of the outcomes of spatial
operations based on the characteristics of their input data sets. Such
techniques are necessary in choosing the best way to realize a spatial
query." This module implements that layer for the three join methods of
the evaluation:

* closed-form estimators of each algorithm's disk cost, driven by the
  quantities a system knows at join time — ``||D_S||``, the partner
  tree's size and height, the buffer size, and the physical design;
* a simple selectivity estimator for the join result size;
* :func:`plan_spatial_join`, which ranks the methods and can execute the
  winner.

The estimators are deliberately coarse (single-constant buffer-miss
models); their job is to rank methods, not to predict counts exactly.
The planner reproduces the paper's qualitative decision boundary: BFJ
for small derived sets whose touched working set fits the buffer
(Table 1's boundary case), STJ everywhere else, RTJ never.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..errors import ExperimentError
from ..metrics import MetricsCollector
from ..metrics.tracing import JoinTrace
from ..rtree import RTree
from ..storage import BufferPool, DataFile, RecoveryPolicy
from .api import spatial_join
from .result import JoinResult

#: Assumed average node occupancy of a dynamically grown tree.
_FILL = 0.7


@dataclass(frozen=True)
class CostEstimate:
    """Predicted disk cost of one join method, in random-access units.

    The breakdown uses the execution engine's phase vocabulary
    (:data:`~repro.join.engine.PHASE_ORDER`): ``construct_io`` predicts
    what the measured run charges to its construct phases, ``match_io``
    to its match phase, so an estimate lines up column-for-column with a
    :class:`~repro.metrics.CostSummary` from an actual run.
    """

    method: str
    construct_io: float
    match_io: float

    @property
    def total_io(self) -> float:
        return self.construct_io + self.match_io

    def phase_io(self) -> dict[str, float]:
        """The estimate keyed by engine phase name."""
        return {"construct": self.construct_io, "match": self.match_io}


@dataclass(frozen=True)
class JoinPlan:
    """The planner's ranking; ``best`` is the recommended method."""

    estimates: tuple[CostEstimate, ...]

    @property
    def best(self) -> CostEstimate:
        """The recommended method.

        Plain minimum of the estimates, with one documented tie-break:
        when RTJ's estimate leads STJ's by less than 15%, STJ is chosen.
        The estimators cannot see tree-*shape* effects, and the paper's
        measurements have STJ beating RTJ in every configuration — RTJ's
        only estimated edge (no linked-list/seeding overhead when the
        join-time tree fits the buffer) is within that noise.
        """
        winner = min(self.estimates, key=lambda e: e.total_io)
        if winner.method == "RTJ":
            stj = self.estimate_for("STJ")
            if stj.total_io <= 1.15 * winner.total_io:
                return stj
        return winner

    def estimate_for(self, method: str) -> CostEstimate:
        for e in self.estimates:
            if e.method == method:
                return e
        raise ExperimentError(f"no estimate for method {method!r}")


# --------------------------------------------------------------------- #
# Building blocks
# --------------------------------------------------------------------- #

def estimated_tree_pages(config: SystemConfig, num_objects: int) -> int:
    """Pages of a dynamically built tree over ``num_objects`` objects."""
    return config.estimated_tree_pages(num_objects, fill=_FILL)


def _miss_fraction(working_set: float, buffer_pages: int) -> float:
    """Fraction of repeated accesses that miss an LRU buffer.

    The classic approximation: with a working set of ``w`` equally hot
    pages and a buffer of ``b``, a random access misses with probability
    ``max(0, 1 - b/w)``.
    """
    if working_set <= 0:
        return 0.0
    return max(0.0, 1.0 - buffer_pages / working_set)


def estimate_join_selectivity(
    n_s: int,
    n_r: int,
    avg_side_s: float,
    avg_side_r: float,
    map_area: float = 1.0,
    coverage: float = 1.0,
) -> float:
    """Expected number of intersecting pairs.

    Under independent placement inside the covered region, two
    rectangles of average extents ``a`` and ``b`` intersect when their
    centers fall within a ``(a_w + b_w) x (a_h + b_h)`` window::

        E[pairs] = n_s * n_r * (s̄_s + s̄_r)^2 / (coverage * map_area)

    ``coverage`` is the fraction of the map that actually holds data
    (the paper's cover quotient): clustering concentrates both inputs,
    raising the collision probability when their clusters overlap.
    """
    if min(n_s, n_r) == 0:
        return 0.0
    window = (avg_side_s + avg_side_r) ** 2
    effective_area = max(map_area * coverage, window)
    return n_s * n_r * window / effective_area


# --------------------------------------------------------------------- #
# Per-method estimators
# --------------------------------------------------------------------- #

def estimate_bfj(
    config: SystemConfig,
    n_s: int,
    tree_r_pages: int,
    tree_r_height: int,
    touched_fraction: float = 0.8,
) -> CostEstimate:
    """BFJ: one window query per D_S rectangle against T_R.

    The working set is the touched part of ``T_R`` (``touched_fraction``
    of its pages for clustered data). While it fits the buffer, repeat
    queries are free; beyond that every query pays misses along its
    descent. Plus one sequential scan of the input file.
    """
    seq = config.sequential_cost
    scan = config.data_pages_for(n_s) * seq
    working_set = tree_r_pages * touched_fraction
    cold = min(working_set, n_s * tree_r_height)  # first-touch reads
    repeat = max(0, n_s - working_set / max(tree_r_height, 1))
    misses = repeat * tree_r_height * _miss_fraction(
        working_set, config.buffer_pages
    )
    return CostEstimate("BFJ", 0.0, scan + cold + misses)


def estimate_rtj(
    config: SystemConfig,
    n_s: int,
    tree_r_pages: int,
    tree_r_height: int,
) -> CostEstimate:
    """RTJ: straightforward R-tree build, then TM match.

    Construction: each insert descends to a random leaf; once the tree
    outgrows the buffer, the leaf access misses (read + an eviction
    write of a dirty page). Matching: both trees read roughly once.
    """
    seq = config.sequential_cost
    tree_pages = estimated_tree_pages(config, n_s)
    scan = config.data_pages_for(n_s) * seq
    per_insert_misses = _miss_fraction(tree_pages, config.buffer_pages)
    construct = scan + n_s * per_insert_misses * 2  # re-read + write-back
    match = tree_pages + tree_r_pages * 0.8
    return CostEstimate("RTJ", construct, match)


def estimate_stj(
    config: SystemConfig,
    n_s: int,
    tree_r_pages: int,
    tree_r_height: int,
    seed_levels: int = 2,
) -> CostEstimate:
    """STJ: seeded-tree build with linked lists, then TM match.

    Construction: the input scan, up to three further sequential sweeps
    of the data (batch write, regroup write, regroup read), the seeding
    reads, and one write-out of the tree (the dirty grown pages must
    reach disk exactly once, whichever phase the write lands in).
    Matching: both trees read roughly once.
    """
    seq = config.sequential_cost
    data_pages = config.data_pages_for(n_s)
    tree_pages = estimated_tree_pages(config, n_s)
    seeding = min(tree_r_pages, 1 + config.node_capacity ** (seed_levels - 1))
    construct = (
        data_pages * seq                    # input scan
        + 3 * data_pages * seq              # list batches + regroup
        + seeding
        + tree_pages * max(0.0, 1.0 - config.buffer_pages / (2 * tree_pages))
    )
    match = tree_pages + tree_r_pages * 0.8
    return CostEstimate("STJ", construct, match)


# --------------------------------------------------------------------- #
# The planner
# --------------------------------------------------------------------- #

def plan_join(
    config: SystemConfig,
    n_s: int,
    tree_r_pages: int,
    tree_r_height: int,
) -> JoinPlan:
    """Rank BFJ, RTJ and STJ for the given join-time quantities."""
    return JoinPlan(estimates=(
        estimate_bfj(config, n_s, tree_r_pages, tree_r_height),
        estimate_rtj(config, n_s, tree_r_pages, tree_r_height),
        estimate_stj(config, n_s, tree_r_pages, tree_r_height),
    ))


def plan_spatial_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    execute: bool = True,
    stj_method: str = "STJ1-2N",
    recovery: RecoveryPolicy | None = None,
    trace: bool | JoinTrace = False,
) -> tuple[JoinPlan, JoinResult | None]:
    """Plan — and by default run — the cheapest join method.

    The planner reads only metadata (object counts, tree size/height),
    costing no I/O; the chosen method then runs through the ordinary
    :func:`~repro.join.api.spatial_join` facade, with ``recovery`` and
    ``trace`` passed straight through to the engine.
    """
    plan = plan_join(
        config,
        n_s=len(data_s),
        tree_r_pages=tree_r.num_nodes(),
        tree_r_height=tree_r.height,
    )
    if not execute:
        return plan, None
    method = plan.best.method
    if method == "STJ":
        method = stj_method
    result = spatial_join(data_s, tree_r, buffer, config, metrics,
                          method=method, recovery=recovery, trace=trace)
    return plan, result
