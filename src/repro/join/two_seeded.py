"""The two-seeded-tree join (Section 5 of the paper).

When *both* join inputs are derived data sets — outputs of earlier joins
or selections — no pre-computed R-tree is closely related to either, and
the paper suggests constructing *two* seeded trees over a *common* set of
artificial seed levels, built either from a uniform grid of slots or from
spatially sampled data. Matching two trees seeded identically preserves
the alignment benefit of seeding: corresponding regions of the two data
sets land under corresponding slots.

As a pipeline: ``prepare`` derives the common seed boxes, ``construct``
builds both seeded trees over them, ``match`` runs TM; prepare and
construct are both charged to the construction accounting phase (the
sampling scans are join-time work). Both variants proposed in the
paper's discussion are implemented:

* ``seeds="grid"`` — slot boxes uniformly tile the map area;
* ``seeds="sample"`` — slot boxes are a spatial sample of both inputs
  (the sampling scans are charged as construction I/O).
"""

from __future__ import annotations

import random

from ..config import SystemConfig
from ..errors import ExperimentError
from ..geometry import Rect
from ..metrics import MetricsCollector, Phase
from ..metrics.tracing import JoinTrace
from ..rtree.split import SplitFunction, quadratic_split
from ..seeded import CopyStrategy, SeededTree, UpdatePolicy
from ..storage import BufferPool, DataFile
from .engine import ExecutionContext, JoinPhase, JoinPipeline
from .matching import match_trees
from .result import JoinResult


def grid_boxes(map_area: Rect, cells_per_side: int) -> list[Rect]:
    """A uniform ``cells_per_side`` x ``cells_per_side`` tiling of the map."""
    if cells_per_side < 1:
        raise ExperimentError("grid needs at least one cell per side")
    xs = map_area.width / cells_per_side
    ys = map_area.height / cells_per_side
    boxes = []
    for i in range(cells_per_side):
        for j in range(cells_per_side):
            boxes.append(
                Rect(
                    map_area.xlo + i * xs,
                    map_area.ylo + j * ys,
                    map_area.xlo + (i + 1) * xs,
                    map_area.ylo + (j + 1) * ys,
                )
            )
    return boxes


def sample_boxes(
    data_a: DataFile,
    data_b: DataFile,
    sample_size: int,
    seed: int = 0,
) -> list[Rect]:
    """Reservoir-sample bounding boxes from both inputs (accounted scans)."""
    rng = random.Random(seed)
    reservoir: list[Rect] = []
    seen = 0
    for source in (data_a, data_b):
        for rect, _oid in source.scan():
            seen += 1
            if len(reservoir) < sample_size:
                reservoir.append(rect)
            else:
                j = rng.randrange(seen)
                if j < sample_size:
                    reservoir[j] = rect
    if not reservoir:
        raise ExperimentError("cannot sample seed boxes from empty inputs")
    return reservoir


def _prepare(ctx: ExecutionContext) -> None:
    opts = ctx.options
    if opts["seeds"] == "grid":
        area = opts["map_area"] or Rect(0.0, 0.0, 1.0, 1.0)
        boxes = grid_boxes(area, opts["grid_cells"])
    elif opts["seeds"] == "sample":
        boxes = sample_boxes(
            ctx.data_s, opts["data_b"], opts["sample_size"],
            opts["sample_seed"],
        )
    else:
        raise ExperimentError(
            f"unknown seed source {opts['seeds']!r}; use 'grid' or 'sample'"
        )
    ctx.state["seed_boxes"] = boxes


def _construct(ctx: ExecutionContext) -> None:
    opts = ctx.options
    boxes = ctx.state["seed_boxes"]
    trees = []
    for data, label in ((ctx.data_s, "T_A"), (opts["data_b"], "T_B")):
        tree = SeededTree(
            ctx.buffer, ctx.config, ctx.metrics,
            copy_strategy=opts["copy_strategy"],
            update_policy=opts["update_policy"],
            use_linked_lists=opts["use_linked_lists"],
            split=opts["split"],
            name=label,
        )
        tree.seed_from_boxes(boxes)
        tree.grow_from(data)
        tree.cleanup()
        trees.append(tree)
    ctx.state["tree_a"], ctx.state["tree_b"] = trees
    ctx.state["index"] = trees[0]


def _match(ctx: ExecutionContext) -> None:
    ctx.state["pairs"] = match_trees(
        ctx.state["tree_a"], ctx.state["tree_b"], ctx.metrics
    )


def two_seeded_phases() -> list[JoinPhase]:
    """The prepare/construct/match steps, for composition by the facade."""
    return [
        JoinPhase("prepare", _prepare, metrics_phase=Phase.CONSTRUCT),
        JoinPhase("construct", _construct, metrics_phase=Phase.CONSTRUCT),
        JoinPhase("match", _match, metrics_phase=Phase.MATCH),
    ]


def two_seeded_pipeline(algorithm: str = "2STJ") -> JoinPipeline:
    """Common seed levels, two seeded trees, one TM match."""
    return JoinPipeline(algorithm, two_seeded_phases())


def two_seeded_join(
    data_a: DataFile,
    data_b: DataFile,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    *,
    seeds: str = "grid",
    grid_cells: int = 16,
    sample_size: int = 256,
    map_area: Rect | None = None,
    copy_strategy: CopyStrategy = CopyStrategy.CENTER_AT_SLOTS,
    update_policy: UpdatePolicy = UpdatePolicy.ENCLOSE_DATA_ONLY,
    use_linked_lists: bool | None = None,
    split: SplitFunction = quadratic_split,
    sample_seed: int = 0,
    trace: JoinTrace | None = None,
) -> JoinResult:
    """Join two index-less data sets via a common artificial seeding.

    Returns pairs oriented (``data_a`` oid, ``data_b`` oid).
    """
    ctx = ExecutionContext(
        data_s=data_a, metrics=metrics, buffer=buffer, config=config,
        trace=trace,
        options={
            "data_b": data_b,
            "seeds": seeds,
            "grid_cells": grid_cells,
            "sample_size": sample_size,
            "map_area": map_area,
            "copy_strategy": copy_strategy,
            "update_policy": update_policy,
            "use_linked_lists": use_linked_lists,
            "split": split,
            "sample_seed": sample_seed,
        },
    )
    return two_seeded_pipeline().execute(ctx)
