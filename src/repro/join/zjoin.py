"""ZOJ — the z-order merge join (Orenstein; the paper's related work).

"Joining two spatial data sets amounts to merging two z-value streams."
Both inputs are represented as z-files (sorted element runs). Because
quadtree cells nest, two elements overlap exactly when one's z-interval
contains the other's, and the merge is the classic stack-based
algorithm:

* consume the two streams in ``zlo`` order;
* keep a stack per stream holding the elements whose intervals contain
  the current position (ancestors along the quad hierarchy);
* when an element arrives, every element on the *other* stream's stack
  contains it — emit those candidate pairs, then push it.

Candidates are then filtered with an exact bounding-box test (element
covers are conservative) and deduplicated (one object pair can meet
through several element pairs).

As a pipeline: ``construct`` builds the derived side's z-file (one data
scan plus one sequential write), ``match`` is one sequential sweep of
each z-file; the indexed side's z-file pre-exists like ``T_R``. The
price is *redundancy*: each object appears once per element, inflating
the files ([Ore89]); the trade-off is benchmarked in
``benchmarks/test_ablation_zorder.py``.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..metrics import MetricsCollector, Phase
from ..metrics.tracing import JoinTrace
from ..storage import DataFile
from ..storage.disk import DiskSimulator
from ..zorder.zfile import ZEntry, ZFile
from .engine import ExecutionContext, JoinPhase, JoinPipeline
from .result import JoinResult


def merge_z_streams(
    zfile_s: ZFile, zfile_r: ZFile, metrics: MetricsCollector
) -> list[tuple[int, int]]:
    """Stack-based merge of two z-files into deduplicated object pairs."""
    pairs: set[tuple[int, int]] = set()
    cpu = metrics.cpu
    stack_s: list[ZEntry] = []
    stack_r: list[ZEntry] = []
    iter_s = zfile_s.scan()
    iter_r = zfile_r.scan()
    head_s = next(iter_s, None)
    head_r = next(iter_r, None)

    def pop_expired(stack: list[ZEntry], zlo: int) -> None:
        while stack and stack[-1].element.zhi < zlo:
            stack.pop()

    while head_s is not None or head_r is not None:
        # Merge order must put containing intervals before contained
        # ones on zlo ties (ancestors first), or a parent arriving
        # second would never see its already-consumed child.
        if head_r is None:
            take_s = True
        elif head_s is None:
            take_s = False
        else:
            key_s = (head_s.element.zlo, -head_s.element.zhi)
            key_r = (head_r.element.zlo, -head_r.element.zhi)
            take_s = key_s <= key_r
        entry = head_s if take_s else head_r
        assert entry is not None
        zlo = entry.element.zlo
        pop_expired(stack_s, zlo)
        pop_expired(stack_r, zlo)

        own_stack, other_stack = (
            (stack_s, stack_r) if take_s else (stack_r, stack_s)
        )
        # Every element still on the other stack contains this one:
        # candidate pairs, subject to the exact rectangle test.
        for other in other_stack:
            cpu.xy_tests += 1           # interval containment check
            cpu.bbox_tests += 1         # exact bbox test
            if entry.mbr.intersects(other.mbr):
                if take_s:
                    pairs.add((entry.oid, other.oid))
                else:
                    pairs.add((other.oid, entry.oid))
        own_stack.append(entry)

        if take_s:
            head_s = next(iter_s, None)
        else:
            head_r = next(iter_r, None)

    return sorted(pairs)


def _construct(ctx: ExecutionContext) -> None:
    zfile_r: ZFile = ctx.options["zfile_r"]
    disk: DiskSimulator = zfile_r.disk
    ctx.state["index"] = ZFile.build(
        disk, ctx.config, ctx.data_s.scan(),
        max_elements=ctx.options["max_elements"], name="Z_S",
    )


def _match(ctx: ExecutionContext) -> None:
    ctx.state["pairs"] = merge_z_streams(
        ctx.state["index"], ctx.options["zfile_r"], ctx.metrics
    )


def zjoin_phases() -> list[JoinPhase]:
    """The construct/match steps, for composition by the facade."""
    return [
        JoinPhase("construct", _construct, metrics_phase=Phase.CONSTRUCT),
        JoinPhase("match", _match, metrics_phase=Phase.MATCH),
    ]


def zjoin_pipeline(algorithm: str = "ZOJ") -> JoinPipeline:
    """Build the derived side's z-file, then merge the two streams."""
    return JoinPipeline(algorithm, zjoin_phases())


def z_order_join(
    data_s: DataFile,
    zfile_r: ZFile,
    config: SystemConfig,
    metrics: MetricsCollector,
    max_elements: int = 4,
    trace: JoinTrace | None = None,
) -> JoinResult:
    """Join a derived data set with a z-indexed one by stream merging.

    ``zfile_r`` plays the role of the pre-existing index (build it in
    the SETUP phase with :meth:`ZFile.build`); the z-file for ``data_s``
    is constructed at join time.
    """
    ctx = ExecutionContext(
        data_s=data_s, metrics=metrics, config=config, trace=trace,
        options={"zfile_r": zfile_r, "max_elements": max_elements},
    )
    return zjoin_pipeline().execute(ctx)
