"""Breadth-first tree matching (Günther's traversal order).

The paper's related work discusses Günther's generalization-tree join,
which traverses breadth-first: "the pairs of matching tree-nodes at tree
level n must be recorded before the algorithm can descend to level n+1.
In practice, the amount of memory required to hold such information
could be large for indices with high fanout" — one of the reasons the
paper adopts depth-first TM instead.

This module implements the breadth-first variant so that concern can be
*measured*: the per-level pair queue lives in a bounded memory budget
and spills to disk in sequential runs when it overflows, exactly like
any operator state in a real system. With an unbounded budget BFS visits
the same node pairs as TM and produces identical results; with a small
budget it pays spill I/O that TM never pays — the quantitative form of
the paper's argument (see ``benchmarks/test_ablation_bfs.py``).
"""

from __future__ import annotations

from typing import Any, Iterator

from operator import attrgetter

from ..config import SystemConfig
from ..geometry import sweep_pairs
from ..kernels import intersect_indices, kernels_enabled, sweep_pairs_batch
from ..metrics import MetricsCollector
from ..storage import Page, PageKind
from ..storage.disk import DiskSimulator
from .result import JoinPair

#: Entry -> MBR adapter, hoisted out of the per-pair sweep calls.
_MBR_OF = attrgetter("mbr")

#: Bytes per queued pair: two page ids (the paper's 4-byte pointers).
_PAIR_BYTES = 8


class _PairQueue:
    """A FIFO of node-pair ids with a memory budget and disk spilling.

    Pairs beyond the budget are written out in page-sized sequential
    runs; draining replays the spilled runs first (in order), then the
    resident tail. All I/O goes through the disk simulator and is
    charged to whatever phase is active.
    """

    def __init__(self, disk: DiskSimulator, config: SystemConfig,
                 budget_pairs: int | None):
        self.disk = disk
        self.config = config
        self.budget = budget_pairs
        self.pairs_per_page = max(
            1, (config.page_size - config.node_header_bytes) // _PAIR_BYTES
        )
        self._resident: list[tuple[int, int]] = []
        self._spilled_runs: list[tuple[int, int]] = []  # (first_id, pages)
        self.spilled_pairs = 0

    def append(self, pair: tuple[int, int]) -> None:
        self._resident.append(pair)
        if self.budget is not None and len(self._resident) > self.budget:
            self._spill()

    def _spill(self) -> None:
        batch = self._resident
        self._resident = []
        num_pages = (len(batch) + self.pairs_per_page - 1) \
            // self.pairs_per_page
        first_id = self.disk.allocate(num_pages)
        pages = [
            Page(
                first_id + i, PageKind.LIST,
                batch[i * self.pairs_per_page:(i + 1) * self.pairs_per_page],
            )
            for i in range(num_pages)
        ]
        self.disk.write_run(pages)
        self._spilled_runs.append((first_id, num_pages))
        self.spilled_pairs += len(batch)

    def __len__(self) -> int:
        return self.spilled_pairs + len(self._resident)

    def drain(self) -> Iterator[tuple[int, int]]:
        for first_id, num_pages in self._spilled_runs:
            for page in self.disk.read_run(first_id, num_pages):
                yield from page.payload
        self._spilled_runs = []
        self.spilled_pairs = 0
        resident = self._resident
        self._resident = []
        yield from resident


def match_trees_bfs(
    tree_a: Any,
    tree_b: Any,
    metrics: MetricsCollector | None = None,
    queue_budget_pairs: int | None = None,
) -> list[JoinPair]:
    """Breadth-first equivalent of :func:`~repro.join.matching.match_trees`.

    ``queue_budget_pairs`` bounds the per-level pair queue held in
    memory; ``None`` means unbounded (no spilling). Results and CPU/XY
    accounting match the depth-first matcher; the extra disk traffic of
    spilling is the cost of the traversal order.
    """
    cpu = metrics.cpu if metrics is not None else None
    config = tree_a.config
    disk = tree_a.buffer.disk
    # One env read per run, and bound-method hoists for the per-pair
    # attribute chains (tree -> buffer -> unpin), as in the DFS matcher.
    use_kernels = kernels_enabled()
    read_a = tree_a.read_node
    read_b = tree_b.read_node
    unpin_a = tree_a.buffer.unpin
    unpin_b = tree_b.buffer.unpin

    root_a = tree_a.read_node(tree_a.root_id)
    root_b = tree_b.read_node(tree_b.root_id)
    results: list[JoinPair] = []
    if not root_a.entries or not root_b.entries:
        return results

    current = _PairQueue(disk, config, queue_budget_pairs)
    current.append((tree_a.root_id, tree_b.root_id))

    while len(current):
        nxt = _PairQueue(disk, config, queue_budget_pairs)
        for page_a, page_b in current.drain():
            node_a = read_a(page_a, pin=True)
            try:
                node_b = read_b(page_b, pin=True)
                try:
                    if node_a.is_leaf and node_b.is_leaf:
                        if use_kernels:
                            idx_hits = sweep_pairs_batch(
                                node_a.rect_array(), node_b.rect_array(),
                                counters=cpu,
                            )
                            entries_a, entries_b = node_a.entries, node_b.entries
                            results.extend(
                                (entries_a[i].ref, entries_b[j].ref)
                                for i, j in idx_hits
                            )
                        else:
                            hits = sweep_pairs(
                                node_a.entries, node_b.entries,
                                rect_of=_MBR_OF, counters=cpu,
                            )
                            results.extend((ea.ref, eb.ref) for ea, eb in hits)
                    elif node_a.is_leaf or node_b.is_leaf:
                        leaf, internal, leaf_is_a = (
                            (node_a, node_b, True) if node_a.is_leaf
                            else (node_b, node_a, False)
                        )
                        window = leaf.cached_mbr()
                        if cpu is not None:
                            cpu.xy_tests += 2 * len(internal.entries)
                        if use_kernels:
                            entries = internal.entries
                            for i in intersect_indices(
                                internal.rect_array(), window
                            ):
                                ref = entries[i].ref
                                nxt.append(
                                    (page_a, ref) if leaf_is_a
                                    else (ref, page_b)
                                )
                        else:
                            for e in internal.entries:
                                if e.mbr.intersects(window):
                                    nxt.append(
                                        (page_a, e.ref) if leaf_is_a
                                        else (e.ref, page_b)
                                    )
                    else:
                        box = node_a.cached_mbr().intersection(
                            node_b.cached_mbr()
                        )
                        if box is None:
                            continue
                        if cpu is not None:
                            cpu.xy_tests += 2 * (
                                len(node_a.entries) + len(node_b.entries)
                            )
                        if use_kernels:
                            idx_a = intersect_indices(node_a.rect_array(), box)
                            idx_b = intersect_indices(node_b.rect_array(), box)
                            if len(idx_a) and len(idx_b):
                                entries_a = node_a.entries
                                entries_b = node_b.entries
                                for i, j in sweep_pairs_batch(
                                    node_a.rect_array().take(idx_a),
                                    node_b.rect_array().take(idx_b),
                                    counters=cpu,
                                ):
                                    nxt.append((
                                        entries_a[idx_a[i]].ref,
                                        entries_b[idx_b[j]].ref,
                                    ))
                        else:
                            cand_a = [e for e in node_a.entries
                                      if e.mbr.intersects(box)]
                            cand_b = [e for e in node_b.entries
                                      if e.mbr.intersects(box)]
                            if cand_a and cand_b:
                                for ea, eb in sweep_pairs(
                                    cand_a, cand_b, rect_of=_MBR_OF,
                                    counters=cpu,
                                ):
                                    nxt.append((ea.ref, eb.ref))
                finally:
                    unpin_b(page_b)
            finally:
                unpin_a(page_a)
        current = nxt

    return results
