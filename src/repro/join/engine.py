"""The phase-based join execution engine.

Every join algorithm in this package is expressed as a
:class:`JoinPipeline` — an ordered list of named :class:`JoinPhase`
steps (``prepare`` → ``construct`` → ``filter`` → ``match`` →
``cleanup``; algorithms use the subset they need) — executed by one
engine that owns everything the drivers used to re-implement by hand:

* :meth:`~repro.metrics.MetricsCollector.phase` transitions, so cost
  attribution lives in exactly one place;
* checkpoint/resume crash recovery for construction phases (the loop
  previously duplicated between ``rtj._build_with_recovery`` and
  ``stj._construct_with_recovery``);
* the STJ→BFJ graceful-degradation path under a
  :class:`~repro.storage.RecoveryPolicy`;
* structured tracing (:mod:`repro.metrics.tracing`): one root span per
  join, one child span per phase, attached to the returned
  :class:`~repro.join.result.JoinResult`.

Drivers declare *what* each phase does through plain callables on an
:class:`ExecutionContext`; the engine decides *how* phases run. This is
the seam later work attaches to — per-phase scheduling, batching, and
parallel matching all wrap the executor, not six drivers.
"""

from __future__ import annotations

import multiprocessing
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable

from ..analysis.sanitizer import Sanitizer, resolve_sanitizer
from ..config import SystemConfig
from ..errors import (
    ExperimentError,
    InvariantViolation,
    RecoveryError,
    SimulatedCrashError,
    StorageError,
)
from ..geometry import Rect
from ..metrics import CollectorSnapshot, MetricsCollector, Phase
from ..metrics.tracing import JoinTrace, TraceSpan, shift_span_times
from ..partition import (
    GridPartitioner,
    PartitionStats,
    joint_universe,
    make_shards,
)
from ..storage import BufferPool, RecoveryPolicy
from ..storage.datafile import DataEntry
from ..workload.seeding import derive_seed
from .result import JoinResult

__all__ = [
    "ExecutionContext",
    "JoinPhase",
    "JoinPipeline",
    "ParallelExecutor",
    "PHASE_ORDER",
]

#: Canonical pipeline phase names, in execution order. Algorithms use a
#: subset; the engine checks declared phases respect this order so every
#: pipeline reads the same way.
PHASE_ORDER = ("prepare", "construct", "filter", "match", "cleanup")


@dataclass
class ExecutionContext:
    """Everything a pipeline run needs, plus scratch state between phases.

    ``options`` holds per-algorithm knobs (split function, variant
    policies, seed sources); ``state`` is the hand-off area phases write
    to and read from — conventionally ``state["index"]`` for the
    join-time structure and ``state["pairs"]`` for the answer set.

    ``sanitize`` opts into runtime invariant checking at phase
    boundaries (:mod:`repro.analysis.sanitizer`): ``True`` forces it on,
    ``False`` off, ``None`` defers to the ``REPRO_SANITIZE`` environment
    variable. The engine resolves the flag to a
    :class:`~repro.analysis.sanitizer.Sanitizer` instance on first
    execution and keeps it on the context, so a degradation re-entry
    continues the same counter-snapshot history.
    """

    data_s: Any
    metrics: MetricsCollector
    tree_r: Any | None = None
    buffer: BufferPool | None = None
    config: SystemConfig | None = None
    recovery: RecoveryPolicy | None = None
    trace: JoinTrace | None = None
    options: dict[str, Any] = field(default_factory=dict)
    state: dict[str, Any] = field(default_factory=dict)
    sanitize: bool | Sanitizer | None = None


#: A phase body: mutates ``ctx.state``, returns nothing.
PhaseBody = Callable[[ExecutionContext], None]
#: A recoverable construction body: ``(ctx, checkpointer, resume)``.
RecoverableBody = Callable[[ExecutionContext, Any, Any], None]


@dataclass
class JoinPhase:
    """One named step of a pipeline.

    ``metrics_phase`` selects the accounting phase the engine charges the
    step's I/O to (``None`` leaves the collector's current phase alone —
    used by oracle pipelines that account nothing).

    Construction phases may declare the recovery protocol:
    ``recoverable_body`` runs instead of ``body`` whenever the context
    carries a :class:`~repro.storage.RecoveryPolicy`, inside the
    engine's checkpoint/resume loop, with ``make_checkpointer`` /
    ``load_resume`` supplying the algorithm-specific snapshot machinery.
    ``fallback_errors`` (with a pipeline-level fallback factory) marks
    the phase as degradable: a :class:`~repro.errors.StorageError`
    escaping it downgrades the join instead of failing it.
    """

    name: str
    body: PhaseBody
    metrics_phase: Phase | None = None
    recoverable_body: RecoverableBody | None = None
    make_checkpointer: Callable[[ExecutionContext], Any] | None = None
    load_resume: Callable[[ExecutionContext, Any], Any] | None = None
    recovery_label: str = "construction"
    allow_fallback: bool = False


class JoinPipeline:
    """An ordered list of phases plus the executor that runs them.

    Parameters
    ----------
    algorithm:
        Name stamped on the :class:`~repro.join.result.JoinResult`.
    phases:
        The steps, in an order consistent with :data:`PHASE_ORDER`.
    fallback:
        Factory returning the degradation pipeline (BFJ) used when a
        phase with ``allow_fallback`` fails irrecoverably under a policy
        with ``fallback_to_bfj``. ``None`` disables degradation.
    """

    def __init__(
        self,
        algorithm: str,
        phases: list[JoinPhase],
        fallback: Callable[[], "JoinPipeline"] | None = None,
    ):
        ranks = {name: i for i, name in enumerate(PHASE_ORDER)}
        last = -1
        for phase in phases:
            rank = ranks.get(phase.name)
            if rank is None:
                raise ValueError(
                    f"unknown pipeline phase {phase.name!r}; "
                    f"expected one of {PHASE_ORDER}"
                )
            if rank < last:
                raise ValueError(
                    f"phase {phase.name!r} out of order; pipelines follow "
                    f"{PHASE_ORDER}"
                )
            last = rank
        self.algorithm = algorithm
        self.phases = phases
        self.fallback = fallback

    # ----------------------------------------------------------------- #
    # Execution
    # ----------------------------------------------------------------- #

    def execute(self, ctx: ExecutionContext) -> JoinResult:
        """Run the phases and assemble the result.

        The engine — never a driver — enters accounting phases, drives
        the crash-recovery loop, performs BFJ degradation, records trace
        spans, and (when enabled) runs the invariant sanitizer at every
        phase boundary.
        """
        sanitizer = resolve_sanitizer(ctx.sanitize)
        ctx.sanitize = sanitizer if sanitizer is not None else False
        if ctx.trace is not None and ctx.trace.depth == 0:
            root_cm = ctx.trace.span(self.algorithm, kind="join")
        elif ctx.trace is not None:
            # Degradation re-enters execute() under the original root.
            root_cm = ctx.trace.span(f"join:{self.algorithm}", kind="join")
        else:
            root_cm = nullcontext()
        with root_cm:
            for phase in self.phases:
                # Cooperative request cancellation: a deadline installed
                # on the substrate (by the resident join service) is
                # honoured between phases too, so a CPU-bound phase over
                # a warm buffer cannot run on long after its request was
                # cancelled. No deadline, no behaviour change.
                if ctx.buffer is not None:
                    ctx.buffer.disk.check_deadline()
                try:
                    self._run_phase(ctx, phase)
                except StorageError as exc:
                    if (
                        phase.allow_fallback
                        and self.fallback is not None
                        and ctx.recovery is not None
                        and ctx.recovery.fallback_to_bfj
                    ):
                        return self._degrade(ctx, exc)
                    raise
                # Outside the phase's accounting context, so the checks
                # could not perturb attribution even if they charged
                # anything (they don't: all access is peek-only).
                if sanitizer is not None:
                    sanitizer.after_phase(ctx, phase.name)
            return self._assemble(ctx)

    def _run_phase(self, ctx: ExecutionContext, phase: JoinPhase) -> None:
        metrics_cm = (
            ctx.metrics.phase(phase.metrics_phase)
            if phase.metrics_phase is not None
            else nullcontext()
        )
        span_cm = (
            ctx.trace.span(phase.name, kind="phase",
                           phase=phase.metrics_phase)
            if ctx.trace is not None
            else nullcontext()
        )
        with span_cm, metrics_cm:
            if phase.recoverable_body is not None and ctx.recovery is not None:
                self._run_with_recovery(ctx, phase)
            else:
                phase.body(ctx)

    def _run_with_recovery(
        self, ctx: ExecutionContext, phase: JoinPhase
    ) -> None:
        """Checkpointed construction surviving crashes within the budget.

        Each simulated crash discards the buffer (dirty pages die, the
        disk survives), resets the arm, and resumes the next attempt from
        the latest durable snapshot — a charged read. Non-crash storage
        errors (corruption, exhausted retries) propagate to the caller's
        fallback handling. Exhausting the crash budget raises
        :class:`~repro.errors.RecoveryError`.
        """
        recovery = ctx.recovery
        assert recovery is not None and phase.recoverable_body is not None
        checkpointer = (
            phase.make_checkpointer(ctx)
            if recovery.checkpoint_every and phase.make_checkpointer
            else None
        )
        resume = None
        attempts = recovery.max_crash_recoveries + 1
        for attempt in range(attempts):
            try:
                phase.recoverable_body(ctx, checkpointer, resume)
                return
            except SimulatedCrashError as crash:
                assert ctx.buffer is not None
                ctx.buffer.crash_discard()
                ctx.buffer.disk.reset_arm()
                if attempt == attempts - 1:
                    raise RecoveryError(
                        f"{phase.recovery_label} crashed {attempts} times; "
                        f"crash budget "
                        f"({recovery.max_crash_recoveries} recoveries) "
                        f"exhausted"
                    ) from crash
                ctx.metrics.record_crash_recovery()
                resume = (
                    phase.load_resume(ctx, checkpointer)
                    if checkpointer is not None and phase.load_resume
                    else None
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def _degrade(self, ctx: ExecutionContext, exc: StorageError) -> JoinResult:
        """Answer by brute force after irrecoverable construction failure.

        The answers stay exact — only the cost profile changes; the
        downgrade is recorded in the fault counters and on the result.
        """
        assert self.fallback is not None
        with ctx.metrics.phase(Phase.CONSTRUCT):
            ctx.metrics.record_fallback()
        result = self.fallback().execute(ctx)
        result.degraded = True
        result.fallback_from = self.algorithm
        result.degraded_reason = f"{type(exc).__name__}: {exc}"
        return result

    def _assemble(self, ctx: ExecutionContext) -> JoinResult:
        result = JoinResult(
            pairs=ctx.state.get("pairs", []),
            index=ctx.state.get("index"),
            algorithm=self.algorithm,
        )
        result.trace = ctx.trace
        return result


# --------------------------------------------------------------------- #
# Partition-parallel execution
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class _PartitionTask:
    """Everything one worker needs to run one tile's join.

    Plain data only — it crosses a process boundary. The worker builds
    its own :class:`~repro.workspace.Workspace` from the shipped shard
    entries, so no simulated disk, buffer, or tree ever needs pickling.
    """

    index: int
    method: str
    config: SystemConfig
    universe: tuple[float, float, float, float]
    rows: int
    cols: int
    entries_r: list[DataEntry]
    entries_s: list[DataEntry]
    options: dict[str, Any]
    seed: int
    want_trace: bool
    recovery: RecoveryPolicy | None = None
    sanitize: bool | None = None

    @property
    def needs_data_r(self) -> bool:
        return self.method in ("NAIVE", "ZJOIN", "2STJ")


@dataclass
class _PartitionOutcome:
    """What a worker sends back: answers, counters, spans."""

    index: int
    pairs: list[tuple[int, int]]
    raw_pairs: int
    snapshot: CollectorSnapshot
    algorithm: str
    n_r: int
    n_s: int
    wall_s: float
    setup_s: float = 0.0
    degraded: bool = False
    trace_roots: list[TraceSpan] | None = None
    trace_origin: float = 0.0


def _adapt_method(task: _PartitionTask, tree_height: int
                  ) -> tuple[str, dict[str, Any]]:
    """Fit the requested method to one shard's substrate.

    A tile's bulk-loaded ``T_R`` shard can be shallower than the seed
    levels the caller asked for (seeding requires strictly more tree
    levels than seed levels). The per-tile join then clamps the seed
    depth, or — when the shard tree is a single leaf and cannot seed at
    all — answers the tile by window queries (BFJ). Answers are
    unaffected either way; the effective method is recorded in the
    partition stats.
    """
    method = task.method
    options = dict(task.options)
    if method == "STJ":
        levels = options.get("seed_levels", 2)
        if tree_height < 2:
            return "BFJ", {}
        if levels >= tree_height:
            options["seed_levels"] = tree_height - 1
    elif method == "2STJ":
        options.setdefault("sample_seed", task.seed)
    return method, options


def run_partition_task(task: _PartitionTask) -> _PartitionOutcome:
    """Execute one tile's join in a private substrate (worker entry).

    Module-level so a spawned pool can import it by reference. The
    substrate build (shard data file, bulk-loaded shard ``T_R``) runs in
    the SETUP accounting phase and is then discarded from the counters
    by ``start_measurement`` — mirroring the sequential protocol, where
    inputs and ``T_R`` pre-exist and only the join is charged.
    """
    from ..workspace import Workspace
    from .api import spatial_join

    setup_started = time.perf_counter()
    ws = Workspace(task.config)
    tree_r = ws.install_rtree(
        task.entries_r, name=f"T_R[p{task.index}]", bulk=True,
    )
    file_s = ws.install_datafile(task.entries_s, name=f"D_S[p{task.index}]")
    file_r = None
    if task.needs_data_r:
        file_r = ws.install_datafile(
            task.entries_r, name=f"D_R[p{task.index}]"
        )
    method, options = _adapt_method(task, tree_r.height)
    ws.start_measurement()
    setup_s = time.perf_counter() - setup_started

    started = time.perf_counter()
    result = spatial_join(
        file_s, tree_r, ws.buffer, ws.config, ws.metrics,
        method=method, recovery=task.recovery, trace=task.want_trace,
        data_r=file_r, sanitize=task.sanitize, **options,
    )
    wall_s = time.perf_counter() - started

    # Reference-point dedup: keep only the pairs this tile owns.
    partitioner = GridPartitioner(Rect(*task.universe), task.rows, task.cols)
    rect_s = {oid: rect for rect, oid in task.entries_s}
    rect_r = {oid: rect for rect, oid in task.entries_r}
    kept = [
        (oid_s, oid_r)
        for oid_s, oid_r in result.pairs
        if partitioner.owns_pair(task.index, rect_s[oid_s], rect_r[oid_r])
    ]
    return _PartitionOutcome(
        index=task.index,
        pairs=kept,
        raw_pairs=len(result.pairs),
        snapshot=CollectorSnapshot.capture(ws.metrics),
        algorithm=result.algorithm,
        n_r=len(task.entries_r),
        n_s=len(task.entries_s),
        wall_s=wall_s,
        setup_s=setup_s,
        degraded=result.degraded,
        trace_roots=result.trace.roots if result.trace is not None else None,
        trace_origin=(
            result.trace.origin if result.trace is not None else 0.0
        ),
    )


class ParallelExecutor:
    """Runs one logical join as per-tile joins across a process pool.

    The universe of both inputs is tiled into a uniform grid
    (:class:`~repro.partition.GridPartitioner`); both inputs are split
    into boundary-replicated shards; each productive tile becomes an
    independent per-partition pipeline run in its own seeded
    disk/buffer substrate (deterministic per-partition accounting); the
    reference-point rule dedups answers tile-locally; and the parent
    merges pair sets, I/O / CPU / fault counters, and trace spans into
    one :class:`~repro.join.result.JoinResult` whose accounting is the
    exact sum of the per-partition counters.

    ``workers=1`` runs the same per-tile plan in-process (no pool) —
    the differential harness uses this to separate partitioning effects
    from multiprocessing effects.
    """

    def __init__(
        self,
        method: str,
        config: SystemConfig,
        workers: int = 1,
        partitions: int | None = None,
        options: dict[str, Any] | None = None,
        seed: int = 0,
        label: str | None = None,
    ):
        if workers < 1:
            raise ExperimentError("workers must be >= 1")
        if partitions is not None and partitions < 1:
            raise ExperimentError("partitions must be >= 1")
        self.method = method
        self.config = config
        self.workers = workers
        self.partitions = partitions if partitions is not None else 4 * workers
        self.options = dict(options or {})
        self.seed = seed
        self.label = label or method

    # ----------------------------------------------------------------- #

    def run(
        self,
        data_s: Any,
        tree_r: Any,
        metrics: MetricsCollector,
        trace: JoinTrace | None = None,
        data_r: Any | None = None,
        recovery: RecoveryPolicy | None = None,
        sanitize: bool | None = None,
    ) -> JoinResult:
        sanitizer = resolve_sanitizer(sanitize)
        root_cm = (
            trace.span(f"parallel[{self.label}]", kind="join")
            if trace is not None
            else nullcontext()
        )
        with root_cm:
            tasks = self._plan(data_s, tree_r, metrics, trace, data_r,
                               recovery, sanitize)
            base = trace.clock() if trace is not None else 0.0
            outcomes = self._execute(tasks)
            return self._merge(tasks, outcomes, metrics, trace, base,
                               sanitizer)

    # ----------------------------------------------------------------- #
    # Planning: extract, tile, shard
    # ----------------------------------------------------------------- #

    def _plan(
        self,
        data_s: Any,
        tree_r: Any,
        metrics: MetricsCollector,
        trace: JoinTrace | None,
        data_r: Any | None,
        recovery: RecoveryPolicy | None,
        sanitize: bool | None = None,
    ) -> list[_PartitionTask]:
        span_cm = (
            trace.span("prepare-shards", kind="phase", phase=Phase.SETUP)
            if trace is not None
            else nullcontext()
        )
        # Shard preparation is substrate work, charged to SETUP like all
        # pre-existing-structure construction: each worker re-reads its
        # shard through its own accounted substrate, so charging the
        # parent-side extraction to a join phase would double-count it
        # and break the sum-of-partitions reconciliation. The reads here
        # are unaccounted for the same reason — this pass exists only to
        # route entries to tiles, and its accounted twin happens inside
        # every worker.
        with span_cm, metrics.phase(Phase.SETUP):
            entries_s = data_s.read_all_unaccounted()
            entries_r = (
                data_r.read_all_unaccounted() if data_r is not None
                else list(tree_r.all_objects())
            )
            universe = joint_universe(entries_r, entries_s)
            if universe is None:
                self._partitioner = None
                self._shards = []
                return []
            partitioner = GridPartitioner.for_tile_count(
                universe, self.partitions
            )
            shards = make_shards(partitioner, entries_r, entries_s)
            self._partitioner = partitioner
            self._shards = shards
        want_trace = trace is not None
        return [
            _PartitionTask(
                index=shard.tile.index,
                method=self.method,
                config=self.config,
                universe=partitioner.universe.as_tuple(),
                rows=partitioner.rows,
                cols=partitioner.cols,
                entries_r=shard.entries_r,
                entries_s=shard.entries_s,
                options=self.options,
                seed=derive_seed(self.seed, "partition", shard.tile.index),
                want_trace=want_trace,
                recovery=recovery,
                sanitize=sanitize,
            )
            for shard in shards
        ]

    # ----------------------------------------------------------------- #
    # Execution: pool or in-process
    # ----------------------------------------------------------------- #

    def _execute(
        self, tasks: list[_PartitionTask]
    ) -> list[_PartitionOutcome]:
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            return [run_partition_task(task) for task in tasks]
        ctx = self._pool_context()
        processes = min(self.workers, len(tasks))
        with ctx.Pool(processes=processes) as pool:
            return pool.map(run_partition_task, tasks)

    @staticmethod
    def _pool_context():
        """Prefer fork (cheap, inherits the loaded modules); fall back
        to the platform default where fork is unavailable."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    # ----------------------------------------------------------------- #
    # Merge: pairs, counters, spans
    # ----------------------------------------------------------------- #

    def _merge(
        self,
        tasks: list[_PartitionTask],
        outcomes: list[_PartitionOutcome],
        metrics: MetricsCollector,
        trace: JoinTrace | None,
        base: float,
        sanitizer: Sanitizer | None = None,
    ) -> JoinResult:
        tiles = {shard.tile.index: shard.tile for shard in self._shards}
        stats: list[PartitionStats] = []
        pairs: list[tuple[int, int]] = []
        degraded = False
        # Reconciliation invariant, checked under the sanitizer: the
        # parent's counters after absorbing every partition equal the
        # counter-wise sum of the per-partition snapshots — same fold
        # order as the absorb loop, so even float fields (backoff
        # seconds) must agree bit for bit.
        expected = (
            CollectorSnapshot.capture(metrics) if sanitizer is not None
            else None
        )
        for outcome in sorted(outcomes, key=lambda o: o.index):
            metrics.absorb(outcome.snapshot)
            if expected is not None:
                expected = expected.merged_with(outcome.snapshot)
            pairs.extend(outcome.pairs)
            degraded = degraded or outcome.degraded
            stats.append(PartitionStats(
                index=outcome.index,
                tile=tiles[outcome.index].rect.as_tuple(),
                n_r=outcome.n_r,
                n_s=outcome.n_s,
                raw_pairs=outcome.raw_pairs,
                pairs=len(outcome.pairs),
                algorithm=outcome.algorithm,
                wall_s=outcome.wall_s,
                snapshot=outcome.snapshot,
                degraded=outcome.degraded,
                setup_s=outcome.setup_s,
            ))
            if trace is not None:
                trace.adopt(self._partition_span(outcome, base))
        if expected is not None:
            merged = CollectorSnapshot.capture(metrics)
            if merged != expected:
                raise InvariantViolation(
                    "merged collector counters are not the exact sum of "
                    "the per-partition snapshots (after merging "
                    f"{len(outcomes)} partitions)"
                )
        pairs.sort()
        result = JoinResult(
            pairs=pairs, index=None, algorithm=self.label,
        )
        result.partitions = stats
        result.trace = trace
        if degraded:
            result.degraded = True
            result.fallback_from = self.label
            result.degraded_reason = "one or more partitions degraded"
        return result

    @staticmethod
    def _partition_span(
        outcome: _PartitionOutcome, base: float
    ) -> TraceSpan:
        """One closed ``partition`` span wrapping the worker's own spans.

        The worker's clock means nothing here, so the subtree is rebased
        onto the parent timeline at the moment the parallel region
        dispatched; per-span durations are preserved exactly.
        """
        span = TraceSpan(
            name=f"partition[{outcome.index}]",
            kind="partition",
            start_s=base,
            end_s=base + outcome.wall_s,
        )
        for phase_name, io in outcome.snapshot.io.items():
            if io.total_accesses:
                span.io[phase_name] = io
        span.bbox_tests = outcome.snapshot.cpu.bbox_tests
        span.xy_tests = outcome.snapshot.cpu.xy_tests
        faults = outcome.snapshot.faults
        span.faults_injected = sum(f.faults_injected for f in faults.values())
        span.retries = sum(f.retries for f in faults.values())
        span.crash_recoveries = sum(
            f.crash_recoveries for f in faults.values()
        )
        span.checkpoints = sum(f.checkpoints for f in faults.values())
        span.fallbacks = sum(f.fallbacks for f in faults.values())
        if outcome.trace_roots:
            for root in outcome.trace_roots:
                shift_span_times(root, base - outcome.trace_origin)
                span.children.append(root)
        return span

