"""The phase-based join execution engine.

Every join algorithm in this package is expressed as a
:class:`JoinPipeline` — an ordered list of named :class:`JoinPhase`
steps (``prepare`` → ``construct`` → ``filter`` → ``match`` →
``cleanup``; algorithms use the subset they need) — executed by one
engine that owns everything the drivers used to re-implement by hand:

* :meth:`~repro.metrics.MetricsCollector.phase` transitions, so cost
  attribution lives in exactly one place;
* checkpoint/resume crash recovery for construction phases (the loop
  previously duplicated between ``rtj._build_with_recovery`` and
  ``stj._construct_with_recovery``);
* the STJ→BFJ graceful-degradation path under a
  :class:`~repro.storage.RecoveryPolicy`;
* structured tracing (:mod:`repro.metrics.tracing`): one root span per
  join, one child span per phase, attached to the returned
  :class:`~repro.join.result.JoinResult`.

Drivers declare *what* each phase does through plain callables on an
:class:`ExecutionContext`; the engine decides *how* phases run. This is
the seam later work attaches to — per-phase scheduling, batching, and
parallel matching all wrap the executor, not six drivers.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable

from ..config import SystemConfig
from ..errors import RecoveryError, SimulatedCrashError, StorageError
from ..metrics import MetricsCollector, Phase
from ..metrics.tracing import JoinTrace
from ..storage import BufferPool, RecoveryPolicy
from .result import JoinResult

__all__ = [
    "ExecutionContext",
    "JoinPhase",
    "JoinPipeline",
    "PHASE_ORDER",
]

#: Canonical pipeline phase names, in execution order. Algorithms use a
#: subset; the engine checks declared phases respect this order so every
#: pipeline reads the same way.
PHASE_ORDER = ("prepare", "construct", "filter", "match", "cleanup")


@dataclass
class ExecutionContext:
    """Everything a pipeline run needs, plus scratch state between phases.

    ``options`` holds per-algorithm knobs (split function, variant
    policies, seed sources); ``state`` is the hand-off area phases write
    to and read from — conventionally ``state["index"]`` for the
    join-time structure and ``state["pairs"]`` for the answer set.
    """

    data_s: Any
    metrics: MetricsCollector
    tree_r: Any | None = None
    buffer: BufferPool | None = None
    config: SystemConfig | None = None
    recovery: RecoveryPolicy | None = None
    trace: JoinTrace | None = None
    options: dict[str, Any] = field(default_factory=dict)
    state: dict[str, Any] = field(default_factory=dict)


#: A phase body: mutates ``ctx.state``, returns nothing.
PhaseBody = Callable[[ExecutionContext], None]
#: A recoverable construction body: ``(ctx, checkpointer, resume)``.
RecoverableBody = Callable[[ExecutionContext, Any, Any], None]


@dataclass
class JoinPhase:
    """One named step of a pipeline.

    ``metrics_phase`` selects the accounting phase the engine charges the
    step's I/O to (``None`` leaves the collector's current phase alone —
    used by oracle pipelines that account nothing).

    Construction phases may declare the recovery protocol:
    ``recoverable_body`` runs instead of ``body`` whenever the context
    carries a :class:`~repro.storage.RecoveryPolicy`, inside the
    engine's checkpoint/resume loop, with ``make_checkpointer`` /
    ``load_resume`` supplying the algorithm-specific snapshot machinery.
    ``fallback_errors`` (with a pipeline-level fallback factory) marks
    the phase as degradable: a :class:`~repro.errors.StorageError`
    escaping it downgrades the join instead of failing it.
    """

    name: str
    body: PhaseBody
    metrics_phase: Phase | None = None
    recoverable_body: RecoverableBody | None = None
    make_checkpointer: Callable[[ExecutionContext], Any] | None = None
    load_resume: Callable[[ExecutionContext, Any], Any] | None = None
    recovery_label: str = "construction"
    allow_fallback: bool = False


class JoinPipeline:
    """An ordered list of phases plus the executor that runs them.

    Parameters
    ----------
    algorithm:
        Name stamped on the :class:`~repro.join.result.JoinResult`.
    phases:
        The steps, in an order consistent with :data:`PHASE_ORDER`.
    fallback:
        Factory returning the degradation pipeline (BFJ) used when a
        phase with ``allow_fallback`` fails irrecoverably under a policy
        with ``fallback_to_bfj``. ``None`` disables degradation.
    """

    def __init__(
        self,
        algorithm: str,
        phases: list[JoinPhase],
        fallback: Callable[[], "JoinPipeline"] | None = None,
    ):
        ranks = {name: i for i, name in enumerate(PHASE_ORDER)}
        last = -1
        for phase in phases:
            rank = ranks.get(phase.name)
            if rank is None:
                raise ValueError(
                    f"unknown pipeline phase {phase.name!r}; "
                    f"expected one of {PHASE_ORDER}"
                )
            if rank < last:
                raise ValueError(
                    f"phase {phase.name!r} out of order; pipelines follow "
                    f"{PHASE_ORDER}"
                )
            last = rank
        self.algorithm = algorithm
        self.phases = phases
        self.fallback = fallback

    # ----------------------------------------------------------------- #
    # Execution
    # ----------------------------------------------------------------- #

    def execute(self, ctx: ExecutionContext) -> JoinResult:
        """Run the phases and assemble the result.

        The engine — never a driver — enters accounting phases, drives
        the crash-recovery loop, performs BFJ degradation, and records
        trace spans.
        """
        if ctx.trace is not None and ctx.trace.depth == 0:
            root_cm = ctx.trace.span(self.algorithm, kind="join")
        elif ctx.trace is not None:
            # Degradation re-enters execute() under the original root.
            root_cm = ctx.trace.span(f"join:{self.algorithm}", kind="join")
        else:
            root_cm = nullcontext()
        with root_cm:
            for phase in self.phases:
                try:
                    self._run_phase(ctx, phase)
                except StorageError as exc:
                    if (
                        phase.allow_fallback
                        and self.fallback is not None
                        and ctx.recovery is not None
                        and ctx.recovery.fallback_to_bfj
                    ):
                        return self._degrade(ctx, exc)
                    raise
            return self._assemble(ctx)

    def _run_phase(self, ctx: ExecutionContext, phase: JoinPhase) -> None:
        metrics_cm = (
            ctx.metrics.phase(phase.metrics_phase)
            if phase.metrics_phase is not None
            else nullcontext()
        )
        span_cm = (
            ctx.trace.span(phase.name, kind="phase",
                           phase=phase.metrics_phase)
            if ctx.trace is not None
            else nullcontext()
        )
        with span_cm, metrics_cm:
            if phase.recoverable_body is not None and ctx.recovery is not None:
                self._run_with_recovery(ctx, phase)
            else:
                phase.body(ctx)

    def _run_with_recovery(
        self, ctx: ExecutionContext, phase: JoinPhase
    ) -> None:
        """Checkpointed construction surviving crashes within the budget.

        Each simulated crash discards the buffer (dirty pages die, the
        disk survives), resets the arm, and resumes the next attempt from
        the latest durable snapshot — a charged read. Non-crash storage
        errors (corruption, exhausted retries) propagate to the caller's
        fallback handling. Exhausting the crash budget raises
        :class:`~repro.errors.RecoveryError`.
        """
        recovery = ctx.recovery
        assert recovery is not None and phase.recoverable_body is not None
        checkpointer = (
            phase.make_checkpointer(ctx)
            if recovery.checkpoint_every and phase.make_checkpointer
            else None
        )
        resume = None
        attempts = recovery.max_crash_recoveries + 1
        for attempt in range(attempts):
            try:
                phase.recoverable_body(ctx, checkpointer, resume)
                return
            except SimulatedCrashError as crash:
                assert ctx.buffer is not None
                ctx.buffer.crash_discard()
                ctx.buffer.disk.reset_arm()
                if attempt == attempts - 1:
                    raise RecoveryError(
                        f"{phase.recovery_label} crashed {attempts} times; "
                        f"crash budget "
                        f"({recovery.max_crash_recoveries} recoveries) "
                        f"exhausted"
                    ) from crash
                ctx.metrics.record_crash_recovery()
                resume = (
                    phase.load_resume(ctx, checkpointer)
                    if checkpointer is not None and phase.load_resume
                    else None
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def _degrade(self, ctx: ExecutionContext, exc: StorageError) -> JoinResult:
        """Answer by brute force after irrecoverable construction failure.

        The answers stay exact — only the cost profile changes; the
        downgrade is recorded in the fault counters and on the result.
        """
        assert self.fallback is not None
        with ctx.metrics.phase(Phase.CONSTRUCT):
            ctx.metrics.record_fallback()
        result = self.fallback().execute(ctx)
        result.degraded = True
        result.fallback_from = self.algorithm
        result.degraded_reason = f"{type(exc).__name__}: {exc}"
        return result

    def _assemble(self, ctx: ExecutionContext) -> JoinResult:
        result = JoinResult(
            pairs=ctx.state.get("pairs", []),
            index=ctx.state.get("index"),
            algorithm=self.algorithm,
        )
        result.trace = ctx.trace
        return result
