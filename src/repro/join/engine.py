"""The phase-based join execution engine.

Every join algorithm in this package is expressed as a
:class:`JoinPipeline` — an ordered list of named :class:`JoinPhase`
steps (``prepare`` → ``construct`` → ``filter`` → ``match`` →
``cleanup``; algorithms use the subset they need) — executed by one
engine that owns everything the drivers used to re-implement by hand:

* :meth:`~repro.metrics.MetricsCollector.phase` transitions, so cost
  attribution lives in exactly one place;
* checkpoint/resume crash recovery for construction phases (the loop
  previously duplicated between ``rtj._build_with_recovery`` and
  ``stj._construct_with_recovery``);
* the STJ→BFJ graceful-degradation path under a
  :class:`~repro.storage.RecoveryPolicy`;
* structured tracing (:mod:`repro.metrics.tracing`): one root span per
  join, one child span per phase, attached to the returned
  :class:`~repro.join.result.JoinResult`.

Drivers declare *what* each phase does through plain callables on an
:class:`ExecutionContext`; the engine decides *how* phases run. This is
the seam later work attaches to — per-phase scheduling, batching, and
parallel matching all wrap the executor, not six drivers.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable

from ..analysis.sanitizer import Sanitizer, resolve_sanitizer
from ..config import SystemConfig
from ..errors import (
    ExperimentError,
    InvariantViolation,
    ParallelError,
    RecoveryError,
    SimulatedCrashError,
    StorageError,
)
from ..geometry import Rect
from ..metrics import CollectorSnapshot, MetricsCollector, Phase
from ..metrics.tracing import JoinTrace, TraceSpan, shift_span_times
from ..partition import (
    GridPartitioner,
    PartitionStats,
    joint_universe,
    make_shards,
)
from ..storage import BufferPool, RecoveryPolicy
from ..storage.datafile import DataEntry
from ..workload.seeding import derive_seed
from .result import JoinResult, ParallelDecision

__all__ = [
    "ExecutionContext",
    "JoinPhase",
    "JoinPipeline",
    "ParallelExecutor",
    "PHASE_ORDER",
]

#: Canonical pipeline phase names, in execution order. Algorithms use a
#: subset; the engine checks declared phases respect this order so every
#: pipeline reads the same way.
PHASE_ORDER = ("prepare", "construct", "filter", "match", "cleanup")


@dataclass
class ExecutionContext:
    """Everything a pipeline run needs, plus scratch state between phases.

    ``options`` holds per-algorithm knobs (split function, variant
    policies, seed sources); ``state`` is the hand-off area phases write
    to and read from — conventionally ``state["index"]`` for the
    join-time structure and ``state["pairs"]`` for the answer set.

    ``sanitize`` opts into runtime invariant checking at phase
    boundaries (:mod:`repro.analysis.sanitizer`): ``True`` forces it on,
    ``False`` off, ``None`` defers to the ``REPRO_SANITIZE`` environment
    variable. The engine resolves the flag to a
    :class:`~repro.analysis.sanitizer.Sanitizer` instance on first
    execution and keeps it on the context, so a degradation re-entry
    continues the same counter-snapshot history.
    """

    data_s: Any
    metrics: MetricsCollector
    tree_r: Any | None = None
    buffer: BufferPool | None = None
    config: SystemConfig | None = None
    recovery: RecoveryPolicy | None = None
    trace: JoinTrace | None = None
    options: dict[str, Any] = field(default_factory=dict)
    state: dict[str, Any] = field(default_factory=dict)
    sanitize: bool | Sanitizer | None = None


#: A phase body: mutates ``ctx.state``, returns nothing.
PhaseBody = Callable[[ExecutionContext], None]
#: A recoverable construction body: ``(ctx, checkpointer, resume)``.
RecoverableBody = Callable[[ExecutionContext, Any, Any], None]


@dataclass
class JoinPhase:
    """One named step of a pipeline.

    ``metrics_phase`` selects the accounting phase the engine charges the
    step's I/O to (``None`` leaves the collector's current phase alone —
    used by oracle pipelines that account nothing).

    Construction phases may declare the recovery protocol:
    ``recoverable_body`` runs instead of ``body`` whenever the context
    carries a :class:`~repro.storage.RecoveryPolicy`, inside the
    engine's checkpoint/resume loop, with ``make_checkpointer`` /
    ``load_resume`` supplying the algorithm-specific snapshot machinery.
    ``fallback_errors`` (with a pipeline-level fallback factory) marks
    the phase as degradable: a :class:`~repro.errors.StorageError`
    escaping it downgrades the join instead of failing it.
    """

    name: str
    body: PhaseBody
    metrics_phase: Phase | None = None
    recoverable_body: RecoverableBody | None = None
    make_checkpointer: Callable[[ExecutionContext], Any] | None = None
    load_resume: Callable[[ExecutionContext, Any], Any] | None = None
    recovery_label: str = "construction"
    allow_fallback: bool = False


class JoinPipeline:
    """An ordered list of phases plus the executor that runs them.

    Parameters
    ----------
    algorithm:
        Name stamped on the :class:`~repro.join.result.JoinResult`.
    phases:
        The steps, in an order consistent with :data:`PHASE_ORDER`.
    fallback:
        Factory returning the degradation pipeline (BFJ) used when a
        phase with ``allow_fallback`` fails irrecoverably under a policy
        with ``fallback_to_bfj``. ``None`` disables degradation.
    """

    def __init__(
        self,
        algorithm: str,
        phases: list[JoinPhase],
        fallback: Callable[[], "JoinPipeline"] | None = None,
    ):
        ranks = {name: i for i, name in enumerate(PHASE_ORDER)}
        last = -1
        for phase in phases:
            rank = ranks.get(phase.name)
            if rank is None:
                raise ValueError(
                    f"unknown pipeline phase {phase.name!r}; "
                    f"expected one of {PHASE_ORDER}"
                )
            if rank < last:
                raise ValueError(
                    f"phase {phase.name!r} out of order; pipelines follow "
                    f"{PHASE_ORDER}"
                )
            last = rank
        self.algorithm = algorithm
        self.phases = phases
        self.fallback = fallback

    # ----------------------------------------------------------------- #
    # Execution
    # ----------------------------------------------------------------- #

    def execute(self, ctx: ExecutionContext) -> JoinResult:
        """Run the phases and assemble the result.

        The engine — never a driver — enters accounting phases, drives
        the crash-recovery loop, performs BFJ degradation, records trace
        spans, and (when enabled) runs the invariant sanitizer at every
        phase boundary.
        """
        sanitizer = resolve_sanitizer(ctx.sanitize)
        ctx.sanitize = sanitizer if sanitizer is not None else False
        if ctx.trace is not None and ctx.trace.depth == 0:
            root_cm = ctx.trace.span(self.algorithm, kind="join")
        elif ctx.trace is not None:
            # Degradation re-enters execute() under the original root.
            root_cm = ctx.trace.span(f"join:{self.algorithm}", kind="join")
        else:
            root_cm = nullcontext()
        with root_cm:
            for phase in self.phases:
                # Cooperative request cancellation: a deadline installed
                # on the substrate (by the resident join service) is
                # honoured between phases too, so a CPU-bound phase over
                # a warm buffer cannot run on long after its request was
                # cancelled. No deadline, no behaviour change.
                if ctx.buffer is not None:
                    ctx.buffer.disk.check_deadline()
                try:
                    self._run_phase(ctx, phase)
                except StorageError as exc:
                    if (
                        phase.allow_fallback
                        and self.fallback is not None
                        and ctx.recovery is not None
                        and ctx.recovery.fallback_to_bfj
                    ):
                        return self._degrade(ctx, exc)
                    raise
                # Outside the phase's accounting context, so the checks
                # could not perturb attribution even if they charged
                # anything (they don't: all access is peek-only).
                if sanitizer is not None:
                    sanitizer.after_phase(ctx, phase.name)
            return self._assemble(ctx)

    def _run_phase(self, ctx: ExecutionContext, phase: JoinPhase) -> None:
        metrics_cm = (
            ctx.metrics.phase(phase.metrics_phase)
            if phase.metrics_phase is not None
            else nullcontext()
        )
        span_cm = (
            ctx.trace.span(phase.name, kind="phase",
                           phase=phase.metrics_phase)
            if ctx.trace is not None
            else nullcontext()
        )
        started = time.perf_counter()
        with span_cm, metrics_cm:
            if phase.recoverable_body is not None and ctx.recovery is not None:
                self._run_with_recovery(ctx, phase)
            else:
                phase.body(ctx)
        # Accumulated (not overwritten): a degraded run keeps the failed
        # attempt's time alongside the fallback pipeline's phases.
        walls = ctx.state.setdefault("phase_walls", {})
        walls[phase.name] = (
            walls.get(phase.name, 0.0) + time.perf_counter() - started
        )

    def _run_with_recovery(
        self, ctx: ExecutionContext, phase: JoinPhase
    ) -> None:
        """Checkpointed construction surviving crashes within the budget.

        Each simulated crash discards the buffer (dirty pages die, the
        disk survives), resets the arm, and resumes the next attempt from
        the latest durable snapshot — a charged read. Non-crash storage
        errors (corruption, exhausted retries) propagate to the caller's
        fallback handling. Exhausting the crash budget raises
        :class:`~repro.errors.RecoveryError`.
        """
        recovery = ctx.recovery
        assert recovery is not None and phase.recoverable_body is not None
        checkpointer = (
            phase.make_checkpointer(ctx)
            if recovery.checkpoint_every and phase.make_checkpointer
            else None
        )
        resume = None
        attempts = recovery.max_crash_recoveries + 1
        for attempt in range(attempts):
            try:
                phase.recoverable_body(ctx, checkpointer, resume)
                return
            except SimulatedCrashError as crash:
                assert ctx.buffer is not None
                ctx.buffer.crash_discard()
                ctx.buffer.disk.reset_arm()
                if attempt == attempts - 1:
                    raise RecoveryError(
                        f"{phase.recovery_label} crashed {attempts} times; "
                        f"crash budget "
                        f"({recovery.max_crash_recoveries} recoveries) "
                        f"exhausted"
                    ) from crash
                ctx.metrics.record_crash_recovery()
                resume = (
                    phase.load_resume(ctx, checkpointer)
                    if checkpointer is not None and phase.load_resume
                    else None
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def _degrade(self, ctx: ExecutionContext, exc: StorageError) -> JoinResult:
        """Answer by brute force after irrecoverable construction failure.

        The answers stay exact — only the cost profile changes; the
        downgrade is recorded in the fault counters and on the result.
        """
        assert self.fallback is not None
        with ctx.metrics.phase(Phase.CONSTRUCT):
            ctx.metrics.record_fallback()
        result = self.fallback().execute(ctx)
        result.degraded = True
        result.fallback_from = self.algorithm
        result.degraded_reason = f"{type(exc).__name__}: {exc}"
        return result

    def _assemble(self, ctx: ExecutionContext) -> JoinResult:
        result = JoinResult(
            pairs=ctx.state.get("pairs", []),
            index=ctx.state.get("index"),
            algorithm=self.algorithm,
            phase_walls=ctx.state.get("phase_walls", {}),
        )
        result.trace = ctx.trace
        return result


# --------------------------------------------------------------------- #
# Partition-parallel execution
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class _PartitionTask:
    """Everything one worker needs to run one tile's join.

    Plain data only — it crosses a process boundary. The worker builds
    its own :class:`~repro.workspace.Workspace` from the shipped shard
    entries, so no simulated disk, buffer, or tree ever needs pickling.
    """

    index: int
    method: str
    config: SystemConfig
    universe: tuple[float, float, float, float]
    rows: int
    cols: int
    entries_r: list[DataEntry]
    entries_s: list[DataEntry]
    options: dict[str, Any]
    seed: int
    want_trace: bool
    recovery: RecoveryPolicy | None = None
    sanitize: bool | None = None

    @property
    def needs_data_r(self) -> bool:
        return self.method in ("NAIVE", "ZJOIN", "2STJ")


@dataclass
class _PartitionOutcome:
    """What a worker sends back: answers, counters, spans."""

    index: int
    pairs: list[tuple[int, int]]
    raw_pairs: int
    snapshot: CollectorSnapshot
    algorithm: str
    n_r: int
    n_s: int
    wall_s: float
    setup_s: float = 0.0
    degraded: bool = False
    trace_roots: list[TraceSpan] | None = None
    trace_origin: float = 0.0


def _adapt_method(task: _PartitionTask, tree_height: int
                  ) -> tuple[str, dict[str, Any]]:
    """Fit the requested method to one shard's substrate.

    A tile's bulk-loaded ``T_R`` shard can be shallower than the seed
    levels the caller asked for (seeding requires strictly more tree
    levels than seed levels). The per-tile join then clamps the seed
    depth, or — when the shard tree is a single leaf and cannot seed at
    all — answers the tile by window queries (BFJ). Answers are
    unaffected either way; the effective method is recorded in the
    partition stats.
    """
    method = task.method
    options = dict(task.options)
    if method == "STJ":
        levels = options.get("seed_levels", 2)
        if tree_height < 2:
            return "BFJ", {}
        if levels >= tree_height:
            options["seed_levels"] = tree_height - 1
    elif method == "2STJ":
        options.setdefault("sample_seed", task.seed)
    return method, options


@dataclass
class _PartitionSubstrate:
    """One tile's private simulated-storage world, reusable across joins.

    The persistent worker pool keeps these warm: the workspace, the
    bulk-loaded shard ``T_R``, and the shard data files survive between
    joins on the same (dataset, grid, tile), so repeat joins skip the
    whole SETUP build. ``start_measurement`` before every join resets
    buffer and counters, which keeps warm-path cost accounting
    bit-identical to a cold build — the disk's page *contents* are the
    same either way, and counters track accesses, not page ids.
    """

    ws: Any
    tree_r: Any
    file_s: Any
    file_r: Any | None
    setup_s: float


def build_partition_substrate(task: _PartitionTask) -> _PartitionSubstrate:
    """Build one tile's substrate (shard data files, bulk ``T_R``).

    The build runs in the SETUP accounting phase and is later discarded
    from the counters by ``start_measurement`` — mirroring the
    sequential protocol, where inputs and ``T_R`` pre-exist and only
    the join is charged.
    """
    from ..workspace import Workspace

    setup_started = time.perf_counter()
    ws = Workspace(task.config)
    tree_r = ws.install_rtree(
        task.entries_r, name=f"T_R[p{task.index}]", bulk=True,
    )
    file_s = ws.install_datafile(task.entries_s, name=f"D_S[p{task.index}]")
    file_r = None
    if task.needs_data_r:
        file_r = ws.install_datafile(
            task.entries_r, name=f"D_R[p{task.index}]"
        )
    return _PartitionSubstrate(
        ws=ws, tree_r=tree_r, file_s=file_s, file_r=file_r,
        setup_s=time.perf_counter() - setup_started,
    )


def join_on_substrate(
    task: _PartitionTask, substrate: _PartitionSubstrate
) -> _PartitionOutcome:
    """Run one tile's (measured) join on an already-built substrate."""
    from .api import spatial_join

    ws = substrate.ws
    method, options = _adapt_method(task, substrate.tree_r.height)
    ws.start_measurement()

    started = time.perf_counter()
    result = spatial_join(
        substrate.file_s, substrate.tree_r, ws.buffer, ws.config, ws.metrics,
        method=method, recovery=task.recovery, trace=task.want_trace,
        data_r=substrate.file_r, sanitize=task.sanitize, **options,
    )
    wall_s = time.perf_counter() - started

    # Reference-point dedup: keep only the pairs this tile owns.
    partitioner = GridPartitioner(Rect(*task.universe), task.rows, task.cols)
    rect_s = {oid: rect for rect, oid in task.entries_s}
    rect_r = {oid: rect for rect, oid in task.entries_r}
    kept = [
        (oid_s, oid_r)
        for oid_s, oid_r in result.pairs
        if partitioner.owns_pair(task.index, rect_s[oid_s], rect_r[oid_r])
    ]
    return _PartitionOutcome(
        index=task.index,
        pairs=kept,
        raw_pairs=len(result.pairs),
        snapshot=CollectorSnapshot.capture(ws.metrics),
        algorithm=result.algorithm,
        n_r=len(task.entries_r),
        n_s=len(task.entries_s),
        wall_s=wall_s,
        setup_s=substrate.setup_s,
        degraded=result.degraded,
        trace_roots=result.trace.roots if result.trace is not None else None,
        trace_origin=(
            result.trace.origin if result.trace is not None else 0.0
        ),
    )


def run_partition_task(task: _PartitionTask) -> _PartitionOutcome:
    """Execute one tile's join in a fresh private substrate.

    Module-level so a spawned pool can import it by reference; the
    persistent pool's workers use the two halves
    (:func:`build_partition_substrate` / :func:`join_on_substrate`)
    separately so the substrate can stay warm between joins.
    """
    return join_on_substrate(task, build_partition_substrate(task))


# Planner-guard cost model, in "entry units" — the (amortized) work of
# pushing one entry through a per-tile join. The absolute scale cancels
# out of the speedup ratio; only the overhead constants matter, and they
# are deliberately calibrated coarse: the guard exists to catch joins
# that are *obviously* too small to parallelize, not to rank close
# calls. The model assumes workers can actually run concurrently (it
# does not consult the host's core count): its question is "is this
# workload big enough to cover the orchestration overhead", which is a
# property of the join, not of today's machine.
_GUARD_SPAWN_UNITS = 4000.0        # legacy mode: fork/spawn, per worker
_GUARD_SHIP_UNITS = 0.3            # legacy mode: pickling, per shipped entry
_GUARD_POOL_DISPATCH_UNITS = 400.0  # pooled mode: per-join round trip
_GUARD_POOL_TILE_UNITS = 80.0      # pooled mode: per tile message


def _lpt_makespan(costs: list[float], workers: int) -> float:
    """Longest-processing-time-first schedule length for ``costs``."""
    if not costs or workers < 1:
        return 0.0
    loads = [0.0] * min(workers, len(costs))
    for cost in sorted(costs, reverse=True):
        idx = min(range(len(loads)), key=loads.__getitem__)
        loads[idx] += cost
    return max(loads)


def _pool_enabled() -> bool:
    """Persistent-pool mode switch: ``REPRO_POOL=0`` restores the legacy
    per-join fork pool (read per call so tests can flip it)."""
    return os.environ.get("REPRO_POOL", "1").strip() != "0"


@dataclass
class _ParallelPlan:
    """One parallel join's resolved inputs, in either representation.

    ``shards`` (materialized entries) for the legacy route, or
    ``dataset``/``grid``/``descriptors`` (shared columns plus row
    indices) for the pooled route. ``tile_counts`` and ``seq_units``
    feed the planner guard either way.
    """

    partitioner: Any
    pooled: bool
    seq_units: int
    tile_counts: list[tuple[int, int]]
    shards: list[Any] | None = None
    dataset: Any | None = None
    grid: Any | None = None
    descriptors: list[Any] | None = None


class ParallelExecutor:
    """Runs one logical join as per-tile joins across worker processes.

    The universe of both inputs is tiled into a uniform grid
    (:class:`~repro.partition.GridPartitioner`); both inputs are split
    into boundary-replicated shards; each productive tile becomes an
    independent per-partition pipeline run in its own seeded
    disk/buffer substrate (deterministic per-partition accounting); the
    reference-point rule dedups answers tile-locally; and the parent
    merges pair sets, I/O / CPU / fault counters, and trace spans into
    one :class:`~repro.join.result.JoinResult` whose accounting is the
    exact sum of the per-partition counters.

    Execution picks between three routes, recorded on the result as a
    :class:`~repro.join.result.ParallelDecision`:

    * **pooled** (default for ``workers > 1``): the persistent
      :class:`~repro.parallel.WorkerPool` — inputs published once into
      shared-memory columns, tile *descriptors* shipped over pipes,
      per-tile substrates kept warm between joins. ``REPRO_POOL=0``
      disables it.
    * **legacy**: a throwaway ``multiprocessing.Pool`` per join, whole
      shard entry lists pickled to each worker. Also the automatic
      fallback when inputs cannot be published (oids beyond int64).
    * **in-process** (``workers=1``, or the planner guard predicting a
      slowdown): the same per-tile plan run inline, no pool — the
      differential harness uses this to separate partitioning effects
      from multiprocessing effects.
    """

    def __init__(
        self,
        method: str,
        config: SystemConfig,
        workers: int = 1,
        partitions: int | None = None,
        options: dict[str, Any] | None = None,
        seed: int = 0,
        label: str | None = None,
        start_method: str | None = None,
        guard: bool | None = None,
    ):
        if workers < 1:
            raise ExperimentError("workers must be >= 1")
        if partitions is not None and partitions < 1:
            raise ExperimentError("partitions must be >= 1")
        self.method = method
        self.config = config
        self.workers = workers
        self.partitions = partitions if partitions is not None else 4 * workers
        self.options = dict(options or {})
        self.seed = seed
        self.label = label or method
        self.start_method = start_method
        self.guard = guard

    # ----------------------------------------------------------------- #

    def run(
        self,
        data_s: Any,
        tree_r: Any,
        metrics: MetricsCollector,
        trace: JoinTrace | None = None,
        data_r: Any | None = None,
        recovery: RecoveryPolicy | None = None,
        sanitize: bool | None = None,
    ) -> JoinResult:
        sanitizer = resolve_sanitizer(sanitize)
        root_cm = (
            trace.span(f"parallel[{self.label}]", kind="join")
            if trace is not None
            else nullcontext()
        )
        with root_cm:
            plan = self._plan(data_s, tree_r, metrics, trace, data_r)
            base = trace.clock() if trace is not None else 0.0
            decision = self._decide(plan)
            outcomes = self._run_plan(
                plan, decision, trace is not None, recovery, sanitize,
            )
            result = self._merge(outcomes, metrics, trace, base, sanitizer)
            result.parallel_decision = decision
            return result

    # ----------------------------------------------------------------- #
    # Planning: extract, tile, shard
    # ----------------------------------------------------------------- #

    def _plan(
        self,
        data_s: Any,
        tree_r: Any,
        metrics: MetricsCollector,
        trace: JoinTrace | None,
        data_r: Any | None,
    ) -> _ParallelPlan:
        span_cm = (
            trace.span("prepare-shards", kind="phase", phase=Phase.SETUP)
            if trace is not None
            else nullcontext()
        )
        # Shard preparation is substrate work, charged to SETUP like all
        # pre-existing-structure construction: each worker re-reads its
        # shard through its own accounted substrate, so charging the
        # parent-side extraction to a join phase would double-count it
        # and break the sum-of-partitions reconciliation. The reads here
        # are unaccounted for the same reason — this pass exists only to
        # route entries to tiles, and its accounted twin happens inside
        # every worker. (The pooled route may skip extraction entirely
        # on a warm dataset cache hit; skipping unaccounted work cannot
        # perturb a counter.)
        with span_cm, metrics.phase(Phase.SETUP):
            if self._pool_wanted(data_s, tree_r, data_r):
                plan = self._plan_pooled(data_s, tree_r, data_r)
                if plan is not None:
                    return plan
            entries_s = data_s.read_all_unaccounted()
            entries_r = (
                data_r.read_all_unaccounted() if data_r is not None
                else list(tree_r.all_objects())
            )
            universe = joint_universe(entries_r, entries_s)
            if universe is None:
                self._partitioner = None
                self._shards = []
                return _ParallelPlan(
                    partitioner=None, pooled=False, seq_units=0,
                    tile_counts=[], shards=[],
                )
            partitioner = GridPartitioner.for_tile_count(
                universe, self.partitions
            )
            shards = make_shards(partitioner, entries_r, entries_s)
            self._partitioner = partitioner
            self._shards = shards
            return _ParallelPlan(
                partitioner=partitioner,
                pooled=False,
                seq_units=len(entries_r) + len(entries_s),
                tile_counts=[
                    (len(s.entries_r), len(s.entries_s)) for s in shards
                ],
                shards=shards,
            )

    def _pool_wanted(
        self, data_s: Any, tree_r: Any, data_r: Any | None
    ) -> bool:
        """Should this join even try the persistent pool?

        A cheap pre-guard using only input *lengths* (no extraction, no
        scatter): when even a replication-free, perfectly balanced
        split could not beat sequential, don't publish shared columns
        for a join the real guard would run inline anyway.
        """
        if self.workers <= 1 or not _pool_enabled():
            return False
        if not self._guard_enabled():
            return True
        try:
            n = len(data_s) + (
                len(data_r) if data_r is not None else len(tree_r)
            )
        except TypeError:  # pragma: no cover - exotic input containers
            return True
        if n == 0:
            return False
        best_parallel = (
            _GUARD_POOL_DISPATCH_UNITS
            + _GUARD_POOL_TILE_UNITS * self.partitions
            + n / self.workers
        )
        return n / best_parallel >= 1.0

    def _plan_pooled(
        self, data_s: Any, tree_r: Any, data_r: Any | None
    ) -> _ParallelPlan | None:
        """The shared-memory plan, or ``None`` to fall back to legacy.

        A warm :class:`~repro.parallel.DatasetCache` hit skips entry
        extraction *and* the scatter pass; a miss publishes the columns
        (once) and builds descriptor shards. Publication can refuse a
        dataset (oids beyond int64) — that degrades to the legacy
        pickled-entries route, never to a wrong answer.
        """
        from ..parallel import default_dataset_cache

        cache = default_dataset_cache()
        dataset = cache.lookup(data_s, tree_r, data_r)
        if dataset is None:
            entries_s = data_s.read_all_unaccounted()
            entries_r = (
                data_r.read_all_unaccounted() if data_r is not None
                else list(tree_r.all_objects())
            )
            if joint_universe(entries_r, entries_s) is None:
                return None
            try:
                dataset = cache.publish(
                    data_s, tree_r, data_r, entries_r, entries_s
                )
            except ParallelError:
                return None
        partitioner, descriptors, grid = dataset.grid(self.partitions)
        self._partitioner = partitioner
        self._shards = descriptors
        return _ParallelPlan(
            partitioner=partitioner,
            pooled=True,
            seq_units=len(dataset.entries_r) + len(dataset.entries_s),
            tile_counts=[(d.n_r, d.n_s) for d in descriptors],
            dataset=dataset,
            grid=grid,
            descriptors=descriptors,
        )

    # ----------------------------------------------------------------- #
    # The planner guard
    # ----------------------------------------------------------------- #

    def _guard_enabled(self) -> bool:
        if self.guard is not None:
            return self.guard
        return os.environ.get("REPRO_PARALLEL_GUARD", "1").strip() != "0"

    def _predict_speedup(self, plan: _ParallelPlan) -> float:
        tile_units = [float(nr + ns) for nr, ns in plan.tile_counts]
        workers = min(self.workers, len(tile_units))
        makespan = _lpt_makespan(tile_units, workers)
        if plan.pooled:
            overhead = (
                _GUARD_POOL_DISPATCH_UNITS
                + _GUARD_POOL_TILE_UNITS * len(tile_units)
            )
        else:
            overhead = (
                _GUARD_SPAWN_UNITS * workers
                + _GUARD_SHIP_UNITS * sum(tile_units)
            )
        parallel = overhead + makespan
        return plan.seq_units / parallel if parallel > 0 else 0.0

    def _decide(self, plan: _ParallelPlan) -> ParallelDecision:
        tiles = len(plan.tile_counts)
        if self.workers == 1:
            return ParallelDecision(
                1, 1, self.partitions, False, None,
                "single worker requested",
            )
        if tiles == 0:
            return ParallelDecision(
                self.workers, 1, self.partitions, False, None,
                "empty input",
            )
        if tiles == 1:
            return ParallelDecision(
                self.workers, 1, self.partitions, False, None,
                "single productive tile",
            )
        predicted = self._predict_speedup(plan)
        if self._guard_enabled() and predicted < 1.0:
            return ParallelDecision(
                self.workers, 1, self.partitions, False, predicted,
                f"guard: predicted speedup {predicted:.2f} < 1.0; "
                f"running in-process",
            )
        return ParallelDecision(
            self.workers, self.workers, self.partitions, plan.pooled,
            predicted,
            "persistent worker pool" if plan.pooled
            else "legacy per-join pool",
        )

    # ----------------------------------------------------------------- #
    # Execution: pooled, legacy pool, or in-process
    # ----------------------------------------------------------------- #

    def _run_plan(
        self,
        plan: _ParallelPlan,
        decision: ParallelDecision,
        want_trace: bool,
        recovery: RecoveryPolicy | None,
        sanitize: bool | None,
    ) -> list[_PartitionOutcome]:
        if not plan.tile_counts:
            return []
        if decision.effective_workers == 1 or len(plan.tile_counts) == 1:
            tasks = self._materialize_tasks(
                plan, want_trace, recovery, sanitize,
            )
            return [run_partition_task(task) for task in tasks]
        if decision.pooled:
            from ..parallel import TileJob, forwarded_env, get_default_pool

            dataset = plan.dataset
            jobs = [
                TileJob(
                    dataset_key=dataset.key,
                    version=dataset.version,
                    grid=plan.grid,
                    tile=d.tile.index,
                    n_r=d.n_r,
                    n_s=d.n_s,
                    method=self.method,
                    config=self.config,
                    options=self.options,
                    seed=derive_seed(self.seed, "partition", d.tile.index),
                    want_trace=want_trace,
                    recovery=recovery,
                    sanitize=sanitize,
                    env=forwarded_env(),
                )
                for d in plan.descriptors
            ]
            pool = get_default_pool(self.workers, self.start_method)
            return pool.run_join(dataset, jobs)
        tasks = self._materialize_tasks(plan, want_trace, recovery, sanitize)
        return self._execute(tasks)

    def _materialize_tasks(
        self,
        plan: _ParallelPlan,
        want_trace: bool,
        recovery: RecoveryPolicy | None,
        sanitize: bool | None,
    ) -> list[_PartitionTask]:
        partitioner = plan.partitioner
        if plan.shards is not None:
            sliced = [
                (s.tile.index, s.entries_r, s.entries_s) for s in plan.shards
            ]
        else:
            # Descriptor indices reproduce the materialized shard order
            # exactly (see shard.py), so both representations feed the
            # in-process path bit-identically.
            er = plan.dataset.entries_r
            es = plan.dataset.entries_s
            sliced = [
                (
                    d.tile.index,
                    [er[i] for i in d.indices_r],
                    [es[i] for i in d.indices_s],
                )
                for d in plan.descriptors
            ]
        return [
            _PartitionTask(
                index=index,
                method=self.method,
                config=self.config,
                universe=partitioner.universe.as_tuple(),
                rows=partitioner.rows,
                cols=partitioner.cols,
                entries_r=entries_r,
                entries_s=entries_s,
                options=self.options,
                seed=derive_seed(self.seed, "partition", index),
                want_trace=want_trace,
                recovery=recovery,
                sanitize=sanitize,
            )
            for index, entries_r, entries_s in sliced
        ]

    def _execute(
        self, tasks: list[_PartitionTask]
    ) -> list[_PartitionOutcome]:
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            return [run_partition_task(task) for task in tasks]
        ctx = self._pool_context()
        processes = min(self.workers, len(tasks))
        with ctx.Pool(processes=processes) as pool:
            return pool.map(run_partition_task, tasks)

    @staticmethod
    def _pool_context():
        """The legacy per-join pool's context: the same resolved start
        method the persistent pool uses (``REPRO_POOL_START_METHOD``,
        else fork where available, else the platform default)."""
        from ..parallel.pool import resolve_start_method

        return multiprocessing.get_context(resolve_start_method())

    # ----------------------------------------------------------------- #
    # Merge: pairs, counters, spans
    # ----------------------------------------------------------------- #

    def _merge(
        self,
        outcomes: list[_PartitionOutcome],
        metrics: MetricsCollector,
        trace: JoinTrace | None,
        base: float,
        sanitizer: Sanitizer | None = None,
    ) -> JoinResult:
        tiles = {shard.tile.index: shard.tile for shard in self._shards}
        stats: list[PartitionStats] = []
        pairs: list[tuple[int, int]] = []
        degraded = False
        # Reconciliation invariant, checked under the sanitizer: the
        # parent's counters after absorbing every partition equal the
        # counter-wise sum of the per-partition snapshots — same fold
        # order as the absorb loop, so even float fields (backoff
        # seconds) must agree bit for bit.
        expected = (
            CollectorSnapshot.capture(metrics) if sanitizer is not None
            else None
        )
        for outcome in sorted(outcomes, key=lambda o: o.index):
            metrics.absorb(outcome.snapshot)
            if expected is not None:
                expected = expected.merged_with(outcome.snapshot)
            pairs.extend(outcome.pairs)
            degraded = degraded or outcome.degraded
            stats.append(PartitionStats(
                index=outcome.index,
                tile=tiles[outcome.index].rect.as_tuple(),
                n_r=outcome.n_r,
                n_s=outcome.n_s,
                raw_pairs=outcome.raw_pairs,
                pairs=len(outcome.pairs),
                algorithm=outcome.algorithm,
                wall_s=outcome.wall_s,
                snapshot=outcome.snapshot,
                degraded=outcome.degraded,
                setup_s=outcome.setup_s,
            ))
            if trace is not None:
                trace.adopt(self._partition_span(outcome, base))
        if expected is not None:
            merged = CollectorSnapshot.capture(metrics)
            if merged != expected:
                raise InvariantViolation(
                    "merged collector counters are not the exact sum of "
                    "the per-partition snapshots (after merging "
                    f"{len(outcomes)} partitions)"
                )
        pairs.sort()
        result = JoinResult(
            pairs=pairs, index=None, algorithm=self.label,
        )
        result.partitions = stats
        result.trace = trace
        if degraded:
            result.degraded = True
            result.fallback_from = self.label
            result.degraded_reason = "one or more partitions degraded"
        return result

    @staticmethod
    def _partition_span(
        outcome: _PartitionOutcome, base: float
    ) -> TraceSpan:
        """One closed ``partition`` span wrapping the worker's own spans.

        The worker's clock means nothing here, so the subtree is rebased
        onto the parent timeline at the moment the parallel region
        dispatched; per-span durations are preserved exactly.
        """
        span = TraceSpan(
            name=f"partition[{outcome.index}]",
            kind="partition",
            start_s=base,
            end_s=base + outcome.wall_s,
        )
        for phase_name, io in outcome.snapshot.io.items():
            if io.total_accesses:
                span.io[phase_name] = io
        span.bbox_tests = outcome.snapshot.cpu.bbox_tests
        span.xy_tests = outcome.snapshot.cpu.xy_tests
        faults = outcome.snapshot.faults
        span.faults_injected = sum(f.faults_injected for f in faults.values())
        span.retries = sum(f.retries for f in faults.values())
        span.crash_recoveries = sum(
            f.crash_recoveries for f in faults.values()
        )
        span.checkpoints = sum(f.checkpoints for f in faults.values())
        span.fallbacks = sum(f.fallbacks for f in faults.values())
        if outcome.trace_roots:
            for root in outcome.trace_roots:
                shift_span_times(root, base - outcome.trace_origin)
                span.children.append(root)
        return span

