"""Accounted replay of batch traversal plans.

The pure plan builders in :mod:`repro.kernels.node_store` turn a
columnar tree snapshot into flat traversal programs — which pages the
scalar algorithms would fetch, what they would charge, what they would
emit. This module is the *impure* half: it owns the snapshots (built
from unaccounted peeks, cached on the tree, invalidated by the
``mutations`` version stamp) and replays the plans through the real
buffer so the cost model observes the exact scalar behavior:

* the same ``fetch``/``pin``/``unpin`` calls in the same order (LRU
  state, hit/miss split, eviction and fault positions all preserved);
* the same ``CpuCounters`` increments at the same positions relative
  to accounted reads (a fault mid-traversal leaves counters exactly
  where the scalar run would);
* the same pairs in the same emission order.

What the replay *skips* is the per-node Python work between accounted
operations — Rect allocation, per-entry predicate loops, one kernel
dispatch per node — which is precisely the control-flow overhead the
Amdahl gap consists of. Dispatch lives with the callers
(:mod:`repro.join.matching`, :mod:`repro.join.bfj`): the batch path
runs only when ``REPRO_KERNELS`` and ``REPRO_BATCH`` are both on and
the numpy backend is live, and either switch restores the scalar
reference unchanged.
"""

from __future__ import annotations

import zlib
from typing import Any

from ..kernels.backend import np
from ..kernels.node_store import ColumnTree, build_match_plans, build_window_plans
from ..metrics import MetricsCollector
from .result import JoinPair

__all__ = [
    "batch_traversal_available",
    "column_tree_of",
    "match_trees_batch",
    "window_join_batch",
]


def batch_traversal_available() -> bool:
    """Whether the batch path *can* run: live numpy backend required.

    (``HAVE_NUMPY`` is not enough — ``REPRO_KERNELS_BACKEND=python``
    pins the kernels to list columns, and the plan builders are numpy
    only.) The runtime toggles are checked separately by callers.
    """
    return np is not None


# --------------------------------------------------------------------- #
# Snapshot ownership and invalidation
# --------------------------------------------------------------------- #

def column_tree_of(tree: Any) -> ColumnTree:
    """The columnar snapshot of ``tree``, rebuilt when its version moves.

    The version stamp is ``(tree.mutations, tree.root_id)``: every
    mutating lane bumps ``mutations`` (R-tree insert/delete, retained
    seeded-tree insert/delete — the dynamic-update maintenance path —
    and seeded construction's graft/cleanup), and root replacement
    covers the root-split/collapse edge. Building reads nodes through
    the unaccounted peek path (`iter_nodes`), so a snapshot never
    perturbs the cost model.
    """
    key = (tree.mutations, tree.root_id)
    cached = getattr(tree, "_column_tree", None)
    if cached is not None and cached.stamp == key:
        return cached
    records = []
    for node in tree.iter_nodes():
        entries = node.entries
        records.append((
            node.page_id,
            node.level,
            [e.ref for e in entries],
            [e.mbr.xlo for e in entries],
            [e.mbr.ylo for e in entries],
            [e.mbr.xhi for e in entries],
            [e.mbr.yhi for e in entries],
        ))
    snapshot = ColumnTree.build(records, tree.root_id, stamp=key)
    tree._column_tree = snapshot
    return snapshot


# --------------------------------------------------------------------- #
# Batched tree matching (STJ / RTJ / 2STJ match phase)
# --------------------------------------------------------------------- #

class _PreparedMatch:
    """A MatchPlan lowered to plain Python lists for the replay loop."""

    __slots__ = ("anode", "bnode", "pa", "pb", "xy", "cs", "ce",
                 "es", "ee", "emits")

    def __init__(self, ct_a: ColumnTree, ct_b: ColumnTree):
        plan = build_match_plans(ct_a, ct_b)
        self.anode = plan.p_anode
        self.bnode = plan.p_bnode
        self.xy = plan.xy.tolist()
        self.cs = plan.child_start.tolist()
        self.ce = plan.child_end.tolist()
        self.es = plan.emit_start.tolist()
        self.ee = plan.emit_end.tolist()
        self.emits = list(zip(plan.emit_a.tolist(), plan.emit_b.tolist()))
        self.rebind(ct_a, ct_b)

    def rebind(self, ct_a: ColumnTree, ct_b: ColumnTree) -> None:
        """Re-lower the page-id columns against (digest-equal) snapshots.

        The plan proper — visit order, child wiring, XY charges, emitted
        object ids — is a pure function of the structural digest, but
        the replayed fetch sequence addresses *pages*, and a rebuilt
        tree lands on fresh page ids. Re-lowering is two gathers.
        """
        self.pa = ct_a.page[self.anode].tolist()
        self.pb = ct_b.page[self.bnode].tolist()


def _prepared_match_of(
    tree_a: Any, tree_b: Any, ct_a: ColumnTree, ct_b: ColumnTree
) -> _PreparedMatch:
    """Cache the lowered plan for re-matching, content-addressed.

    The cache lives on ``tree_b`` (in STJ/2STJ that is the persistent
    data tree; the seed-side tree is rebuilt per join). Two lookups:

    * identity — the resident case, both snapshots unchanged;
    * digest — ``tree_a`` was rebuilt but describes the identical tree
      (repeated joins over the same inputs, the benchmark's shape), so
      the plan, which is a pure function of the two snapshots, is
      reused.
    """
    cached = getattr(tree_b, "_batch_match_plan", None)
    if cached is not None and cached[0] is ct_b:
        peer = cached[1]
        if peer is ct_a:
            return cached[2]
        if peer.digest() == ct_a.digest():
            prepared = cached[2]
            prepared.rebind(ct_a, ct_b)
            tree_b._batch_match_plan = (ct_b, ct_a, prepared)
            return prepared
    prepared = _PreparedMatch(ct_a, ct_b)
    tree_b._batch_match_plan = (ct_b, ct_a, prepared)
    return prepared


def match_trees_batch(
    tree_a: Any,
    tree_b: Any,
    metrics: MetricsCollector | None = None,
) -> list[JoinPair]:
    """Batch-planned TM: identical answers and costs, no per-pair Python.

    The preamble mirrors the scalar :func:`~repro.join.matching
    .match_trees` exactly — both roots read unpinned, empty-tree early
    exit — and the pair forest is then walked depth-first with the
    scalar's pin discipline: pin a, pin b, charge the pair's XY total,
    emit, descend children in sweep order, unpin b then a. The
    ``finally`` chain is the scalar ``_match``'s, so a storage fault
    unwinds the pins identically; recursion depth is the forest depth
    (bounded by the two tree heights), same as the scalar matcher.
    """
    root_a = tree_a.read_node(tree_a.root_id)
    root_b = tree_b.read_node(tree_b.root_id)
    if not root_a.entries or not root_b.entries:
        return []
    prep = _prepared_match_of(
        tree_a, tree_b, column_tree_of(tree_a), column_tree_of(tree_b)
    )

    cpu = metrics.cpu if metrics is not None else None
    fetch_a = tree_a.buffer.fetch
    unpin_a = tree_a.buffer.unpin
    fetch_b = tree_b.buffer.fetch
    unpin_b = tree_b.buffer.unpin
    pa, pb, xy = prep.pa, prep.pb, prep.xy
    cs, ce, es, ee = prep.cs, prep.ce, prep.es, prep.ee
    emits = prep.emits

    results: list[JoinPair] = []
    extend = results.extend

    def replay(pair: int) -> None:
        page_a = pa[pair]
        fetch_a(page_a, pin=True)
        try:
            page_b = pb[pair]
            fetch_b(page_b, pin=True)
            try:
                if cpu is not None:
                    cpu.xy_tests += xy[pair]
                e0 = es[pair]
                if ee[pair] != e0:
                    extend(emits[e0:ee[pair]])
                for child in range(cs[pair], ce[pair]):
                    replay(child)
            finally:
                unpin_b(page_b)
        finally:
            unpin_a(page_a)

    replay(0)
    return results


# --------------------------------------------------------------------- #
# Batched window queries (BFJ's match phase)
# --------------------------------------------------------------------- #

class _PreparedWindow:
    """A WindowPlan flattened to the scalar replay order, plus answers.

    The scalar BFJ walks each query's stack depth-first (children pushed
    in entry order, popped last-first). That order is a pure function of
    the plan, so it is linearised once here: ``pages``/``weights`` are
    the full accounted fetch-and-charge sequence across all queries, and
    ``pairs`` the complete emission list in scalar order. Replay is then
    a single :meth:`BufferPool.fetch_run`. Emissions carry no accounting
    and a faulted join discards its partial pairs, so returning the
    precomputed list is observationally identical to emitting at each
    leaf visit.
    """

    __slots__ = ("pages", "weights", "pairs")

    def __init__(self, ct: ColumnTree, plan: Any, oids: list):
        cs = plan.child_start.tolist()
        ce = plan.child_end.tolist()
        hs = plan.hit_start.tolist()
        he = plan.hit_end.tolist()
        hits = plan.hit_ref.tolist()
        order: list[int] = []
        visit_order = order.append
        pairs: list[JoinPair] = []
        emit = pairs.append
        stack: list[int] = []
        pop = stack.pop
        for q in range(plan.n_queries):  # query q's root visit id is q
            oid_s = oids[q]
            stack.append(q)
            while stack:
                v = pop()
                visit_order(v)
                c0 = cs[v]
                c1 = ce[v]
                if c1 != c0:
                    stack.extend(range(c0, c1))
                else:
                    h0 = hs[v]
                    if he[v] != h0:
                        for ref in hits[h0:he[v]]:
                            emit((oid_s, ref))
        dfs = plan.v_node[np.asarray(order, dtype=np.int64)]
        self.pages = ct.page[dfs].tolist()
        self.weights = ct.nent[dfs].tolist()
        self.pairs = pairs


def window_join_batch(data_s: Any, tree_r: Any) -> list[JoinPair]:
    """All of BFJ's window queries planned together, replayed in order.

    The sequential scan is materialised first — the scalar loop charges
    every run read on its first iteration anyway — and the whole query
    batch then descends the columnar snapshot level-synchronously. The
    lowered plan is cached on the tree, keyed by snapshot identity and
    query-batch content, so a resident service probing the same run
    against the same tree pays only the accounted replay.
    """
    rows = list(data_s.scan())
    ct = column_tree_of(tree_r)
    nq = len(rows)
    qxlo = np.empty(nq)
    qylo = np.empty(nq)
    qxhi = np.empty(nq)
    qyhi = np.empty(nq)
    oids = []
    add_oid = oids.append
    for i, (rect, oid_s) in enumerate(rows):
        qxlo[i] = rect.xlo
        qylo[i] = rect.ylo
        qxhi[i] = rect.xhi
        qyhi[i] = rect.yhi
        add_oid(oid_s)
    qkey = (
        nq, zlib.crc32(np.asarray(oids, dtype=np.int64).tobytes()),
        zlib.crc32(qxlo.tobytes()), zlib.crc32(qylo.tobytes()),
        zlib.crc32(qxhi.tobytes()), zlib.crc32(qyhi.tobytes()),
    )
    cached = getattr(tree_r, "_batch_window_plan", None)
    if cached is not None and cached[0] is ct and cached[1] == qkey:
        prep = cached[2]
    else:
        plan = build_window_plans(ct, qxlo, qylo, qxhi, qyhi)
        prep = _PreparedWindow(ct, plan, oids)
        tree_r._batch_window_plan = (ct, qkey, prep)

    metrics = tree_r.metrics
    cpu = metrics.cpu if metrics is not None else None
    tree_r.buffer.fetch_run(prep.pages, prep.weights, cpu)
    return list(prep.pairs)
