"""STJ — the seeded tree join (the paper's algorithm).

Constructs a seeded tree for the derived data set ``D_S``, seeding it
from the existing R-tree ``T_R``, then matches the two trees with TM.
All of Section 2's policy knobs and Section 3's construction techniques
are exposed; the paper's named variants are::

    STJ1 = (C3, U3)        STJ2 = (C3, U4)
    STJ1-2N  two seed levels, no filtering
    STJ1-3F  three seed levels, seed-level filtering on

Construction (seeding + growing + clean-up, including all linked-list
traffic) is charged to the CONSTRUCT phase; matching to MATCH, with the
buffer kept warm in between, as in the paper's protocol.

Under a :class:`~repro.storage.RecoveryPolicy` construction becomes
fault-tolerant: the growing phase takes durable checkpoints (see
:mod:`repro.seeded.recovery`), a simulated crash discards the buffer and
resumes from the last salvage within a bounded crash budget, and if
construction still fails with a storage error the join degrades to BFJ
against the pre-computed ``T_R`` — the answers stay exact, only the cost
profile changes, and the downgrade is recorded on the result and in the
fault counters. With ``recovery=None`` (the default) the legacy
non-recovering path runs, byte-identical in cost.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..errors import RecoveryError, SimulatedCrashError, StorageError
from ..metrics import MetricsCollector, Phase
from ..rtree import RTree
from ..rtree.split import SplitFunction, quadratic_split
from ..seeded import CopyStrategy, GrowCheckpointer, SeededTree, UpdatePolicy
from ..storage import BufferPool, DataFile, RecoveryPolicy
from .bfj import brute_force_join
from .matching import match_trees
from .result import JoinResult


def seeded_tree_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    *,
    copy_strategy: CopyStrategy = CopyStrategy.CENTER_AT_SLOTS,
    update_policy: UpdatePolicy = UpdatePolicy.ENCLOSE_DATA_ONLY,
    seed_levels: int = 2,
    filtering: bool = False,
    use_linked_lists: bool | None = None,
    split: SplitFunction = quadratic_split,
    recovery: RecoveryPolicy | None = None,
) -> JoinResult:
    """Join ``data_s`` with ``tree_r`` by constructing a seeded tree.

    Defaults give the paper's STJ1 with two seed levels and no filtering.
    """
    tree_kwargs = dict(
        copy_strategy=copy_strategy,
        update_policy=update_policy,
        seed_levels=seed_levels,
        filtering=filtering,
        use_linked_lists=use_linked_lists,
        split=split,
        name="T_S(stj)",
    )

    if recovery is None:
        tree_s = SeededTree(buffer, config, metrics, **tree_kwargs)
        with metrics.phase(Phase.CONSTRUCT):
            tree_s.seed(tree_r)
            tree_s.grow_from(data_s)
            tree_s.cleanup()
        with metrics.phase(Phase.MATCH):
            pairs = match_trees(tree_s, tree_r, metrics)
        return JoinResult(pairs=pairs, index=tree_s, algorithm="STJ")

    try:
        with metrics.phase(Phase.CONSTRUCT):
            tree_s = _construct_with_recovery(
                data_s, tree_r, buffer, config, metrics, recovery,
                tree_kwargs,
            )
    except StorageError as exc:
        if not recovery.fallback_to_bfj:
            raise
        # Irrecoverable construction failure: degrade to brute force
        # against the pre-computed T_R. Answers stay exact.
        with metrics.phase(Phase.CONSTRUCT):
            metrics.record_fallback()
        result = brute_force_join(data_s, tree_r, metrics)
        result.degraded = True
        result.fallback_from = "STJ"
        result.degraded_reason = f"{type(exc).__name__}: {exc}"
        return result

    with metrics.phase(Phase.MATCH):
        pairs = match_trees(tree_s, tree_r, metrics)
    return JoinResult(pairs=pairs, index=tree_s, algorithm="STJ")


def _construct_with_recovery(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    recovery: RecoveryPolicy,
    tree_kwargs: dict,
) -> SeededTree:
    """Build the seeded tree, surviving crashes within the crash budget.

    Each crash discards the buffer (dirty pages die, disk survives) and
    the next attempt re-seeds a fresh tree — seeding is deterministic, so
    the salvage record's slot indices line up — then resumes growing from
    the last durable checkpoint. Storage errors other than crashes
    (corruption, exhausted retries) propagate to the caller's fallback.
    """
    checkpointer = (
        GrowCheckpointer(buffer.disk, recovery.checkpoint_every)
        if recovery.checkpoint_every else None
    )
    salvage = None
    attempts = recovery.max_crash_recoveries + 1
    for attempt in range(attempts):
        tree_s = SeededTree(buffer, config, metrics, **tree_kwargs)
        try:
            tree_s.seed(tree_r)
            tree_s.grow_from(data_s, checkpointer=checkpointer,
                             resume=salvage)
            tree_s.cleanup()
            return tree_s
        except SimulatedCrashError as crash:
            buffer.crash_discard()
            buffer.disk.reset_arm()
            if attempt == attempts - 1:
                raise RecoveryError(
                    f"seeded-tree construction crashed {attempts} times; "
                    f"crash budget "
                    f"({recovery.max_crash_recoveries} recoveries) "
                    f"exhausted"
                ) from crash
            metrics.record_crash_recovery()
            salvage = (
                checkpointer.load_latest()
                if checkpointer is not None else None
            )
    raise AssertionError("unreachable")  # pragma: no cover
