"""STJ — the seeded tree join (the paper's algorithm).

Constructs a seeded tree for the derived data set ``D_S``, seeding it
from the existing R-tree ``T_R``, then matches the two trees with TM.
All of Section 2's policy knobs and Section 3's construction techniques
are exposed; the paper's named variants are::

    STJ1 = (C3, U3)        STJ2 = (C3, U4)
    STJ1-2N  two seed levels, no filtering
    STJ1-3F  three seed levels, seed-level filtering on

The pipeline has two phases: ``construct`` (seeding + growing +
clean-up, including all linked-list traffic) and ``match``, with the
buffer kept warm in between, as in the paper's protocol.

Under a :class:`~repro.storage.RecoveryPolicy` the engine runs the
construct phase through its checkpoint/resume loop: the growing phase
takes durable checkpoints (see :mod:`repro.seeded.recovery`), a
simulated crash discards the buffer and resumes from the last salvage
within a bounded crash budget — each attempt re-seeds a fresh tree,
which is deterministic, so the salvage record's slot indices line up —
and if construction still fails with a storage error the engine degrades
the join to BFJ against the pre-computed ``T_R``: the answers stay
exact, only the cost profile changes, and the downgrade is recorded on
the result and in the fault counters. With ``recovery=None`` (the
default) the legacy non-recovering path runs, byte-identical in cost.
"""

from __future__ import annotations

from typing import Any

from ..config import SystemConfig
from ..metrics import MetricsCollector, Phase
from ..metrics.tracing import JoinTrace
from ..rtree import RTree
from ..rtree.split import SplitFunction, quadratic_split
from ..seeded import CopyStrategy, GrowCheckpointer, SeededTree, UpdatePolicy
from ..seeded.replay import cached_construct
from ..storage import BufferPool, DataFile, RecoveryPolicy
from .bfj import bfj_pipeline
from .engine import ExecutionContext, JoinPhase, JoinPipeline
from .matching import match_trees
from .result import JoinResult


def _build_tree(ctx: ExecutionContext, checkpointer: Any, salvage: Any) -> None:
    tree_s = SeededTree(
        ctx.buffer, ctx.config, ctx.metrics, **ctx.options["tree_kwargs"]
    )
    tree_s.seed(ctx.tree_r)
    tree_s.grow_from(ctx.data_s, checkpointer=checkpointer, resume=salvage)
    tree_s.cleanup()
    ctx.state["index"] = tree_s


def _construct(ctx: ExecutionContext) -> None:
    # The non-recovering construct is a pure function of (T_R, D_S,
    # knobs): a resident workspace re-joining the same inputs replays
    # the first build's recorded effect log instead of re-running the
    # insertion loop (see repro.seeded.replay). Recovery, tracing,
    # sanitizing, fault-injected and kernels/batch-off runs all take
    # the scalar body below unchanged.
    cached_construct(ctx, lambda c: _build_tree(c, None, None))


def _make_checkpointer(ctx: ExecutionContext) -> GrowCheckpointer:
    assert ctx.buffer is not None and ctx.recovery is not None
    return GrowCheckpointer(ctx.buffer.disk, ctx.recovery.checkpoint_every)


def _load_resume(ctx: ExecutionContext, checkpointer: Any) -> Any:
    return checkpointer.load_latest()


def _match(ctx: ExecutionContext) -> None:
    ctx.state["pairs"] = match_trees(
        ctx.state["index"], ctx.tree_r, ctx.metrics
    )


def stj_pipeline() -> JoinPipeline:
    """Seeded-tree build then TM matching, degradable to BFJ."""
    return JoinPipeline(
        "STJ",
        [
            JoinPhase(
                "construct", _construct, metrics_phase=Phase.CONSTRUCT,
                recoverable_body=_build_tree,
                make_checkpointer=_make_checkpointer,
                load_resume=_load_resume,
                recovery_label="seeded-tree construction",
                allow_fallback=True,
            ),
            JoinPhase("match", _match, metrics_phase=Phase.MATCH),
        ],
        fallback=bfj_pipeline,
    )


def seeded_tree_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    *,
    copy_strategy: CopyStrategy = CopyStrategy.CENTER_AT_SLOTS,
    update_policy: UpdatePolicy = UpdatePolicy.ENCLOSE_DATA_ONLY,
    seed_levels: int = 2,
    filtering: bool = False,
    use_linked_lists: bool | None = None,
    split: SplitFunction = quadratic_split,
    recovery: RecoveryPolicy | None = None,
    trace: JoinTrace | None = None,
    sanitize: bool | None = None,
) -> JoinResult:
    """Join ``data_s`` with ``tree_r`` by constructing a seeded tree.

    Defaults give the paper's STJ1 with two seed levels and no filtering.
    """
    tree_kwargs = dict(
        copy_strategy=copy_strategy,
        update_policy=update_policy,
        seed_levels=seed_levels,
        filtering=filtering,
        use_linked_lists=use_linked_lists,
        split=split,
        name="T_S(stj)",
    )
    ctx = ExecutionContext(
        data_s=data_s, metrics=metrics, tree_r=tree_r, buffer=buffer,
        config=config, recovery=recovery, trace=trace,
        options={"tree_kwargs": tree_kwargs},
        sanitize=sanitize,
    )
    return stj_pipeline().execute(ctx)
