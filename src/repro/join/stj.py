"""STJ — the seeded tree join (the paper's algorithm).

Constructs a seeded tree for the derived data set ``D_S``, seeding it
from the existing R-tree ``T_R``, then matches the two trees with TM.
All of Section 2's policy knobs and Section 3's construction techniques
are exposed; the paper's named variants are::

    STJ1 = (C3, U3)        STJ2 = (C3, U4)
    STJ1-2N  two seed levels, no filtering
    STJ1-3F  three seed levels, seed-level filtering on

Construction (seeding + growing + clean-up, including all linked-list
traffic) is charged to the CONSTRUCT phase; matching to MATCH, with the
buffer kept warm in between, as in the paper's protocol.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..metrics import MetricsCollector, Phase
from ..rtree import RTree
from ..rtree.split import SplitFunction, quadratic_split
from ..seeded import CopyStrategy, SeededTree, UpdatePolicy
from ..storage import BufferPool, DataFile
from .matching import match_trees
from .result import JoinResult


def seeded_tree_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    *,
    copy_strategy: CopyStrategy = CopyStrategy.CENTER_AT_SLOTS,
    update_policy: UpdatePolicy = UpdatePolicy.ENCLOSE_DATA_ONLY,
    seed_levels: int = 2,
    filtering: bool = False,
    use_linked_lists: bool | None = None,
    split: SplitFunction = quadratic_split,
) -> JoinResult:
    """Join ``data_s`` with ``tree_r`` by constructing a seeded tree.

    Defaults give the paper's STJ1 with two seed levels and no filtering.
    """
    tree_s = SeededTree(
        buffer, config, metrics,
        copy_strategy=copy_strategy,
        update_policy=update_policy,
        seed_levels=seed_levels,
        filtering=filtering,
        use_linked_lists=use_linked_lists,
        split=split,
        name="T_S(stj)",
    )
    with metrics.phase(Phase.CONSTRUCT):
        tree_s.seed(tree_r)
        tree_s.grow_from(data_s)
        tree_s.cleanup()
    with metrics.phase(Phase.MATCH):
        pairs = match_trees(tree_s, tree_r, metrics)
    return JoinResult(pairs=pairs, index=tree_s, algorithm="STJ")
