"""The public join facade and the paper's variant naming scheme.

The paper names its seeded-tree variants like ``STJ1-2F``: flavour 1 or 2
(STJ1 = copy strategy C3 with update policy U3, STJ2 = C3 with U4), the
number of seed levels after the hyphen, and a trailing ``F``/``N`` for
seed-level filtering on/off. :class:`STJVariant` parses and renders those
names; :func:`spatial_join` accepts them directly, so experiment code can
say ``spatial_join(data, tree, ..., method="STJ2-3F")`` and get exactly
the paper's configuration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..config import SystemConfig
from ..errors import ExperimentError
from ..metrics import MetricsCollector
from ..rtree import RTree
from ..seeded import CopyStrategy, UpdatePolicy
from ..storage import BufferPool, DataFile, RecoveryPolicy
from .bfj import brute_force_join
from .result import JoinResult
from .rtj import rtree_join
from .stj import seeded_tree_join

_VARIANT_RE = re.compile(r"^STJ([12])-(\d+)([FN])$", re.IGNORECASE)

#: Flavour number -> (copy strategy, update policy), per Section 4.1.
_FLAVOURS = {
    1: (CopyStrategy.CENTER_AT_SLOTS, UpdatePolicy.ENCLOSE_DATA_ONLY),
    2: (CopyStrategy.CENTER_AT_SLOTS, UpdatePolicy.SLOT_WITH_SEED),
}


@dataclass(frozen=True)
class STJVariant:
    """One named STJ configuration, e.g. ``STJ1-2N`` or ``STJ2-3F``."""

    flavour: int
    seed_levels: int
    filtering: bool

    @classmethod
    def parse(cls, name: str) -> "STJVariant":
        match = _VARIANT_RE.match(name.strip())
        if not match:
            raise ExperimentError(
                f"not an STJ variant name: {name!r} (expected e.g. 'STJ1-2F')"
            )
        return cls(
            flavour=int(match.group(1)),
            seed_levels=int(match.group(2)),
            filtering=match.group(3).upper() == "F",
        )

    @property
    def name(self) -> str:
        return (
            f"STJ{self.flavour}-{self.seed_levels}"
            f"{'F' if self.filtering else 'N'}"
        )

    @property
    def copy_strategy(self) -> CopyStrategy:
        return _FLAVOURS[self.flavour][0]

    @property
    def update_policy(self) -> UpdatePolicy:
        return _FLAVOURS[self.flavour][1]


def spatial_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    method: str = "STJ1-2N",
    recovery: RecoveryPolicy | None = None,
    **stj_options,
) -> JoinResult:
    """Join a derived data set with an R-tree-indexed one.

    ``method`` selects the algorithm: ``"BFJ"``, ``"RTJ"``, a paper
    variant name like ``"STJ1-2F"``, or plain ``"STJ"`` (which uses the
    keyword arguments of :func:`~repro.join.stj.seeded_tree_join`).

    ``recovery`` arms fault tolerance for the construction-based
    methods: checkpointed builds, bounded crash recovery, and (for STJ)
    graceful degradation to BFJ when construction fails irrecoverably —
    the downgrade is recorded on the returned result. BFJ builds nothing
    and ignores the policy. ``None`` (the default) runs the legacy
    non-recovering paths, byte-identical in cost.
    """
    upper = method.strip().upper()
    if upper == "BFJ":
        return brute_force_join(data_s, tree_r, metrics)
    if upper == "RTJ":
        return rtree_join(data_s, tree_r, buffer, config, metrics,
                          recovery=recovery)
    if upper == "STJ":
        return seeded_tree_join(
            data_s, tree_r, buffer, config, metrics,
            recovery=recovery, **stj_options,
        )
    variant = STJVariant.parse(upper)
    result = seeded_tree_join(
        data_s, tree_r, buffer, config, metrics,
        copy_strategy=variant.copy_strategy,
        update_policy=variant.update_policy,
        seed_levels=variant.seed_levels,
        filtering=variant.filtering,
        recovery=recovery,
        **stj_options,
    )
    if not result.degraded:
        result.algorithm = variant.name
    else:
        result.fallback_from = variant.name
    return result
