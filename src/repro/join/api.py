"""The public join facade and the paper's variant naming scheme.

The paper names its seeded-tree variants like ``STJ1-2F``: flavour 1 or 2
(STJ1 = copy strategy C3 with update policy U3, STJ2 = C3 with U4), the
number of seed levels after the hyphen, and a trailing ``F``/``N`` for
seed-level filtering on/off. :class:`STJVariant` parses and renders those
names; :func:`spatial_join` accepts them directly, so experiment code can
say ``spatial_join(data, tree, ..., method="STJ2-3F")`` and get exactly
the paper's configuration.

Beyond the paper's three evaluated methods, the facade dispatches the
whole algorithm shelf through the execution engine: ``"NAIVE"`` (the
quadratic oracle), ``"ZJOIN"`` (the z-order merge join), and ``"2STJ"``
(the two-seeded-tree join of Section 5). These need the indexed side's
raw rectangles, not its R-tree; pass them as ``data_r`` (a
:class:`~repro.storage.DataFile`) or let the facade lift them out of
``tree_r`` — an oracle-style extraction that charges no read I/O, since
no real system would join through an index it is simultaneously
dismantling.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..config import SystemConfig
from ..errors import ExperimentError
from ..metrics import MetricsCollector, Phase
from ..metrics.tracing import JoinTrace
from ..rtree import RTree
from ..rtree.split import quadratic_split
from ..seeded import CopyStrategy, UpdatePolicy
from ..storage import BufferPool, DataFile, RecoveryPolicy
from ..zorder.zfile import ZFile
from .bfj import brute_force_join
from .engine import ExecutionContext, JoinPhase, JoinPipeline, ParallelExecutor
from .naive import naive_pipeline
from .result import JoinResult
from .rtj import rtree_join
from .stj import seeded_tree_join
from .two_seeded import two_seeded_phases
from .zjoin import zjoin_phases

_VARIANT_RE = re.compile(r"^STJ([12])-(\d+)([FN])$", re.IGNORECASE)

#: Flavour number -> (copy strategy, update policy), per Section 4.1.
_FLAVOURS = {
    1: (CopyStrategy.CENTER_AT_SLOTS, UpdatePolicy.ENCLOSE_DATA_ONLY),
    2: (CopyStrategy.CENTER_AT_SLOTS, UpdatePolicy.SLOT_WITH_SEED),
}


@dataclass(frozen=True)
class STJVariant:
    """One named STJ configuration, e.g. ``STJ1-2N`` or ``STJ2-3F``."""

    flavour: int
    seed_levels: int
    filtering: bool

    @classmethod
    def parse(cls, name: str) -> "STJVariant":
        match = _VARIANT_RE.match(name.strip())
        if not match:
            raise ExperimentError(
                f"not an STJ variant name: {name!r} (expected e.g. 'STJ1-2F')"
            )
        return cls(
            flavour=int(match.group(1)),
            seed_levels=int(match.group(2)),
            filtering=match.group(3).upper() == "F",
        )

    @property
    def name(self) -> str:
        return (
            f"STJ{self.flavour}-{self.seed_levels}"
            f"{'F' if self.filtering else 'N'}"
        )

    @property
    def copy_strategy(self) -> CopyStrategy:
        return _FLAVOURS[self.flavour][0]

    @property
    def update_policy(self) -> UpdatePolicy:
        return _FLAVOURS[self.flavour][1]


def _make_trace(
    trace: bool | JoinTrace,
    metrics: MetricsCollector,
    buffer: BufferPool | None,
) -> JoinTrace | None:
    if isinstance(trace, JoinTrace):
        return trace
    return JoinTrace(metrics, buffer) if trace else None


def _indexed_side_entries(tree_r: RTree, data_r: DataFile | None):
    """The raw (rect, oid) entries of the indexed side.

    A supplied ``data_r`` file is scanned through the accounted path;
    otherwise the entries are lifted out of ``tree_r`` uncharged.
    """
    if data_r is not None:
        return data_r
    return tree_r.all_objects()


def _naive_join(
    data_s: DataFile,
    tree_r: RTree,
    metrics: MetricsCollector,
    data_r: DataFile | None,
    trace: JoinTrace | None,
    sanitize: bool | None = None,
) -> JoinResult:
    ctx = ExecutionContext(
        data_s=data_s, metrics=metrics, tree_r=tree_r, trace=trace,
        options={"data_r": _indexed_side_entries(tree_r, data_r)},
        sanitize=sanitize,
    )
    return naive_pipeline("NAIVE").execute(ctx)


def _prepare_zfile_r(ctx: ExecutionContext) -> None:
    """Derive the indexed side's z-file at join time (charged)."""
    data_r = ctx.options.get("data_r")
    entries = (
        data_r.scan() if data_r is not None else ctx.tree_r.all_objects()
    )
    ctx.options["zfile_r"] = ZFile.build(
        ctx.buffer.disk, ctx.config, entries,
        max_elements=ctx.options["max_elements"], name="Z_R",
    )


def _zorder_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    data_r: DataFile | None,
    trace: JoinTrace | None,
    sanitize: bool | None = None,
    max_elements: int = 4,
) -> JoinResult:
    # The indexed side has an R-tree but no z-file, so a prepare phase
    # derives one at join time, charged to construction alongside Z_S.
    pipeline = JoinPipeline("ZJOIN", [
        JoinPhase("prepare", _prepare_zfile_r, metrics_phase=Phase.CONSTRUCT),
        *zjoin_phases(),
    ])
    ctx = ExecutionContext(
        data_s=data_s, metrics=metrics, tree_r=tree_r, buffer=buffer,
        config=config, trace=trace,
        options={"data_r": data_r, "max_elements": max_elements},
        sanitize=sanitize,
    )
    return pipeline.execute(ctx)


def _prepare_data_b(ctx: ExecutionContext) -> None:
    """Materialise the indexed side as a derived data file if needed.

    Section 5's scenario treats both inputs as index-less, so the write
    is join-time construction work.
    """
    if ctx.options.get("data_b") is None:
        ctx.options["data_b"] = DataFile.create(
            ctx.buffer.disk, ctx.config, ctx.tree_r.all_objects(),
            name="D_R(2stj)",
        )


def _two_seeded_from_facade(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    data_r: DataFile | None,
    trace: JoinTrace | None,
    sanitize: bool | None = None,
    *,
    seeds: str = "grid",
    grid_cells: int = 16,
    sample_size: int = 256,
    map_area=None,
    copy_strategy: CopyStrategy = CopyStrategy.CENTER_AT_SLOTS,
    update_policy: UpdatePolicy = UpdatePolicy.ENCLOSE_DATA_ONLY,
    use_linked_lists: bool | None = None,
    split=None,
    sample_seed: int = 0,
) -> JoinResult:
    pipeline = JoinPipeline("2STJ", [
        JoinPhase("prepare", _prepare_data_b, metrics_phase=Phase.CONSTRUCT),
        *two_seeded_phases(),
    ])
    ctx = ExecutionContext(
        data_s=data_s, metrics=metrics, tree_r=tree_r, buffer=buffer,
        config=config, trace=trace,
        options={
            "data_b": data_r,
            "seeds": seeds,
            "grid_cells": grid_cells,
            "sample_size": sample_size,
            "map_area": map_area,
            "copy_strategy": copy_strategy,
            "update_policy": update_policy,
            "use_linked_lists": use_linked_lists,
            "split": split if split is not None else quadratic_split,
            "sample_seed": sample_seed,
        },
        sanitize=sanitize,
    )
    return pipeline.execute(ctx)


def _canonical_parallel_method(
    upper: str, method_options: dict
) -> tuple[str, dict, str]:
    """Resolve a facade method name for per-partition dispatch.

    Returns ``(worker_method, worker_options, display_label)``. Paper
    variant names are lowered to plain STJ keyword arguments so workers
    can clamp seed levels against their (smaller) shard trees while the
    merged result still reports the variant name.
    """
    if upper in ("BFJ", "RTJ", "NAIVE", "ZJOIN", "2STJ"):
        return upper, dict(method_options), upper
    if upper == "STJ":
        return "STJ", dict(method_options), "STJ"
    variant = STJVariant.parse(upper)
    options = dict(
        copy_strategy=variant.copy_strategy,
        update_policy=variant.update_policy,
        seed_levels=variant.seed_levels,
        filtering=variant.filtering,
    )
    options.update(method_options)
    return "STJ", options, variant.name


def _parallel_join(
    upper: str,
    data_s: DataFile,
    tree_r: RTree,
    config: SystemConfig,
    metrics: MetricsCollector,
    workers: int,
    partitions: int | None,
    parallel_seed: int,
    recovery: RecoveryPolicy | None,
    join_trace: JoinTrace | None,
    data_r: DataFile | None,
    sanitize: bool | None,
    parallel_guard: bool | None,
    parallel_start_method: str | None,
    method_options: dict,
) -> JoinResult:
    worker_method, options, label = _canonical_parallel_method(
        upper, method_options
    )
    executor = ParallelExecutor(
        method=worker_method,
        config=config,
        workers=workers,
        partitions=partitions,
        options=options,
        seed=parallel_seed,
        label=label,
        start_method=parallel_start_method,
        guard=parallel_guard,
    )
    return executor.run(
        data_s, tree_r, metrics, trace=join_trace, data_r=data_r,
        recovery=recovery, sanitize=sanitize,
    )


def spatial_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    method: str = "STJ1-2N",
    recovery: RecoveryPolicy | None = None,
    trace: bool | JoinTrace = False,
    data_r: DataFile | None = None,
    workers: int | None = None,
    partitions: int | None = None,
    parallel_seed: int = 0,
    parallel_guard: bool | None = None,
    parallel_start_method: str | None = None,
    sanitize: bool | None = None,
    **method_options,
) -> JoinResult:
    """Join a derived data set with an R-tree-indexed one.

    ``method`` selects the algorithm: ``"BFJ"``, ``"RTJ"``, a paper
    variant name like ``"STJ1-2F"``, plain ``"STJ"`` (which uses the
    keyword arguments of :func:`~repro.join.stj.seeded_tree_join`), or
    one of the extended methods ``"NAIVE"``, ``"ZJOIN"``, ``"2STJ"``
    (which accept the keyword arguments of their drivers and use
    ``data_r`` — or rectangles lifted from ``tree_r`` — as the indexed
    side's raw data).

    ``recovery`` arms fault tolerance for the construction-based
    methods: checkpointed builds, bounded crash recovery, and (for STJ)
    graceful degradation to BFJ when construction fails irrecoverably —
    the downgrade is recorded on the returned result. BFJ builds nothing
    and ignores the policy. ``None`` (the default) runs the legacy
    non-recovering paths, byte-identical in cost.

    ``trace=True`` records a :class:`~repro.metrics.tracing.JoinTrace`
    span tree on the result (``result.trace``); tracing observes the
    metrics collector without perturbing any counter.

    ``workers``/``partitions`` switch to partition-parallel execution:
    the universe is tiled into ``partitions`` grid cells (default
    ``4 * workers``), both inputs are split into boundary-replicated
    shards, and per-tile joins run across a ``workers``-process pool
    (in-process when ``workers=1``), each in its own seeded disk/buffer
    substrate. Reference-point dedup makes the merged pair set exactly
    equal to a sequential run's, and the merged counters are exactly
    the sum of the per-partition counters (``result.partitions``).
    Available for every method; ``None`` (the default) is the
    single-substrate sequential path, byte-identical to before.
    ``parallel_seed`` feeds the stable per-partition seed derivation.

    Parallel runs default to the **persistent worker pool**
    (:mod:`repro.parallel`): inputs are published once into
    shared-memory columns and workers stay warm across joins on the
    same data — ``REPRO_POOL=0`` restores the legacy per-join pool.
    ``parallel_guard`` controls the planner guard, which predicts the
    elapsed speedup from a deterministic cost model and falls back to
    in-process execution when parallelism would lose (``None`` defers
    to ``REPRO_PARALLEL_GUARD``, default on); the decision lands on
    ``result.parallel_decision``. ``parallel_start_method`` pins the
    multiprocessing start method (default: ``REPRO_POOL_START_METHOD``,
    else fork where available, else the platform default).

    ``sanitize`` arms the runtime invariant sanitizer
    (:mod:`repro.analysis.sanitizer`): ``True`` forces it on, ``False``
    off, and ``None`` (the default) defers to the ``REPRO_SANITIZE``
    environment variable. All checks run through unaccounted paths, so
    the returned cost summary is bit-identical either way.
    """
    upper = method.strip().upper()
    join_trace = _make_trace(trace, metrics, buffer)
    if workers is not None or partitions is not None:
        return _parallel_join(
            upper, data_s, tree_r, config, metrics,
            workers if workers is not None else 1, partitions,
            parallel_seed, recovery, join_trace, data_r, sanitize,
            parallel_guard, parallel_start_method, method_options,
        )
    if upper == "BFJ":
        return brute_force_join(data_s, tree_r, metrics, trace=join_trace,
                                sanitize=sanitize)
    if upper == "RTJ":
        return rtree_join(data_s, tree_r, buffer, config, metrics,
                          recovery=recovery, trace=join_trace,
                          sanitize=sanitize)
    if upper == "NAIVE":
        return _naive_join(data_s, tree_r, metrics, data_r, join_trace,
                           sanitize=sanitize)
    if upper == "ZJOIN":
        return _zorder_join(data_s, tree_r, buffer, config, metrics,
                            data_r, join_trace, sanitize=sanitize,
                            **method_options)
    if upper == "2STJ":
        return _two_seeded_from_facade(
            data_s, tree_r, buffer, config, metrics, data_r, join_trace,
            sanitize=sanitize, **method_options,
        )
    if upper == "STJ":
        return seeded_tree_join(
            data_s, tree_r, buffer, config, metrics,
            recovery=recovery, trace=join_trace, sanitize=sanitize,
            **method_options,
        )
    variant = STJVariant.parse(upper)
    result = seeded_tree_join(
        data_s, tree_r, buffer, config, metrics,
        copy_strategy=variant.copy_strategy,
        update_policy=variant.update_policy,
        seed_levels=variant.seed_levels,
        filtering=variant.filtering,
        recovery=recovery,
        trace=join_trace,
        sanitize=sanitize,
        **method_options,
    )
    if not result.degraded:
        result.algorithm = variant.name
    else:
        result.fallback_from = variant.name
    return result
