"""RTJ — R-tree join with a join-time index (Section 4).

"Algorithm RTJ first constructs an R-tree ``T_S`` for ``D_S``, and then
matches ``T_S`` with ``T_R``" — i.e. Brinkhoff et al.'s join, adapted to
the situation where ``D_S`` has no index by paying for a straightforward
R-tree construction at join time. The paper's key negative finding is
that this construction thrashes the buffer once the tree outgrows it,
making RTJ lose even to BFJ on total I/O.

The pipeline has two phases: ``construct`` (the join-time build) and
``match`` (tree matching, with the buffer kept warm in between, so dirty
``T_S`` pages written back during matching appear in the match ``wr``
column exactly as in the paper's tables).

Under a :class:`~repro.storage.RecoveryPolicy` the engine runs the
construct phase through its checkpoint/resume loop: the build snapshots
itself periodically (see :mod:`repro.rtree.checkpoint`) and a simulated
crash resumes from the last snapshot within a bounded crash budget;
exhausting the budget raises :class:`~repro.errors.RecoveryError`. RTJ
declares no BFJ fallback of its own — callers wanting degradation use
STJ, whose seeded construction is the paper's subject. With
``recovery=None`` (the default) the legacy path runs, byte-identical in
cost.
"""

from __future__ import annotations

from typing import Any

from ..config import SystemConfig
from ..metrics import MetricsCollector, Phase
from ..metrics.tracing import JoinTrace
from ..rtree import RTree, RTreeCheckpointer, build_with_checkpoints
from ..rtree.split import SplitFunction, quadratic_split
from ..storage import BufferPool, DataFile, RecoveryPolicy
from .engine import ExecutionContext, JoinPhase, JoinPipeline
from .matching import match_trees
from .result import JoinResult

_TREE_NAME = "T_S(rtj)"


def _construct(ctx: ExecutionContext) -> None:
    ctx.state["index"] = RTree.build(
        ctx.buffer, ctx.config, ctx.data_s.scan(), metrics=ctx.metrics,
        split=ctx.options["split"], name=_TREE_NAME,
    )


def _construct_recoverable(
    ctx: ExecutionContext, checkpointer: Any, resume: Any
) -> None:
    ctx.state["index"] = build_with_checkpoints(
        ctx.buffer, ctx.config, ctx.data_s.scan(), ctx.metrics,
        checkpointer=checkpointer, resume=resume,
        split=ctx.options["split"], name=_TREE_NAME,
    )


def _make_checkpointer(ctx: ExecutionContext) -> RTreeCheckpointer:
    assert ctx.buffer is not None and ctx.recovery is not None
    return RTreeCheckpointer(
        ctx.buffer.disk, ctx.config, ctx.recovery.checkpoint_every
    )


def _load_resume(ctx: ExecutionContext, checkpointer: Any) -> Any:
    return checkpointer.load_latest(ctx.buffer, ctx.metrics, name=_TREE_NAME)


def _match(ctx: ExecutionContext) -> None:
    ctx.state["pairs"] = match_trees(
        ctx.state["index"], ctx.tree_r, ctx.metrics
    )


def rtj_pipeline() -> JoinPipeline:
    """Join-time R-tree build, then TM matching."""
    return JoinPipeline("RTJ", [
        JoinPhase(
            "construct", _construct, metrics_phase=Phase.CONSTRUCT,
            recoverable_body=_construct_recoverable,
            make_checkpointer=_make_checkpointer,
            load_resume=_load_resume,
            recovery_label="join-time R-tree construction",
        ),
        JoinPhase("match", _match, metrics_phase=Phase.MATCH),
    ])


def rtree_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    split: SplitFunction = quadratic_split,
    recovery: RecoveryPolicy | None = None,
    trace: JoinTrace | None = None,
    sanitize: bool | None = None,
) -> JoinResult:
    """Build an R-tree for ``data_s`` and TM-match it against ``tree_r``."""
    ctx = ExecutionContext(
        data_s=data_s, metrics=metrics, tree_r=tree_r, buffer=buffer,
        config=config, recovery=recovery, trace=trace,
        options={"split": split},
        sanitize=sanitize,
    )
    return rtj_pipeline().execute(ctx)
