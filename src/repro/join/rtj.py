"""RTJ — R-tree join with a join-time index (Section 4).

"Algorithm RTJ first constructs an R-tree ``T_S`` for ``D_S``, and then
matches ``T_S`` with ``T_R``" — i.e. Brinkhoff et al.'s join, adapted to
the situation where ``D_S`` has no index by paying for a straightforward
R-tree construction at join time. The paper's key negative finding is
that this construction thrashes the buffer once the tree outgrows it,
making RTJ lose even to BFJ on total I/O.

Construction is charged to the CONSTRUCT phase, matching to MATCH; the
buffer is *not* purged in between (warm cache), so dirty ``T_S`` pages
written back during matching appear in the match ``wr`` column exactly as
in the paper's tables.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..metrics import MetricsCollector, Phase
from ..rtree import RTree
from ..rtree.split import SplitFunction, quadratic_split
from ..storage import BufferPool, DataFile
from .matching import match_trees
from .result import JoinResult


def rtree_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    split: SplitFunction = quadratic_split,
) -> JoinResult:
    """Build an R-tree for ``data_s`` and TM-match it against ``tree_r``."""
    with metrics.phase(Phase.CONSTRUCT):
        tree_s = RTree.build(
            buffer, config, data_s.scan(), metrics=metrics, split=split,
            name="T_S(rtj)",
        )
    with metrics.phase(Phase.MATCH):
        pairs = match_trees(tree_s, tree_r, metrics)
    return JoinResult(pairs=pairs, index=tree_s, algorithm="RTJ")
