"""RTJ — R-tree join with a join-time index (Section 4).

"Algorithm RTJ first constructs an R-tree ``T_S`` for ``D_S``, and then
matches ``T_S`` with ``T_R``" — i.e. Brinkhoff et al.'s join, adapted to
the situation where ``D_S`` has no index by paying for a straightforward
R-tree construction at join time. The paper's key negative finding is
that this construction thrashes the buffer once the tree outgrows it,
making RTJ lose even to BFJ on total I/O.

Construction is charged to the CONSTRUCT phase, matching to MATCH; the
buffer is *not* purged in between (warm cache), so dirty ``T_S`` pages
written back during matching appear in the match ``wr`` column exactly as
in the paper's tables.

Under a :class:`~repro.storage.RecoveryPolicy` construction snapshots
itself periodically (see :mod:`repro.rtree.checkpoint`) and a simulated
crash resumes from the last snapshot within a bounded crash budget;
exhausting the budget raises :class:`~repro.errors.RecoveryError`. RTJ
has no BFJ fallback of its own — callers wanting degradation use STJ,
whose seeded construction is the paper's subject. With ``recovery=None``
(the default) the legacy path runs, byte-identical in cost.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..errors import RecoveryError, SimulatedCrashError
from ..metrics import MetricsCollector, Phase
from ..rtree import RTree, RTreeCheckpointer, build_with_checkpoints
from ..rtree.split import SplitFunction, quadratic_split
from ..storage import BufferPool, DataFile, RecoveryPolicy
from .matching import match_trees
from .result import JoinResult


def rtree_join(
    data_s: DataFile,
    tree_r: RTree,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    split: SplitFunction = quadratic_split,
    recovery: RecoveryPolicy | None = None,
) -> JoinResult:
    """Build an R-tree for ``data_s`` and TM-match it against ``tree_r``."""
    with metrics.phase(Phase.CONSTRUCT):
        if recovery is None:
            tree_s = RTree.build(
                buffer, config, data_s.scan(), metrics=metrics, split=split,
                name="T_S(rtj)",
            )
        else:
            tree_s = _build_with_recovery(
                data_s, buffer, config, metrics, split, recovery
            )
    with metrics.phase(Phase.MATCH):
        pairs = match_trees(tree_s, tree_r, metrics)
    return JoinResult(pairs=pairs, index=tree_s, algorithm="RTJ")


def _build_with_recovery(
    data_s: DataFile,
    buffer: BufferPool,
    config: SystemConfig,
    metrics: MetricsCollector,
    split: SplitFunction,
    recovery: RecoveryPolicy,
) -> RTree:
    """Checkpointed build surviving crashes within the crash budget.

    Each crash discards the buffer, reloads the latest durable snapshot
    (a charged sequential read), and re-scans the input — skipping the
    prefix the snapshot already absorbed. Non-crash storage errors
    (corruption, exhausted retries) propagate untouched.
    """
    checkpointer = (
        RTreeCheckpointer(buffer.disk, config, recovery.checkpoint_every)
        if recovery.checkpoint_every else None
    )
    resume = None
    attempts = recovery.max_crash_recoveries + 1
    for attempt in range(attempts):
        try:
            return build_with_checkpoints(
                buffer, config, data_s.scan(), metrics,
                checkpointer=checkpointer, resume=resume, split=split,
                name="T_S(rtj)",
            )
        except SimulatedCrashError as crash:
            buffer.crash_discard()
            buffer.disk.reset_arm()
            if attempt == attempts - 1:
                raise RecoveryError(
                    f"join-time R-tree construction crashed {attempts} "
                    f"times; crash budget "
                    f"({recovery.max_crash_recoveries} recoveries) "
                    f"exhausted"
                ) from crash
            metrics.record_crash_recovery()
            resume = (
                checkpointer.load_latest(buffer, metrics, name="T_S(rtj)")
                if checkpointer is not None else None
            )
    raise AssertionError("unreachable")  # pragma: no cover
