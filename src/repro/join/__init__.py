"""Spatial-join algorithms.

The three algorithms of the paper's evaluation (Section 4):

* :func:`~repro.join.stj.seeded_tree_join` (**STJ**) — build a seeded
  tree for the un-indexed data set, then match it against the existing
  R-tree with TM;
* :func:`~repro.join.rtj.rtree_join` (**RTJ**) — build an ordinary R-tree
  at join time, then match with TM;
* :func:`~repro.join.bfj.brute_force_join` (**BFJ**) — one window query
  against the existing R-tree per input rectangle.

Plus the tree-matching component TM itself
(:func:`~repro.join.matching.match_trees`, after [BKS93]), a quadratic
reference join used as a testing oracle
(:func:`~repro.join.naive.naive_join`), the two-seeded-tree extension of
Section 5 (:func:`~repro.join.two_seeded.two_seeded_join`), and the
:func:`~repro.join.api.spatial_join` facade.

Every algorithm — the paper's three, the oracle, the z-order merge join
and the two-seeded join — executes as a
:class:`~repro.join.engine.JoinPipeline` of named phases run by the
:mod:`~repro.join.engine` executor, which owns cost-phase transitions,
crash recovery, BFJ degradation and structured tracing.
"""

from .engine import ExecutionContext, JoinPhase, JoinPipeline
from .matching import match_trees
from .bfs_matching import match_trees_bfs
from .naive import naive_join
from .result import JoinResult
from .bfj import brute_force_join
from .rtj import rtree_join
from .stj import seeded_tree_join
from .two_seeded import two_seeded_join
from .zjoin import z_order_join
from .api import spatial_join, STJVariant
from .planner import JoinPlan, plan_join, plan_spatial_join

__all__ = [
    "match_trees",
    "match_trees_bfs",
    "naive_join",
    "JoinResult",
    "brute_force_join",
    "rtree_join",
    "seeded_tree_join",
    "two_seeded_join",
    "z_order_join",
    "spatial_join",
    "STJVariant",
    "JoinPlan",
    "plan_join",
    "plan_spatial_join",
]
