"""Quadratic reference join — the correctness oracle.

Not one of the paper's algorithms; it exists so every other join can be
checked against an implementation too simple to be wrong. No I/O or CPU
accounting is attached.
"""

from __future__ import annotations

from typing import Iterable

from ..geometry import Rect
from .result import JoinResult


def naive_join(
    data_s: Iterable[tuple[Rect, int]],
    data_r: Iterable[tuple[Rect, int]],
) -> JoinResult:
    """All (oid_s, oid_r) pairs with overlapping rectangles, by brute force."""
    list_r = list(data_r)
    pairs = []
    for rect_s, oid_s in data_s:
        for rect_r, oid_r in list_r:
            if rect_s.intersects(rect_r):
                pairs.append((oid_s, oid_r))
    return JoinResult(pairs=pairs, index=None, algorithm="naive")
