"""Quadratic reference join — the correctness oracle.

Not one of the paper's algorithms; it exists so every other join can be
checked against an implementation too simple to be wrong. It still runs
through the :class:`~repro.join.engine.JoinPipeline` (a single ``match``
phase) so the facade can dispatch it and traces can cover it, but no CPU
test accounting is attached: oracle comparisons must stay free of the
cost model they are checking. When the inputs are plain in-memory
iterables no I/O is charged either; a :class:`~repro.storage.DataFile`
input is scanned through the accounted path like any other join.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..geometry import Rect
from ..kernels import RectArray, intersect_indices, kernels_enabled
from ..metrics import MetricsCollector, Phase
from .engine import ExecutionContext, JoinPhase, JoinPipeline
from .result import JoinResult


def _entries(source: Any) -> Iterable[tuple[Rect, int]]:
    """Entries of either a DataFile-like object or a plain iterable."""
    scan = getattr(source, "scan", None)
    return scan() if callable(scan) else source


def _match(ctx: ExecutionContext) -> None:
    list_r = list(_entries(ctx.options["data_r"]))
    pairs = []
    if kernels_enabled() and list_r:
        # Block-intersect through the RectArray columns: one vectorized
        # pass over the whole inner set per outer rectangle, emitting
        # hits in the same row-major order as the scalar loop. No CPU
        # accounting either way — the oracle stays outside the cost
        # model it checks.
        arr = RectArray.from_rects([rect for rect, _ in list_r])
        oids_r = [oid for _, oid in list_r]
        append = pairs.append
        for rect_s, oid_s in _entries(ctx.data_s):
            for i in intersect_indices(arr, rect_s):
                append((oid_s, oids_r[i]))
    else:
        for rect_s, oid_s in _entries(ctx.data_s):
            for rect_r, oid_r in list_r:
                if rect_s.intersects(rect_r):
                    pairs.append((oid_s, oid_r))
    ctx.state["pairs"] = pairs


def naive_pipeline(algorithm: str = "naive") -> JoinPipeline:
    """All-pairs rectangle test; ``ctx.options['data_r']`` is the inner set."""
    return JoinPipeline(algorithm, [
        JoinPhase("match", _match, metrics_phase=Phase.MATCH),
    ])


def naive_join(
    data_s: Iterable[tuple[Rect, int]],
    data_r: Iterable[tuple[Rect, int]],
    metrics: MetricsCollector | None = None,
) -> JoinResult:
    """All (oid_s, oid_r) pairs with overlapping rectangles, by brute force."""
    ctx = ExecutionContext(
        data_s=data_s,
        metrics=metrics if metrics is not None else MetricsCollector(),
        options={"data_r": data_r},
    )
    return naive_pipeline().execute(ctx)
