"""The common result record of all join algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: One join answer: (oid from the derived data set D_S, oid from D_R).
JoinPair = tuple[int, int]


@dataclass(frozen=True)
class ParallelDecision:
    """How the parallel planner resolved a ``workers=N`` request.

    ``predicted_speedup`` is the planner guard's deterministic
    entry-unit estimate of elapsed speedup versus a sequential run
    (``None`` when the guard never modelled the join — single worker,
    single tile, or empty input). When the prediction lands below 1.0
    the guard falls back to in-process execution: ``effective_workers``
    drops to 1 while ``requested_workers`` keeps the caller's ask, and
    ``reason`` says why. ``pooled`` records whether the persistent
    worker pool actually ran the join (as opposed to the legacy
    per-join pool or the in-process path).
    """

    requested_workers: int
    effective_workers: int
    partitions: int
    pooled: bool
    predicted_speedup: float | None
    reason: str


@dataclass
class JoinResult:
    """What a join algorithm hands back.

    ``pairs`` always orients answers as (D_S object id, D_R object id) so
    results from different algorithms compare directly. ``index`` is the
    join-time structure an algorithm built (a seeded tree or R-tree),
    retained because Section 5 notes it can serve later selections; BFJ
    builds nothing and leaves it ``None``.

    ``degraded`` records graceful degradation under fault injection: the
    requested algorithm's construction failed irrecoverably and the join
    was answered by brute force instead. ``fallback_from`` names the
    algorithm that was abandoned and ``degraded_reason`` carries the
    storage error that forced the downgrade. The *answers* of a degraded
    result are still exact — only the cost profile changed.

    ``trace`` is the :class:`~repro.metrics.tracing.JoinTrace` span tree
    the engine recorded, when tracing was requested (``None`` otherwise):
    per-phase wall time, I/O deltas, buffer hit rates and fault counters,
    exportable as Chrome trace-event JSON via ``trace.to_chrome_trace()``.

    ``phase_walls`` maps each engine phase name to its wall-clock
    seconds, recorded unconditionally (a dict read costs nothing, and
    unlike ``trace`` it never changes which execution path runs).
    Accumulated, not overwritten: a degraded run keeps the abandoned
    construction attempt's time alongside the fallback's phases.

    ``partitions`` is filled by partition-parallel runs only: one
    :class:`~repro.partition.PartitionStats` per executed tile, carrying
    that tile's pair counts and its full counter snapshot. The merged
    collector totals equal the sum of these snapshots exactly —
    :func:`repro.partition.summed_summary` recomputes the right-hand
    side of that equality.

    ``parallel_decision`` is likewise parallel-only: the
    :class:`ParallelDecision` recording what the planner guard
    predicted and which execution mode (pooled, legacy pool, or
    in-process fallback) actually ran.
    """

    pairs: list[JoinPair] = field(default_factory=list)
    index: Any | None = None
    algorithm: str = ""
    degraded: bool = False
    fallback_from: str = ""
    degraded_reason: str = ""
    trace: Any | None = None
    phase_walls: dict[str, float] = field(default_factory=dict)
    partitions: list[Any] | None = None
    parallel_decision: ParallelDecision | None = None

    def __len__(self) -> int:
        return len(self.pairs)

    def pair_set(self) -> set[JoinPair]:
        """Deduplicated answers, for comparisons between algorithms."""
        return set(self.pairs)

    def __repr__(self) -> str:
        return f"JoinResult({self.algorithm or 'join'}: {len(self.pairs)} pairs)"
