"""Struct-of-arrays rectangle storage.

A :class:`RectArray` holds ``n`` rectangles as four parallel coordinate
columns (``xlo``, ``ylo``, ``xhi``, ``yhi``) instead of ``n`` boxed
:class:`~repro.geometry.rect.Rect` objects. Columns are
``numpy.float64`` arrays on the numpy backend and plain Python lists of
floats on the pure-Python fallback; both store exactly the IEEE-754
doubles of the source rectangles, so kernels that only compare or
min/max the columns reproduce the scalar results bit for bit.

Small arrays stay on list columns even when numpy is available: below
:data:`NUMPY_MIN_N` rectangles the fixed per-call overhead of a numpy
kernel exceeds the whole scalar scan (an R-tree node at the paper's
page sizes holds a few dozen entries), while the list-column loops in
:mod:`repro.kernels.batch` still beat the scalar path by skipping the
per-entry attribute and method dispatch. The heuristic applies only to
the default backend: an explicit ``backend=`` argument or a pinned
``REPRO_KERNELS_BACKEND`` always gets the representation it asked for,
which is what the perf harness uses to benchmark both representations
in a single process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..errors import GeometryError
from ..geometry.rect import Rect
from .backend import BACKEND, FORCED_BACKEND, np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..rtree.node import Entry

#: Below this many rectangles the default backend keeps list columns:
#: numpy's per-call overhead (~µs) outweighs a sub-hundred-element scan.
NUMPY_MIN_N = 64


def _use_numpy(backend: str | None) -> bool:
    choice = BACKEND if backend is None else backend
    if choice == "numpy":
        if np is None:
            raise GeometryError("numpy backend requested but numpy is unavailable")
        return True
    if choice == "python":
        return False
    raise GeometryError(f"unknown RectArray backend: {choice!r}")


def _pick_numpy(backend: str | None, n: int) -> bool:
    """Backend decision for ``n`` rectangles.

    Explicit requests are honoured verbatim; the default backend takes
    numpy only for arrays big enough to amortise the per-call overhead
    (always, when ``REPRO_KERNELS_BACKEND`` pinned it).
    """
    if backend is None and np is not None:
        return FORCED_BACKEND or n >= NUMPY_MIN_N
    return _use_numpy(backend)


class RectArray:
    """``n`` rectangles as four parallel coordinate columns."""

    __slots__ = ("n", "xlo", "ylo", "xhi", "yhi", "is_numpy", "_all_points")

    def __init__(
        self,
        xlo: Any,
        ylo: Any,
        xhi: Any,
        yhi: Any,
        *,
        is_numpy: bool,
    ) -> None:
        self.xlo = xlo
        self.ylo = ylo
        self.xhi = xhi
        self.yhi = yhi
        self.n = len(xlo)
        self.is_numpy = is_numpy
        # Lazily computed by kernels.all_points(); the columns are
        # immutable, so the answer can never go stale.
        self._all_points: bool | None = None

    # ----------------------------------------------------------------- #
    # Constructors
    # ----------------------------------------------------------------- #

    @classmethod
    def from_rects(
        cls, rects: Iterable[Rect], backend: str | None = None
    ) -> "RectArray":
        """Columns of the given rectangles, in iteration order."""
        seq = rects if isinstance(rects, (list, tuple)) else list(rects)
        xlo = [r.xlo for r in seq]
        ylo = [r.ylo for r in seq]
        xhi = [r.xhi for r in seq]
        yhi = [r.yhi for r in seq]
        return cls._from_columns(xlo, ylo, xhi, yhi, backend)

    @classmethod
    def from_entries(
        cls, entries: "Sequence[Entry]", backend: str | None = None
    ) -> "RectArray":
        """Columns of the entries' MBRs, in entry order."""
        xlo = [e.mbr.xlo for e in entries]
        ylo = [e.mbr.ylo for e in entries]
        xhi = [e.mbr.xhi for e in entries]
        yhi = [e.mbr.yhi for e in entries]
        return cls._from_columns(xlo, ylo, xhi, yhi, backend)

    @classmethod
    def from_coords(
        cls,
        xlo: Sequence[float],
        ylo: Sequence[float],
        xhi: Sequence[float],
        yhi: Sequence[float],
        backend: str | None = None,
    ) -> "RectArray":
        """Columns from pre-extracted coordinate sequences (copied)."""
        return cls._from_columns(
            list(xlo), list(ylo), list(xhi), list(yhi), backend
        )

    @classmethod
    def _from_columns(
        cls,
        xlo: list,
        ylo: list,
        xhi: list,
        yhi: list,
        backend: str | None,
    ) -> "RectArray":
        if _pick_numpy(backend, len(xlo)):
            return cls(
                np.asarray(xlo, dtype=np.float64),
                np.asarray(ylo, dtype=np.float64),
                np.asarray(xhi, dtype=np.float64),
                np.asarray(yhi, dtype=np.float64),
                is_numpy=True,
            )
        return cls(xlo, ylo, xhi, yhi, is_numpy=False)

    # ----------------------------------------------------------------- #
    # Access
    # ----------------------------------------------------------------- #

    def __len__(self) -> int:
        return self.n

    def rect_at(self, i: int) -> Rect:
        """The ``i``-th rectangle re-boxed as a scalar :class:`Rect`."""
        return Rect(
            float(self.xlo[i]), float(self.ylo[i]),
            float(self.xhi[i]), float(self.yhi[i]),
        )

    def take(self, indices: Any) -> "RectArray":
        """The sub-array at ``indices`` (kept in the given order)."""
        if self.is_numpy:
            return RectArray(
                self.xlo[indices], self.ylo[indices],
                self.xhi[indices], self.yhi[indices],
                is_numpy=True,
            )
        xlo, ylo, xhi, yhi = self.xlo, self.ylo, self.xhi, self.yhi
        return RectArray(
            [xlo[i] for i in indices],
            [ylo[i] for i in indices],
            [xhi[i] for i in indices],
            [yhi[i] for i in indices],
            is_numpy=False,
        )

    def matches_entries(self, entries: "Sequence[Entry]") -> bool:
        """Exact coordinate equality against the entries' MBRs.

        Used by the runtime sanitizer to cross-check a node's cached
        columns against its live entry list; exact (not approximate)
        comparison is intentional — a cache is either a perfect copy or
        stale.
        """
        if self.n != len(entries):
            return False
        xlo, ylo, xhi, yhi = self.xlo, self.ylo, self.xhi, self.yhi
        for i, entry in enumerate(entries):
            mbr = entry.mbr
            if (
                xlo[i] != mbr.xlo
                or ylo[i] != mbr.ylo
                or xhi[i] != mbr.xhi
                or yhi[i] != mbr.yhi
            ):
                return False
        return True

    def __repr__(self) -> str:
        backend = "numpy" if self.is_numpy else "python"
        return f"RectArray(n={self.n}, backend={backend})"
