"""Struct-of-arrays rectangle storage: owning buffers and views.

A :class:`RectArray` holds ``n`` rectangles as four parallel coordinate
columns (``xlo``, ``ylo``, ``xhi``, ``yhi``) instead of ``n`` boxed
:class:`~repro.geometry.rect.Rect` objects. Columns are
``numpy.float64`` arrays on the numpy backend and plain Python lists of
floats on the pure-Python fallback; both store exactly the IEEE-754
doubles of the source rectangles, so kernels that only compare or
min/max the columns reproduce the scalar results bit for bit.

Ownership is split from access. A :class:`RectArray` is a *view*: it
never allocates cross-process resources and never needs explicit
teardown. The storage behind a view is an *owning buffer handle*:

* :class:`LocalRectBuffer` — plain in-process columns (the implicit
  owner of every ``RectArray`` built by the classmethod constructors;
  reified only when code needs to talk about ownership explicitly);
* :class:`SharedRectBuffer` — one ``multiprocessing.shared_memory``
  segment holding all four columns, with an explicit
  create/attach/close/unlink lifecycle and leak-proof finalization.

:class:`SharedRectArray` is the view over a shared buffer. The process
that *creates* the segment owns it (it alone may ``unlink``); any other
process *attaches* by :class:`SharedRectDescriptor` — a tiny picklable
token — and gets read-only columns: numpy views with the writable flag
cleared when numpy is importable, read-only ``memoryview`` casts
otherwise. Attached columns raising on assignment is the runtime twin
of lint rule RPR008 (workers treat shared columns as immutable).

Small arrays stay on list columns even when numpy is available: below
:data:`NUMPY_MIN_N` rectangles the fixed per-call overhead of a numpy
kernel exceeds the whole scalar scan (an R-tree node at the paper's
page sizes holds a few dozen entries), while the list-column loops in
:mod:`repro.kernels.batch` still beat the scalar path by skipping the
per-entry attribute and method dispatch. The heuristic applies only to
the default backend: an explicit ``backend=`` argument or a pinned
``REPRO_KERNELS_BACKEND`` always gets the representation it asked for,
which is what the perf harness uses to benchmark both representations
in a single process.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..errors import GeometryError
from ..geometry.rect import Rect
from .backend import BACKEND, FORCED_BACKEND, np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..rtree.node import Entry

#: Below this many rectangles the default backend keeps list columns:
#: numpy's per-call overhead (~µs) outweighs a sub-hundred-element scan.
NUMPY_MIN_N = 64


def _use_numpy(backend: str | None) -> bool:
    choice = BACKEND if backend is None else backend
    if choice == "numpy":
        if np is None:
            raise GeometryError("numpy backend requested but numpy is unavailable")
        return True
    if choice == "python":
        return False
    raise GeometryError(f"unknown RectArray backend: {choice!r}")


def _pick_numpy(backend: str | None, n: int) -> bool:
    """Backend decision for ``n`` rectangles.

    Explicit requests are honoured verbatim; the default backend takes
    numpy only for arrays big enough to amortise the per-call overhead
    (always, when ``REPRO_KERNELS_BACKEND`` pinned it).
    """
    if backend is None and np is not None:
        return FORCED_BACKEND or n >= NUMPY_MIN_N
    return _use_numpy(backend)


class RectArray:
    """``n`` rectangles as four parallel coordinate columns."""

    __slots__ = (
        "n", "xlo", "ylo", "xhi", "yhi", "is_numpy", "_all_points", "_areas",
    )

    def __init__(
        self,
        xlo: Any,
        ylo: Any,
        xhi: Any,
        yhi: Any,
        *,
        is_numpy: bool,
    ) -> None:
        self.xlo = xlo
        self.ylo = ylo
        self.xhi = xhi
        self.yhi = yhi
        self.n = len(xlo)
        self.is_numpy = is_numpy
        # Lazily computed by kernels.all_points(); the only column
        # mutation is patch_row(), which refreshes this memo itself.
        self._all_points: bool | None = None
        # Lazily computed by areas(); patch_row() keeps it fresh.
        self._areas: list | None = None

    # ----------------------------------------------------------------- #
    # Constructors
    # ----------------------------------------------------------------- #

    @classmethod
    def from_rects(
        cls, rects: Iterable[Rect], backend: str | None = None
    ) -> "RectArray":
        """Columns of the given rectangles, in iteration order."""
        seq = rects if isinstance(rects, (list, tuple)) else list(rects)
        xlo = [r.xlo for r in seq]
        ylo = [r.ylo for r in seq]
        xhi = [r.xhi for r in seq]
        yhi = [r.yhi for r in seq]
        return cls._from_columns(xlo, ylo, xhi, yhi, backend)

    @classmethod
    def from_entries(
        cls, entries: "Sequence[Entry]", backend: str | None = None
    ) -> "RectArray":
        """Columns of the entries' MBRs, in entry order."""
        xlo = [e.mbr.xlo for e in entries]
        ylo = [e.mbr.ylo for e in entries]
        xhi = [e.mbr.xhi for e in entries]
        yhi = [e.mbr.yhi for e in entries]
        return cls._from_columns(xlo, ylo, xhi, yhi, backend)

    @classmethod
    def from_coords(
        cls,
        xlo: Sequence[float],
        ylo: Sequence[float],
        xhi: Sequence[float],
        yhi: Sequence[float],
        backend: str | None = None,
    ) -> "RectArray":
        """Columns from pre-extracted coordinate sequences (copied)."""
        return cls._from_columns(
            list(xlo), list(ylo), list(xhi), list(yhi), backend
        )

    @classmethod
    def _from_columns(
        cls,
        xlo: list,
        ylo: list,
        xhi: list,
        yhi: list,
        backend: str | None,
    ) -> "RectArray":
        if _pick_numpy(backend, len(xlo)):
            return cls(
                np.asarray(xlo, dtype=np.float64),
                np.asarray(ylo, dtype=np.float64),
                np.asarray(xhi, dtype=np.float64),
                np.asarray(yhi, dtype=np.float64),
                is_numpy=True,
            )
        return cls(xlo, ylo, xhi, yhi, is_numpy=False)

    # ----------------------------------------------------------------- #
    # Access
    # ----------------------------------------------------------------- #

    def __len__(self) -> int:
        return self.n

    def rect_at(self, i: int) -> Rect:
        """The ``i``-th rectangle re-boxed as a scalar :class:`Rect`."""
        return Rect(
            float(self.xlo[i]), float(self.ylo[i]),
            float(self.xhi[i]), float(self.yhi[i]),
        )

    def patch_row(self, i: int, rect: Rect) -> None:
        """Overwrite row ``i`` with ``rect``'s coordinates, in place.

        The one sanctioned column mutation (RPR008 confines it to this
        module): the r-tree's seed-descent update policies replace one
        entry MBR per visited node, and rebuilding a node's whole column
        cache per descent would defeat the cache. Attached shared
        columns are read-only views, so calling this on an attachment
        raises rather than racing the owning process.
        """
        self.xlo[i] = rect.xlo
        self.ylo[i] = rect.ylo
        self.xhi[i] = rect.xhi
        self.yhi[i] = rect.yhi
        # A non-point row settles the all-points memo without a rescan;
        # a point row leaves it unknown (another row may still be a
        # rectangle).
        self._all_points = None if rect.is_point() else False
        if self._areas is not None:
            self._areas[i] = (rect.xhi - rect.xlo) * (rect.yhi - rect.ylo)

    def areas(self) -> list:
        """Per-row areas as a plain list, memoised on the array.

        The insertion path evaluates every row's area on each
        least-enlargement scan of the same node columns; with
        :meth:`patch_row` refreshing the one changed row, the memo
        stays valid for the lifetime of the columns.
        """
        cached = self._areas
        if cached is None:
            xlo, ylo, xhi, yhi = self.xlo, self.ylo, self.xhi, self.yhi
            if self.is_numpy:
                cached = ((xhi - xlo) * (yhi - ylo)).tolist()
            else:
                cached = [
                    (x1 - x0) * (y1 - y0)
                    for x0, y0, x1, y1 in zip(xlo, ylo, xhi, yhi)
                ]
            self._areas = cached
        return cached

    def take(self, indices: Any) -> "RectArray":
        """The sub-array at ``indices`` (kept in the given order)."""
        if self.is_numpy:
            return RectArray(
                self.xlo[indices], self.ylo[indices],
                self.xhi[indices], self.yhi[indices],
                is_numpy=True,
            )
        xlo, ylo, xhi, yhi = self.xlo, self.ylo, self.xhi, self.yhi
        return RectArray(
            [xlo[i] for i in indices],
            [ylo[i] for i in indices],
            [xhi[i] for i in indices],
            [yhi[i] for i in indices],
            is_numpy=False,
        )

    def matches_entries(self, entries: "Sequence[Entry]") -> bool:
        """Exact coordinate equality against the entries' MBRs.

        Used by the runtime sanitizer to cross-check a node's cached
        columns against its live entry list; exact (not approximate)
        comparison is intentional — a cache is either a perfect copy or
        stale.
        """
        if self.n != len(entries):
            return False
        xlo, ylo, xhi, yhi = self.xlo, self.ylo, self.xhi, self.yhi
        for i, entry in enumerate(entries):
            mbr = entry.mbr
            if (
                xlo[i] != mbr.xlo
                or ylo[i] != mbr.ylo
                or xhi[i] != mbr.xhi
                or yhi[i] != mbr.yhi
            ):
                return False
        return True

    def __repr__(self) -> str:
        backend = "numpy" if self.is_numpy else "python"
        return f"RectArray(n={self.n}, backend={backend})"


# --------------------------------------------------------------------- #
# Owning buffers
# --------------------------------------------------------------------- #


class LocalRectBuffer:
    """The trivial owner: four in-process column objects.

    A plain :class:`RectArray` *is* its own storage; this handle exists
    so code that passes "the thing that owns the columns" around can do
    it uniformly for local and shared arrays. ``close``/``unlink`` are
    no-ops — process exit reclaims everything.
    """

    __slots__ = ("xlo", "ylo", "xhi", "yhi", "n", "is_numpy")

    def __init__(self, xlo: Any, ylo: Any, xhi: Any, yhi: Any,
                 *, is_numpy: bool) -> None:
        self.xlo, self.ylo, self.xhi, self.yhi = xlo, ylo, xhi, yhi
        self.n = len(xlo)
        self.is_numpy = is_numpy

    def columns(self) -> tuple[Any, Any, Any, Any]:
        return self.xlo, self.ylo, self.xhi, self.yhi

    def close(self) -> None:  # noqa: D102 - lifecycle no-op
        pass

    def unlink(self) -> None:  # noqa: D102 - lifecycle no-op
        pass


@dataclass(frozen=True)
class SharedRectDescriptor:
    """A picklable token naming one shared column segment.

    ``name`` is the OS-level shared-memory name (``None`` for the empty
    array, which allocates no segment at all — POSIX forbids zero-sized
    segments and an empty view needs no storage anyway). ``n`` is the
    rectangle count; the segment holds exactly ``4 * n`` float64 values,
    column-major (all of ``xlo``, then ``ylo``, ``xhi``, ``yhi``).
    """

    name: str | None
    n: int


def _attach_untracked(name: str) -> Any:
    """Open an existing segment without registering it for cleanup.

    On POSIX, ``SharedMemory.__init__`` registers the segment with the
    ``multiprocessing`` resource tracker even when merely attaching
    (fixed only in 3.13's ``track=False``). Left registered, every
    attaching process's tracker believes it owns the segment and unlinks
    it at exit — destroying it under the real owner and spewing
    "leaked shared_memory objects" warnings. Registration cannot simply
    be undone afterwards either: forked workers share the parent's
    tracker, whose cache is a set, so an attacher's ``unregister`` would
    erase the *owner's* entry. Suppressing registration during the
    attach sidesteps both failure modes — the creator stays registered
    (a crashed owner still gets cleaned up by its tracker), attachers
    never appear in any tracker at all.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def _register(rname: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - not hit here
            original(rname, rtype)

    resource_tracker.register = _register
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedRectBuffer:
    """Owning handle of one shared-memory segment of four columns.

    Lifecycle (who calls what):

    * the **owner** process calls :meth:`create`, hands the
      :attr:`descriptor` to other processes, and eventually calls
      :meth:`unlink` (destroying the segment) — usually after
      :meth:`close`;
    * an **attacher** calls :meth:`attach` and later :meth:`close`;
      it must never ``unlink``.

    Finalization is leak-proof: a garbage-collected handle closes its
    mapping, and a garbage-collected *owner* additionally unlinks the
    segment, so even an abandoned buffer cannot leak past the owning
    process's lifetime (``weakref.finalize`` runs at interpreter
    shutdown too).
    """

    __slots__ = ("name", "n", "is_numpy", "owner", "_shm", "_base_mv",
                 "_columns", "_finalizer", "__weakref__")

    def __init__(self, shm: Any, n: int, *, is_numpy: bool, owner: bool,
                 readonly: bool) -> None:
        self._shm = shm
        self.name: str | None = shm.name if shm is not None else None
        self.n = n
        self.is_numpy = is_numpy
        self.owner = owner
        self._base_mv: Any = None
        self._columns = self._make_columns(readonly)
        if shm is not None:
            self._finalizer = weakref.finalize(
                self, SharedRectBuffer._finalize, shm, owner,
            )
        else:
            self._finalizer = None

    # -- construction -------------------------------------------------- #

    @classmethod
    def create(
        cls,
        xlo: Sequence[float],
        ylo: Sequence[float],
        xhi: Sequence[float],
        yhi: Sequence[float],
        backend: str | None = None,
    ) -> "SharedRectBuffer":
        """Allocate a segment and copy the four columns into it."""
        n = len(xlo)
        if not (len(ylo) == len(xhi) == len(yhi) == n):
            raise GeometryError("column lengths differ")
        is_numpy = _pick_numpy(backend, n)
        if n == 0:
            return cls(None, 0, is_numpy=is_numpy, owner=True,
                       readonly=False)
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=4 * n * 8)
        mv = memoryview(shm.buf).cast("d")
        try:
            for c, col in enumerate((xlo, ylo, xhi, yhi)):
                base = c * n
                if np is not None and isinstance(col, np.ndarray):
                    mv[base:base + n] = memoryview(
                        np.ascontiguousarray(col, dtype=np.float64).tobytes()
                    ).cast("d")
                else:
                    for i, v in enumerate(col):
                        mv[base + i] = v
        finally:
            mv.release()
        return cls(shm, n, is_numpy=is_numpy, owner=True, readonly=True)

    @classmethod
    def attach(
        cls, descriptor: SharedRectDescriptor, backend: str | None = None
    ) -> "SharedRectBuffer":
        """Map an existing segment read-only; never takes ownership."""
        is_numpy = _pick_numpy(backend, descriptor.n)
        if descriptor.name is None or descriptor.n == 0:
            return cls(None, 0, is_numpy=is_numpy, owner=False,
                       readonly=True)
        shm = _attach_untracked(descriptor.name)
        return cls(shm, descriptor.n, is_numpy=is_numpy, owner=False,
                   readonly=True)

    def _make_columns(self, readonly: bool) -> tuple[Any, Any, Any, Any]:
        n = self.n
        if self._shm is None:
            if self.is_numpy and np is not None:
                empty = np.empty(0, dtype=np.float64)
                return (empty, empty, empty, empty)
            return ([], [], [], [])
        if self.is_numpy and np is not None:
            cols = []
            for c in range(4):
                arr = np.frombuffer(
                    self._shm.buf, dtype=np.float64, count=n, offset=c * n * 8
                )
                if readonly:
                    arr.flags.writeable = False
                cols.append(arr)
            return tuple(cols)
        mv = memoryview(self._shm.buf).cast("d")
        self._base_mv = mv
        cols = tuple(mv[c * n:(c + 1) * n] for c in range(4))
        if readonly:
            cols = tuple(c.toreadonly() for c in cols)
        return cols

    # -- access -------------------------------------------------------- #

    @property
    def descriptor(self) -> SharedRectDescriptor:
        return SharedRectDescriptor(name=self.name, n=self.n)

    def columns(self) -> tuple[Any, Any, Any, Any]:
        if self._columns is None:
            raise GeometryError("shared rect buffer is closed")
        return self._columns

    @property
    def closed(self) -> bool:
        return self._columns is None and self.n > 0

    # -- lifecycle ----------------------------------------------------- #

    def close(self) -> None:
        """Release this process's mapping (idempotent).

        Views handed out by :meth:`columns` become invalid; the caller
        must drop its own references to them first, or the OS mapping
        lingers until they die (the segment itself is unaffected —
        only :meth:`unlink` destroys it).
        """
        self._columns = None
        if self._base_mv is not None:
            self._base_mv.release()
            self._base_mv = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - caller kept views
                # numpy views of the mapping are still alive somewhere;
                # the finalizer retries when they are gone.
                return
            self._shm = None
        if self._finalizer is not None and not self.owner:
            self._finalizer.detach()
            self._finalizer = None

    def unlink(self) -> None:
        """Destroy the segment (owner only, idempotent)."""
        if not self.owner:
            raise GeometryError(
                "only the creating process may unlink a shared rect buffer"
            )
        self.close()
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self.name is not None:
            try:
                from multiprocessing import shared_memory

                shared_memory.SharedMemory(name=self.name).unlink()
            except FileNotFoundError:
                pass

    @staticmethod
    def _finalize(shm: Any, owner: bool) -> None:
        """GC / interpreter-shutdown safety net: close, and unlink if
        this process created the segment."""
        try:
            shm.close()
        except BufferError:  # pragma: no cover - exported views remain
            pass
        if owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        role = "owner" if self.owner else "attached"
        return (
            f"SharedRectBuffer(name={self.name!r}, n={self.n}, "
            f"{role}, {state})"
        )


class SharedRectArray(RectArray):
    """A :class:`RectArray` view whose columns live in shared memory.

    Construction mirrors the buffer lifecycle: :meth:`share` (or
    :meth:`create`) in the owning process, :meth:`attach` elsewhere.
    The instance doubles as a context manager that closes — and, for
    the owner, unlinks — on exit, so ``with SharedRectArray.share(ra)``
    cannot leak a segment even under ``KeyboardInterrupt``.
    """

    __slots__ = ("buffer",)

    def __init__(self, buffer: SharedRectBuffer) -> None:
        xlo, ylo, xhi, yhi = buffer.columns()
        super().__init__(xlo, ylo, xhi, yhi, is_numpy=buffer.is_numpy)
        self.buffer = buffer

    # -- construction -------------------------------------------------- #

    @classmethod
    def share(cls, rects: RectArray) -> "SharedRectArray":
        """Copy an in-process array's columns into a new shared segment."""
        return cls(SharedRectBuffer.create(
            rects.xlo, rects.ylo, rects.xhi, rects.yhi,
            backend="numpy" if rects.is_numpy else "python",
        ))

    @classmethod
    def create(
        cls, entries: "Sequence[tuple[Rect, int]] | Iterable[Rect]",
        backend: str | None = None,
    ) -> "SharedRectArray":
        """Share the rectangles of ``(rect, oid)`` entries or bare rects."""
        seq = list(entries)
        rects = [
            item[0] if isinstance(item, tuple) else item for item in seq
        ]
        return cls(SharedRectBuffer.create(
            [r.xlo for r in rects], [r.ylo for r in rects],
            [r.xhi for r in rects], [r.yhi for r in rects],
            backend,
        ))

    @classmethod
    def attach(
        cls, descriptor: SharedRectDescriptor, backend: str | None = None
    ) -> "SharedRectArray":
        """A read-only view of another process's shared columns."""
        return cls(SharedRectBuffer.attach(descriptor, backend))

    # -- lifecycle ----------------------------------------------------- #

    @property
    def descriptor(self) -> SharedRectDescriptor:
        return self.buffer.descriptor

    def close(self) -> None:
        """Drop this view's columns and release the mapping."""
        empty: Any = [] if not self.is_numpy else (
            np.empty(0, dtype=np.float64) if np is not None else []
        )
        self.xlo = self.ylo = self.xhi = self.yhi = empty
        self.n = 0
        self.buffer.close()

    def unlink(self) -> None:
        """Destroy the backing segment (owner only)."""
        self.close()
        self.buffer.unlink()

    def __enter__(self) -> "SharedRectArray":
        return self

    def __exit__(self, *exc: Any) -> None:
        if self.buffer.owner:
            self.unlink()
        else:
            self.close()

    def __repr__(self) -> str:
        backend = "numpy" if self.is_numpy else "python"
        return (
            f"SharedRectArray(n={self.n}, backend={backend}, "
            f"name={self.buffer.name!r})"
        )
