"""Batch geometry kernels over :class:`~repro.kernels.rect_array.RectArray`.

Every kernel here has a scalar twin in :mod:`repro.geometry` or in the
tree code, and the contract is *bit identity*: the same floats, the
same winners under the same tie-breaks, pairs in the same order, and —
for the sweep — the same ``xy_tests`` increment, derived analytically
instead of counted one comparison at a time.

Two implementations back each kernel: a numpy one (used when the
operands carry numpy columns) and a pure-Python one over the list
columns. The numpy paths restrict themselves to
elementwise IEEE-754 operations that mirror the scalar expression
trees exactly (``minimum``/``maximum``, elementwise ``*``/``-``,
comparisons, ``searchsorted``), so no float can differ in even the
last ulp; reductions that would reassociate additions (``ndarray.sum``
pairwise summation) are never used where the scalar path summed
sequentially.

Analytic sweep accounting
-------------------------
The scalar sweep charges, per anchor, one x-test for every inner-scan
comparison *including* the failing break test (but not when the scan
runs off the end of the list) plus one y-test per candidate that
survives the x-test. With both sides sorted by ``xlo`` (stable, ties
between sides resolved a-first), binary search gives the same totals
without scanning: an a-anchor at sorted position ``i`` faces
``j0 = bisect_left(b_xlo, a_xlo[i])`` already-consumed b's, is anchored
iff ``j0 < nb``, scans ``m = bisect_right(b_xlo, a_xhi[i]) - j0``
candidates, and pays ``2*m`` tests plus one more iff the scan stopped
on a live element (``j0 + m < nb``). The b-anchor case is symmetric
with ``bisect_right`` for the consumed count (a wins ties). Emission
order is reconstructed exactly: anchor order is the merge order, i.e.
ascending ``i + j0(i)`` / ``i0(j) + j`` (the number of elements
consumed before the anchor — distinct across all anchors), with each
anchor's candidates ascending.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import GeometryError
from ..geometry.rect import Rect
from .backend import np
from .rect_array import RectArray

__all__ = [
    "all_points",
    "clipped_area_total",
    "intersect_indices",
    "least_enlargement_index",
    "mbr_of",
    "min_center_distance_index",
    "quadratic_split_indices",
    "sweep_pairs_batch",
]


# --------------------------------------------------------------------- #
# Intersection filter
# --------------------------------------------------------------------- #

def intersect_indices(arr: RectArray, rect: Rect) -> Sequence[int]:
    """Indices of rectangles in ``arr`` intersecting ``rect``, ascending.

    Same closed-rectangle predicate as :meth:`Rect.intersects`; the
    ascending index order matches a scalar scan over the entry list.
    """
    if arr.is_numpy:
        mask = (
            (arr.xlo <= rect.xhi)
            & (rect.xlo <= arr.xhi)
            & (arr.ylo <= rect.yhi)
            & (rect.ylo <= arr.yhi)
        )
        return np.nonzero(mask)[0]
    rxlo, rylo, rxhi, ryhi = rect.xlo, rect.ylo, rect.xhi, rect.yhi
    xlo, ylo, xhi, yhi = arr.xlo, arr.ylo, arr.xhi, arr.yhi
    return [
        i
        for i in range(arr.n)
        if xlo[i] <= rxhi and rxlo <= xhi[i] and ylo[i] <= ryhi and rylo <= yhi[i]
    ]


# --------------------------------------------------------------------- #
# MBR of a slice
# --------------------------------------------------------------------- #

def mbr_of(arr: RectArray) -> Rect:
    """Smallest rectangle enclosing every rectangle in ``arr``.

    Pure min/max over the columns — no arithmetic — so the result is
    bit-identical to :func:`repro.geometry.rect.union_all`.
    """
    if arr.n == 0:
        raise GeometryError("mbr_of() of an empty RectArray")
    if arr.is_numpy:
        return Rect(
            float(arr.xlo.min()), float(arr.ylo.min()),
            float(arr.xhi.max()), float(arr.yhi.max()),
        )
    return Rect(min(arr.xlo), min(arr.ylo), max(arr.xhi), max(arr.yhi))


# --------------------------------------------------------------------- #
# Guttman least-enlargement scan
# --------------------------------------------------------------------- #

def least_enlargement_index(arr: RectArray, rect: Rect) -> int:
    """Index of the rectangle needing least enlargement to cover ``rect``.

    Reproduces the scalar ``choose_subtree`` loop exactly: the winner is
    the first index attaining the minimal enlargement and, among those,
    the minimal current area (first occurrence again on area ties).
    """
    if arr.n == 0:
        raise GeometryError("least_enlargement_index() of an empty RectArray")
    if arr.is_numpy:
        width = arr.xhi - arr.xlo
        height = arr.yhi - arr.ylo
        area = width * height
        uxlo = np.minimum(arr.xlo, rect.xlo)
        uylo = np.minimum(arr.ylo, rect.ylo)
        uxhi = np.maximum(arr.xhi, rect.xhi)
        uyhi = np.maximum(arr.yhi, rect.yhi)
        enl = (uxhi - uxlo) * (uyhi - uylo) - area
        cand = np.nonzero(enl == enl.min())[0]
        return int(cand[np.argmin(area[cand])])
    rxlo, rylo, rxhi, ryhi = rect.xlo, rect.ylo, rect.xhi, rect.yhi
    best_idx = 0
    best_enl = best_area = None
    rows = zip(arr.xlo, arr.ylo, arr.xhi, arr.yhi, arr.areas())
    for i, (x0, y0, x1, y1, a) in enumerate(rows):
        uxlo = x0 if x0 <= rxlo else rxlo
        uylo = y0 if y0 <= rylo else rylo
        uxhi = x1 if x1 >= rxhi else rxhi
        uyhi = y1 if y1 >= ryhi else ryhi
        enl = (uxhi - uxlo) * (uyhi - uylo) - a
        if best_enl is None or enl < best_enl:
            best_idx, best_enl, best_area = i, enl, a
        elif enl == best_enl and a < best_area:
            best_idx, best_area = i, a
    return best_idx


# --------------------------------------------------------------------- #
# Center-distance scan (seeded growing phase, point seeds)
# --------------------------------------------------------------------- #

def min_center_distance_index(arr: RectArray, rect: Rect) -> int:
    """First index minimising squared center distance to ``rect``.

    Mirrors ``min(entries, key=lambda e: e.mbr.center_distance_sq(rect))``
    — ``min`` keeps the first of equal keys, as does ``argmin``.
    """
    if arr.n == 0:
        raise GeometryError("min_center_distance_index() of an empty RectArray")
    rsx = rect.xlo + rect.xhi
    rsy = rect.ylo + rect.yhi
    if arr.is_numpy:
        dx = (arr.xlo + arr.xhi) - rsx
        dy = (arr.ylo + arr.yhi) - rsy
        return int(np.argmin((dx * dx + dy * dy) / 4.0))
    best_idx = 0
    best = None
    xlo, ylo, xhi, yhi = arr.xlo, arr.ylo, arr.xhi, arr.yhi
    for i in range(arr.n):
        dx = (xlo[i] + xhi[i]) - rsx
        dy = (ylo[i] + yhi[i]) - rsy
        d = (dx * dx + dy * dy) / 4.0
        if best is None or d < best:
            best_idx, best = i, d
    return best_idx


def all_points(arr: RectArray) -> bool:
    """Whether every rectangle is degenerate (a single point).

    Memoised on the array: columns are immutable, and the seeded tree
    asks this per descent step on the same cached node columns.
    """
    cached = arr._all_points
    if cached is not None:
        return cached
    if arr.is_numpy:
        result = bool(np.all((arr.xlo == arr.xhi) & (arr.ylo == arr.yhi)))
    else:
        xlo, ylo, xhi, yhi = arr.xlo, arr.ylo, arr.xhi, arr.yhi
        result = all(
            xlo[i] == xhi[i] and ylo[i] == yhi[i] for i in range(arr.n)
        )
    arr._all_points = result
    return result


# --------------------------------------------------------------------- #
# Plane sweep
# --------------------------------------------------------------------- #

def sweep_pairs_batch(
    arr_a: RectArray,
    arr_b: RectArray,
    counters: Any | None = None,
) -> list[tuple[int, int]]:
    """All intersecting ``(i, j)`` index pairs, in scalar-sweep order.

    The returned pairs index into ``arr_a``/``arr_b`` and appear in the
    exact order :func:`repro.geometry.sweep.sweep_pairs` would emit the
    corresponding elements; ``counters.xy_tests`` (when given) receives
    the exact scalar increment, computed analytically.
    """
    if arr_a.n == 0 or arr_b.n == 0:
        return []
    if arr_a.is_numpy or arr_b.is_numpy:
        # Mixed representations: promote the list side (exact doubles
        # either way, and the numpy side implies a large operand).
        return _sweep_numpy(_as_numpy(arr_a), _as_numpy(arr_b), counters)
    return _sweep_python(arr_a, arr_b, counters)


def _as_numpy(arr: RectArray) -> RectArray:
    if arr.is_numpy:
        return arr
    return RectArray(
        np.asarray(arr.xlo, dtype=np.float64),
        np.asarray(arr.ylo, dtype=np.float64),
        np.asarray(arr.xhi, dtype=np.float64),
        np.asarray(arr.yhi, dtype=np.float64),
        is_numpy=True,
    )


def _segment_offsets(reps: Any) -> Any:
    """``[0..reps[0]-1, 0..reps[1]-1, ...]`` as one flat array."""
    total = int(reps.sum())
    starts = np.cumsum(reps) - reps
    return np.arange(total) - np.repeat(starts, reps)


def _sweep_numpy(
    arr_a: RectArray, arr_b: RectArray, counters: Any | None
) -> list[tuple[int, int]]:
    na, nb = arr_a.n, arr_b.n
    order_a = np.argsort(arr_a.xlo, kind="stable")
    order_b = np.argsort(arr_b.xlo, kind="stable")
    axlo = arr_a.xlo[order_a]
    axhi = arr_a.xhi[order_a]
    aylo = arr_a.ylo[order_a]
    ayhi = arr_a.yhi[order_a]
    bxlo = arr_b.xlo[order_b]
    bxhi = arr_b.xhi[order_b]
    bylo = arr_b.ylo[order_b]
    byhi = arr_b.yhi[order_b]

    # Merge-front positions. An a at sorted position i reaches the front
    # after the j0[i] b's with strictly smaller xlo (a wins ties); it is
    # an anchor iff any b remains. Its scan covers the m_a[i] b's with
    # xlo <= a.xhi, paying one extra x-test iff it stopped on a live
    # element rather than running off the end.
    j0 = np.searchsorted(bxlo, axlo, side="left")
    jend = np.searchsorted(bxlo, axhi, side="right")
    a_anch = j0 < nb
    m_a = np.where(a_anch, jend - j0, 0)

    i0 = np.searchsorted(axlo, bxlo, side="right")
    iend = np.searchsorted(axlo, bxhi, side="right")
    b_anch = i0 < na
    m_b = np.where(b_anch, iend - i0, 0)

    if counters is not None:
        xy = (
            2 * int(m_a.sum())
            + int(np.count_nonzero(a_anch & (jend < nb)))
            + 2 * int(m_b.sum())
            + int(np.count_nonzero(b_anch & (iend < na)))
        )
        counters.xy_tests += xy

    empty = np.empty(0, dtype=np.intp)

    ii = np.nonzero(m_a > 0)[0]
    if ii.size:
        reps = m_a[ii]
        rows_a = np.repeat(ii, reps)
        cols_a = np.repeat(j0[ii], reps) + _segment_offsets(reps)
        keep = (aylo[rows_a] <= byhi[cols_a]) & (bylo[cols_a] <= ayhi[rows_a])
        rows_a = rows_a[keep]
        cols_a = cols_a[keep]
        rank_a = rows_a + j0[rows_a]
    else:
        rows_a = cols_a = rank_a = empty

    jj = np.nonzero(m_b > 0)[0]
    if jj.size:
        reps = m_b[jj]
        cols_b = np.repeat(jj, reps)
        rows_b = np.repeat(i0[jj], reps) + _segment_offsets(reps)
        keep = (bylo[cols_b] <= ayhi[rows_b]) & (aylo[rows_b] <= byhi[cols_b])
        rows_b = rows_b[keep]
        cols_b = cols_b[keep]
        rank_b = i0[cols_b] + cols_b
    else:
        rows_b = cols_b = rank_b = empty

    rows = np.concatenate([rows_a, rows_b])
    if rows.size == 0:
        return []
    cols = np.concatenate([cols_a, cols_b])
    ranks = np.concatenate([rank_a, rank_b])
    # Ranks are distinct across anchors (each equals the number of
    # elements the merge consumed before that anchor); within an anchor
    # the candidate blocks are already ascending, and the stable sort
    # keeps them so.
    emit = np.argsort(ranks, kind="stable")
    out_a = order_a[rows[emit]]
    out_b = order_b[cols[emit]]
    return list(zip(out_a.tolist(), out_b.tolist()))


def _sweep_python(
    arr_a: RectArray, arr_b: RectArray, counters: Any | None
) -> list[tuple[int, int]]:
    na, nb = arr_a.n, arr_b.n
    axlo, axhi, aylo, ayhi = arr_a.xlo, arr_a.xhi, arr_a.ylo, arr_a.yhi
    bxlo, bxhi, bylo, byhi = arr_b.xlo, arr_b.xhi, arr_b.ylo, arr_b.yhi
    order_a = sorted(range(na), key=axlo.__getitem__)
    order_b = sorted(range(nb), key=bxlo.__getitem__)

    out: list[tuple[int, int]] = []
    xy = 0
    i = j = 0
    while i < na and j < nb:
        ia = order_a[i]
        jb = order_b[j]
        if axlo[ia] <= bxlo[jb]:
            xhi, ylo, yhi = axhi[ia], aylo[ia], ayhi[ia]
            k = j
            while k < nb:
                kb = order_b[k]
                xy += 1
                if bxlo[kb] > xhi:
                    break
                xy += 1
                if ylo <= byhi[kb] and bylo[kb] <= yhi:
                    out.append((ia, kb))
                k += 1
            i += 1
        else:
            xhi, ylo, yhi = bxhi[jb], bylo[jb], byhi[jb]
            k = i
            while k < na:
                ka = order_a[k]
                xy += 1
                if axlo[ka] > xhi:
                    break
                xy += 1
                if ylo <= ayhi[ka] and aylo[ka] <= yhi:
                    out.append((ka, jb))
                k += 1
            j += 1
    if counters is not None:
        counters.xy_tests += xy
    return out


# --------------------------------------------------------------------- #
# Guttman quadratic split
# --------------------------------------------------------------------- #

#: PickSeeds examines n*(n-1)/2 pairs; below this n the pair matrix is
#: too small for numpy to beat the inline loop.
_SEEDS_NUMPY_MIN = 16

#: Upper-triangle index pairs per ``n``, cached across splits: a build
#: inserts thousands of entries at one fixed fanout, and ``triu_indices``
#: (which materialises an n×n mask) dominates the numpy PickSeeds cost.
_TRIU_CACHE: dict = {}


def quadratic_split_indices(
    arr: RectArray, min_fill: int
) -> tuple[list[int], list[int]] | None:
    """Guttman quadratic split as two index groups over ``arr``.

    Bit-identical twin of the scalar ``rtree.split.quadratic_split``:
    the same seeds (first pair maximising the wasted area, in the
    scalar's row-major scan order), the same PickNext choices and group
    assignments under the same tie-break chain, the same early
    absorption into an under-filled group. PickSeeds is the O(n²) part
    and runs on numpy when available and worthwhile; the PickNext loop
    runs on the list columns with the scalar expression trees inlined.

    Returns ``None`` — caller falls back to the scalar path — when the
    pair matrix contains NaN (coordinate overflow), where numpy's
    argmax and the scalar strict-``>`` scan disagree.
    """
    n = arr.n
    if n < 2:
        return None
    xlo, ylo, xhi, yhi = arr.xlo, arr.ylo, arr.xhi, arr.yhi
    if arr.is_numpy:
        xlo, ylo = xlo.tolist(), ylo.tolist()
        xhi, yhi = xhi.tolist(), yhi.tolist()
    areas = [(xhi[k] - xlo[k]) * (yhi[k] - ylo[k]) for k in range(n)]

    # --- PickSeeds: maximise d = area(union) - area(e1) - area(e2) ----- #
    if np is not None and n >= _SEEDS_NUMPY_MIN:
        axlo = np.asarray(xlo)
        aylo = np.asarray(ylo)
        axhi = np.asarray(xhi)
        ayhi = np.asarray(yhi)
        aar = np.asarray(areas)
        pair_idx = _TRIU_CACHE.get(n)
        if pair_idx is None:
            pair_idx = np.triu_indices(n, k=1)  # row-major: scalar order
            _TRIU_CACHE[n] = pair_idx
        iu, ju = pair_idx
        d = (
            (np.maximum(axhi[iu], axhi[ju]) - np.minimum(axlo[iu], axlo[ju]))
            * (np.maximum(ayhi[iu], ayhi[ju]) - np.minimum(aylo[iu], aylo[ju]))
            - aar[iu]
            - aar[ju]
        )
        if bool(np.isnan(d).any()):
            return None
        if not bool((d > -np.inf).any()):
            # Every pair wasted -inf area (overflowed input); the scalar
            # scan never updates its seeds here, so delegate to it.
            return None
        k = int(np.argmax(d))  # first maximum == scalar strict-> scan
        seed_a, seed_b = int(iu[k]), int(ju[k])
    else:
        seed_a = seed_b = -1
        worst = float("-inf")
        for i in range(n):
            ix0, iy0, ix1, iy1 = xlo[i], ylo[i], xhi[i], yhi[i]
            ai = areas[i]
            for j in range(i + 1, n):
                uxlo = ix0 if ix0 <= xlo[j] else xlo[j]
                uylo = iy0 if iy0 <= ylo[j] else ylo[j]
                uxhi = ix1 if ix1 >= xhi[j] else xhi[j]
                uyhi = iy1 if iy1 >= yhi[j] else yhi[j]
                d = (uxhi - uxlo) * (uyhi - uylo) - ai - areas[j]
                if d > worst:
                    worst = d
                    seed_a, seed_b = i, j
        if seed_a < 0:
            return None

    group_a = [seed_a]
    group_b = [seed_b]
    ax0, ay0, ax1, ay1 = xlo[seed_a], ylo[seed_a], xhi[seed_a], yhi[seed_a]
    bx0, by0, bx1, by1 = xlo[seed_b], ylo[seed_b], xhi[seed_b], yhi[seed_b]
    # Rows prefetched as tuples: the PickNext loop rescans the remaining
    # set every round, and tuple unpacking beats four indexed column
    # loads per candidate.
    remaining = [
        (k, xlo[k], ylo[k], xhi[k], yhi[k])
        for k in range(n)
        if k != seed_a and k != seed_b
    ]

    # --- PickNext loop ------------------------------------------------- #
    while remaining:
        if len(group_a) + len(remaining) == min_fill:
            group_a.extend(row[0] for row in remaining)
            break
        if len(group_b) + len(remaining) == min_fill:
            group_b.extend(row[0] for row in remaining)
            break

        area_a = (ax1 - ax0) * (ay1 - ay0)
        area_b = (bx1 - bx0) * (by1 - by0)
        best_pos = -1
        best_pref = -1.0
        best_d1 = best_d2 = 0.0
        for pos, (k, kx0, ky0, kx1, ky1) in enumerate(remaining):
            uxlo = ax0 if ax0 <= kx0 else kx0
            uylo = ay0 if ay0 <= ky0 else ky0
            uxhi = ax1 if ax1 >= kx1 else kx1
            uyhi = ay1 if ay1 >= ky1 else ky1
            d1 = (uxhi - uxlo) * (uyhi - uylo) - area_a
            uxlo = bx0 if bx0 <= kx0 else kx0
            uylo = by0 if by0 <= ky0 else ky0
            uxhi = bx1 if bx1 >= kx1 else kx1
            uyhi = by1 if by1 >= ky1 else ky1
            d2 = (uxhi - uxlo) * (uyhi - uylo) - area_b
            pref = abs(d1 - d2)
            if pref > best_pref:
                best_pref = pref
                best_pos = pos
                best_d1, best_d2 = d1, d2
        chosen, cx0, cy0, cx1, cy1 = remaining.pop(best_pos)

        if best_d1 < best_d2:
            to_a = True
        elif best_d2 < best_d1:
            to_a = False
        elif area_a < area_b:
            to_a = True
        elif area_b < area_a:
            to_a = False
        else:
            to_a = len(group_a) <= len(group_b)
        if to_a:
            group_a.append(chosen)
            ax0 = ax0 if ax0 <= cx0 else cx0
            ay0 = ay0 if ay0 <= cy0 else cy0
            ax1 = ax1 if ax1 >= cx1 else cx1
            ay1 = ay1 if ay1 >= cy1 else cy1
        else:
            group_b.append(chosen)
            bx0 = bx0 if bx0 <= cx0 else cx0
            by0 = by0 if by0 <= cy0 else cy0
            bx1 = bx1 if bx1 >= cx1 else cx1
            by1 = by1 if by1 >= cy1 else cy1
    return group_a, group_b


# --------------------------------------------------------------------- #
# Workload generator: clipped cluster-area sum
# --------------------------------------------------------------------- #

def clipped_area_total(
    cx: Sequence[float],
    cy: Sequence[float],
    w: Sequence[float],
    h: Sequence[float],
    scale: float,
    window: Rect,
) -> float | None:
    """Total area of the scaled, window-clipped cluster rectangles.

    Reproduces, per cluster, the scalar chain ``Rect.from_center(cx, cy,
    w*scale, h*scale).clipped_to(window).area()`` and returns the
    sequential left-to-right sum of the areas — or ``None`` if any
    cluster falls entirely outside the window (the scalar path raises
    there). Summation is done over a Python list so it associates
    exactly like the scalar ``sum()``.
    """
    if np is not None:
        hw = (np.asarray(w, dtype=np.float64) * scale) / 2.0
        hh = (np.asarray(h, dtype=np.float64) * scale) / 2.0
        cxa = np.asarray(cx, dtype=np.float64)
        cya = np.asarray(cy, dtype=np.float64)
        ixlo = np.maximum(cxa - hw, window.xlo)
        iylo = np.maximum(cya - hh, window.ylo)
        ixhi = np.minimum(cxa + hw, window.xhi)
        iyhi = np.minimum(cya + hh, window.yhi)
        if bool(np.any((ixlo > ixhi) | (iylo > iyhi))):
            return None
        areas = ((ixhi - ixlo) * (iyhi - iylo)).tolist()
    else:
        areas = []
        wxlo, wylo, wxhi, wyhi = window.xlo, window.ylo, window.xhi, window.yhi
        for k in range(len(cx)):
            half_w = (w[k] * scale) / 2.0
            half_h = (h[k] * scale) / 2.0
            xlo, xhi = cx[k] - half_w, cx[k] + half_w
            ylo, yhi = cy[k] - half_h, cy[k] + half_h
            ixlo = xlo if xlo >= wxlo else wxlo
            iylo = ylo if ylo >= wylo else wylo
            ixhi = xhi if xhi <= wxhi else wxhi
            iyhi = yhi if yhi <= wyhi else wyhi
            if ixlo > ixhi or iylo > iyhi:
                return None
            areas.append((ixhi - ixlo) * (iyhi - iylo))
    return sum(areas)
