"""Backend selection and the runtime kernel toggle.

The array backend is chosen **once at import time**: numpy when it is
importable, else the stdlib ``array('d')`` fallback. The choice can be
forced with ``REPRO_KERNELS_BACKEND=numpy|python`` (read once, at
import) — the bench harness uses the explicit ``backend=`` parameter of
:class:`~repro.kernels.rect_array.RectArray` instead, so it can compare
both backends inside one process.

Whether call sites *use* the kernels at all is a separate, per-call
decision: :func:`kernels_enabled` reads the ``REPRO_KERNELS``
environment variable on every call (default: enabled). Reading the
environment per call instead of caching it in a module flag keeps this
module free of mutable state (RPR005) and lets the differential tests
flip kernels on and off with ``monkeypatch.setenv`` — the hot paths
cache the answer once per join run, so the per-call cost never lands in
an inner loop.
"""

from __future__ import annotations

import os
from typing import Any

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy is present in CI images
    _numpy = None  # type: ignore[assignment]

_FORCED = os.environ.get("REPRO_KERNELS_BACKEND", "").strip().lower()
if _FORCED == "python":
    np: Any = None
elif _FORCED == "numpy":
    if _numpy is None:  # pragma: no cover - misconfiguration guard
        raise ImportError(
            "REPRO_KERNELS_BACKEND=numpy requested but numpy is not importable"
        )
    np = _numpy
else:
    np = _numpy

HAVE_NUMPY = _numpy is not None

#: The backend selected at import time: ``"numpy"`` or ``"python"``.
BACKEND = "numpy" if np is not None else "python"

#: Whether ``REPRO_KERNELS_BACKEND`` pinned the backend explicitly. A
#: pinned backend disables the small-array heuristic of
#: :class:`~repro.kernels.rect_array.RectArray`, so e2e runs can force
#: numpy columns even at node fanout for testing.
FORCED_BACKEND = _FORCED in ("python", "numpy")

_DISABLED_VALUES = ("0", "false", "no", "off")


def kernels_enabled() -> bool:
    """Whether the vectorized kernels are enabled for this call.

    Controlled by ``REPRO_KERNELS`` (default: enabled). Any of ``0``,
    ``false``, ``no``, ``off`` (case-insensitive) disables the kernels,
    falling back to the scalar reference path everywhere.
    """
    value = os.environ.get("REPRO_KERNELS")
    if value is None or value == "1":
        # Fast path for the two overwhelmingly common states: unset and
        # the bench harness's explicit "1".
        return True
    return value.strip().lower() not in _DISABLED_VALUES


def batch_enabled() -> bool:
    """Whether the batch-first traversal layer is enabled for this call.

    Controlled by ``REPRO_BATCH`` (default: enabled), read per call for
    the same reasons as :func:`kernels_enabled`. This is a *narrower*
    switch than ``REPRO_KERNELS``: it gates only the columnar
    node-store traversal plans (:mod:`repro.kernels.node_store`), so
    the differential harness can compare scalar control flow against
    batch control flow while the per-node kernels stay on. The batch
    path additionally requires numpy and ``REPRO_KERNELS`` itself —
    callers combine the three via their dispatch helpers.
    """
    value = os.environ.get("REPRO_BATCH")
    if value is None or value == "1":
        return True
    return value.strip().lower() not in _DISABLED_VALUES
