"""Columnar node store and batch traversal plans.

PR 5's kernels vectorized the *inside* of one node visit, but the
traversal itself stayed scalar: one kernel call per node pair, one
window query at a time, object allocation between calls. At R-tree
fanout (a few dozen entries) the per-call overhead eats most of the
kernel win — the Amdahl gap the benchmark numbers show.

This module closes that gap by restructuring traversal around a
:class:`ColumnTree` — a read-only level-order struct-of-arrays snapshot
of a built tree (entry MBR columns, CSR child offsets, leaf object
ids, page ids for accounting) — and *plan builders* that push an
entire frontier through the tree per numpy call:

* :func:`build_window_plans` — thousands of window queries descend
  together (BFJ's shape);
* :func:`build_match_plans` — level-at-a-time tree matching with a
  segmented multi-node plane sweep (:func:`sweep_pairs_segmented`)
  over concatenated frontier slices.

The plans are *pure data*: per-visit page ids, entry counts, child
links, analytically derived ``xy_tests`` charges, and emission lists,
all in the exact order the scalar reference would produce them. The
caller (``repro.join.batch``) replays a plan through the accounted
buffer — same fetch/pin/unpin sequence, same counter increments at the
same operation positions — so the cost model cannot tell the two
paths apart. This module itself stays pure (RPR007): it never touches
storage, metrics, or phases; snapshots arrive as plain per-node
records, and version-stamped invalidation lives with the caller (the
snapshot cache keys on the owning tree's ``mutations`` stamp, which
every mutating path — inserts, deletes, ``patch_entry_mbr``-driven
seed updates, the dynamic maintenance lane — bumps).

Requires numpy: the plan builders are only reachable through dispatch
helpers that check ``HAVE_NUMPY`` alongside the ``REPRO_KERNELS`` and
``REPRO_BATCH`` toggles.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable, Sequence

from ..errors import GeometryError
from .backend import np

__all__ = [
    "ColumnTree",
    "MatchPlan",
    "WindowPlan",
    "build_match_plans",
    "build_window_plans",
    "sweep_pairs_segmented",
]


def _exclusive_cumsum(counts: Any) -> Any:
    return np.cumsum(counts) - counts


def _segment_offsets(reps: Any) -> Any:
    """``[0..reps[0]-1, 0..reps[1]-1, ...]`` as one flat array."""
    total = int(reps.sum())
    starts = np.cumsum(reps) - reps
    return np.arange(total) - np.repeat(starts, reps)


# --------------------------------------------------------------------- #
# The columnar snapshot
# --------------------------------------------------------------------- #

class ColumnTree:
    """A built tree packed into level-order struct-of-arrays columns.

    Nodes are indexed ``0..n_nodes-1`` (the root is index 0); entries
    live in one flat coordinate table addressed by the CSR offsets
    ``eoff`` (node ``i`` owns entries ``eoff[i]:eoff[i+1]``, in entry
    order). ``eref`` holds the scalar entry payload — a child page id
    in internal nodes, an object id in leaves — and ``echild`` the
    child's *node index* (``-1`` in leaves). Node MBRs are min/max
    folds over the entry columns, bit-identical to the scalar
    ``union_all`` (pure min/max, no arithmetic).

    The snapshot is immutable; staleness is the owner's problem. The
    caller caches it keyed on the source tree's ``mutations`` stamp
    and rebuilds when the stamp moves — the version/invalidation
    protocol documented in DESIGN.md §15.
    """

    __slots__ = (
        "n_nodes", "n_entries", "page", "level", "is_leaf", "nent",
        "eoff", "exlo", "eylo", "exhi", "eyhi", "eref", "echild",
        "nxlo", "nylo", "nxhi", "nyhi", "stamp", "_digest",
    )

    def __init__(self, *, page, level, is_leaf, nent, eoff,
                 exlo, eylo, exhi, eyhi, eref, echild,
                 nxlo, nylo, nxhi, nyhi, stamp: int = 0):
        self.page = page
        self.level = level
        self.is_leaf = is_leaf
        self.nent = nent
        self.eoff = eoff
        self.exlo = exlo
        self.eylo = eylo
        self.exhi = exhi
        self.eyhi = eyhi
        self.eref = eref
        self.echild = echild
        self.nxlo = nxlo
        self.nylo = nylo
        self.nxhi = nxhi
        self.nyhi = nyhi
        self.n_nodes = len(page)
        self.n_entries = len(eref)
        self.stamp = stamp
        self._digest = None

    def digest(self) -> tuple:
        """A structural fingerprint of the snapshot, memoised.

        Two snapshots with equal digests describe the same tree shape,
        geometry and data payloads — everything a traversal plan is a
        function of. The *page layout* is deliberately excluded: a tree
        rebuilt from the same inputs gets fresh page ids (the allocator
        is monotone), yet its plans — node visit order, child structure,
        emitted object ids — are identical. Internal ``eref`` values are
        page ids too, so the ref column contributes only its leaf rows
        (object ids); ``echild`` already captures the internal wiring as
        rebuild-invariant node indices. Callers reusing a plan across
        digest-equal snapshots must re-lower page-id arrays against the
        new snapshot's ``page`` column.
        """
        cached = self._digest
        if cached is None:
            leaf_ref = self.eref[self.echild < 0]
            crc = zlib.crc32  # content digest, not a seed: stable > salted
            cached = (
                self.n_nodes, self.n_entries,
                crc(self.level.tobytes()), crc(self.eoff.tobytes()),
                crc(self.echild.tobytes()), crc(leaf_ref.tobytes()),
                crc(self.exlo.tobytes()), crc(self.eylo.tobytes()),
                crc(self.exhi.tobytes()), crc(self.eyhi.tobytes()),
            )
            self._digest = cached
        return cached

    @classmethod
    def build(
        cls,
        records: Iterable[tuple[int, int, Sequence[int], Sequence[float],
                                Sequence[float], Sequence[float],
                                Sequence[float]]],
        root_page: int,
        stamp: int = 0,
    ) -> "ColumnTree":
        """Pack per-node records into columns.

        Each record is ``(page_id, level, refs, xlo, ylo, xhi, yhi)``
        with the coordinate sequences in entry order. The record for
        ``root_page`` becomes node index 0; every internal entry's ref
        must name another record's page.
        """
        if np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
            raise GeometryError("ColumnTree requires the numpy backend")
        recs = list(records)
        if not recs:
            raise GeometryError("cannot build a ColumnTree from no nodes")
        # Root first, remaining nodes in record order.
        recs.sort(key=lambda r: r[0] != root_page)
        if recs[0][0] != root_page:
            raise GeometryError(f"root page {root_page} not in snapshot")
        index_of = {rec[0]: i for i, rec in enumerate(recs)}
        if len(index_of) != len(recs):
            raise GeometryError("duplicate page id in snapshot")

        page = np.array([r[0] for r in recs], dtype=np.int64)
        level = np.array([r[1] for r in recs], dtype=np.int64)
        nent = np.array([len(r[2]) for r in recs], dtype=np.int64)
        eoff = np.zeros(len(recs) + 1, dtype=np.int64)
        np.cumsum(nent, out=eoff[1:])

        exlo: list[float] = []
        eylo: list[float] = []
        exhi: list[float] = []
        eyhi: list[float] = []
        eref: list[int] = []
        echild: list[int] = []
        for _, lvl, refs, xlo, ylo, xhi, yhi in recs:
            exlo.extend(xlo)
            eylo.extend(ylo)
            exhi.extend(xhi)
            eyhi.extend(yhi)
            eref.extend(refs)
            if lvl == 0:
                echild.extend([-1] * len(refs))
            else:
                echild.extend(index_of[ref] for ref in refs)

        axlo = np.array(exlo, dtype=np.float64)
        aylo = np.array(eylo, dtype=np.float64)
        axhi = np.array(exhi, dtype=np.float64)
        ayhi = np.array(eyhi, dtype=np.float64)
        if len(eref):
            nonempty = nent > 0
            starts = eoff[:-1][nonempty]
            nxlo = np.full(len(recs), np.inf)
            nylo = np.full(len(recs), np.inf)
            nxhi = np.full(len(recs), -np.inf)
            nyhi = np.full(len(recs), -np.inf)
            nxlo[nonempty] = np.minimum.reduceat(axlo, starts)
            nylo[nonempty] = np.minimum.reduceat(aylo, starts)
            nxhi[nonempty] = np.maximum.reduceat(axhi, starts)
            nyhi[nonempty] = np.maximum.reduceat(ayhi, starts)
        else:
            nxlo = nylo = np.full(len(recs), np.inf)
            nxhi = nyhi = np.full(len(recs), -np.inf)

        return cls(
            page=page, level=level, is_leaf=(level == 0), nent=nent,
            eoff=eoff, exlo=axlo, eylo=aylo, exhi=axhi, eyhi=ayhi,
            eref=np.array(eref, dtype=np.int64),
            echild=np.array(echild, dtype=np.int64),
            nxlo=nxlo, nylo=nylo, nxhi=nxhi, nyhi=nyhi, stamp=stamp,
        )


# --------------------------------------------------------------------- #
# Segmented plane sweep
# --------------------------------------------------------------------- #

def _seg_bisect2(
    nseg: int, seg_k: Any, keys: Any,
    seg_q1: Any, q1: Any, side1: str,
    seg_q2: Any, q2: Any, side2: str,
) -> tuple[Any, Any]:
    """Per-segment bisect positions for two query groups in one sort.

    ``keys`` need not be sorted: the result for a query is the *count*
    of same-segment keys strictly below it (``left``) or at or below it
    (``right``) — exactly the position a per-segment ``searchsorted``
    over the segment-sorted keys would return. Ties are arbitrated by a
    flag column: left-queries sort before keys, right-queries after.
    """
    nk = len(keys)
    n1 = len(q1)
    segs = np.concatenate([seg_k, seg_q1, seg_q2])
    vals = np.concatenate([keys, q1, q2])
    flags = np.empty(len(vals), dtype=np.uint8)
    flags[:nk] = 1
    flags[nk:nk + n1] = 0 if side1 == "left" else 2
    flags[nk + n1:] = 0 if side2 == "left" else 2
    order = np.lexsort((flags, vals, segs))
    is_key = order < nk
    keys_before = np.cumsum(is_key) - is_key
    cnt_k = np.bincount(seg_k, minlength=nseg)
    kstart = _exclusive_cumsum(cnt_k)
    qpos = np.nonzero(~is_key)[0]
    oidx = order[qpos]
    out = np.empty(len(vals) - nk, dtype=np.int64)
    out[oidx - nk] = keys_before[qpos] - kstart[segs[oidx]]
    return out[:n1], out[n1:]


def sweep_pairs_segmented(
    seg_a: Any, axlo: Any, aylo: Any, axhi: Any, ayhi: Any,
    seg_b: Any, bxlo: Any, bylo: Any, bxhi: Any, byhi: Any,
    nseg: int,
) -> tuple[Any, Any, Any, Any]:
    """Many independent plane sweeps in one numpy call.

    Segment ``s`` sweeps the a-rectangles with ``seg_a == s`` against
    the b-rectangles with ``seg_b == s``; within a segment the flat
    arrays are in scalar input (entry) order, and the segment ids are
    non-decreasing. Returns ``(pair_seg, pair_ai, pair_bi, xy_seg)``:
    intersecting pairs as indices into the flat inputs, ordered by
    segment and — within a segment — in the exact emission order of
    :func:`repro.geometry.sweep.sweep_pairs`, plus the per-segment
    scalar ``xy_tests`` charge, derived analytically exactly as in
    :func:`repro.kernels.batch.sweep_pairs_batch`.
    """
    cnt_a = np.bincount(seg_a, minlength=nseg)
    cnt_b = np.bincount(seg_b, minlength=nseg)
    start_a = _exclusive_cumsum(cnt_a)
    start_b = _exclusive_cumsum(cnt_b)

    # Stable per-segment sort by xlo: the segmented twin of _decorate.
    order_a = np.lexsort((axlo, seg_a))
    order_b = np.lexsort((bxlo, seg_b))
    sseg_a = seg_a[order_a]
    sa_xlo = axlo[order_a]
    sa_xhi = axhi[order_a]
    sa_ylo = aylo[order_a]
    sa_yhi = ayhi[order_a]
    sseg_b = seg_b[order_b]
    sb_xlo = bxlo[order_b]
    sb_xhi = bxhi[order_b]
    sb_ylo = bylo[order_b]
    sb_yhi = byhi[order_b]

    # Merge-front positions, local to each segment (a wins xlo ties).
    j0, jend = _seg_bisect2(
        nseg, sseg_b, sb_xlo,
        sseg_a, sa_xlo, "left", sseg_a, sa_xhi, "right",
    )
    i0, iend = _seg_bisect2(
        nseg, sseg_a, sa_xlo,
        sseg_b, sb_xlo, "right", sseg_b, sb_xhi, "right",
    )

    nb_of_a = cnt_b[sseg_a]
    a_anch = j0 < nb_of_a
    m_a = np.where(a_anch, jend - j0, 0)
    na_of_b = cnt_a[sseg_b]
    b_anch = i0 < na_of_b
    m_b = np.where(b_anch, iend - i0, 0)

    xy_seg = (
        np.bincount(sseg_a, weights=2 * m_a + (a_anch & (jend < nb_of_a)),
                    minlength=nseg)
        + np.bincount(sseg_b, weights=2 * m_b + (b_anch & (iend < na_of_b)),
                      minlength=nseg)
    ).astype(np.int64)

    empty = np.empty(0, dtype=np.int64)

    ii = np.nonzero(m_a > 0)[0]
    if ii.size:
        reps = m_a[ii]
        rows_a = np.repeat(ii, reps)
        cols_a = (
            start_b[sseg_a[rows_a]]
            + np.repeat(j0[ii], reps) + _segment_offsets(reps)
        )
        keep = (sa_ylo[rows_a] <= sb_yhi[cols_a]) \
            & (sb_ylo[cols_a] <= sa_yhi[rows_a])
        rows_a = rows_a[keep]
        cols_a = cols_a[keep]
        rank_a = (rows_a - start_a[sseg_a[rows_a]]) + j0[rows_a]
        pseg_a = sseg_a[rows_a]
    else:
        rows_a = cols_a = rank_a = pseg_a = empty

    jj = np.nonzero(m_b > 0)[0]
    if jj.size:
        reps = m_b[jj]
        cols_b = np.repeat(jj, reps)
        rows_b = (
            start_a[sseg_b[cols_b]]
            + np.repeat(i0[jj], reps) + _segment_offsets(reps)
        )
        keep = (sb_ylo[cols_b] <= sa_yhi[rows_b]) \
            & (sa_ylo[rows_b] <= sb_yhi[cols_b])
        rows_b = rows_b[keep]
        cols_b = cols_b[keep]
        rank_b = i0[cols_b] + (cols_b - start_b[sseg_b[cols_b]])
        pseg_b = sseg_b[cols_b]
    else:
        rows_b = cols_b = rank_b = pseg_b = empty

    rows = np.concatenate([rows_a, rows_b])
    if rows.size == 0:
        return empty, empty, empty, xy_seg
    cols = np.concatenate([cols_a, cols_b])
    ranks = np.concatenate([rank_a, rank_b])
    psegs = np.concatenate([pseg_a, pseg_b])
    # Within a segment ranks are distinct across anchors (number of
    # elements the merge consumed first) and each anchor's candidates
    # are already ascending; the stable lexsort preserves both.
    emit = np.lexsort((ranks, psegs))
    return (
        psegs[emit], order_a[rows[emit]], order_b[cols[emit]], xy_seg,
    )


# --------------------------------------------------------------------- #
# Batched window queries
# --------------------------------------------------------------------- #

class WindowPlan:
    """Precomputed traversal structure for a batch of window queries.

    One *visit* is one accounted node read of the scalar traversal.
    Visit ``q`` (for ``q < n_queries``) is query ``q``'s root visit;
    a visit's surviving children are the contiguous visit-id range
    ``child_start[v]:child_end[v]`` in entry order (the scalar stack
    pushes them in that order and pops them reversed), and a leaf
    visit's surviving object ids are ``hit_ref[hit_start[v]:
    hit_end[v]]``, also in entry order.
    """

    __slots__ = (
        "n_queries", "v_node", "v_query", "child_start", "child_end",
        "hit_start", "hit_end", "hit_ref",
    )

    def __init__(self, n_queries, v_node, v_query, child_start, child_end,
                 hit_start, hit_end, hit_ref):
        self.n_queries = n_queries
        self.v_node = v_node
        self.v_query = v_query
        self.child_start = child_start
        self.child_end = child_end
        self.hit_start = hit_start
        self.hit_end = hit_end
        self.hit_ref = hit_ref


def build_window_plans(
    ct: ColumnTree, qxlo: Any, qylo: Any, qxhi: Any, qyhi: Any
) -> WindowPlan:
    """Descend every query window through ``ct`` level-synchronously.

    The per-entry intersection filter runs once per frontier level over
    all live queries together; the resulting plan carries exactly the
    node visits (and surviving children/hits, in entry order) the
    scalar ``window_query`` stack would produce per query.
    """
    nq = len(qxlo)
    int64 = np.int64
    v_node_parts = [np.zeros(nq, dtype=int64)]
    v_query_parts = [np.arange(nq, dtype=int64)]
    cs_parts: list[Any] = []
    ce_parts: list[Any] = []
    hs_parts: list[Any] = []
    he_parts: list[Any] = []
    hit_parts: list[Any] = []

    frontier_node = v_node_parts[0]
    frontier_query = v_query_parts[0]
    visit_base = 0
    hit_base = 0
    while True:
        nf = len(frontier_node)
        next_base = visit_base + nf
        reps = ct.nent[frontier_node]
        total = int(reps.sum())
        if total == 0:
            zeros = np.full(nf, next_base, dtype=int64)
            cs_parts.append(zeros)
            ce_parts.append(zeros)
            hz = np.full(nf, hit_base, dtype=int64)
            hs_parts.append(hz)
            he_parts.append(hz)
            break
        ent = np.repeat(ct.eoff[:-1][frontier_node], reps) \
            + _segment_offsets(reps)
        parent = np.repeat(np.arange(nf, dtype=int64), reps)
        q = frontier_query[parent]
        mask = (
            (ct.exlo[ent] <= qxhi[q]) & (qxlo[q] <= ct.exhi[ent])
            & (ct.eylo[ent] <= qyhi[q]) & (qylo[q] <= ct.eyhi[ent])
        )
        leafp = ct.is_leaf[frontier_node][parent]

        hit_sel = mask & leafp
        hit_counts = np.bincount(parent[hit_sel], minlength=nf)
        hs = hit_base + _exclusive_cumsum(hit_counts)
        hs_parts.append(hs)
        he_parts.append(hs + hit_counts)
        hits = ct.eref[ent[hit_sel]]
        hit_parts.append(hits)
        hit_base += len(hits)

        child_sel = mask & ~leafp
        child_counts = np.bincount(parent[child_sel], minlength=nf)
        cs = next_base + _exclusive_cumsum(child_counts)
        cs_parts.append(cs)
        ce_parts.append(cs + child_counts)

        child_ent = ent[child_sel]
        if len(child_ent) == 0:
            break
        frontier_node = ct.echild[child_ent]
        frontier_query = q[child_sel]
        v_node_parts.append(frontier_node)
        v_query_parts.append(frontier_query)
        visit_base = next_base

    return WindowPlan(
        n_queries=nq,
        v_node=np.concatenate(v_node_parts),
        v_query=np.concatenate(v_query_parts),
        child_start=np.concatenate(cs_parts),
        child_end=np.concatenate(ce_parts),
        hit_start=np.concatenate(hs_parts) if hs_parts else
        np.empty(0, dtype=int64),
        hit_end=np.concatenate(he_parts) if he_parts else
        np.empty(0, dtype=int64),
        hit_ref=np.concatenate(hit_parts) if hit_parts else
        np.empty(0, dtype=int64),
    )


# --------------------------------------------------------------------- #
# Batched tree matching
# --------------------------------------------------------------------- #

class MatchPlan:
    """Precomputed TM pair forest for one matching run.

    Pair 0 is the root pair. A pair's descendants are the contiguous
    pair-id range ``child_start[p]:child_end[p]``, in the scalar
    recursion order (sweep order for internal-internal pairs, entry
    order for the unbalanced descend-one case); ``xy[p]`` is the total
    ``xy_tests`` the scalar matcher charges while visiting the pair
    (restriction plus sweep, zero for a disjoint internal pair), and a
    leaf-leaf pair's reported object-id pairs are
    ``emit_a/emit_b[emit_start[p]:emit_end[p]]`` in sweep order.
    """

    __slots__ = (
        "n_pairs", "p_anode", "p_bnode", "xy", "child_start", "child_end",
        "emit_start", "emit_end", "emit_a", "emit_b",
    )

    def __init__(self, p_anode, p_bnode, xy, child_start, child_end,
                 emit_start, emit_end, emit_a, emit_b):
        self.p_anode = p_anode
        self.p_bnode = p_bnode
        self.xy = xy
        self.child_start = child_start
        self.child_end = child_end
        self.emit_start = emit_start
        self.emit_end = emit_end
        self.emit_a = emit_a
        self.emit_b = emit_b
        self.n_pairs = len(p_anode)


def _flatten_entries(ct: ColumnTree, nodes: Any) -> tuple[Any, Any]:
    """(segment ids, flat entry indices) over the nodes' entry slices."""
    reps = ct.nent[nodes]
    seg = np.repeat(np.arange(len(nodes), dtype=np.int64), reps)
    ent = np.repeat(ct.eoff[:-1][nodes], reps) + _segment_offsets(reps)
    return seg, ent


def build_match_plans(ct_a: ColumnTree, ct_b: ColumnTree) -> MatchPlan:
    """Expand the TM pair tree of ``ct_a`` × ``ct_b`` level-at-a-time.

    Each round classifies the whole pair frontier (leaf/leaf,
    leaf/internal, internal/internal), computes intersection boxes,
    restriction filters and the multi-node segmented sweep in bulk,
    and emits the next frontier. The resulting forest — node indices,
    per-pair ``xy`` charges, ordered children, leaf emissions — drives
    the accounted replay in ``repro.join.batch``.
    """
    int64 = np.int64
    pa_parts = [np.zeros(1, dtype=int64)]
    pb_parts = [np.zeros(1, dtype=int64)]
    xy_parts: list[Any] = []
    cs_parts: list[Any] = []
    ce_parts: list[Any] = []
    es_parts: list[Any] = []
    ee_parts: list[Any] = []
    emit_a_parts: list[Any] = []
    emit_b_parts: list[Any] = []

    fa = pa_parts[0]
    fb = pb_parts[0]
    pair_base = 0
    emit_base = 0
    while True:
        nf = len(fa)
        next_base = pair_base + nf
        la = ct_a.is_leaf[fa]
        lb = ct_b.is_leaf[fb]
        xy = np.zeros(nf, dtype=int64)
        child_parent_parts: list[Any] = []
        child_a_parts: list[Any] = []
        child_b_parts: list[Any] = []
        emit_counts = np.zeros(nf, dtype=int64)

        # --- leaf × leaf: full sweep, report object-id pairs --------- #
        sel = np.nonzero(la & lb)[0]
        if sel.size:
            a_n = fa[sel]
            b_n = fb[sel]
            seg_a, ent_a = _flatten_entries(ct_a, a_n)
            seg_b, ent_b = _flatten_entries(ct_b, b_n)
            pseg, pai, pbi, xyseg = sweep_pairs_segmented(
                seg_a, ct_a.exlo[ent_a], ct_a.eylo[ent_a],
                ct_a.exhi[ent_a], ct_a.eyhi[ent_a],
                seg_b, ct_b.exlo[ent_b], ct_b.eylo[ent_b],
                ct_b.exhi[ent_b], ct_b.eyhi[ent_b],
                len(sel),
            )
            xy[sel] += xyseg
            emit_counts[sel] = np.bincount(pseg, minlength=len(sel))
            emit_a_parts.append(ct_a.eref[ent_a[pai]])
            emit_b_parts.append(ct_b.eref[ent_b[pbi]])

        # --- one leaf: hold it, filter the internal side's children -- #
        for leaf_is_a in (True, False):
            if leaf_is_a:
                sel = np.nonzero(la & ~lb)[0]
            else:
                sel = np.nonzero(~la & lb)[0]
            if not sel.size:
                continue
            a_n = fa[sel]
            b_n = fb[sel]
            if leaf_is_a:
                inner_ct, inner_nodes = ct_b, b_n
                wxlo, wylo = ct_a.nxlo[a_n], ct_a.nylo[a_n]
                wxhi, wyhi = ct_a.nxhi[a_n], ct_a.nyhi[a_n]
            else:
                inner_ct, inner_nodes = ct_a, a_n
                wxlo, wylo = ct_b.nxlo[b_n], ct_b.nylo[b_n]
                wxhi, wyhi = ct_b.nxhi[b_n], ct_b.nyhi[b_n]
            xy[sel] += 2 * inner_ct.nent[inner_nodes]
            seg, ent = _flatten_entries(inner_ct, inner_nodes)
            mask = (
                (inner_ct.exlo[ent] <= wxhi[seg])
                & (wxlo[seg] <= inner_ct.exhi[ent])
                & (inner_ct.eylo[ent] <= wyhi[seg])
                & (wylo[seg] <= inner_ct.eyhi[ent])
            )
            seg = seg[mask]
            kids = inner_ct.echild[ent[mask]]
            child_parent_parts.append(sel[seg])
            if leaf_is_a:
                child_a_parts.append(a_n[seg])
                child_b_parts.append(kids)
            else:
                child_a_parts.append(kids)
                child_b_parts.append(b_n[seg])

        # --- internal × internal: box, restrict, segmented sweep ----- #
        sel = np.nonzero(~la & ~lb)[0]
        if sel.size:
            a_n = fa[sel]
            b_n = fb[sel]
            bx0 = np.maximum(ct_a.nxlo[a_n], ct_b.nxlo[b_n])
            by0 = np.maximum(ct_a.nylo[a_n], ct_b.nylo[b_n])
            bx1 = np.minimum(ct_a.nxhi[a_n], ct_b.nxhi[b_n])
            by1 = np.minimum(ct_a.nyhi[a_n], ct_b.nyhi[b_n])
            ok = (bx0 <= bx1) & (by0 <= by1)
            osel = sel[ok]
            if osel.size:
                a_n = a_n[ok]
                b_n = b_n[ok]
                bx0, by0 = bx0[ok], by0[ok]
                bx1, by1 = bx1[ok], by1[ok]
                # The restriction charge: two XY tests per child on both
                # sides, before the emptiness short-circuit.
                xy[osel] += 2 * (ct_a.nent[a_n] + ct_b.nent[b_n])
                seg_a, ent_a = _flatten_entries(ct_a, a_n)
                mask_a = (
                    (ct_a.exlo[ent_a] <= bx1[seg_a])
                    & (bx0[seg_a] <= ct_a.exhi[ent_a])
                    & (ct_a.eylo[ent_a] <= by1[seg_a])
                    & (by0[seg_a] <= ct_a.eyhi[ent_a])
                )
                seg_a, ent_a = seg_a[mask_a], ent_a[mask_a]
                seg_b, ent_b = _flatten_entries(ct_b, b_n)
                mask_b = (
                    (ct_b.exlo[ent_b] <= bx1[seg_b])
                    & (bx0[seg_b] <= ct_b.exhi[ent_b])
                    & (ct_b.eylo[ent_b] <= by1[seg_b])
                    & (by0[seg_b] <= ct_b.eyhi[ent_b])
                )
                seg_b, ent_b = seg_b[mask_b], ent_b[mask_b]
                pseg, pai, pbi, xyseg = sweep_pairs_segmented(
                    seg_a, ct_a.exlo[ent_a], ct_a.eylo[ent_a],
                    ct_a.exhi[ent_a], ct_a.eyhi[ent_a],
                    seg_b, ct_b.exlo[ent_b], ct_b.eylo[ent_b],
                    ct_b.exhi[ent_b], ct_b.eyhi[ent_b],
                    len(osel),
                )
                xy[osel] += xyseg
                child_parent_parts.append(osel[pseg])
                child_a_parts.append(ct_a.echild[ent_a[pai]])
                child_b_parts.append(ct_b.echild[ent_b[pbi]])

        xy_parts.append(xy)
        es = emit_base + _exclusive_cumsum(emit_counts)
        es_parts.append(es)
        ee_parts.append(es + emit_counts)
        emit_base += int(emit_counts.sum())

        if child_parent_parts:
            parents = np.concatenate(child_parent_parts)
            kids_a = np.concatenate(child_a_parts)
            kids_b = np.concatenate(child_b_parts)
            # Group children by parent; each parent's children come from
            # exactly one class block, already internally ordered, and
            # the stable sort keeps them so.
            grouping = np.argsort(parents, kind="stable")
            parents = parents[grouping]
            kids_a = kids_a[grouping]
            kids_b = kids_b[grouping]
            child_counts = np.bincount(parents, minlength=nf)
        else:
            kids_a = kids_b = np.empty(0, dtype=int64)
            child_counts = np.zeros(nf, dtype=int64)
        cs = next_base + _exclusive_cumsum(child_counts)
        cs_parts.append(cs)
        ce_parts.append(cs + child_counts)

        if len(kids_a) == 0:
            break
        fa = kids_a
        fb = kids_b
        pa_parts.append(fa)
        pb_parts.append(fb)
        pair_base = next_base

    empty = np.empty(0, dtype=int64)
    return MatchPlan(
        p_anode=np.concatenate(pa_parts),
        p_bnode=np.concatenate(pb_parts),
        xy=np.concatenate(xy_parts),
        child_start=np.concatenate(cs_parts),
        child_end=np.concatenate(ce_parts),
        emit_start=np.concatenate(es_parts),
        emit_end=np.concatenate(ee_parts),
        emit_a=np.concatenate(emit_a_parts) if emit_a_parts else empty,
        emit_b=np.concatenate(emit_b_parts) if emit_b_parts else empty,
    )
