"""Vectorized geometry kernels for the join hot path.

The scalar geometry code in :mod:`repro.geometry` is the *semantic
reference*: every kernel in this package computes bit-identical answers
(pair lists in the same order, the same floats, the same
``CpuCounters`` increments) while operating on struct-of-arrays data
instead of per-object attribute chains.

Layout
------
* :mod:`~repro.kernels.backend` — one-time backend selection (numpy
  when importable, pure-Python list columns otherwise) and the
  ``REPRO_KERNELS`` runtime toggle.
* :mod:`~repro.kernels.rect_array` — :class:`RectArray`, the parallel
  ``xlo/ylo/xhi/yhi`` coordinate columns, with a small-array heuristic
  that keeps node-sized arrays on list columns where numpy's per-call
  overhead would dominate.
* :mod:`~repro.kernels.batch` — the batch kernels: intersect-filter,
  MBR-of-slice, least-enlargement scan, center-distance scan, the
  analytic plane sweep, the Guttman quadratic split, and the workload
  generator's clipped-area sum.
* :mod:`~repro.kernels.node_store` — :class:`ColumnTree`, the
  level-order struct-of-arrays snapshot of a built tree, plus the
  batch traversal plan builders (whole-frontier window descent,
  level-at-a-time tree matching, segmented multi-node plane sweep)
  behind the ``REPRO_BATCH`` toggle.

The kernels are *pure*: no buffered I/O, no metrics phases, no module
state. Counter updates happen only where the scalar path updated them,
with analytically derived (not measured) increments — see DESIGN.md
§10 for the counting contract.
"""

from .backend import BACKEND, HAVE_NUMPY, batch_enabled, kernels_enabled
from .batch import (
    all_points,
    clipped_area_total,
    intersect_indices,
    least_enlargement_index,
    mbr_of,
    min_center_distance_index,
    quadratic_split_indices,
    sweep_pairs_batch,
)
from .node_store import (
    ColumnTree,
    MatchPlan,
    WindowPlan,
    build_match_plans,
    build_window_plans,
    sweep_pairs_segmented,
)
from .rect_array import (
    NUMPY_MIN_N,
    LocalRectBuffer,
    RectArray,
    SharedRectArray,
    SharedRectBuffer,
    SharedRectDescriptor,
)

__all__ = [
    "BACKEND",
    "HAVE_NUMPY",
    "ColumnTree",
    "LocalRectBuffer",
    "MatchPlan",
    "NUMPY_MIN_N",
    "RectArray",
    "SharedRectArray",
    "SharedRectBuffer",
    "SharedRectDescriptor",
    "WindowPlan",
    "all_points",
    "batch_enabled",
    "build_match_plans",
    "build_window_plans",
    "clipped_area_total",
    "intersect_indices",
    "kernels_enabled",
    "least_enlargement_index",
    "mbr_of",
    "min_center_distance_index",
    "quadratic_split_indices",
    "sweep_pairs_batch",
    "sweep_pairs_segmented",
]
