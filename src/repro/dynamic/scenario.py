"""One-call wiring of the full dynamic-data stack.

:class:`DynamicScenario` stands up everything the streaming scenario
needs — a workspace, the resident partner R-tree ``T_R``, a retained
seeded tree ``T_S`` seeded from it, one update stream per side, the
incremental join subscribed to both, and a re-seed manager — so tests,
benchmarks, and the service maintenance lane share one wiring instead
of re-deriving it. Initial structures are built in the SETUP phase
(they model pre-existing state); everything after construction is
charged.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..join.planner import plan_join
from ..storage import FaultInjector
from ..workload import make_dataset, make_stream
from ..workload.seeding import derive_seed
from ..workspace import Workspace
from .incremental import IncrementalJoin
from .reseed import NeverReseed, ReseedDecision, ReseedManager, ReseedPolicy
from .staleness import StalenessSnapshot


class DynamicScenario:
    """A churning resident join: two trees, two streams, one answer."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        n_r: int = 1500,
        n_s: int = 1500,
        seed: int = 0,
        dataset_family: str = "clustered",
        dataset_params: dict[str, object] | None = None,
        r_family: str = "drift",
        s_family: str = "zipf-churn",
        r_params: dict[str, object] | None = None,
        s_params: dict[str, object] | None = None,
        policy: ReseedPolicy | None = None,
        seed_levels: int = 2,
        injector: FaultInjector | None = None,
    ) -> None:
        from .stream import UpdateStream

        self.seed = seed
        self.workspace = Workspace(config, injector=injector)
        ws = self.workspace
        params = dict(dataset_params or {})
        data_r = make_dataset(dataset_family, n_r,
                              seed=derive_seed(seed, "dyn-R"), **params)
        data_s = make_dataset(dataset_family, n_s,
                              seed=derive_seed(seed, "dyn-S"), **params)
        self.partner = ws.install_rtree(data_r, name="T_R")
        self.tree_s = ws.install_seeded_tree(
            self.partner, data_s, seed_levels=seed_levels
        )
        self.stream_r = UpdateStream(
            ws, self.partner,
            make_stream(r_family, seed=derive_seed(seed, "dyn-stream-R"),
                        **dict(r_params or {})),
            live={oid: rect for rect, oid in data_r},
        )
        self.stream_s = UpdateStream(
            ws, self.tree_s,
            make_stream(s_family, seed=derive_seed(seed, "dyn-stream-S"),
                        **dict(s_params or {})),
            live={oid: rect for rect, oid in data_s},
        )
        self.incremental = IncrementalJoin(ws, self.tree_s, self.partner)
        self.stream_s.attach(self.incremental.on_s_op)
        self.stream_r.attach(self.incremental.on_r_op)
        self.manager = ReseedManager(
            ws, self.tree_s, self.partner, policy or NeverReseed()
        )
        self.manager.subscribe(self._adopt_successor)
        # The materialized result starts from a real, accounted join.
        self.incremental.bootstrap(self.run_join())

    def _adopt_successor(self, tree) -> None:
        self.tree_s = tree
        self.stream_s.retree(tree)
        self.incremental.retree_s(tree)

    # ------------------------------------------------------------- #
    # Driving
    # ------------------------------------------------------------- #

    def step(self, s_ops: int = 0, r_ops: int = 0) -> None:
        """Apply one batch per side (either may be empty)."""
        if s_ops:
            self.stream_s.step(s_ops)
        if r_ops:
            self.stream_r.step(r_ops)

    def run_join(self) -> list[tuple[int, int]]:
        """One measured resident join (MATCH-charged TM matching).

        The measured/predicted pair is recorded with the re-seed
        manager, feeding the cost-crossover signal.
        """
        ws = self.workspace
        before = ws.metrics.summary().match_read
        pairs = ws.match_resident(self.tree_s, self.partner)
        measured = ws.metrics.summary().match_read - before
        predicted = self.predicted_match_io()
        self.manager.record_run(predicted, measured)
        return pairs

    def predicted_match_io(self) -> float:
        """The planner's match-phase estimate for a *fresh* seeded tree.

        Drift shows up as measured I/O pulling away from this figure.
        """
        plan = plan_join(
            self.workspace.config,
            n_s=len(self.tree_s),
            tree_r_pages=self.partner.num_nodes(),
            tree_r_height=self.partner.height,
        )
        return plan.estimate_for("STJ").match_io

    def maintain(self) -> tuple[ReseedDecision, StalenessSnapshot]:
        """One maintenance point: measure staleness, maybe re-seed."""
        return self.manager.evaluate()

    # ------------------------------------------------------------- #
    # Oracles (tests / benchmarks)
    # ------------------------------------------------------------- #

    def reference_pairs(self) -> list[tuple[int, int]]:
        """Brute-force expected pairs from the live models; unaccounted.

        O(|S|·|R|) — a pure-Python oracle for differential tests, not a
        measured competitor (that is a from-scratch join in a fresh
        workspace; see ``benchmarks/bench_dynamic.py``).
        """
        out = []
        for s_oid, s_rect in self.stream_s.live.items():
            for r_oid, r_rect in self.stream_r.live.items():
                if s_rect.intersects(r_rect):
                    out.append((s_oid, r_oid))
        return sorted(out)
