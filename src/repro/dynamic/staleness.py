"""Seeded-tree staleness: how far the seeds have drifted from reality.

The paper copies the partner tree's top ``k`` levels once, at build
time (Section 2.1), and never revisits them. Under churn the partner's
node boxes move while the seeded tree's internal structure stays where
the *old* boxes put it, so slot guidance degrades: inserts land in
slots whose true region moved away, subtrees overlap, and join cost
creeps above what the planner predicts. :class:`StalenessTracker`
quantifies that drift with three complementary signals:

* **seed dilation** — how much the recorded seed-source boxes must
  grow to cover the partner's *current* boxes at the same depth
  (area-weighted enlargement; 0 = unchanged);
* **occupancy skew** — max/mean object count under the seeded tree's
  top-level entries (1 = perfectly even; grows as churn concentrates
  data in slots the old seeds happened to favour);
* **cost gap** — windowed measured-vs-predicted I/O ratio of recent
  joins through the tree, the SOLAR-style signal: reuse measured costs
  from prior runs to drive re-optimization decisions.

Structural reads here use unaccounted introspection: the tracker
models metadata a resident-index owner would maintain alongside the
tree (the paper's cost model charges data-path I/O, not bookkeeping).
Cost-gap inputs, by contrast, come from *measured, accounted* runs
recorded via :meth:`StalenessTracker.record_run`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Rect
from ..rtree import RTree
from ..rtree.node import Node
from ..seeded import SeededTree


@dataclass(frozen=True)
class StalenessSnapshot:
    """One staleness measurement; inputs to a re-seed policy."""

    seed_dilation: float       # area-weighted box drift, 0 = fresh
    occupancy_skew: float      # max/mean top-entry occupancy, 1 = even
    cost_gap: float            # measured/predicted I/O ratio - 1, 0 = exact
    partner_churn: int         # partner mutations since the baseline
    runs: int                  # joins in the cost window
    predicted_io: float        # summed planner predictions in the window
    measured_io: float         # summed measured I/O in the window
    tree_pages: int            # current seeded-tree size (re-seed cost scale)

    @property
    def excess_io(self) -> float:
        """Measured-over-predicted I/O accumulated in the window."""
        return max(0.0, self.measured_io - self.predicted_io)


def partner_seed_boxes(partner: RTree, seed_levels: int) -> list[Rect]:
    """The partner entry boxes a ``seed_levels``-deep seeding would copy.

    These are the entry MBRs of the nodes at depth ``k - 1`` — exactly
    the boxes that become slots in :meth:`repro.seeded.SeededTree.seed`.
    Falls back to the deepest internal level when churn has shrunk the
    partner below ``k + 1`` levels.
    """
    depth = min(seed_levels, max(partner.height - 1, 1)) - 1
    nodes: list[Node] = [partner._node_unaccounted(partner.root_id)]
    for _ in range(depth):
        children: list[Node] = []
        for node in nodes:
            if node.is_leaf:
                continue
            children.extend(
                partner._node_unaccounted(e.ref) for e in node.entries
            )
        if not children:
            break
        nodes = children
    out: list[Rect] = []
    for node in nodes:
        if not node.is_leaf:
            out.extend(e.mbr for e in node.entries)
    return out


def occupancy_skew(tree: SeededTree) -> float:
    """Max/mean leaf-object count under the tree's top-level entries."""
    root = tree._node_unaccounted(tree.root_id)
    if root.is_leaf or not root.entries:
        return 1.0

    def count_below(page_id: int) -> int:
        node = tree._node_unaccounted(page_id)
        if node.is_leaf:
            return len(node.entries)
        return sum(count_below(e.ref) for e in node.entries)

    counts = [count_below(e.ref) for e in root.entries]
    total = sum(counts)
    if total == 0:
        return 1.0
    return max(counts) * len(counts) / total


class StalenessTracker:
    """Accumulates drift evidence between re-baselines.

    ``window`` bounds the cost history: only the most recent N
    recorded joins feed the cost-gap signal, so one ancient outlier
    cannot dominate a decision forever.
    """

    def __init__(self, window: int = 16) -> None:
        if window < 1:
            raise ValueError("cost window must hold at least one run")
        self.window = window
        self._boxes: list[Rect] = []
        self._baseline_mutations = 0
        self._runs: list[tuple[float, float]] = []  # (predicted, measured)

    def rebaseline(self, partner: RTree, tree: SeededTree) -> None:
        """Record the partner boxes the current seeds correspond to."""
        self._boxes = partner_seed_boxes(partner, tree.seed_levels)
        self._baseline_mutations = partner.mutations
        self._runs = []

    def record_run(self, predicted_io: float, measured_io: float) -> None:
        """Feed one measured join (planner estimate vs accounted I/O)."""
        self._runs.append((float(predicted_io), float(measured_io)))
        if len(self._runs) > self.window:
            del self._runs[0]

    def seed_dilation(self, partner: RTree, seed_levels: int) -> float:
        """Area-weighted growth of recorded boxes to cover current ones.

        For each current box the nearest recorded box (center distance)
        is found and its enlargement to cover the current box summed;
        the total is normalized by the recorded area so the figure is
        scale-free. O(n·m) over two slot-level box lists — hundreds of
        boxes, not data objects.
        """
        if not self._boxes:
            return 0.0
        current = partner_seed_boxes(partner, seed_levels)
        if not current:
            return 0.0
        base_area = sum(b.area() for b in self._boxes) or 1e-12
        growth = 0.0
        for cur in current:
            nearest = min(
                self._boxes, key=lambda b: b.center_distance_sq(cur)
            )
            growth += nearest.enlargement(cur)
        return growth / base_area

    def measure(self, partner: RTree, tree: SeededTree) -> StalenessSnapshot:
        predicted = sum(p for p, _ in self._runs)
        measured = sum(m for _, m in self._runs)
        gap = (measured / predicted - 1.0) if predicted > 0 else 0.0
        return StalenessSnapshot(
            seed_dilation=self.seed_dilation(partner, tree.seed_levels),
            occupancy_skew=occupancy_skew(tree),
            cost_gap=gap,
            partner_churn=partner.mutations - self._baseline_mutations,
            runs=len(self._runs),
            predicted_io=predicted,
            measured_io=measured,
            tree_pages=tree.num_nodes(),
        )
