"""Incremental join maintenance: keep the answer, patch the deltas.

Recomputing a spatial join after every update batch costs the full
match phase each time; :class:`IncrementalJoin` instead materializes
the pair set once and patches it per update:

* S-side insert — one window query against the partner tree ``T_R``
  with the new rectangle: every hit is a new pair;
* R-side insert — the mirror probe against the S-side tree;
* delete — drop all pairs involving the object (indexed both ways, so
  this is set arithmetic, no I/O);
* move — delete then insert.

Probes run through :meth:`~repro.workspace.Workspace.window_query`, so
maintenance reads land in the MATCH column like any other join I/O —
the crossover against recompute (see ``benchmarks/bench_dynamic.py``)
is measured in the same currency. Pair bookkeeping is exact set
semantics on ``(oid_s, oid_r)``; boundary duplicates that partitioned
recompute legs dedup via reference points cannot arise here because
each pair is produced by exactly one probe.
"""

from __future__ import annotations

from typing import Iterable

from ..geometry import Rect
from ..rtree import RTree
from ..seeded import SeededTree
from ..workload.updates import DELETE, INSERT, MOVE, QUERY, UpdateOp
from ..workspace import Workspace

Pair = tuple[int, int]


class IncrementalJoin:
    """A materialized ``S ⋈ R`` result maintained under updates.

    Wire one instance to both update streams::

        inc = IncrementalJoin(ws, tree_s, tree_r)
        inc.bootstrap(initial_result.pairs)
        stream_s.attach(inc.on_s_op)
        stream_r.attach(inc.on_r_op)

    After a re-seed, point it at the successor with :meth:`retree_s`
    (the pair set survives: re-seeding permutes the tree, not the
    data).
    """

    def __init__(
        self,
        workspace: Workspace,
        tree_s: SeededTree | RTree,
        tree_r: RTree,
    ) -> None:
        self.workspace = workspace
        self.tree_s = tree_s
        self.tree_r = tree_r
        self._pairs: set[Pair] = set()
        self._by_s: dict[int, set[int]] = {}
        self._by_r: dict[int, set[int]] = {}
        self.probes = 0

    # ------------------------------------------------------------- #
    # Wiring
    # ------------------------------------------------------------- #

    def bootstrap(self, pairs: Iterable[Pair]) -> None:
        """Adopt a from-scratch join result as the starting state."""
        self._pairs = set()
        self._by_s = {}
        self._by_r = {}
        for s, r in pairs:
            self._add(s, r)

    def retree_s(self, tree_s: SeededTree | RTree) -> None:
        self.tree_s = tree_s

    def retree_r(self, tree_r: RTree) -> None:
        self.tree_r = tree_r

    # ------------------------------------------------------------- #
    # Update application (stream listeners)
    # ------------------------------------------------------------- #

    def on_s_op(self, op: UpdateOp) -> None:
        """Maintain pairs for one applied S-side op."""
        if op.kind == QUERY:
            return
        if op.kind in (DELETE, MOVE):
            self._drop_s(op.oid)
        if op.kind == INSERT:
            self._probe_s(op.oid, op.rect)
        elif op.kind == MOVE:
            assert op.to_rect is not None
            self._probe_s(op.oid, op.to_rect)

    def on_r_op(self, op: UpdateOp) -> None:
        """Maintain pairs for one applied R-side op."""
        if op.kind == QUERY:
            return
        if op.kind in (DELETE, MOVE):
            self._drop_r(op.oid)
        if op.kind == INSERT:
            self._probe_r(op.oid, op.rect)
        elif op.kind == MOVE:
            assert op.to_rect is not None
            self._probe_r(op.oid, op.to_rect)

    # ------------------------------------------------------------- #
    # Results
    # ------------------------------------------------------------- #

    def pair_set(self) -> set[Pair]:
        return set(self._pairs)

    def pairs(self) -> list[Pair]:
        """Sorted pairs, the differential-comparison form."""
        return sorted(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    # ------------------------------------------------------------- #
    # Internals
    # ------------------------------------------------------------- #

    def _probe_s(self, oid_s: int, rect: Rect) -> None:
        self.probes += 1
        for oid_r in self.workspace.window_query(self.tree_r, rect):
            self._add(oid_s, oid_r)

    def _probe_r(self, oid_r: int, rect: Rect) -> None:
        self.probes += 1
        for oid_s in self.workspace.window_query(self.tree_s, rect):
            self._add(oid_s, oid_r)

    def _add(self, s: int, r: int) -> None:
        self._pairs.add((s, r))
        self._by_s.setdefault(s, set()).add(r)
        self._by_r.setdefault(r, set()).add(s)

    def _drop_s(self, s: int) -> None:
        for r in self._by_s.pop(s, ()):
            self._pairs.discard((s, r))
            partners = self._by_r.get(r)
            if partners is not None:
                partners.discard(s)
                if not partners:
                    del self._by_r[r]

    def _drop_r(self, r: int) -> None:
        for s in self._by_r.pop(r, ()):
            self._pairs.discard((s, r))
            partners = self._by_s.get(s)
            if partners is not None:
                partners.discard(r)
                if not partners:
                    del self._by_s[s]
